//! Quickstart: generate a scaled social graph, run PageRank through the
//! optimized HyVE hierarchy, and print the energy/time report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hyve::algorithms::PageRank;
use hyve::core::{SimulationSession, SystemConfig};
use hyve::graph::DatasetProfile;

/// Builds a sequential session; all configurations here are statically valid.
fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .build()
        .expect("valid config")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The com-youtube stand-in: same |E|/|V| ratio and skew as the paper's
    // dataset, scaled to laptop size (see DESIGN.md).
    let profile = DatasetProfile::youtube_scaled();
    let graph = profile.generate(42);
    println!("graph: {profile}");

    // HyVE with data sharing and bank-level power gating (the paper's best
    // configuration), 8 processing units, 2 MB on-chip vertex memory.
    let engine = session(SystemConfig::hyve_opt());
    let report = engine.run_on_edge_list(&PageRank::new(10), &graph)?;

    println!("{report}");
    println!();
    println!("iterations        : {}", report.iterations);
    println!("intervals (P)     : {}", report.intervals);
    println!("elapsed           : {}", report.elapsed());
    println!("energy            : {}", report.energy());
    println!("energy efficiency : {:.1} MTEPS/W", report.mteps_per_watt());
    println!(
        "memory share      : {:.1}% of total energy",
        100.0 * report.breakdown.memory_fraction()
    );
    Ok(())
}
