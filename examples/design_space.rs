//! Architect's design-space exploration — the decisions §7.2 walks through:
//! ReRAM cell bits (Fig. 13), SRAM capacity (Table 4) and chip density,
//! evaluated on one workload.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use hyve::algorithms::PageRank;
use hyve::core::{SimulationSession, SystemConfig};
use hyve::graph::DatasetProfile;
use hyve::memsim::CellBits;

/// Builds a sequential session; all configurations here are statically valid.
fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .build()
        .expect("valid config")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::as_skitter_scaled();
    let graph = profile.generate(21);
    let pr = PageRank::new(10);
    println!("design-space exploration on {profile}\n");

    println!("-- ReRAM cell bits (Fig. 13) --");
    for bits in CellBits::all() {
        let cfg = SystemConfig::hyve_opt().with_cell_bits(bits);
        let report = session(cfg).run_on_edge_list(&pr, &graph)?;
        println!("{bits}: {:>8.1} MTEPS/W", report.mteps_per_watt());
    }

    println!("\n-- SRAM capacity (Table 4) --");
    for mb in [2u64, 4, 8, 16] {
        let cfg = SystemConfig::hyve_opt().with_sram_mb(mb);
        let report = session(cfg).run_on_edge_list(&pr, &graph)?;
        println!(
            "{mb:>2} MB: {:>8.1} MTEPS/W (P = {})",
            report.mteps_per_watt(),
            report.intervals
        );
    }

    println!("\n-- chip density --");
    for gbit in [4u32, 8, 16] {
        let cfg = SystemConfig::hyve_opt().with_density(gbit);
        let report = session(cfg).run_on_edge_list(&pr, &graph)?;
        println!("{gbit:>2} Gb: {:>8.1} MTEPS/W", report.mteps_per_watt());
    }

    println!("\n-- optimizations --");
    for (label, cfg) in [
        (
            "baseline       ",
            SystemConfig::hyve().with_data_sharing(false),
        ),
        ("+ data sharing ", SystemConfig::hyve()),
        ("+ power gating ", SystemConfig::hyve_opt()),
    ] {
        let report = session(cfg).run_on_edge_list(&pr, &graph)?;
        println!("{label}: {:>8.1} MTEPS/W", report.mteps_per_watt());
    }
    Ok(())
}
