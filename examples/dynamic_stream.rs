//! Evolving-web-graph scenario (§5): a stream of link additions/removals
//! and page creations/deletions applied to the interval-block grid with
//! reserved slack, followed by an incremental re-analysis.
//!
//! Compares HyVE's O(1) incremental preprocessing against GraphR's
//! fine-grained layout, then re-runs PageRank on the mutated graph to show
//! the working flow end to end.
//!
//! ```sh
//! cargo run --release --example dynamic_stream
//! ```

use hyve::algorithms::PageRank;
use hyve::core::{SimulationSession, SystemConfig};
use hyve::graph::{DatasetProfile, DynamicGrid, Edge, GridGraph, Mutation, VertexId};
use hyve::graphr::GraphrDynamic;
use std::time::Instant;

/// Builds a sequential session; all configurations here are statically valid.
fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .build()
        .expect("valid config")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::wiki_talk_scaled();
    let graph = profile.generate(9);
    println!("evolving {profile}");

    // Build the §7.4.2 request mix: 45% add-edge, 45% delete-edge,
    // 5% add-vertex, 5% delete-vertex.
    let requests = hyve_request_stream(&graph, 20_000);

    // HyVE: reserved slack per block, O(1) incremental updates.
    let grid = GridGraph::partition(&graph, 256.min(graph.num_vertices()))?;
    let mut hyve = DynamicGrid::new(grid, 0.30);
    let t = Instant::now();
    for m in &requests {
        let _ = hyve.apply(*m);
    }
    let hyve_s = t.elapsed().as_secs_f64();
    println!(
        "HyVE   : {} edges changed in {:.3}s ({:.2} M edges/s), {} repartitions",
        hyve.edges_changed(),
        hyve_s,
        hyve.edges_changed() as f64 / hyve_s / 1e6,
        hyve.repartitions(),
    );

    // GraphR: the associative fine-grained layout pays per-lookup overhead.
    let mut graphr = GraphrDynamic::new(&graph);
    let t = Instant::now();
    for m in &requests {
        let _ = graphr.apply(*m);
    }
    let graphr_s = t.elapsed().as_secs_f64();
    println!(
        "GraphR : {} edges changed in {:.3}s ({:.2} M edges/s)",
        graphr.edges_changed(),
        graphr_s,
        graphr.edges_changed() as f64 / graphr_s / 1e6,
    );

    // Re-analyse the evolved graph without a full preprocessing pass:
    // flatten the mutated grid straight back into the engine.
    let evolved = hyve.grid().to_edge_list();
    let engine = session(SystemConfig::hyve_opt());
    let report = engine.run_on_edge_list(&PageRank::new(10), &evolved)?;
    println!(
        "\nre-ranked evolved graph ({} edges): {:.1} MTEPS/W, {}",
        evolved.len(),
        report.mteps_per_watt(),
        report.elapsed(),
    );
    Ok(())
}

/// Deterministic §7.4.2-style request stream.
fn hyve_request_stream(graph: &hyve::graph::EdgeList, n: usize) -> Vec<Mutation> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let nv = graph.num_vertices();
    let mut added: Vec<(u32, u32)> = Vec::new();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let roll: f64 = rng.gen();
        if roll < 0.45 || (roll < 0.90 && added.is_empty()) {
            let (src, dst) = (rng.gen_range(0..nv), rng.gen_range(0..nv));
            added.push((src, dst));
            out.push(Mutation::AddEdge(Edge::new(src, dst)));
        } else if roll < 0.90 {
            let i = rng.gen_range(0..added.len());
            let (src, dst) = added.swap_remove(i);
            out.push(Mutation::RemoveEdge { src, dst });
        } else if roll < 0.95 {
            out.push(Mutation::AddVertex);
        } else {
            out.push(Mutation::RemoveVertex(VertexId::new(rng.gen_range(0..nv))));
        }
    }
    out
}
