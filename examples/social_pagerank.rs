//! Social-network influence ranking — the workload class the paper's
//! introduction motivates (social graphs, webpage hyperlinks).
//!
//! Runs PageRank on the scaled LiveJournal stand-in across four memory
//! hierarchies, prints the ten most influential vertices (identical under
//! every hierarchy — the architecture changes cost, not answers) and the
//! energy-efficiency ladder.
//!
//! ```sh
//! cargo run --release --example social_pagerank
//! ```

use hyve::algorithms::PageRank;
use hyve::core::{SimulationSession, SystemConfig};
use hyve::graph::DatasetProfile;

/// Builds a sequential session; all configurations here are statically valid.
fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .build()
        .expect("valid config")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::live_journal_scaled();
    let graph = profile.generate(7);
    println!("ranking {profile}");

    let pr = PageRank::new(10);
    let mut baseline_top: Option<Vec<u32>> = None;

    for cfg in [
        SystemConfig::acc_dram(),
        SystemConfig::acc_sram_dram(),
        SystemConfig::hyve(),
        SystemConfig::hyve_opt(),
    ] {
        let engine = session(cfg);
        let (report, ranks) = engine.run_on_edge_list_with_values(&pr, &graph)?;

        // Top-10 vertices by rank.
        let mut order: Vec<u32> = (0..graph.num_vertices()).collect();
        order.sort_by(|&a, &b| ranks[b as usize].total_cmp(&ranks[a as usize]));
        let top: Vec<u32> = order[..10].to_vec();

        match &baseline_top {
            None => {
                println!("top-10 influential vertices: {top:?}");
                baseline_top = Some(top);
            }
            Some(expect) => assert_eq!(
                &top, expect,
                "every hierarchy must compute the same ranking"
            ),
        }

        println!(
            "{:<16} {:>9.1} MTEPS/W  {:>10} total energy  {:>10} elapsed",
            report.config,
            report.mteps_per_watt(),
            format!("{}", report.energy()),
            format!("{}", report.elapsed()),
        );
    }

    println!("\nSame answers, very different energy bills — that's the paper's point.");
    Ok(())
}
