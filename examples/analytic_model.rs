//! The §6 analytic model as a design tool: EDP decomposition, the
//! Cauchy–Schwarz bound, the DRAM/ReRAM comparisons of Figs. 9–10, silicon
//! area, and the §6.6 hierarchy recommender.
//!
//! ```sh
//! cargo run --release --example analytic_model
//! ```

use hyve::memsim::{
    AreaModel, DramChip, DramChipConfig, Energy, MemoryDevice, ReramChip, ReramChipConfig,
    SramCellParams, Time,
};
use hyve::model::general::{CostTerm, GraphWorkload, ModelCosts};
use hyve::model::{compare_edge_storage, recommend, AccessPattern, Objective, WorkloadShape};

fn main() {
    // A LiveJournal-sized workload, one PR iteration.
    let workload = GraphWorkload {
        seq_vertex_reads: 4_850_000 * 19, // (P/N)·Nv with P = 152
        seq_vertex_writes: 4_850_000,
        edge_reads: 69_000_000,
    };

    // Per-operation costs straight from the device models.
    let reram = ReramChip::new(ReramChipConfig::default());
    let dram = DramChip::new(DramChipConfig::default());
    let costs = ModelCosts {
        seq_vertex_read: CostTerm::new(dram.burst_period() / 8.0, dram.read_energy(64)),
        seq_vertex_write: CostTerm::new(
            dram.sequential_write_period() / 8.0,
            dram.write_energy(64),
        ),
        rand_vertex_read: CostTerm::new(Time::from_ps(960.0), Energy::from_pj(23.84)),
        rand_vertex_write: CostTerm::new(Time::from_ps(557.0), Energy::from_pj(24.74)),
        edge_read: CostTerm::new(reram.burst_period() / 8.0, reram.read_energy(64)),
        processing: CostTerm::new(Time::from_ns(1.5), Energy::from_pj(3.7)),
    };

    println!("== Eq. (1)/(2): one PR iteration on LJ-sized inputs ==");
    println!("execution time : {}", costs.execution_time(&workload));
    println!("energy         : {}", costs.energy(&workload));
    println!("EDP            : {}", costs.edp(&workload));
    println!(
        "Eq. (6) bound  : {} ({}% of achieved)",
        costs.edp_lower_bound(&workload),
        (100.0 * costs.edp_lower_bound(&workload).as_pj_ns() / costs.edp(&workload).as_pj_ns())
            .round(),
    );

    println!("\n== Fig. 9: DRAM/ReRAM as edge storage (4 Gb) ==");
    for pattern in AccessPattern::all() {
        let c = compare_edge_storage(4, pattern);
        println!(
            "{pattern:?}: delay {:.2}, energy {:.2}, EDP {:.2}",
            c.delay_ratio, c.energy_ratio, c.edp_ratio
        );
    }

    println!("\n== Silicon area (22 nm) ==");
    for (name, model) in [
        ("ReRAM crossbar", AreaModel::reram(22.0)),
        ("DRAM", AreaModel::dram(22.0)),
        (
            "SRAM (146 F^2)",
            AreaModel::sram(&SramCellParams::default()),
        ),
    ] {
        println!(
            "{name:<16}: 4 Gb in {}, {:.1} Mbit/mm^2",
            model.array_area(4 << 30),
            model.bits_per_mm2() / 1e6,
        );
    }

    println!("\n== §6.6 recommender ==");
    let shape = WorkloadShape {
        num_vertices: 4_850_000,
        num_edges: 69_000_000,
        partitions: 152,
        pus: 8,
        navg: 1.49,
        density_gbit: 4,
    };
    for objective in [Objective::Energy, Objective::Latency] {
        let r = recommend(&shape, objective);
        println!(
            "{objective:?}: edges={}, global vertices={}, local vertices={}, processing={}",
            r.edge_storage, r.global_vertex, r.local_vertex, r.processing
        );
    }
}
