//! Weighted shortest paths on a road-network-like graph — exercises SSSP
//! (one of the two extra algorithms of the GraphR comparison, §7.4.3) with
//! real edge weights, validated against a Dijkstra reference.
//!
//! ```sh
//! cargo run --release --example route_planning
//! ```

use hyve::algorithms::{reference, Sssp};
use hyve::core::{SimulationSession, SystemConfig};
use hyve::graph::{Csr, Edge, EdgeList, VertexId};
use hyve::graphr::GraphrEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a sequential session; all configurations here are statically valid.
fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .build()
        .expect("valid config")
}

/// Builds a grid-with-shortcuts road network: `side × side` intersections,
/// 4-neighbour streets with jittered lengths, plus a few highways.
fn road_network(side: u32, seed: u64) -> Result<EdgeList, hyve::graph::GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nv = side * side;
    let mut g = EdgeList::new(nv);
    let id = |x: u32, y: u32| y * side + x;
    for y in 0..side {
        for x in 0..side {
            let mut connect = |a: u32, b: u32, base: f32| -> Result<(), hyve::graph::GraphError> {
                let w = base * (0.8 + 0.4 * rng.gen::<f32>());
                g.try_push(Edge::with_weight(a, b, w))?;
                g.try_push(Edge::with_weight(b, a, w))
            };
            if x + 1 < side {
                connect(id(x, y), id(x + 1, y), 1.0)?;
            }
            if y + 1 < side {
                connect(id(x, y), id(x, y + 1), 1.0)?;
            }
        }
    }
    // Highways: long but fast diagonal shortcuts.
    for _ in 0..side {
        let a = rng.gen_range(0..nv);
        let b = rng.gen_range(0..nv);
        if a != b {
            g.try_push(Edge::with_weight(a, b, 3.0))?;
            g.try_push(Edge::with_weight(b, a, 3.0))?;
        }
    }
    Ok(g)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 160;
    let graph = road_network(side, 5)?;
    println!(
        "road network: {} intersections, {} directed street segments",
        graph.num_vertices(),
        graph.len()
    );

    let depot = VertexId::new(0);
    let sssp = Sssp::new(depot);

    // HyVE computes the distances...
    let engine = session(SystemConfig::hyve_opt());
    let (report, distances) = engine.run_on_edge_list_with_values(&sssp, &graph)?;

    // ...and Dijkstra agrees.
    let csr = Csr::from_edge_list(&graph);
    let expect = reference::sssp_distances(&csr, depot);
    let mut max_err = 0.0f32;
    for (a, b) in distances.iter().zip(expect.iter()) {
        if b.is_finite() {
            max_err = max_err.max((a - b).abs());
        }
    }
    println!("max deviation from Dijkstra: {max_err:.5}");
    assert!(max_err < 1e-3, "engine must agree with Dijkstra");

    let corner = VertexId::new(graph.num_vertices() - 1);
    println!(
        "distance depot -> far corner: {:.2} (straight-line grid distance {})",
        distances[corner.index()],
        2 * (side - 1)
    );
    println!(
        "HyVE: {} iterations, {:.1} MTEPS/W, {}",
        report.iterations,
        report.mteps_per_watt(),
        report.elapsed()
    );

    // GraphR runs the same query — at a higher energy bill (Fig. 21).
    let graphr = GraphrEngine::new().run(&sssp, &graph)?;
    println!(
        "GraphR: {:.1} MTEPS/W ({:.1}x more energy than HyVE)",
        graphr.mteps_per_watt(),
        graphr.energy() / report.energy()
    );
    Ok(())
}
