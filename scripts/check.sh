#!/usr/bin/env bash
# The repo's full gate: formatting, lints, release build, and the test
# suite — exactly what CI runs. Everything works offline (vendored deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> cargo test"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> golden reports"
cargo test -q --test golden_reports

echo "==> trace smoke (run --trace, report, self-diff)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
./target/release/hyve-cli run --alg pr --dataset yt --iters 3 \
  --trace "$trace_dir/smoke.jsonl" >/dev/null
./target/release/hyve-cli report "$trace_dir/smoke.jsonl" >/dev/null
./target/release/hyve-cli report "$trace_dir/smoke.jsonl" "$trace_dir/smoke.jsonl" \
  | grep -q "identical: yes" || {
    echo "trace self-diff reported nonzero deltas" >&2
    exit 1
  }

echo "All checks passed."
