#!/usr/bin/env bash
# The repo's full gate: formatting, lints, release build, and the test
# suite — exactly what CI runs. Everything works offline (vendored deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> cargo test"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> golden reports"
cargo test -q --test golden_reports

echo "All checks passed."
