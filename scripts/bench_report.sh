#!/usr/bin/env bash
# Appends one hot-path speedup measurement (legacy AoS engine loop vs the
# flat-SoA/scratch/skip engine) to BENCH_hotpath.json at the repo root.
# Each line is a self-contained JSON object stamped with the current git
# revision, so the file accumulates a performance trajectory across commits.
#
# Usage: scripts/bench_report.sh [output-file]
# Env:   HYVE_BENCH_SMALL=1 switches from the largest dataset (TW) to YT
#        for quick CI runs.
#        HYVE_TRACE_DIR=<dir> additionally writes per-iteration trace
#        artifacts (JSONL, inspect with `hyve report`) next to the
#        trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_hotpath.json}"

if [ -n "${HYVE_TRACE_DIR:-}" ]; then
  mkdir -p "$HYVE_TRACE_DIR"
fi

HOTPATH_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
HOTPATH_UTC="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
export HOTPATH_REV HOTPATH_UTC

cargo run --release -p hyve-bench --bin hotpath_report -- "$out"
echo "==> trajectory tail:"
tail -n 1 "$out"
