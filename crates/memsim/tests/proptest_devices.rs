//! Property-based tests for the device models: unit arithmetic laws,
//! monotonicity of costs in transfer size, and power-gating bounds.

use hyve_memsim::{
    BankPowerGating, DramChip, DramChipConfig, Energy, MemoryDevice, Power, PowerGatingConfig,
    ReramChip, ReramChipConfig, SramArray, SramConfig, Time,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Unit conversions round-trip within floating-point tolerance.
    #[test]
    fn unit_round_trips(v in 0.0f64..1e12) {
        let e = Energy::from_pj(v);
        prop_assert!((Energy::from_nj(e.as_nj()).as_pj() - v).abs() <= v * 1e-12 + 1e-12);
        let t = Time::from_ns(v);
        prop_assert!((Time::from_us(t.as_us()).as_ns() - v).abs() <= v * 1e-12 + 1e-12);
    }

    /// Power × Time = Energy is consistent with Energy ÷ Time = Power.
    #[test]
    fn power_energy_consistency(mw in 0.001f64..1e6, ns in 0.001f64..1e9) {
        let e = Power::from_mw(mw) * Time::from_ns(ns);
        let p = e / Time::from_ns(ns);
        prop_assert!((p.as_mw() - mw).abs() <= mw * 1e-9);
    }

    /// Read/write energies are monotone non-decreasing in the bit count for
    /// every device.
    #[test]
    fn device_costs_monotone(bits_a in 1u64..100_000, bits_b in 1u64..100_000) {
        let (lo, hi) = (bits_a.min(bits_b), bits_a.max(bits_b));
        let reram = ReramChip::new(ReramChipConfig::default());
        let dram = DramChip::new(DramChipConfig::default());
        let sram = SramArray::new(SramConfig::default());
        for dev in [&reram as &dyn MemoryDevice, &dram, &sram] {
            prop_assert!(dev.read_energy(lo) <= dev.read_energy(hi));
            prop_assert!(dev.write_energy(lo) <= dev.write_energy(hi));
            prop_assert!(dev.read_energy(hi).is_valid());
            prop_assert!(dev.sequential_read_time(lo) <= dev.sequential_read_time(hi));
        }
    }

    /// Random accesses never cost less than sequential ones.
    #[test]
    fn random_at_least_sequential(bits in 1u64..10_000) {
        let reram = ReramChip::new(ReramChipConfig::default());
        let dram = DramChip::new(DramChipConfig::default());
        for dev in [&reram as &dyn MemoryDevice, &dram] {
            prop_assert!(dev.random_read_energy(bits) >= dev.read_energy(bits));
            prop_assert!(dev.random_write_energy(bits) >= dev.write_energy(bits));
        }
    }

    /// Density scaling: larger chips never get cheaper per access or leak
    /// less overall.
    #[test]
    fn density_monotone(d1 in 1u32..32, d2 in 1u32..32) {
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        let r_lo = ReramChip::new(ReramChipConfig::with_density(lo));
        let r_hi = ReramChip::new(ReramChipConfig::with_density(hi));
        prop_assert!(r_lo.read_energy(512) <= r_hi.read_energy(512));
        prop_assert!(r_lo.background_power() <= r_hi.background_power());
        let d_lo = DramChip::new(DramChipConfig::with_density(lo));
        let d_hi = DramChip::new(DramChipConfig::with_density(hi));
        prop_assert!(d_lo.background_power() <= d_hi.background_power());
    }

    /// Gated background energy never exceeds ungated, and the saving never
    /// exceeds the bank count.
    #[test]
    fn gating_bounds(banks in 1u32..64, runtime_us in 1.0f64..100_000.0,
                     transitions in 0u64..100) {
        let g = BankPowerGating::new(
            PowerGatingConfig::default(),
            banks,
            Power::from_mw(2.5),
        );
        let runtime = Time::from_us(runtime_us);
        let report = g.report(runtime, transitions);
        // With enough runtime the gated path always wins; with tiny runtime
        // and many transitions it may lose, but must stay non-negative.
        prop_assert!(report.gated.is_valid());
        prop_assert!(report.ungated.is_valid());
        if transitions == 0 {
            prop_assert!(report.gated <= report.ungated * 1.0000001);
            prop_assert!(report.savings_factor() <= f64::from(banks) * 1.0000001);
        }
    }

    /// SRAM scaling laws stay monotone in capacity.
    #[test]
    fn sram_scaling_monotone(mb1 in 1u64..64, mb2 in 1u64..64) {
        let (lo, hi) = (mb1.min(mb2), mb1.max(mb2));
        let s_lo = SramArray::new(SramConfig::with_capacity_mb(lo));
        let s_hi = SramArray::new(SramConfig::with_capacity_mb(hi));
        prop_assert!(s_lo.word_read_energy() <= s_hi.word_read_energy());
        prop_assert!(s_lo.word_read_latency() <= s_hi.word_read_latency());
        prop_assert!(s_lo.background_power() <= s_hi.background_power());
        // Bulk transfers are cheaper per bit than word transfers.
        prop_assert!(s_lo.bulk_write_energy(512) <= s_lo.write_energy(32) * 16.0);
    }
}
