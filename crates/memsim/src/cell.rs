//! Memory-cell parameter sets.
//!
//! The HyVE paper (§7.1) pins the ReRAM cell to concrete NVSim inputs:
//! 0.4 V read voltage, 0.7 V set voltage, current-mode read at 0.16 µW,
//! 10 ns set pulse at 0.6 pJ, R_on = 100 kΩ and R_off = 10 MΩ at read
//! voltage. Multi-level cells (§7.2.1) store N bits in 2^N resistance levels
//! and pay for it with extra sense amplifiers — modelled here after the
//! parallel-sensing scheme of Xu et al. (DAC'13), the same reference the
//! paper patched into NVSim.

use crate::units::{Energy, Power, Time};
use std::fmt;

/// Number of bits stored per ReRAM cell (paper Fig. 13 sweeps 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellBits {
    /// Single-level cell: two resistance states, one bit.
    Slc,
    /// Multi-level cell with 4 resistance levels (2 bits).
    Mlc2,
    /// Multi-level cell with 8 resistance levels (3 bits).
    Mlc3,
}

impl CellBits {
    /// Bits of data stored in one cell.
    pub fn bits(self) -> u32 {
        match self {
            CellBits::Slc => 1,
            CellBits::Mlc2 => 2,
            CellBits::Mlc3 => 3,
        }
    }

    /// Number of distinguishable resistance levels (2^bits).
    pub fn levels(self) -> u32 {
        1 << self.bits()
    }

    /// All supported cell configurations, in increasing density order.
    pub fn all() -> [CellBits; 3] {
        [CellBits::Slc, CellBits::Mlc2, CellBits::Mlc3]
    }

    /// Relative sense-amplifier energy cost of a read, normalised to SLC.
    ///
    /// Parallel sensing of an N-bit cell requires `2^N - 1` reference
    /// comparisons instead of 1, and finer sensing margins raise the cost of
    /// each comparison. The paper's observation (Fig. 13) is that this
    /// overhead outweighs the density win, so SLC is the right choice.
    pub fn sense_energy_factor(self) -> f64 {
        let comparisons = (self.levels() - 1) as f64;
        // Finer margins: ~15% extra energy per additional resolved bit.
        let margin = 1.0 + 0.15 * (self.bits() - 1) as f64;
        comparisons * margin
    }

    /// Relative write (set/reset) energy cost, normalised to SLC.
    ///
    /// Program-and-verify for intermediate levels needs several pulses.
    pub fn write_energy_factor(self) -> f64 {
        match self {
            CellBits::Slc => 1.0,
            CellBits::Mlc2 => 2.4,
            CellBits::Mlc3 => 4.1,
        }
    }

    /// Relative read latency, normalised to SLC (multi-step sensing).
    pub fn read_latency_factor(self) -> f64 {
        1.0 + 0.35 * (self.bits() - 1) as f64
    }
}

impl fmt::Display for CellBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bit", self.bits())
    }
}

/// ReRAM cell parameters, defaulting to the paper's §7.1 NVSim inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReramCellParams {
    /// Voltage applied for a read access (V).
    pub read_voltage_v: f64,
    /// Voltage applied for a set (write-1) operation (V).
    pub set_voltage_v: f64,
    /// Read power drawn by one cell in current-mode sensing.
    pub read_power: Power,
    /// Duration of a set pulse.
    pub set_pulse: Time,
    /// Energy of one set pulse.
    pub set_energy: Energy,
    /// Low-resistance state at read voltage (Ω).
    pub on_resistance_ohm: f64,
    /// High-resistance state at read voltage (Ω).
    pub off_resistance_ohm: f64,
    /// Bits stored per cell.
    pub bits: CellBits,
}

impl Default for ReramCellParams {
    fn default() -> Self {
        ReramCellParams {
            read_voltage_v: 0.4,
            set_voltage_v: 0.7,
            read_power: Power::from_uw(0.16),
            set_pulse: Time::from_ns(10.0),
            set_energy: Energy::from_pj(0.6),
            on_resistance_ohm: 100e3,
            off_resistance_ohm: 10e6,
            bits: CellBits::Slc,
        }
    }
}

impl ReramCellParams {
    /// Cell parameters for a given bits-per-cell setting.
    pub fn with_bits(bits: CellBits) -> Self {
        ReramCellParams {
            bits,
            ..Default::default()
        }
    }

    /// Ratio of off- to on-resistance; sensing margin sanity metric.
    pub fn resistance_ratio(&self) -> f64 {
        self.off_resistance_ohm / self.on_resistance_ohm
    }

    /// Energy to write one *bit* (set-pulse energy amortised over bits,
    /// inflated by the MLC program-and-verify factor).
    pub fn write_energy_per_bit(&self) -> Energy {
        self.set_energy * self.bits.write_energy_factor() / f64::from(self.bits.bits())
    }

    /// Checks physical plausibility of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a voltage, resistance, time or
    /// energy is non-positive or non-finite, or when the off/on resistance
    /// ratio is not > 1 (cells would be unreadable).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.read_voltage_v.is_finite() && self.read_voltage_v > 0.0) {
            return Err("read voltage must be positive".into());
        }
        if !(self.set_voltage_v.is_finite() && self.set_voltage_v > 0.0) {
            return Err("set voltage must be positive".into());
        }
        if self.set_voltage_v < self.read_voltage_v {
            return Err("set voltage must be at least the read voltage".into());
        }
        if !self.read_power.is_valid() || self.read_power == Power::ZERO {
            return Err("read power must be positive".into());
        }
        if !self.set_pulse.is_valid() || self.set_pulse == Time::ZERO {
            return Err("set pulse must be positive".into());
        }
        if !self.set_energy.is_valid() || self.set_energy == Energy::ZERO {
            return Err("set energy must be positive".into());
        }
        if self.resistance_ratio() <= 1.0 {
            return Err("off resistance must exceed on resistance".into());
        }
        Ok(())
    }
}

/// SRAM cell parameters (paper §7.1: 1.31 F access transistor width,
/// 146 F² cell area, 22 nm process).
#[derive(Debug, Clone, PartialEq)]
pub struct SramCellParams {
    /// Access CMOS width in feature sizes (F).
    pub access_cmos_width_f: f64,
    /// Cell area in F².
    pub cell_area_f2: f64,
    /// Process feature size in nanometres.
    pub process_nm: f64,
}

impl Default for SramCellParams {
    fn default() -> Self {
        SramCellParams {
            access_cmos_width_f: 1.31,
            cell_area_f2: 146.0,
            process_nm: 22.0,
        }
    }
}

impl SramCellParams {
    /// Physical area of one cell in square nanometres.
    pub fn cell_area_nm2(&self) -> f64 {
        self.cell_area_f2 * self.process_nm * self.process_nm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cell_matches_paper() {
        let c = ReramCellParams::default();
        assert_eq!(c.read_voltage_v, 0.4);
        assert_eq!(c.set_voltage_v, 0.7);
        assert!((c.read_power.as_uw() - 0.16).abs() < 1e-12);
        assert!((c.set_pulse.as_ns() - 10.0).abs() < 1e-12);
        assert!((c.set_energy.as_pj() - 0.6).abs() < 1e-12);
        assert_eq!(c.resistance_ratio(), 100.0);
        c.validate().expect("paper defaults must be valid");
    }

    #[test]
    fn mlc_levels_and_bits() {
        assert_eq!(CellBits::Slc.bits(), 1);
        assert_eq!(CellBits::Mlc2.levels(), 4);
        assert_eq!(CellBits::Mlc3.levels(), 8);
    }

    #[test]
    fn mlc_sense_overhead_grows_faster_than_density() {
        // The whole point of Fig. 13: energy per *bit* read gets worse
        // with more bits per cell.
        for pair in CellBits::all().windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let lo_per_bit = lo.sense_energy_factor() / f64::from(lo.bits());
            let hi_per_bit = hi.sense_energy_factor() / f64::from(hi.bits());
            assert!(
                hi_per_bit > lo_per_bit,
                "per-bit sense energy must increase: {lo} -> {hi}"
            );
        }
    }

    #[test]
    fn mlc_write_factor_monotonic() {
        assert!(CellBits::Slc.write_energy_factor() < CellBits::Mlc2.write_energy_factor());
        assert!(CellBits::Mlc2.write_energy_factor() < CellBits::Mlc3.write_energy_factor());
    }

    #[test]
    fn validation_rejects_bad_cells() {
        let c = ReramCellParams {
            read_voltage_v: -0.4,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = ReramCellParams {
            on_resistance_ohm: 20e6,
            ..Default::default()
        }; // higher than off
        assert!(c.validate().is_err());

        let c = ReramCellParams {
            set_voltage_v: 0.1,
            ..Default::default()
        }; // below read voltage
        assert!(c.validate().is_err());
    }

    #[test]
    fn sram_cell_area() {
        let s = SramCellParams::default();
        let expect = 146.0 * 22.0 * 22.0;
        assert!((s.cell_area_nm2() - expect).abs() < 1e-9);
    }

    #[test]
    fn display_cell_bits() {
        assert_eq!(CellBits::Slc.to_string(), "1bit");
        assert_eq!(CellBits::Mlc3.to_string(), "3bit");
    }
}
