//! Silicon-area estimates for the memory technologies.
//!
//! The paper leans on area twice: ReRAM "improves the area efficiency
//! because the refresh mechanism is no longer necessary" (§3.1) and the
//! bank-level power gates must incur "low area penalty" (§4.1). This module
//! provides F²-based cell-area models with peripheral overhead factors so
//! those claims are quantifiable: crossbar ReRAM at 4F², DRAM at 6F², SRAM
//! at the paper's 146F² (§7.1), at a configurable feature size.

use crate::cell::SramCellParams;

/// Area in square millimetres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Area(f64);

impl Area {
    /// Creates an area from square millimetres.
    pub const fn from_mm2(mm2: f64) -> Self {
        Area(mm2)
    }

    /// Creates an area from square nanometres.
    pub fn from_nm2(nm2: f64) -> Self {
        Area(nm2 * 1e-12)
    }

    /// The area in square millimetres.
    pub fn as_mm2(self) -> f64 {
        self.0
    }
}

impl std::ops::Add for Area {
    type Output = Area;
    fn add(self, rhs: Area) -> Area {
        Area(self.0 + rhs.0)
    }
}

impl std::ops::Mul<f64> for Area {
    type Output = Area;
    fn mul(self, rhs: f64) -> Area {
        Area(self.0 * rhs)
    }
}

impl std::ops::Div<Area> for Area {
    type Output = f64;
    fn div(self, rhs: Area) -> f64 {
        self.0 / rhs.0
    }
}

impl std::fmt::Display for Area {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} mm^2", self.0)
    }
}

/// Cell area and peripheral overhead of one memory technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Cell area in F² (feature-size squared).
    pub cell_f2: f64,
    /// Peripheral area (decoders, sense amps, refresh logic) as a fraction
    /// of the cell array.
    pub peripheral_overhead: f64,
    /// Process feature size in nanometres.
    pub feature_nm: f64,
}

impl AreaModel {
    /// Crossbar ReRAM: 4F² cells, no refresh logic; sense amplifiers and
    /// drivers dominate the periphery.
    pub fn reram(feature_nm: f64) -> Self {
        AreaModel {
            cell_f2: 4.0,
            peripheral_overhead: 0.35,
            feature_nm,
        }
    }

    /// DRAM: 6F² cells plus refresh machinery in the periphery.
    pub fn dram(feature_nm: f64) -> Self {
        AreaModel {
            cell_f2: 6.0,
            peripheral_overhead: 0.50,
            feature_nm,
        }
    }

    /// SRAM with the paper's §7.1 cell (146 F² at 22 nm).
    pub fn sram(cell: &SramCellParams) -> Self {
        AreaModel {
            cell_f2: cell.cell_area_f2,
            peripheral_overhead: 0.25,
            feature_nm: cell.process_nm,
        }
    }

    /// Area of `bits` of storage under this model.
    pub fn array_area(&self, bits: u64) -> Area {
        let cell_nm2 = self.cell_f2 * self.feature_nm * self.feature_nm;
        Area::from_nm2(bits as f64 * cell_nm2) * (1.0 + self.peripheral_overhead)
    }

    /// Bits per mm² — the density figure of merit.
    pub fn bits_per_mm2(&self) -> f64 {
        let gbit = 1u64 << 30;
        gbit as f64 / self.array_area(gbit).as_mm2()
    }
}

/// Area of one bank-level power gate (header/footer transistor block) as a
/// fraction of the bank it gates — §4.1's "low area penalty", one gate per
/// bank because only whole banks are gated.
pub fn power_gate_overhead_fraction() -> f64 {
    0.015
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_ordering_reram_dram_sram() {
        let reram = AreaModel::reram(22.0);
        let dram = AreaModel::dram(22.0);
        let sram = AreaModel::sram(&SramCellParams::default());
        assert!(reram.bits_per_mm2() > dram.bits_per_mm2());
        assert!(dram.bits_per_mm2() > sram.bits_per_mm2());
        // ReRAM's 4F² + lean periphery ⇒ ≥1.6× denser than DRAM.
        assert!(reram.bits_per_mm2() / dram.bits_per_mm2() > 1.6);
    }

    #[test]
    fn area_scales_linearly_in_bits() {
        let m = AreaModel::reram(22.0);
        let a1 = m.array_area(1 << 20).as_mm2();
        let a2 = m.array_area(1 << 21).as_mm2();
        assert!((a2 - 2.0 * a1).abs() < 1e-12);
    }

    #[test]
    fn four_gbit_reram_chip_area_plausible() {
        // 4 Gb at 22 nm, 4F²: ~8.3 mm² array + periphery — a small die.
        let m = AreaModel::reram(22.0);
        let a = m.array_area(4u64 << 30).as_mm2();
        assert!(a > 5.0 && a < 25.0, "got {a} mm^2");
    }

    #[test]
    fn sram_macro_area_matches_hand_calculation() {
        let m = AreaModel::sram(&SramCellParams::default());
        // 2 MB = 16 Mibit × 146 F² × (22 nm)² × 1.25.
        let bits = 2u64 * 1024 * 1024 * 8;
        let expect = bits as f64 * 146.0 * 22.0 * 22.0 * 1e-12 * 1.25;
        assert!((m.array_area(bits).as_mm2() - expect).abs() < 1e-9);
    }

    #[test]
    fn gate_overhead_is_small() {
        assert!(power_gate_overhead_fraction() < 0.02);
    }

    #[test]
    fn area_arithmetic_and_display() {
        let a = Area::from_mm2(2.0) + Area::from_mm2(1.0);
        assert_eq!(a.as_mm2(), 3.0);
        assert_eq!((a * 2.0).as_mm2(), 6.0);
        assert_eq!(a / Area::from_mm2(1.5), 2.0);
        assert_eq!(a.to_string(), "3.00 mm^2");
    }
}
