//! Typed errors for device construction.
//!
//! Device configurations validate against physical plausibility rules
//! (positive voltages, resistive windows > 1, …). `try_new` constructors
//! surface violations as a [`DeviceError`] naming the device model, so
//! higher layers (`hyve-core`, the `hyve` facade) can propagate one typed
//! error chain instead of bare strings or panics.

use std::error::Error;
use std::fmt;

/// A device configuration failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceError {
    /// Which device model rejected the configuration ("DRAM chip", …).
    pub device: &'static str,
    /// The validation rule that failed.
    pub message: String,
}

impl DeviceError {
    /// Builds an error for `device` from a validation message.
    pub fn invalid(device: &'static str, message: impl Into<String>) -> Self {
        DeviceError {
            device,
            message: message.into(),
        }
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} configuration: {}", self.device, self.message)
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_device() {
        let e = DeviceError::invalid("DRAM chip", "vdd must be positive");
        assert_eq!(
            e.to_string(),
            "invalid DRAM chip configuration: vdd must be positive"
        );
    }
}
