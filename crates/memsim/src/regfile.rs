//! Register-file model — GraphR's local vertex storage.
//!
//! §6.3 of the paper quotes the numbers used here verbatim: a 32-bit read
//! costs 11.976 ps and 1.227 pJ; a 32-bit write costs 10.563 ps and
//! 1.209 pJ. Register files are far faster and cheaper per access than
//! SRAM, but their tiny capacity forces GraphR to divide graphs into 8×8
//! blocks — which is what loses it the overall comparison (Fig. 11).

use crate::device::{DeviceKind, MemoryDevice};
use crate::units::{Energy, Power, Time};

/// A small register file of 32-bit entries.
///
/// ```
/// use hyve_memsim::{RegisterFile, MemoryDevice};
/// let rf = RegisterFile::new(16);
/// assert!((rf.read_energy(32).as_pj() - 1.227).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterFile {
    entries: u32,
}

impl RegisterFile {
    /// Word width of every entry.
    pub const WORD_BITS: u32 = 32;

    /// Creates a register file with the given number of 32-bit entries.
    ///
    /// GraphR uses 8 source + 8 destination registers per crossbar, so 16 is
    /// the natural size there.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: u32) -> Self {
        assert!(entries > 0, "register file must have at least one entry");
        RegisterFile { entries }
    }

    /// Number of entries.
    pub fn entries(&self) -> u32 {
        self.entries
    }
}

impl Default for RegisterFile {
    /// GraphR's 8 + 8 layout.
    fn default() -> Self {
        RegisterFile::new(16)
    }
}

impl MemoryDevice for RegisterFile {
    fn kind(&self) -> DeviceKind {
        DeviceKind::RegisterFile
    }

    fn capacity_bits(&self) -> u64 {
        u64::from(self.entries) * u64::from(Self::WORD_BITS)
    }

    fn read_energy(&self, bits: u64) -> Energy {
        let words = bits.div_ceil(u64::from(Self::WORD_BITS)).max(1);
        Energy::from_pj(1.227) * words as f64
    }

    fn write_energy(&self, bits: u64) -> Energy {
        let words = bits.div_ceil(u64::from(Self::WORD_BITS)).max(1);
        Energy::from_pj(1.209) * words as f64
    }

    fn read_latency(&self) -> Time {
        Time::from_ps(11.976)
    }

    fn write_latency(&self) -> Time {
        Time::from_ps(10.563)
    }

    fn output_bits(&self) -> u32 {
        Self::WORD_BITS
    }

    /// Flip-flop leakage, negligible at this size but nonzero.
    fn background_power(&self) -> Power {
        Power::from_uw(0.5 * f64::from(self.entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper() {
        let rf = RegisterFile::default();
        assert!((rf.read_energy(32).as_pj() - 1.227).abs() < 1e-12);
        assert!((rf.write_energy(32).as_pj() - 1.209).abs() < 1e-12);
        assert!((rf.read_latency().as_ps() - 11.976).abs() < 1e-12);
        assert!((rf.write_latency().as_ps() - 10.563).abs() < 1e-12);
    }

    #[test]
    fn faster_and_cheaper_than_sram_per_access() {
        use crate::sram::{SramArray, SramConfig};
        let rf = RegisterFile::default();
        let sram = SramArray::new(SramConfig::default());
        assert!(rf.read_energy(32) < sram.read_energy(32));
        assert!(rf.read_latency() < sram.read_latency());
    }

    #[test]
    fn default_is_graphr_layout() {
        assert_eq!(RegisterFile::default().entries(), 16);
        assert_eq!(RegisterFile::default().capacity_bits(), 16 * 32);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = RegisterFile::new(0);
    }

    #[test]
    fn multi_word_rounding() {
        let rf = RegisterFile::default();
        assert!((rf.read_energy(64).as_pj() - 2.0 * 1.227).abs() < 1e-12);
        assert!((rf.write_energy(40).as_pj() - 2.0 * 1.209).abs() < 1e-12);
    }
}
