//! ReRAM main-memory chip model (paper Fig. 3, Table 3, §3.1, §7.2).
//!
//! A chip is organised like a commodity DRAM part: several banks, each bank a
//! grid of M×N *mats* (crossbar arrays) behind local/global decoders. HyVE's
//! edge memory uses **sub-bank interleaving** (mats within one bank stream in
//! parallel) instead of bank interleaving, so at any time only one bank per
//! chip is active — the property that makes bank-level power gating effective.
//!
//! The per-access energy/latency anchors come straight from the paper's
//! Table 3 (NVSim outputs at 22 nm). Density scaling between 4 Gb and 16 Gb
//! chips follows NVSim's wire-dominated trends: dynamic energy grows mildly
//! with die size, leakage grows roughly with peripheral area.

use crate::cell::{CellBits, ReramCellParams};
use crate::device::{DeviceKind, MemoryDevice};
use crate::error::DeviceError;
use crate::units::{Energy, Power, Time};
use std::fmt;

/// NVSim optimization target for the bank layout (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizationTarget {
    /// Minimise energy per read operation (the configuration HyVE adopts).
    #[default]
    EnergyOptimized,
    /// Minimise the working period.
    LatencyOptimized,
}

impl fmt::Display for OptimizationTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizationTarget::EnergyOptimized => f.write_str("energy-optimized"),
            OptimizationTarget::LatencyOptimized => f.write_str("latency-optimized"),
        }
    }
}

/// One row of the paper's Table 3: a bank configuration's read energy,
/// period and derived power-per-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReramBankProfile {
    /// Output port width in bits.
    pub output_bits: u32,
    /// Energy of one read access.
    pub read_energy: Energy,
    /// Working period (one access every `period`).
    pub period: Time,
}

impl ReramBankProfile {
    /// Power per output bit, the figure of merit Table 3 ranks by.
    pub fn power_per_bit(&self) -> Power {
        (self.read_energy / self.period) / f64::from(self.output_bits)
    }

    /// Energy per bit read.
    pub fn energy_per_bit(&self) -> Energy {
        self.read_energy / f64::from(self.output_bits)
    }
}

/// The eight (target × width) rows of the paper's Table 3.
///
/// Energy-optimized banks pay a ~1.6–3× longer period for an order of
/// magnitude less energy per access; the 512-bit energy-optimized row is the
/// per-bit optimum and the configuration all later experiments use.
pub const TABLE3_PROFILES: [(OptimizationTarget, ReramBankProfile); 8] = {
    use OptimizationTarget::{EnergyOptimized, LatencyOptimized};
    macro_rules! row {
        ($t:expr, $bits:expr, $pj:expr, $ps:expr) => {
            (
                $t,
                ReramBankProfile {
                    output_bits: $bits,
                    read_energy: Energy::from_pj($pj),
                    period: Time::from_ps($ps),
                },
            )
        };
    }
    [
        row!(EnergyOptimized, 64, 20.13, 1221.0),
        row!(EnergyOptimized, 128, 33.87, 1983.0),
        row!(EnergyOptimized, 256, 57.31, 1983.0),
        row!(EnergyOptimized, 512, 102.07, 1983.0),
        row!(LatencyOptimized, 64, 381.47, 653.0),
        row!(LatencyOptimized, 128, 378.57, 590.0),
        row!(LatencyOptimized, 256, 382.37, 590.0),
        row!(LatencyOptimized, 512, 660.23, 527.0),
    ]
};

/// Looks up a Table 3 profile.
///
/// Returns `None` for widths not in the table (valid: 64, 128, 256, 512).
pub fn table3_profile(target: OptimizationTarget, output_bits: u32) -> Option<ReramBankProfile> {
    TABLE3_PROFILES
        .iter()
        .find(|(t, p)| *t == target && p.output_bits == output_bits)
        .map(|(_, p)| *p)
}

/// Configuration for a [`ReramChip`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReramChipConfig {
    /// Chip density in gigabits (paper sweeps 4, 8, 16).
    pub density_gbit: u32,
    /// Number of banks per chip.
    pub banks: u32,
    /// Mats per bank (M×N grid, flattened).
    pub mats_per_bank: u32,
    /// NVSim optimization target for the bank layout.
    pub target: OptimizationTarget,
    /// Output port width in bits (must be a Table 3 width).
    pub output_bits: u32,
    /// Cell parameters (bits per cell, set energy, ...).
    pub cell: ReramCellParams,
}

impl Default for ReramChipConfig {
    /// The configuration the paper settles on: SLC cells, energy-optimized
    /// bank with 512-bit output, 4 Gb chip with 8 banks of 64 mats.
    fn default() -> Self {
        ReramChipConfig {
            density_gbit: 4,
            banks: 8,
            mats_per_bank: 64,
            target: OptimizationTarget::EnergyOptimized,
            output_bits: 512,
            cell: ReramCellParams::default(),
        }
    }
}

impl ReramChipConfig {
    /// Convenience: default configuration at a given density.
    pub fn with_density(density_gbit: u32) -> Self {
        ReramChipConfig {
            density_gbit,
            ..Default::default()
        }
    }

    /// Convenience: default configuration with a given cell type.
    pub fn with_cell_bits(bits: CellBits) -> Self {
        ReramChipConfig {
            cell: ReramCellParams::with_bits(bits),
            ..Default::default()
        }
    }

    /// Checks that the configuration names a Table 3 profile and has sane
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns a message when the output width has no Table 3 row, when the
    /// geometry is degenerate (zero banks/mats/density) or the cell
    /// parameters are unphysical.
    pub fn validate(&self) -> Result<(), String> {
        if table3_profile(self.target, self.output_bits).is_none() {
            return Err(format!(
                "output width {} has no Table 3 profile (use 64/128/256/512)",
                self.output_bits
            ));
        }
        if self.banks == 0 || self.mats_per_bank == 0 {
            return Err("chip must have at least one bank and one mat".into());
        }
        if self.density_gbit == 0 {
            return Err("density must be positive".into());
        }
        self.cell.validate()
    }
}

/// A ReRAM main-memory chip.
///
/// Produced from a [`ReramChipConfig`]; implements [`MemoryDevice`].
///
/// ```
/// use hyve_memsim::{ReramChip, ReramChipConfig, MemoryDevice};
/// let chip = ReramChip::new(ReramChipConfig::default());
/// // One 512-bit access costs the Table 3 energy at 4 Gb density:
/// assert!((chip.read_energy(512).as_pj() - 102.07).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct ReramChip {
    config: ReramChipConfig,
    profile: ReramBankProfile,
    density_energy_factor: f64,
    leakage_per_bank: Power,
}

/// How dynamic energy scales with density relative to the 4 Gb anchor
/// (longer global wires; NVSim-style sub-linear growth).
fn density_energy_factor(density_gbit: u32) -> f64 {
    (f64::from(density_gbit) / 4.0).powf(0.20)
}

/// Peripheral leakage per bank. ReRAM cells themselves do not leak; only the
/// decoders/sense amps do, scaling with mat count and density.
fn bank_leakage(config: &ReramChipConfig) -> Power {
    let base = Power::from_mw(2.5); // 64-mat bank at 4 Gb, 22 nm
    let mat_factor = f64::from(config.mats_per_bank) / 64.0;
    let density = (f64::from(config.density_gbit) / 4.0).powf(0.5);
    base * mat_factor * density
}

impl ReramChip {
    /// Builds a chip from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`ReramChip::try_new`] for a fallible constructor.
    pub fn new(config: ReramChipConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Propagates [`ReramChipConfig::validate`] failures.
    pub fn try_new(config: ReramChipConfig) -> Result<Self, DeviceError> {
        config
            .validate()
            .map_err(|m| DeviceError::invalid("ReRAM chip", m))?;
        let profile = table3_profile(config.target, config.output_bits)
            .expect("validated config always has a profile");
        Ok(ReramChip {
            density_energy_factor: density_energy_factor(config.density_gbit),
            leakage_per_bank: bank_leakage(&config),
            config,
            profile,
        })
    }

    /// The chip's configuration.
    pub fn config(&self) -> &ReramChipConfig {
        &self.config
    }

    /// The active Table 3 bank profile (density-unscaled).
    pub fn profile(&self) -> ReramBankProfile {
        self.profile
    }

    /// Leakage power of a single powered-on bank.
    pub fn bank_leakage(&self) -> Power {
        self.leakage_per_bank
    }

    /// Number of banks on the chip.
    pub fn banks(&self) -> u32 {
        self.config.banks
    }

    /// Energy of one read access (one output-width burst), including the
    /// MLC sense-amplifier overhead amortised over the extra bits.
    pub fn access_read_energy(&self) -> Energy {
        let bits = self.config.cell.bits;
        // An N-bit cell delivers N bits per sensed cell, so an access of
        // `output_bits` data touches output_bits / N cells, but each sensing
        // is `sense_energy_factor` more expensive than SLC sensing.
        let per_access = self.profile.read_energy * self.density_energy_factor;
        per_access * (bits.sense_energy_factor() / f64::from(bits.bits()))
    }

    /// Streaming period: one output-width burst every bank working period.
    pub fn access_burst_period(&self) -> Time {
        self.profile.period * self.config.cell.bits.read_latency_factor()
    }

    /// First-access (row sensing) latency. Anchored to the 29.31 ns ReRAM
    /// read latency the paper quotes (§7.4.3); grows mildly with density
    /// and with multi-step MLC sensing.
    pub fn access_read_latency(&self) -> Time {
        Time::from_ns(29.31)
            * (f64::from(self.config.density_gbit) / 4.0).powf(0.1)
            * self.config.cell.bits.read_latency_factor()
    }

    /// Energy of writing one output-width burst: set-pulse energy per bit
    /// plus peripheral (decode/drive) energy comparable to a read access.
    pub fn access_write_energy(&self) -> Energy {
        let cell_energy =
            self.config.cell.write_energy_per_bit() * f64::from(self.config.output_bits);
        let peripheral = self.profile.read_energy * self.density_energy_factor;
        cell_energy + peripheral
    }

    /// Pulses per programmed cell including verify iterations. Main-memory
    /// writes use program-and-verify to hit the target resistance window,
    /// which is what makes chip-level ReRAM writes ~30 ns and the write-
    /// latency gap to DRAM so wide (§2.3).
    pub const PROGRAM_VERIFY_ROUNDS: f64 = 3.2;

    /// Latency of one write access — set pulses with program-and-verify
    /// dominate; mats within the access write in parallel.
    pub fn access_write_latency(&self) -> Time {
        self.config.cell.set_pulse
            * Self::PROGRAM_VERIFY_ROUNDS
            * self.config.cell.bits.write_energy_factor()
            + self.profile.period
    }
}

impl MemoryDevice for ReramChip {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Reram
    }

    fn capacity_bits(&self) -> u64 {
        u64::from(self.config.density_gbit) << 30
    }

    fn read_energy(&self, bits: u64) -> Energy {
        let accesses = bits.div_ceil(u64::from(self.config.output_bits)).max(1);
        self.access_read_energy() * accesses as f64
    }

    /// Cell (set-pulse) energy scales with the bits actually written and
    /// with the program-and-verify rounds (every verify pulse costs energy,
    /// §2.3); peripheral energy is charged once per touched access window.
    fn write_energy(&self, bits: u64) -> Energy {
        let accesses = bits.div_ceil(u64::from(self.config.output_bits)).max(1);
        let cell = self.config.cell.write_energy_per_bit()
            * Self::PROGRAM_VERIFY_ROUNDS
            * bits.max(1) as f64;
        let peripheral = self.profile.read_energy * self.density_energy_factor * accesses as f64;
        cell + peripheral
    }

    fn read_latency(&self) -> Time {
        self.access_read_latency()
    }

    fn write_latency(&self) -> Time {
        self.access_write_latency()
    }

    fn output_bits(&self) -> u32 {
        self.config.output_bits
    }

    fn burst_period(&self) -> Time {
        self.access_burst_period()
    }

    /// All banks powered (no power gating); the gating controller in
    /// [`crate::power_gating`] reduces this to ~1 active bank.
    fn background_power(&self) -> Power {
        self.leakage_per_bank * f64::from(self.config.banks)
    }

    /// ReRAM reads are non-destructive; a random access only repays the
    /// decode path, roughly doubling cost versus a streaming hit.
    fn random_access_penalty(&self) -> f64 {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rows_match_paper_power_per_bit() {
        // The paper's printed mW/bit column, in table order.
        let expected = [0.26, 0.13, 0.11, 0.10, 9.13, 5.01, 2.53, 2.45];
        for ((_, profile), want) in TABLE3_PROFILES.iter().zip(expected) {
            let got = profile.power_per_bit().as_mw();
            assert!(
                (got - want).abs() / want < 0.05,
                "power/bit for {}b: got {got:.3}, paper says {want}",
                profile.output_bits
            );
        }
    }

    #[test]
    fn energy_optimized_512_is_per_bit_optimum() {
        let best = table3_profile(OptimizationTarget::EnergyOptimized, 512).unwrap();
        for (_, p) in TABLE3_PROFILES.iter() {
            assert!(best.power_per_bit() <= p.power_per_bit() * 1.0001);
        }
    }

    #[test]
    fn lookup_unknown_width_is_none() {
        assert!(table3_profile(OptimizationTarget::EnergyOptimized, 96).is_none());
    }

    #[test]
    fn default_chip_reads_at_table3_anchor() {
        let chip = ReramChip::new(ReramChipConfig::default());
        assert!((chip.read_energy(512).as_pj() - 102.07).abs() < 1e-6);
        assert!((chip.burst_period().as_ps() - 1983.0).abs() < 1e-6);
        assert!((chip.read_latency().as_ns() - 29.31).abs() < 1e-6);
        // Two accesses for 513 bits:
        assert!((chip.read_energy(513).as_pj() - 2.0 * 102.07).abs() < 1e-6);
    }

    #[test]
    fn streaming_amortises_first_access() {
        let chip = ReramChip::new(ReramChipConfig::default());
        // Streaming 1 Mbit: 2048 accesses, dominated by the burst period.
        let t = chip.sequential_read_time(1 << 20);
        let lower = chip.burst_period() * 2047.0;
        assert!(t > lower && t < lower + chip.read_latency() + Time::from_ns(0.001));
    }

    #[test]
    fn density_scaling_monotonic() {
        let e4 = ReramChip::new(ReramChipConfig::with_density(4));
        let e8 = ReramChip::new(ReramChipConfig::with_density(8));
        let e16 = ReramChip::new(ReramChipConfig::with_density(16));
        assert!(e4.read_energy(512) < e8.read_energy(512));
        assert!(e8.read_energy(512) < e16.read_energy(512));
        assert!(e4.background_power() < e16.background_power());
        assert_eq!(e16.capacity_bits(), 16 << 30);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let chip = ReramChip::new(ReramChipConfig::default());
        assert!(chip.write_energy(512) > chip.read_energy(512));
        // Set pulse dominates: write latency ~12 ns vs ~2 ns streaming period.
        assert!(chip.write_latency().as_ns() > 5.0 * chip.burst_period().as_ns());
    }

    #[test]
    fn mlc_reads_cost_more_per_access() {
        let slc = ReramChip::new(ReramChipConfig::with_cell_bits(CellBits::Slc));
        let mlc2 = ReramChip::new(ReramChipConfig::with_cell_bits(CellBits::Mlc2));
        let mlc3 = ReramChip::new(ReramChipConfig::with_cell_bits(CellBits::Mlc3));
        assert!(slc.read_energy(512) < mlc2.read_energy(512));
        assert!(mlc2.read_energy(512) < mlc3.read_energy(512));
        assert!(slc.read_latency() < mlc3.read_latency());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = ReramChipConfig {
            output_bits: 100,
            ..Default::default()
        };
        assert!(ReramChip::try_new(c).is_err());

        let c = ReramChipConfig {
            banks: 0,
            ..Default::default()
        };
        assert!(ReramChip::try_new(c).is_err());

        let c = ReramChipConfig {
            density_gbit: 0,
            ..Default::default()
        };
        assert!(ReramChip::try_new(c).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid ReRAM chip configuration")]
    fn new_panics_on_invalid() {
        let c = ReramChipConfig {
            mats_per_bank: 0,
            ..Default::default()
        };
        let _ = ReramChip::new(c);
    }

    #[test]
    fn random_penalty_is_mild() {
        let chip = ReramChip::new(ReramChipConfig::default());
        assert_eq!(chip.random_access_penalty(), 2.0);
        assert!(
            (chip.random_read_energy(512).as_pj() - 2.0 * chip.read_energy(512).as_pj()).abs()
                < 1e-9
        );
    }

    #[test]
    fn background_power_counts_all_banks() {
        let chip = ReramChip::new(ReramChipConfig::default());
        let per_bank = chip.bank_leakage();
        assert!((chip.background_power().as_mw() - 8.0 * per_bank.as_mw()).abs() < 1e-9);
    }

    #[test]
    fn optimization_target_display() {
        assert_eq!(
            OptimizationTarget::EnergyOptimized.to_string(),
            "energy-optimized"
        );
    }
}
