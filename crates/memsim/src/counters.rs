//! Access accounting shared by the simulator's memory channels.

use crate::units::{Energy, Time};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Running totals of accesses, moved bits, dynamic energy and busy time for
/// one memory channel.
///
/// The HyVE engine keeps one `AccessStats` per hierarchy level (edge memory,
/// off-chip vertex memory, on-chip vertex memory, processing units) and sums
/// them into the paper's Fig. 17 energy breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccessStats {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Total bits read.
    pub bits_read: u64,
    /// Total bits written.
    pub bits_written: u64,
    /// Accumulated dynamic energy.
    pub dynamic_energy: Energy,
    /// Accumulated background (leakage/refresh) energy.
    pub background_energy: Energy,
    /// Accumulated device busy time.
    pub busy_time: Time,
}

impl AccessStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `bits` bits costing `energy` and `latency`.
    pub fn record_read(&mut self, bits: u64, energy: Energy, latency: Time) {
        self.reads += 1;
        self.bits_read += bits;
        self.dynamic_energy += energy;
        self.busy_time += latency;
    }

    /// Records a write of `bits` bits costing `energy` and `latency`.
    pub fn record_write(&mut self, bits: u64, energy: Energy, latency: Time) {
        self.writes += 1;
        self.bits_written += bits;
        self.dynamic_energy += energy;
        self.busy_time += latency;
    }

    /// Adds background energy accrued over some wall-clock interval.
    pub fn record_background(&mut self, energy: Energy) {
        self.background_energy += energy;
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bits moved in either direction.
    pub fn bits_moved(&self) -> u64 {
        self.bits_read + self.bits_written
    }

    /// Total energy: dynamic plus background.
    pub fn total_energy(&self) -> Energy {
        self.dynamic_energy + self.background_energy
    }

    /// A copy of the current totals. Observers pair this with [`Sub`] to
    /// compute per-interval deltas without disturbing the live counters.
    pub fn snapshot(&self) -> AccessStats {
        *self
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = AccessStats::default();
    }
}

impl Add for AccessStats {
    type Output = AccessStats;
    fn add(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            bits_read: self.bits_read + rhs.bits_read,
            bits_written: self.bits_written + rhs.bits_written,
            dynamic_energy: self.dynamic_energy + rhs.dynamic_energy,
            background_energy: self.background_energy + rhs.background_energy,
            busy_time: self.busy_time + rhs.busy_time,
        }
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: AccessStats) {
        *self = *self + rhs;
    }
}

impl Sub for AccessStats {
    type Output = AccessStats;

    /// Delta between two snapshots of the same monotone counter set.
    /// Count fields saturate at zero so a stale baseline never underflows.
    fn sub(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            reads: self.reads.saturating_sub(rhs.reads),
            writes: self.writes.saturating_sub(rhs.writes),
            bits_read: self.bits_read.saturating_sub(rhs.bits_read),
            bits_written: self.bits_written.saturating_sub(rhs.bits_written),
            dynamic_energy: self.dynamic_energy - rhs.dynamic_energy,
            background_energy: self.background_energy - rhs.background_energy,
            busy_time: self.busy_time - rhs.busy_time,
        }
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads / {} writes, {} bits moved, dyn {}, bg {}",
            self.reads,
            self.writes,
            self.bits_moved(),
            self.dynamic_energy,
            self.background_energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut s = AccessStats::new();
        s.record_read(64, Energy::from_pj(10.0), Time::from_ns(1.0));
        s.record_write(32, Energy::from_pj(20.0), Time::from_ns(2.0));
        s.record_background(Energy::from_pj(5.0));
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.accesses(), 2);
        assert_eq!(s.bits_read, 64);
        assert_eq!(s.bits_written, 32);
        assert_eq!(s.bits_moved(), 96);
        assert_eq!(s.dynamic_energy.as_pj(), 30.0);
        assert_eq!(s.total_energy().as_pj(), 35.0);
        assert_eq!(s.busy_time.as_ns(), 3.0);
    }

    #[test]
    fn addition_merges_channels() {
        let mut a = AccessStats::new();
        a.record_read(8, Energy::from_pj(1.0), Time::from_ns(1.0));
        let mut b = AccessStats::new();
        b.record_write(8, Energy::from_pj(2.0), Time::from_ns(1.0));
        let c = a + b;
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.dynamic_energy.as_pj(), 3.0);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn snapshot_and_delta() {
        let mut s = AccessStats::new();
        s.record_read(64, Energy::from_pj(10.0), Time::from_ns(1.0));
        let base = s.snapshot();
        s.record_write(32, Energy::from_pj(20.0), Time::from_ns(2.0));
        let delta = s - base;
        assert_eq!(delta.reads, 0);
        assert_eq!(delta.writes, 1);
        assert_eq!(delta.bits_written, 32);
        assert_eq!(delta.dynamic_energy.as_pj(), 20.0);
        assert_eq!(delta.busy_time.as_ns(), 2.0);
        // Counts saturate rather than underflow on a stale baseline.
        let inverted = base - s;
        assert_eq!(inverted.writes, 0);
        s.reset();
        assert_eq!(s, AccessStats::default());
    }

    #[test]
    fn display_is_nonempty() {
        let s = AccessStats::new();
        assert!(!s.to_string().is_empty());
    }
}
