//! On-chip SRAM model, anchored to the paper's NVSim/CACTI outputs.
//!
//! §6.3 quotes the 2 MB array the vertex memory sweet-spot analysis uses:
//! a 32-bit read costs 960.03 ps and 23.84 pJ, a 32-bit write 557.089 ps and
//! 24.74 pJ. §4.2 adds clock periods of 1.071 ns (2 MB) and 1.808 ns (4 MB),
//! which fixes the latency-vs-capacity exponent (~0.75). Leakage grows
//! linearly with capacity — the mechanism behind Table 4's "bigger SRAM is
//! not better" result.

use crate::cell::SramCellParams;
use crate::device::{DeviceKind, MemoryDevice};
use crate::error::DeviceError;
use crate::units::{Energy, Power, Time};

/// Anchor capacity all scaling laws are normalised to (2 MB).
const ANCHOR_BYTES: u64 = 2 * 1024 * 1024;

/// Configuration of an [`SramArray`].
#[derive(Debug, Clone, PartialEq)]
pub struct SramConfig {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Word width of one access in bits.
    pub word_bits: u32,
    /// Cell geometry (affects leakage via area).
    pub cell: SramCellParams,
    /// Leakage power per megabyte at 22 nm.
    pub leakage_per_mb: Power,
}

impl Default for SramConfig {
    fn default() -> Self {
        SramConfig {
            capacity_bytes: ANCHOR_BYTES,
            word_bits: 32,
            cell: SramCellParams::default(),
            leakage_per_mb: Power::from_mw(15.0),
        }
    }
}

impl SramConfig {
    /// Default configuration with the given capacity in megabytes.
    pub fn with_capacity_mb(mb: u64) -> Self {
        SramConfig {
            capacity_bytes: mb * 1024 * 1024,
            ..Default::default()
        }
    }

    /// Checks plausibility.
    ///
    /// # Errors
    ///
    /// Returns a message for zero capacity or word width.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 {
            return Err("capacity must be positive".into());
        }
        if self.word_bits == 0 {
            return Err("word width must be positive".into());
        }
        if !self.leakage_per_mb.is_valid() {
            return Err("leakage must be a finite non-negative power".into());
        }
        Ok(())
    }
}

/// An on-chip SRAM array (HyVE's local vertex memory).
///
/// ```
/// use hyve_memsim::{SramArray, SramConfig, MemoryDevice};
/// let sram = SramArray::new(SramConfig::default());
/// // The paper's 2 MB anchor: 23.84 pJ / 960.03 ps per 32-bit read.
/// assert!((sram.read_energy(32).as_pj() - 23.84).abs() < 1e-9);
/// assert!((sram.read_latency().as_ps() - 960.03).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct SramArray {
    config: SramConfig,
    /// (capacity / 2 MB) ratio used by all scaling laws.
    cap_ratio: f64,
}

impl SramArray {
    /// Builds an array from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`SramArray::try_new`].
    pub fn new(config: SramConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Propagates [`SramConfig::validate`] failures.
    pub fn try_new(config: SramConfig) -> Result<Self, DeviceError> {
        config
            .validate()
            .map_err(|m| DeviceError::invalid("SRAM array", m))?;
        Ok(SramArray {
            cap_ratio: config.capacity_bytes as f64 / ANCHOR_BYTES as f64,
            config,
        })
    }

    /// The array's configuration.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// Capacity in megabytes.
    pub fn capacity_mb(&self) -> f64 {
        self.config.capacity_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Energy of one word read (anchored at 23.84 pJ for 2 MB, growing as
    /// capacity^0.45 with longer bit/word lines).
    pub fn word_read_energy(&self) -> Energy {
        Energy::from_pj(23.84) * self.cap_ratio.powf(0.45)
    }

    /// Energy of one word write (anchored at 24.74 pJ for 2 MB).
    pub fn word_write_energy(&self) -> Energy {
        Energy::from_pj(24.74) * self.cap_ratio.powf(0.45)
    }

    /// Latency of one word read (anchored at 960.03 ps for 2 MB; the
    /// 1.071 ns → 1.808 ns clock growth from 2 MB to 4 MB fixes the 0.75
    /// exponent).
    pub fn word_read_latency(&self) -> Time {
        Time::from_ps(960.03) * self.cap_ratio.powf(0.75)
    }

    /// Latency of one word write (anchored at 557.089 ps for 2 MB).
    pub fn word_write_latency(&self) -> Time {
        Time::from_ps(557.089) * self.cap_ratio.powf(0.75)
    }

    /// Width of a full internal row, the granularity bulk DMA transfers
    /// (interval loads/stores) use.
    pub const ROW_BITS: u64 = 512;

    /// Energy of reading one full 512-bit row. Row accesses amortise the
    /// word-line/decoder energy: one row costs ~4 word accesses rather
    /// than 16, so bulk transfers are ~4× cheaper per bit than word traffic.
    pub fn row_read_energy(&self) -> Energy {
        self.word_read_energy() * 4.0
    }

    /// Energy of writing one full 512-bit row (see
    /// [`row_read_energy`](Self::row_read_energy)).
    pub fn row_write_energy(&self) -> Energy {
        self.word_write_energy() * 4.0
    }

    /// Energy of a bulk transfer of `bits` bits into the array.
    pub fn bulk_write_energy(&self, bits: u64) -> Energy {
        self.row_write_energy() * bits.div_ceil(Self::ROW_BITS).max(1) as f64
    }

    /// Energy of a bulk transfer of `bits` bits out of the array.
    pub fn bulk_read_energy(&self, bits: u64) -> Energy {
        self.row_read_energy() * bits.div_ceil(Self::ROW_BITS).max(1) as f64
    }

    /// Time to stream `bits` bits in or out at row granularity.
    pub fn bulk_transfer_time(&self, bits: u64) -> Time {
        self.word_write_latency() * bits.div_ceil(Self::ROW_BITS).max(1) as f64
    }
}

impl MemoryDevice for SramArray {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Sram
    }

    fn capacity_bits(&self) -> u64 {
        self.config.capacity_bytes * 8
    }

    fn read_energy(&self, bits: u64) -> Energy {
        let words = bits.div_ceil(u64::from(self.config.word_bits)).max(1);
        self.word_read_energy() * words as f64
    }

    fn write_energy(&self, bits: u64) -> Energy {
        let words = bits.div_ceil(u64::from(self.config.word_bits)).max(1);
        self.word_write_energy() * words as f64
    }

    fn read_latency(&self) -> Time {
        self.word_read_latency()
    }

    fn write_latency(&self) -> Time {
        self.word_write_latency()
    }

    fn output_bits(&self) -> u32 {
        self.config.word_bits
    }

    fn background_power(&self) -> Power {
        self.config.leakage_per_mb * self.capacity_mb()
    }

    /// SRAM serves random words at full speed — the property the whole
    /// HyVE vertex hierarchy is built around.
    fn random_access_penalty(&self) -> f64 {
        1.0
    }

    fn word_read_latency(&self) -> Time {
        SramArray::word_read_latency(self)
    }

    fn word_write_latency(&self) -> Time {
        SramArray::word_write_latency(self)
    }

    /// Bulk transfers move full 512-bit rows (see
    /// [`SramArray::row_write_energy`]), ~4× cheaper per bit than word
    /// traffic — this override is what lets the engine drive the on-chip
    /// tier through the [`MemoryDevice`] interface alone.
    fn bulk_write_energy(&self, bits: u64) -> Energy {
        SramArray::bulk_write_energy(self, bits)
    }

    fn bulk_read_energy(&self, bits: u64) -> Energy {
        SramArray::bulk_read_energy(self, bits)
    }

    fn bulk_transfer_time(&self, bits: u64) -> Time {
        SramArray::bulk_transfer_time(self, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_matches_paper() {
        let s = SramArray::new(SramConfig::default());
        assert!((s.word_read_energy().as_pj() - 23.84).abs() < 1e-9);
        assert!((s.word_write_energy().as_pj() - 24.74).abs() < 1e-9);
        assert!((s.word_read_latency().as_ps() - 960.03).abs() < 1e-6);
        assert!((s.word_write_latency().as_ps() - 557.089).abs() < 1e-6);
    }

    #[test]
    fn latency_scaling_reproduces_4mb_clock_growth() {
        // §4.2: 1.071 ns (2 MB) vs 1.808 ns (4 MB) ⇒ ratio ≈ 1.69 ≈ 2^0.75.
        let s2 = SramArray::new(SramConfig::with_capacity_mb(2));
        let s4 = SramArray::new(SramConfig::with_capacity_mb(4));
        let ratio = s4.word_read_latency() / s2.word_read_latency();
        assert!((ratio - 1.69).abs() < 0.05, "got ratio {ratio}");
    }

    #[test]
    fn leakage_linear_in_capacity() {
        let s2 = SramArray::new(SramConfig::with_capacity_mb(2));
        let s16 = SramArray::new(SramConfig::with_capacity_mb(16));
        let ratio = s16.background_power().as_mw() / s2.background_power().as_mw();
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn multi_word_access_energy() {
        let s = SramArray::new(SramConfig::default());
        // A 64-bit edge-sized read is two words.
        assert!((s.read_energy(64).as_pj() - 2.0 * 23.84).abs() < 1e-9);
        // Partial word rounds up.
        assert!((s.read_energy(33).as_pj() - 2.0 * 23.84).abs() < 1e-9);
    }

    #[test]
    fn random_equals_sequential() {
        let s = SramArray::new(SramConfig::default());
        assert_eq!(s.random_read_energy(32), s.read_energy(32));
        assert_eq!(s.random_access_penalty(), 1.0);
    }

    #[test]
    fn trait_surface_matches_inherent_bulk_methods() {
        let s = SramArray::new(SramConfig::default());
        let d: &dyn MemoryDevice = &s;
        assert_eq!(d.word_read_latency(), s.word_read_latency());
        assert_eq!(d.word_write_latency(), s.word_write_latency());
        assert_eq!(d.bulk_read_energy(4096), s.bulk_read_energy(4096));
        assert_eq!(d.bulk_write_energy(4096), s.bulk_write_energy(4096));
        assert_eq!(d.bulk_transfer_time(4096), s.bulk_transfer_time(4096));
        // And the row amortisation really differs from word traffic.
        assert!(d.bulk_read_energy(4096) < d.read_energy(4096));
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = SramConfig {
            capacity_bytes: 0,
            ..Default::default()
        };
        assert!(SramArray::try_new(c).is_err());
        let c = SramConfig {
            word_bits: 0,
            ..Default::default()
        };
        assert!(SramArray::try_new(c).is_err());
    }

    #[test]
    fn capacity_reporting() {
        let s = SramArray::new(SramConfig::with_capacity_mb(8));
        assert_eq!(s.capacity_bits(), 8 * 1024 * 1024 * 8);
        assert!((s.capacity_mb() - 8.0).abs() < 1e-12);
    }
}
