//! DDR4 DRAM chip model (the paper used the Micron system power calculator,
//! default DDR4 configuration, speed grade -093 ⇒ DDR4-2133, tCK = 0.937 ns).
//!
//! The model follows the standard IDD-current methodology: dynamic energy of
//! a burst is the current delta over active-standby times VDD times burst
//! time; background power is active-standby plus amortised refresh. Random
//! accesses additionally pay a row activate/precharge cycle, which is the
//! physical reason the paper routes random vertex traffic to SRAM instead.

use crate::device::{DeviceKind, MemoryDevice};
use crate::error::DeviceError;
use crate::units::{Energy, Power, Time};

/// DDR4 timing parameters (defaults: DDR4-2133, -093 speed grade).
#[derive(Debug, Clone, PartialEq)]
pub struct DramTimings {
    /// Clock period.
    pub t_ck: Time,
    /// Row cycle time (activate-to-activate, same bank).
    pub t_rc: Time,
    /// Row active time.
    pub t_ras: Time,
    /// CAS latency (first data out after read command).
    pub t_cas: Time,
    /// Refresh cycle time.
    pub t_rfc: Time,
    /// Average refresh interval.
    pub t_refi: Time,
}

impl Default for DramTimings {
    fn default() -> Self {
        DramTimings {
            t_ck: Time::from_ps(937.0),
            t_rc: Time::from_ns(46.16),
            t_ras: Time::from_ns(33.0),
            t_cas: Time::from_ns(14.06),
            t_rfc: Time::from_ns(260.0),
            t_refi: Time::from_us(7.8),
        }
    }
}

/// Configuration of a [`DramChip`].
#[derive(Debug, Clone, PartialEq)]
pub struct DramChipConfig {
    /// Chip density in gigabits (paper sweeps 4, 8, 16).
    pub density_gbit: u32,
    /// Interface width per access in bits (matched to the ReRAM output
    /// width for the paper's like-for-like comparison).
    pub output_bits: u32,
    /// Row (page) size in bits; one activate serves this much sequential data.
    pub row_bits: u32,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Activate current IDD0 (mA).
    pub idd0_ma: f64,
    /// Precharge-standby current IDD2N (mA).
    pub idd2n_ma: f64,
    /// Active-standby current IDD3N (mA).
    pub idd3n_ma: f64,
    /// Read-burst current IDD4R (mA).
    pub idd4r_ma: f64,
    /// Write-burst current IDD4W (mA).
    pub idd4w_ma: f64,
    /// Refresh-burst current IDD5B (mA).
    pub idd5b_ma: f64,
    /// Timing parameters.
    pub timings: DramTimings,
}

impl Default for DramChipConfig {
    fn default() -> Self {
        DramChipConfig {
            density_gbit: 4,
            output_bits: 512,
            row_bits: 8 * 1024 * 8, // 8 KB row
            vdd: 1.2,
            idd0_ma: 48.0,
            idd2n_ma: 34.0,
            idd3n_ma: 44.0,
            idd4r_ma: 140.0,
            idd4w_ma: 130.0,
            idd5b_ma: 250.0,
            timings: DramTimings::default(),
        }
    }
}

impl DramChipConfig {
    /// Default configuration at a given density.
    pub fn with_density(density_gbit: u32) -> Self {
        DramChipConfig {
            density_gbit,
            ..Default::default()
        }
    }

    /// Checks plausibility of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a message when densities/widths are zero, currents are
    /// non-positive, or burst currents do not exceed standby currents.
    pub fn validate(&self) -> Result<(), String> {
        if self.density_gbit == 0 {
            return Err("density must be positive".into());
        }
        if self.output_bits == 0 || self.row_bits < self.output_bits {
            return Err("row must hold at least one access".into());
        }
        if self.vdd <= 0.0 {
            return Err("vdd must be positive".into());
        }
        if self.idd4r_ma <= self.idd3n_ma || self.idd4w_ma <= self.idd3n_ma {
            return Err("burst currents must exceed active standby".into());
        }
        if self.idd0_ma <= 0.0 || self.idd2n_ma <= 0.0 || self.idd5b_ma <= 0.0 {
            return Err("currents must be positive".into());
        }
        Ok(())
    }
}

/// A DDR4-style DRAM chip.
///
/// ```
/// use hyve_memsim::{DramChip, DramChipConfig, MemoryDevice};
/// let chip = DramChip::new(DramChipConfig::default());
/// // Sequential reads are cheap; random reads repay the activate cycle.
/// assert!(chip.random_read_energy(512) > chip.read_energy(512));
/// ```
#[derive(Debug, Clone)]
pub struct DramChip {
    config: DramChipConfig,
    density_factor: f64,
}

impl DramChip {
    /// Builds a chip from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`DramChip::try_new`].
    pub fn new(config: DramChipConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Propagates [`DramChipConfig::validate`] failures.
    pub fn try_new(config: DramChipConfig) -> Result<Self, DeviceError> {
        config
            .validate()
            .map_err(|m| DeviceError::invalid("DRAM chip", m))?;
        Ok(DramChip {
            density_factor: f64::from(config.density_gbit) / 4.0,
            config,
        })
    }

    /// The chip's configuration.
    pub fn config(&self) -> &DramChipConfig {
        &self.config
    }

    /// Time occupied on the bus by one output-width burst.
    pub fn burst_time(&self) -> Time {
        // DDR: two beats per clock on a 128-bit internal prefetch path.
        let beats = f64::from(self.config.output_bits) / 128.0;
        self.config.timings.t_ck * (beats / 2.0).max(1.0)
    }

    /// Energy of one row activate + precharge cycle.
    pub fn activate_energy(&self) -> Energy {
        let t = &self.config.timings;
        let charge_ma_ns = self.config.idd0_ma * t.t_rc.as_ns()
            - (self.config.idd3n_ma * t.t_ras.as_ns()
                + self.config.idd2n_ma * (t.t_rc - t.t_ras).as_ns());
        Energy::from_pj(charge_ma_ns * self.config.vdd) * self.density_factor.powf(0.3)
    }

    /// Dynamic energy of one sequential read burst (row already open),
    /// including the activate energy amortised over a full row of bursts.
    pub fn burst_read_energy(&self) -> Energy {
        let delta = self.config.idd4r_ma - self.config.idd3n_ma;
        let burst = Energy::from_pj(delta * self.config.vdd * self.burst_time().as_ns());
        let bursts_per_row = f64::from(self.config.row_bits) / f64::from(self.config.output_bits);
        burst * self.density_factor.powf(0.15) + self.activate_energy() / bursts_per_row
    }

    /// Dynamic energy of one sequential write burst.
    pub fn burst_write_energy(&self) -> Energy {
        let delta = self.config.idd4w_ma - self.config.idd3n_ma;
        let burst = Energy::from_pj(delta * self.config.vdd * self.burst_time().as_ns());
        let bursts_per_row = f64::from(self.config.row_bits) / f64::from(self.config.output_bits);
        burst * self.density_factor.powf(0.15) + self.activate_energy() / bursts_per_row
    }

    /// Average refresh power: one tRFC burst every tREFI.
    pub fn refresh_power(&self) -> Power {
        let t = &self.config.timings;
        let duty = t.t_rfc / t.t_refi;
        Power::from_mw(self.config.idd5b_ma * self.config.vdd * duty) * self.density_factor
    }

    /// Standby (non-refresh) background power.
    pub fn standby_power(&self) -> Power {
        Power::from_mw(self.config.idd3n_ma * self.config.vdd) * self.density_factor.powf(0.5)
    }
}

impl MemoryDevice for DramChip {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Dram
    }

    fn capacity_bits(&self) -> u64 {
        u64::from(self.config.density_gbit) << 30
    }

    fn read_energy(&self, bits: u64) -> Energy {
        let accesses = bits.div_ceil(u64::from(self.config.output_bits)).max(1);
        self.burst_read_energy() * accesses as f64
    }

    fn write_energy(&self, bits: u64) -> Energy {
        let accesses = bits.div_ceil(u64::from(self.config.output_bits)).max(1);
        self.burst_write_energy() * accesses as f64
    }

    fn read_latency(&self) -> Time {
        self.config.timings.t_cas + self.burst_time()
    }

    fn write_latency(&self) -> Time {
        self.config.timings.t_cas + self.burst_time()
    }

    fn burst_period(&self) -> Time {
        self.burst_time()
    }

    /// Writes into an open row pipeline at burst rate — DRAM's high write
    /// bandwidth is the reason HyVE chooses it for vertex write-backs.
    fn sequential_write_period(&self) -> Time {
        self.burst_time()
    }

    fn output_bits(&self) -> u32 {
        self.config.output_bits
    }

    fn background_power(&self) -> Power {
        self.standby_power() + self.refresh_power()
    }

    /// A random access pays a full activate/precharge: large energy *and*
    /// latency penalty — the reason HyVE never random-accesses DRAM.
    fn random_access_penalty(&self) -> f64 {
        let seq = self.burst_read_energy();
        let random = self.burst_read_energy() + self.activate_energy();
        random / seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_energy_in_expected_range() {
        let chip = DramChip::new(DramChipConfig::default());
        let e = chip.burst_read_energy().as_pj();
        // (140-44) mA * 1.2 V * ~1.87 ns ≈ 216 pJ plus amortised activate.
        assert!(e > 150.0 && e < 400.0, "got {e} pJ");
        let w = chip.burst_write_energy().as_pj();
        assert!(w > 120.0 && w < 350.0, "got {w} pJ");
        assert!(w < e, "IDD4W < IDD4R means writes slightly cheaper");
    }

    #[test]
    fn sequential_read_beats_reram_on_latency_only() {
        use crate::reram::{ReramChip, ReramChipConfig};
        let dram = DramChip::new(DramChipConfig::default());
        let reram = ReramChip::new(ReramChipConfig::default());
        // Paper Fig. 9: DRAM lower delay, ReRAM lower energy.
        assert!(dram.read_latency() < reram.read_latency());
        assert!(dram.read_energy(512) > reram.read_energy(512));
    }

    #[test]
    fn refresh_power_scales_with_density() {
        let d4 = DramChip::new(DramChipConfig::with_density(4));
        let d16 = DramChip::new(DramChipConfig::with_density(16));
        assert!(d16.refresh_power().as_mw() > 3.9 * d4.refresh_power().as_mw());
        assert!(d16.background_power() > d4.background_power());
    }

    #[test]
    fn random_penalty_is_substantial() {
        let chip = DramChip::new(DramChipConfig::default());
        assert!(chip.random_access_penalty() > 1.5);
        assert!(
            chip.random_read_energy(512).as_pj()
                > chip.read_energy(512).as_pj() + chip.activate_energy().as_pj() * 0.9
        );
    }

    #[test]
    fn activate_energy_positive_and_sane() {
        let chip = DramChip::new(DramChipConfig::default());
        let e = chip.activate_energy().as_pj();
        assert!(e > 100.0 && e < 1500.0, "got {e} pJ");
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = DramChipConfig {
            idd4r_ma: 10.0,
            ..Default::default()
        }; // below standby
        assert!(DramChip::try_new(c).is_err());

        let c = DramChipConfig {
            row_bits: 256,
            ..Default::default()
        }; // smaller than access
        assert!(DramChip::try_new(c).is_err());

        let c = DramChipConfig {
            density_gbit: 0,
            ..Default::default()
        };
        assert!(DramChip::try_new(c).is_err());
    }

    #[test]
    fn capacity_matches_density() {
        let chip = DramChip::new(DramChipConfig::with_density(8));
        assert_eq!(chip.capacity_bits(), 8u64 << 30);
    }

    #[test]
    fn burst_time_for_512_bits() {
        let chip = DramChip::new(DramChipConfig::default());
        // 512 bits / 128-bit prefetch = 4 beats = 2 clocks ≈ 1.874 ns
        let t = chip.burst_time().as_ns();
        assert!((t - 1.874).abs() < 0.01, "got {t} ns");
    }
}
