//! Access-trace replay: cost an explicit stream of memory operations
//! against any device model.
//!
//! The HyVE engine computes costs analytically from operation *counts*; this
//! module provides the complementary microscopic view — replay a concrete
//! [`AccessTrace`] through a [`MemoryDevice`] and accumulate energy, time
//! and (optionally) bank-gating state. The two views must agree on aggregate
//! streams, which the tests check; downstream users get a tool for costing
//! arbitrary access patterns the engine doesn't generate.

use crate::counters::AccessStats;
use crate::device::MemoryDevice;
use crate::power_gating::{GatingTracker, PowerGatingConfig};
use crate::units::{Energy, Power, Time};

/// One memory operation in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Sequential read of `bits` (row-buffer / stream friendly).
    Read {
        /// Bits transferred.
        bits: u64,
    },
    /// Sequential write of `bits`.
    Write {
        /// Bits transferred.
        bits: u64,
    },
    /// Random read of `bits` (pays the device's random penalty).
    RandomRead {
        /// Bits transferred.
        bits: u64,
    },
    /// Random write of `bits`.
    RandomWrite {
        /// Bits transferred.
        bits: u64,
    },
    /// Idle gap of the given duration (accrues background energy only).
    Idle {
        /// Gap length.
        duration: Time,
    },
}

/// A sequence of operations, replayable against any device.
///
/// ```
/// use hyve_memsim::trace::{AccessTrace, Op};
/// use hyve_memsim::{ReramChip, ReramChipConfig, Time};
///
/// let mut trace = AccessTrace::new();
/// trace.push(Op::Read { bits: 512 });
/// trace.push(Op::Idle { duration: Time::from_us(1.0) });
/// trace.push(Op::Write { bits: 512 });
/// let chip = ReramChip::new(ReramChipConfig::default());
/// let replay = trace.replay(&chip);
/// assert_eq!(replay.stats.reads, 1);
/// assert_eq!(replay.stats.writes, 1);
/// assert!(replay.elapsed > Time::from_us(1.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessTrace {
    ops: Vec<Op>,
}

/// Result of replaying a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replay {
    /// Access counters with dynamic + background energy filled in.
    pub stats: AccessStats,
    /// Total elapsed time.
    pub elapsed: Time,
}

impl Replay {
    /// Total energy (dynamic + background).
    pub fn energy(&self) -> Energy {
        self.stats.total_energy()
    }

    /// Average power over the replay.
    pub fn avg_power(&self) -> Power {
        if self.elapsed == Time::ZERO {
            Power::ZERO
        } else {
            self.energy() / self.elapsed
        }
    }
}

impl AccessTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations as a slice.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Builds a pure sequential-read trace of `total_bits` in
    /// `bits_per_op`-sized operations — the edge-memory pattern.
    pub fn sequential_read(total_bits: u64, bits_per_op: u64) -> Self {
        assert!(bits_per_op > 0, "operation size must be positive");
        let mut trace = AccessTrace::new();
        let mut remaining = total_bits;
        while remaining > 0 {
            let bits = remaining.min(bits_per_op);
            trace.push(Op::Read { bits });
            remaining -= bits;
        }
        trace
    }

    /// Replays against a device, accumulating per-op costs and background
    /// energy over the total elapsed time.
    pub fn replay<D: MemoryDevice + ?Sized>(&self, device: &D) -> Replay {
        let mut stats = AccessStats::new();
        let mut elapsed = Time::ZERO;
        for op in &self.ops {
            match *op {
                Op::Read { bits } => {
                    let t = device.burst_period()
                        * bits.div_ceil(u64::from(device.output_bits())).max(1) as f64;
                    stats.record_read(bits, device.read_energy(bits), t);
                    elapsed += t;
                }
                Op::Write { bits } => {
                    let t = device.sequential_write_period()
                        * bits.div_ceil(u64::from(device.output_bits())).max(1) as f64;
                    stats.record_write(bits, device.write_energy(bits), t);
                    elapsed += t;
                }
                Op::RandomRead { bits } => {
                    let t = device.read_latency();
                    stats.record_read(bits, device.random_read_energy(bits), t);
                    elapsed += t;
                }
                Op::RandomWrite { bits } => {
                    let t = device.write_latency();
                    stats.record_write(bits, device.random_write_energy(bits), t);
                    elapsed += t;
                }
                Op::Idle { duration } => {
                    elapsed += duration;
                }
            }
        }
        stats.record_background(device.background_power() * elapsed);
        Replay { stats, elapsed }
    }

    /// Replays against a banked device with bank-level power gating: ops are
    /// spread sequentially over `banks` banks of `bank_bits` capacity, and
    /// background energy comes from the gating tracker instead of the
    /// always-on device figure.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `bank_bits` is zero.
    pub fn replay_gated<D: MemoryDevice + ?Sized>(
        &self,
        device: &D,
        banks: u32,
        bank_bits: u64,
        bank_leakage: Power,
        config: PowerGatingConfig,
    ) -> Replay {
        assert!(banks > 0 && bank_bits > 0, "degenerate bank layout");
        let mut stats = AccessStats::new();
        let mut tracker = GatingTracker::new(config, banks, bank_leakage);
        let mut elapsed = Time::ZERO;
        let mut offset_bits = 0u64;
        for op in &self.ops {
            match *op {
                Op::Read { bits } | Op::RandomRead { bits } => {
                    let bank = ((offset_bits / bank_bits) % u64::from(banks)) as u32;
                    tracker.access(bank, elapsed);
                    let t = device.burst_period()
                        * bits.div_ceil(u64::from(device.output_bits())).max(1) as f64;
                    stats.record_read(bits, device.read_energy(bits), t);
                    elapsed += t;
                    offset_bits += bits;
                }
                Op::Write { bits } | Op::RandomWrite { bits } => {
                    let bank = ((offset_bits / bank_bits) % u64::from(banks)) as u32;
                    tracker.access(bank, elapsed);
                    let t = device.sequential_write_period()
                        * bits.div_ceil(u64::from(device.output_bits())).max(1) as f64;
                    stats.record_write(bits, device.write_energy(bits), t);
                    elapsed += t;
                    offset_bits += bits;
                }
                Op::Idle { duration } => {
                    elapsed += duration;
                }
            }
        }
        let (background, _transitions) = tracker.finish(elapsed);
        stats.record_background(background);
        Replay { stats, elapsed }
    }
}

impl FromIterator<Op> for AccessTrace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        AccessTrace {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Op> for AccessTrace {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::{DramChip, DramChipConfig};
    use crate::reram::{ReramChip, ReramChipConfig};

    #[test]
    fn sequential_read_builder_covers_all_bits() {
        let t = AccessTrace::sequential_read(1300, 512);
        assert_eq!(t.len(), 3);
        let total: u64 = t
            .ops()
            .iter()
            .map(|op| match op {
                Op::Read { bits } => *bits,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 1300);
    }

    #[test]
    fn replay_matches_device_unit_costs() {
        let chip = ReramChip::new(ReramChipConfig::default());
        let mut t = AccessTrace::new();
        t.push(Op::Read { bits: 512 });
        t.push(Op::Read { bits: 512 });
        let r = t.replay(&chip);
        assert_eq!(r.stats.reads, 2);
        let expect_dyn = chip.read_energy(512) * 2.0;
        assert!((r.stats.dynamic_energy.as_pj() - expect_dyn.as_pj()).abs() < 1e-9);
        let expect_t = chip.burst_period() * 2.0;
        assert!((r.elapsed.as_ns() - expect_t.as_ns()).abs() < 1e-9);
    }

    #[test]
    fn idle_gaps_accrue_background_only() {
        let chip = DramChip::new(DramChipConfig::default());
        let mut t = AccessTrace::new();
        t.push(Op::Idle {
            duration: Time::from_us(10.0),
        });
        let r = t.replay(&chip);
        assert_eq!(r.stats.accesses(), 0);
        assert_eq!(r.stats.dynamic_energy, Energy::ZERO);
        let expect = chip.background_power() * Time::from_us(10.0);
        assert!((r.stats.background_energy.as_pj() - expect.as_pj()).abs() < 1e-6);
    }

    #[test]
    fn random_ops_cost_more_than_sequential() {
        let chip = DramChip::new(DramChipConfig::default());
        let mut seq = AccessTrace::new();
        seq.push(Op::Read { bits: 512 });
        let mut rnd = AccessTrace::new();
        rnd.push(Op::RandomRead { bits: 512 });
        assert!(rnd.replay(&chip).stats.dynamic_energy > seq.replay(&chip).stats.dynamic_energy);
        assert!(rnd.replay(&chip).elapsed > seq.replay(&chip).elapsed);
    }

    #[test]
    fn gated_replay_beats_ungated_on_sequential_streams() {
        let chip = ReramChip::new(ReramChipConfig::default());
        // A long stream with idle tails: gating pays off.
        let mut t = AccessTrace::sequential_read(1 << 20, 512);
        t.push(Op::Idle {
            duration: Time::from_ms(1.0),
        });
        let plain = t.replay(&chip);
        let gated = t.replay_gated(
            &chip,
            chip.banks(),
            chip.capacity_bits() / u64::from(chip.banks()),
            chip.bank_leakage(),
            PowerGatingConfig::default(),
        );
        assert!(gated.energy() < plain.energy());
        assert_eq!(gated.stats.reads, plain.stats.reads);
        assert_eq!(gated.elapsed, plain.elapsed);
    }

    #[test]
    fn replay_agrees_with_engine_style_aggregate() {
        // The analytic aggregate (accesses × unit cost) must equal the
        // microscopic replay for a uniform stream.
        let chip = ReramChip::new(ReramChipConfig::default());
        let bits = 1u64 << 16;
        let t = AccessTrace::sequential_read(bits, 512);
        let r = t.replay(&chip);
        let analytic_dyn = chip.read_energy(bits);
        assert!(
            (r.stats.dynamic_energy.as_pj() - analytic_dyn.as_pj()).abs() / analytic_dyn.as_pj()
                < 1e-9
        );
    }

    #[test]
    fn collect_and_extend() {
        let t: AccessTrace = (0..4).map(|_| Op::Read { bits: 64 }).collect();
        assert_eq!(t.len(), 4);
        let mut t2 = AccessTrace::new();
        t2.extend(t.ops().iter().copied());
        assert_eq!(t, t2);
        assert!(!t2.is_empty());
    }

    #[test]
    fn avg_power_is_energy_over_time() {
        let chip = DramChip::new(DramChipConfig::default());
        let t = AccessTrace::sequential_read(1 << 15, 512);
        let r = t.replay(&chip);
        let p = r.avg_power();
        assert!((p.as_mw() - (r.energy() / r.elapsed).as_mw()).abs() < 1e-9);
    }
}
