//! Deterministic fault-injection and ECC models.
//!
//! Real ReRAM has finite write endurance, retention drift and stuck-at
//! faults; DRAM rows miss refresh deadlines; SRAM takes particle strikes.
//! This module describes those failure processes as a *plan* — raw
//! bit-error rates per technology, an ECC profile, a retry budget, a wear
//! limit and a list of factory-stuck banks — that the simulator's
//! controller layer turns into deterministic correction/retry/remap
//! counts and their energy/latency costs.
//!
//! Everything here is seed-driven and free of ambient randomness: the same
//! [`FaultPlan`] applied to the same workload produces bit-identical
//! outcomes regardless of host, thread count or wall clock. The default
//! plan, [`FaultPlan::none()`], is inert ([`FaultPlan::is_active`] is
//! `false`) so that fault-free runs take exactly the pre-existing code
//! path.

use crate::units::{Energy, Time};

/// SplitMix64 pseudo-random generator.
///
/// Used for deterministic fractional rounding of expected fault counts and
/// for per-event retry draws. Hand-rolled so the library crates stay free
/// of RNG dependencies; SplitMix64 passes BigCrush and needs only a `u64`
/// of state.
///
/// ```
/// use hyve_memsim::FaultRng;
/// let mut a = FaultRng::new(7);
/// let mut b = FaultRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        FaultRng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `0..bound` (`bound == 0` yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Rounds an expected (fractional) event count to an integer
/// deterministically: the integer part always happens, the fractional part
/// becomes one extra event with the leftover probability.
///
/// ```
/// use hyve_memsim::{expected_count, FaultRng};
/// let mut rng = FaultRng::new(1);
/// assert_eq!(expected_count(3.0, &mut rng), 3);
/// let n = expected_count(2.5, &mut rng);
/// assert!(n == 2 || n == 3);
/// ```
pub fn expected_count(expected: f64, rng: &mut FaultRng) -> u64 {
    if !expected.is_finite() || expected <= 0.0 {
        return 0;
    }
    let whole = expected.floor();
    let frac = expected - whole;
    let bump = u64::from(rng.next_f64() < frac);
    if whole >= u64::MAX as f64 {
        u64::MAX
    } else {
        whole as u64 + bump
    }
}

/// An error-correcting-code profile protecting memory words.
///
/// Overheads follow the usual shape of on-die ECC datapaths: SECDED is a
/// shallow XOR tree (cheap decode, single-cycle correct, one-bit
/// correction), while the BCH-style profile trades a deeper, slower
/// decoder for three-bit correction — the profile MLC ReRAM needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EccProfile {
    /// No protection: errors go undetected and cost nothing.
    #[default]
    None,
    /// Single-error-correct, double-error-detect Hamming code.
    Secded,
    /// BCH-style triple-error-correcting code.
    Bch,
}

impl EccProfile {
    /// Bits of correction capability per word (`t`).
    pub fn correctable_bits(self) -> u32 {
        match self {
            EccProfile::None => 0,
            EccProfile::Secded => 1,
            EccProfile::Bch => 3,
        }
    }

    /// Check bits stored alongside a `word_bits`-bit word.
    ///
    /// SECDED uses the Hamming bound (`2^r ≥ k + r + 1`) plus one overall
    /// parity bit; the BCH profile uses the standard `t·⌈log2(k+1)⌉`
    /// estimate with `t = 3`.
    pub fn check_bits(self, word_bits: u32) -> u32 {
        match self {
            EccProfile::None => 0,
            EccProfile::Secded => {
                let mut r = 1u32;
                while (1u64 << r) < u64::from(word_bits) + u64::from(r) + 1 {
                    r += 1;
                }
                r + 1
            }
            EccProfile::Bch => {
                let m = 64 - u64::from(word_bits).leading_zeros();
                3 * m.max(1)
            }
        }
    }

    /// Storage overhead as a fraction of the data word (drives the
    /// background-power surcharge for the extra cells).
    pub fn storage_overhead(self, word_bits: u32) -> f64 {
        if word_bits == 0 {
            return 0.0;
        }
        f64::from(self.check_bits(word_bits)) / f64::from(word_bits)
    }

    /// Fractional latency added to every protected access by the in-line
    /// syndrome pipeline.
    pub fn latency_overhead(self) -> f64 {
        match self {
            EccProfile::None => 0.0,
            EccProfile::Secded => 0.03,
            EccProfile::Bch => 0.08,
        }
    }

    /// Energy of one syndrome computation over a `word_bits`-bit word
    /// (paid on every protected access).
    pub fn detect_energy(self, word_bits: u32) -> Energy {
        let per_bit_pj = match self {
            EccProfile::None => 0.0,
            EccProfile::Secded => 0.0008,
            EccProfile::Bch => 0.0032,
        };
        Energy::from_pj(per_bit_pj * f64::from(word_bits))
    }

    /// Energy of one correction (syndrome decode + bit flip).
    pub fn correct_energy(self, word_bits: u32) -> Energy {
        let factor = match self {
            EccProfile::None => 0.0,
            EccProfile::Secded => 2.0,
            EccProfile::Bch => 10.0,
        };
        self.detect_energy(word_bits) * factor
    }

    /// Latency of one correction, exposed serially on the access path.
    pub fn correct_latency(self) -> Time {
        match self {
            EccProfile::None => Time::ZERO,
            EccProfile::Secded => Time::from_ns(1.0),
            EccProfile::Bch => Time::from_ns(6.0),
        }
    }

    /// Expected detectable-but-uncorrectable events given `errors` raw bit
    /// errors at raw rate `ber` in `word_bits`-bit words.
    ///
    /// A word fails when more than `t` of its bits flip; conditioning on
    /// one observed error, each extra error in the same word costs another
    /// factor of `word_bits · ber`.
    pub fn uncorrectable_expected(self, errors: f64, ber: f64, word_bits: u32) -> f64 {
        let t = self.correctable_bits();
        if t == 0 || errors <= 0.0 {
            return 0.0;
        }
        errors * (f64::from(word_bits) * ber).powi(t as i32)
    }

    /// Parses `none` / `secded` / `bch`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(EccProfile::None),
            "secded" => Ok(EccProfile::Secded),
            "bch" => Ok(EccProfile::Bch),
            other => Err(format!(
                "unknown ECC profile '{other}' (use none/secded/bch)"
            )),
        }
    }

    /// Lower-case display name (matches [`EccProfile::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            EccProfile::None => "none",
            EccProfile::Secded => "secded",
            EccProfile::Bch => "bch",
        }
    }
}

/// Raw-BER multiplier for multi-level ReRAM cells.
///
/// Packing more levels into one cell shrinks sense margins roughly
/// geometrically; the conventional modeling assumption is ~4× raw BER per
/// extra bit.
pub fn mlc_ber_factor(cell_bits: u32) -> f64 {
    4f64.powi(cell_bits.saturating_sub(1).min(8) as i32)
}

/// A deterministic, seed-driven fault-injection plan.
///
/// The plan is pure configuration: rates and limits, no state. The
/// simulator core interprets it once per run against the run's total
/// traffic, so outcomes depend only on (plan, workload) — never on thread
/// count or timing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault draws in the run.
    pub seed: u64,
    /// Raw bit-error rate of SLC ReRAM reads/writes (scaled up for MLC
    /// cells via [`mlc_ber_factor`]).
    pub reram_ber: f64,
    /// DRAM retention / refresh-miss bit-error rate.
    pub dram_ber: f64,
    /// SRAM (and register-file) soft-error bit rate.
    pub sram_ber: f64,
    /// ECC protecting every channel. With [`EccProfile::None`], errors go
    /// undetected and cost nothing.
    pub ecc: EccProfile,
    /// Maximum re-reads for a detectable-uncorrectable error before the
    /// controller gives up on the access (it still completes — the model
    /// charges the retries, it does not fail the run).
    pub max_retries: u32,
    /// Write-endurance limit in iterations: edge banks scanned at least
    /// this many times become persistently faulty and must be spared.
    pub wear_limit: Option<u64>,
    /// Factory-stuck `(chip, bank)` pairs in the edge channel, spared at
    /// run start.
    pub stuck_banks: Vec<(u32, u32)>,
}

impl FaultPlan {
    /// The inert plan: no errors, no ECC, nothing to pay for.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            reram_ber: 0.0,
            dram_ber: 0.0,
            sram_ber: 0.0,
            ecc: EccProfile::None,
            max_retries: 3,
            wear_limit: None,
            stuck_banks: Vec::new(),
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when the plan can change any simulated quantity. Inactive
    /// plans (the default, and any all-zero-rate plan without ECC, stuck
    /// banks or a wear limit) must leave every report bit-identical to a
    /// fault-free run.
    pub fn is_active(&self) -> bool {
        self.ecc != EccProfile::None
            || self.reram_ber > 0.0
            || self.dram_ber > 0.0
            || self.sram_ber > 0.0
            || self.wear_limit.is_some()
            || !self.stuck_banks.is_empty()
    }

    /// Validates rates and limits.
    ///
    /// # Errors
    ///
    /// Returns a message when a rate is not a probability in `[0, 1)` or
    /// the retry budget is zero while errors are possible.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("reram-ber", self.reram_ber),
            ("dram-ber", self.dram_ber),
            ("sram-ber", self.sram_ber),
        ] {
            if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
                return Err(format!(
                    "{name} must be a probability in [0, 1), got {rate}"
                ));
            }
        }
        if self.max_retries == 0 {
            return Err("retries must be at least 1".into());
        }
        if self.wear_limit == Some(0) {
            return Err("wear-limit must be positive".into());
        }
        Ok(())
    }

    /// Parses a comma-separated `key=value` spec, e.g.
    /// `seed=7,reram-ber=1e-4,ecc=secded,stuck-bank=0:3`.
    ///
    /// Keys: `seed`, `reram-ber`, `dram-ber`, `sram-ber`, `ecc`
    /// (`none`/`secded`/`bch`), `retries`, `wear-limit`, and a repeatable
    /// `stuck-bank=CHIP:BANK`. The literal spec `none` yields the inert
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown keys, malformed values
    /// or an invalid resulting plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        if spec.trim() == "none" {
            return Ok(plan);
        }
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            let bad = |what: &str| format!("invalid {what} '{value}'");
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| bad("seed"))?,
                "reram-ber" => plan.reram_ber = value.parse().map_err(|_| bad("reram-ber"))?,
                "dram-ber" => plan.dram_ber = value.parse().map_err(|_| bad("dram-ber"))?,
                "sram-ber" => plan.sram_ber = value.parse().map_err(|_| bad("sram-ber"))?,
                "ecc" => plan.ecc = EccProfile::parse(value)?,
                "retries" => plan.max_retries = value.parse().map_err(|_| bad("retries"))?,
                "wear-limit" => {
                    plan.wear_limit = Some(value.parse().map_err(|_| bad("wear-limit"))?)
                }
                "stuck-bank" => {
                    let (chip, bank) = value
                        .split_once(':')
                        .ok_or_else(|| bad("stuck-bank (use CHIP:BANK)"))?;
                    let chip = chip.parse().map_err(|_| bad("stuck-bank chip"))?;
                    let bank = bank.parse().map_err(|_| bad("stuck-bank bank"))?;
                    plan.stuck_banks.push((chip, bank));
                }
                other => return Err(format!("unknown fault key '{other}'")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic_and_well_spread() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge immediately.
        assert_ne!(FaultRng::new(1).next_u64(), FaultRng::new(2).next_u64());
        for _ in 0..1000 {
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn expected_count_brackets_the_expectation() {
        let mut rng = FaultRng::new(9);
        assert_eq!(expected_count(0.0, &mut rng), 0);
        assert_eq!(expected_count(-1.0, &mut rng), 0);
        assert_eq!(expected_count(f64::NAN, &mut rng), 0);
        assert_eq!(expected_count(5.0, &mut rng), 5);
        for _ in 0..100 {
            let n = expected_count(2.25, &mut rng);
            assert!(n == 2 || n == 3);
        }
    }

    #[test]
    fn none_plan_is_inactive_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        assert_eq!(plan, FaultPlan::default());
        // Zero rates with a seed set are still inactive.
        assert!(!FaultPlan::none().with_seed(99).is_active());
    }

    #[test]
    fn any_knob_activates_the_plan() {
        let mut p = FaultPlan::none();
        p.reram_ber = 1e-6;
        assert!(p.is_active());
        let mut p = FaultPlan::none();
        p.ecc = EccProfile::Secded;
        assert!(p.is_active());
        let mut p = FaultPlan::none();
        p.stuck_banks.push((0, 1));
        assert!(p.is_active());
        let mut p = FaultPlan::none();
        p.wear_limit = Some(5);
        assert!(p.is_active());
    }

    #[test]
    fn parse_round_trips_a_full_spec() {
        let plan = FaultPlan::parse(
            "seed=7,reram-ber=1e-4,dram-ber=1e-9,sram-ber=1e-12,\
             ecc=bch,retries=5,wear-limit=100,stuck-bank=0:3,stuck-bank=2:1",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.reram_ber, 1e-4);
        assert_eq!(plan.dram_ber, 1e-9);
        assert_eq!(plan.sram_ber, 1e-12);
        assert_eq!(plan.ecc, EccProfile::Bch);
        assert_eq!(plan.max_retries, 5);
        assert_eq!(plan.wear_limit, Some(100));
        assert_eq!(plan.stuck_banks, vec![(0, 3), (2, 1)]);
        assert!(plan.is_active());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("unknown=1").is_err());
        assert!(FaultPlan::parse("ecc=reed-solomon").is_err());
        assert!(FaultPlan::parse("stuck-bank=5").is_err());
        assert!(FaultPlan::parse("reram-ber=1.5").is_err());
        assert!(FaultPlan::parse("reram-ber=-0.1").is_err());
        assert!(FaultPlan::parse("retries=0").is_err());
        assert!(FaultPlan::parse("wear-limit=0").is_err());
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
    }

    #[test]
    fn ecc_overheads_rank_bch_above_secded() {
        let w = 512;
        assert_eq!(EccProfile::None.check_bits(w), 0);
        // SECDED over 512 bits: 2^10 >= 512 + 10 + 1 → 10 + parity = 11.
        assert_eq!(EccProfile::Secded.check_bits(w), 11);
        assert!(EccProfile::Bch.check_bits(w) > EccProfile::Secded.check_bits(w));
        assert!(EccProfile::Bch.detect_energy(w) > EccProfile::Secded.detect_energy(w));
        assert!(EccProfile::Bch.correct_latency() > EccProfile::Secded.correct_latency());
        assert!(EccProfile::Bch.latency_overhead() > EccProfile::Secded.latency_overhead());
        assert_eq!(EccProfile::None.detect_energy(w), Energy::ZERO);
    }

    #[test]
    fn stronger_ecc_leaves_fewer_uncorrectable_errors() {
        let errors = 1e6;
        let ber = 1e-5;
        let none = EccProfile::None.uncorrectable_expected(errors, ber, 512);
        let secded = EccProfile::Secded.uncorrectable_expected(errors, ber, 512);
        let bch = EccProfile::Bch.uncorrectable_expected(errors, ber, 512);
        assert_eq!(none, 0.0, "no ECC means no *detected* uncorrectables");
        assert!(secded > bch);
        assert!(bch > 0.0);
    }

    #[test]
    fn mlc_factor_grows_with_cell_bits() {
        assert_eq!(mlc_ber_factor(1), 1.0);
        assert_eq!(mlc_ber_factor(2), 4.0);
        assert_eq!(mlc_ber_factor(3), 16.0);
        assert!(mlc_ber_factor(0) == 1.0);
    }
}
