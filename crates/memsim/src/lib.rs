//! # hyve-memsim — device-level memory models for the HyVE reproduction
//!
//! This crate is the device substrate of the HyVE simulator. It provides
//! parametric energy/latency/leakage models for every memory technology the
//! paper's hybrid hierarchy touches:
//!
//! * [`ReramChip`] — resistive RAM main memory organised as banks of crossbar
//!   *mats* (paper Fig. 3), with single- and multi-level cells, energy- or
//!   latency-optimized bank configurations (paper Table 3) and sub-bank
//!   interleaving,
//! * [`DramChip`] — a DDR4-style model with IDD-derived activate / read /
//!   write / refresh / background energy (the paper used the Micron power
//!   calculator),
//! * [`SramArray`] — on-chip SRAM scaled from the paper's CACTI/NVSim anchor
//!   points (2 MB: 960.03 ps & 23.84 pJ per 32-bit read),
//! * [`RegisterFile`] — the small fast storage GraphR uses for local vertices,
//! * [`BankPowerGating`] — the bank-level power-gating controller of §4.1,
//! * [`FaultPlan`] / [`EccProfile`] — deterministic, seed-driven fault
//!   injection and error-correction models for the reliability layer.
//!
//! All quantities use the explicit unit newtypes in [`units`]
//! ([`Energy`], [`Time`], [`Power`]) so that picojoules are never added to
//! nanoseconds by accident.
//!
//! ## Example
//!
//! ```
//! use hyve_memsim::{ReramChip, ReramChipConfig, MemoryDevice};
//!
//! let chip = ReramChip::new(ReramChipConfig::default());
//! // A 512-bit sequential read burst out of the energy-optimized bank:
//! let e = chip.read_energy(512);
//! let t = chip.read_latency();
//! assert!(e.as_pj() > 0.0 && t.as_ns() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod cell;
pub mod counters;
pub mod device;
pub mod dram;
pub mod error;
pub mod faults;
pub mod power_gating;
pub mod regfile;
pub mod reram;
pub mod sram;
pub mod trace;
pub mod units;

pub use area::{Area, AreaModel};
pub use cell::{CellBits, ReramCellParams, SramCellParams};
pub use counters::AccessStats;
pub use device::{DeviceKind, MemoryDevice};
pub use dram::{DramChip, DramChipConfig, DramTimings};
pub use error::DeviceError;
pub use faults::{expected_count, mlc_ber_factor, EccProfile, FaultPlan, FaultRng};
pub use power_gating::{BankPowerGating, GatingTracker, PowerGatingConfig, PowerGatingReport};
pub use regfile::RegisterFile;
pub use reram::{OptimizationTarget, ReramBankProfile, ReramChip, ReramChipConfig};
pub use sram::{SramArray, SramConfig};
pub use trace::{AccessTrace, Op, Replay};
pub use units::{Energy, EnergyDelay, Power, Time};
