//! Unit newtypes for energy, time, power and energy-delay product.
//!
//! The HyVE paper mixes picojoules, nanojoules, picoseconds and nanoseconds
//! freely; these newtypes keep every quantity in a single canonical unit
//! internally (picojoules for energy, nanoseconds for time, milliwatts for
//! power) and make conversions explicit at the boundaries.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub, SubAssign};

/// An amount of energy, stored internally in picojoules.
///
/// ```
/// use hyve_memsim::Energy;
/// let e = Energy::from_nj(3.91);
/// assert!((e.as_pj() - 3910.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    pub const fn from_pj(pj: f64) -> Self {
        Energy(pj)
    }

    /// Creates an energy from nanojoules.
    pub const fn from_nj(nj: f64) -> Self {
        Energy(nj * 1e3)
    }

    /// Creates an energy from microjoules.
    pub const fn from_uj(uj: f64) -> Self {
        Energy(uj * 1e6)
    }

    /// Creates an energy from millijoules.
    pub const fn from_mj(mj: f64) -> Self {
        Energy(mj * 1e9)
    }

    /// Creates an energy from joules.
    pub const fn from_j(j: f64) -> Self {
        Energy(j * 1e12)
    }

    /// Returns the energy in picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// Returns the energy in nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the energy in microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the energy in millijoules.
    pub fn as_mj(self) -> f64 {
        self.0 * 1e-9
    }

    /// Returns the energy in joules.
    pub fn as_j(self) -> f64 {
        self.0 * 1e-12
    }

    /// Returns the larger of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Returns the smaller of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// True if the energy is a finite, non-negative number.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

/// A duration, stored internally in nanoseconds.
///
/// ```
/// use hyve_memsim::Time;
/// let t = Time::from_ps(1983.0);
/// assert!((t.as_ns() - 1.983).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(f64);

impl Time {
    /// Zero duration.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: f64) -> Self {
        Time(ps * 1e-3)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: f64) -> Self {
        Time(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: f64) -> Self {
        Time(us * 1e3)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: f64) -> Self {
        Time(ms * 1e6)
    }

    /// Creates a time from seconds.
    pub const fn from_s(s: f64) -> Self {
        Time(s * 1e9)
    }

    /// Returns the time in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the time in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0
    }

    /// Returns the time in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the time in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the time in seconds.
    pub fn as_s(self) -> f64 {
        self.0 * 1e-9
    }

    /// Returns the larger of two times.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// True if the time is a finite, non-negative number.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

/// Power, stored internally in milliwatts.
///
/// `Power * Time = Energy` and `Energy / Time = Power`:
///
/// ```
/// use hyve_memsim::{Power, Time};
/// let leak = Power::from_mw(10.0);
/// let e = leak * Time::from_us(1.0);
/// assert!((e.as_nj() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from microwatts.
    pub const fn from_uw(uw: f64) -> Self {
        Power(uw * 1e-3)
    }

    /// Creates a power from milliwatts.
    pub const fn from_mw(mw: f64) -> Self {
        Power(mw)
    }

    /// Creates a power from watts.
    pub const fn from_w(w: f64) -> Self {
        Power(w * 1e3)
    }

    /// Returns the power in microwatts.
    pub fn as_uw(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the power in milliwatts.
    pub fn as_mw(self) -> f64 {
        self.0
    }

    /// Returns the power in watts.
    pub fn as_w(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the larger of two powers.
    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }

    /// True if the power is a finite, non-negative number.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

/// Energy-delay product, stored internally in picojoule-nanoseconds.
///
/// The paper's §6 optimizes `T · E`; this type is produced by
/// `Energy * Time`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct EnergyDelay(f64);

impl EnergyDelay {
    /// Zero energy-delay product.
    pub const ZERO: EnergyDelay = EnergyDelay(0.0);

    /// Creates an EDP value from picojoule-nanoseconds.
    pub fn from_pj_ns(v: f64) -> Self {
        EnergyDelay(v)
    }

    /// Returns the EDP in picojoule-nanoseconds.
    pub fn as_pj_ns(self) -> f64 {
        self.0
    }

    /// Returns the EDP in joule-seconds.
    pub fn as_j_s(self) -> f64 {
        self.0 * 1e-21
    }
}

macro_rules! impl_linear_ops {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Mul<$ty> for f64 {
            type Output = $ty;
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }
        impl MulAssign<f64> for $ty {
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Div<$ty> for $ty {
            type Output = f64;
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty(0.0), |a, b| a + b)
            }
        }
    };
}

impl_linear_ops!(Energy);
impl_linear_ops!(Time);
impl_linear_ops!(Power);
impl_linear_ops!(EnergyDelay);

impl Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, rhs: Time) -> Energy {
        // mW * ns = pJ
        Energy(self.0 * rhs.0)
    }
}

impl Mul<Power> for Time {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    fn div(self, rhs: Time) -> Power {
        // pJ / ns = mW
        Power(self.0 / rhs.0)
    }
}

impl Mul<Time> for Energy {
    type Output = EnergyDelay;
    fn mul(self, rhs: Time) -> EnergyDelay {
        EnergyDelay(self.0 * rhs.0)
    }
}

impl Mul<Energy> for Time {
    type Output = EnergyDelay;
    fn mul(self, rhs: Energy) -> EnergyDelay {
        rhs * self
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pj = self.0;
        if pj.abs() >= 1e9 {
            write!(f, "{:.3} mJ", pj * 1e-9)
        } else if pj.abs() >= 1e6 {
            write!(f, "{:.3} uJ", pj * 1e-6)
        } else if pj.abs() >= 1e3 {
            write!(f, "{:.3} nJ", pj * 1e-3)
        } else {
            write!(f, "{:.3} pJ", pj)
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns.abs() >= 1e9 {
            write!(f, "{:.3} s", ns * 1e-9)
        } else if ns.abs() >= 1e6 {
            write!(f, "{:.3} ms", ns * 1e-6)
        } else if ns.abs() >= 1e3 {
            write!(f, "{:.3} us", ns * 1e-3)
        } else {
            write!(f, "{:.3} ns", ns)
        }
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mw = self.0;
        if mw.abs() >= 1e3 {
            write!(f, "{:.3} W", mw * 1e-3)
        } else if mw.abs() >= 1.0 {
            write!(f, "{:.3} mW", mw)
        } else {
            write!(f, "{:.3} uW", mw * 1e3)
        }
    }
}

impl fmt::Display for EnergyDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} pJ*ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn energy_conversions_round_trip() {
        let e = Energy::from_nj(2.5);
        assert!((e.as_pj() - 2500.0).abs() < EPS);
        assert!((e.as_nj() - 2.5).abs() < EPS);
        assert!((e.as_uj() - 0.0025).abs() < EPS);
        assert!((Energy::from_j(1.0).as_pj() - 1e12).abs() < 1.0);
    }

    #[test]
    fn time_conversions_round_trip() {
        let t = Time::from_us(1.5);
        assert!((t.as_ns() - 1500.0).abs() < EPS);
        assert!((t.as_ps() - 1_500_000.0).abs() < EPS);
        assert!((Time::from_s(2.0).as_ms() - 2000.0).abs() < EPS);
    }

    #[test]
    fn power_times_time_is_energy() {
        // 1 W for 1 s = 1 J
        let e = Power::from_w(1.0) * Time::from_s(1.0);
        assert!((e.as_j() - 1.0).abs() < 1e-12);
        // 0.16 uW read power for 10 ns
        let e = Power::from_uw(0.16) * Time::from_ns(10.0);
        assert!((e.as_pj() - 0.0016).abs() < EPS);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_pj(100.0) / Time::from_ns(10.0);
        assert!((p.as_mw() - 10.0).abs() < EPS);
    }

    #[test]
    fn edp_is_energy_times_time() {
        let edp = Energy::from_pj(3.0) * Time::from_ns(4.0);
        assert!((edp.as_pj_ns() - 12.0).abs() < EPS);
        let edp2 = Time::from_ns(4.0) * Energy::from_pj(3.0);
        assert_eq!(edp, edp2);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Energy::from_pj(1.0);
        let b = Energy::from_pj(2.0);
        assert_eq!((a + b).as_pj(), 3.0);
        assert_eq!((b - a).as_pj(), 1.0);
        assert_eq!((b * 2.0).as_pj(), 4.0);
        assert_eq!((b / 2.0).as_pj(), 1.0);
        assert_eq!(b / a, 2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_energies() {
        let total: Energy = (1..=4).map(|i| Energy::from_pj(i as f64)).sum();
        assert_eq!(total.as_pj(), 10.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Energy::from_pj(12.0)), "12.000 pJ");
        assert_eq!(format!("{}", Energy::from_nj(3.91)), "3.910 nJ");
        assert_eq!(format!("{}", Time::from_ns(29.31)), "29.310 ns");
        assert_eq!(format!("{}", Time::from_s(1.0)), "1.000 s");
        assert_eq!(format!("{}", Power::from_w(2.0)), "2.000 W");
    }

    #[test]
    fn validity_checks() {
        assert!(Energy::from_pj(1.0).is_valid());
        assert!(!Energy::from_pj(-1.0).is_valid());
        assert!(!Energy::from_pj(f64::NAN).is_valid());
        assert!(Time::from_ns(0.0).is_valid());
        assert!(Power::from_mw(5.0).is_valid());
    }
}
