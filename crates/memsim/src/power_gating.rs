//! Bank-level power gating (BPG) for the nonvolatile edge memory (§4.1).
//!
//! Three classic obstacles to power gating are all removed by HyVE's design:
//! state loss (ReRAM is nonvolatile — nothing to save), frequent transitions
//! (the edge stream is sequential, so banks wake in order, once per pass),
//! and gate area (one header/footer per bank suffices because sub-bank —
//! not bank — interleaving keeps a single bank active at a time).
//!
//! Two views are provided:
//! * [`BankPowerGating`] — closed-form background-energy accounting used by
//!   the simulator (active banks × leakage × time + transition overheads),
//! * [`GatingTracker`] — an event-driven tracker that replays an access
//!   timeline with an idle-timeout policy, used for validation and tests.

use crate::units::{Energy, Power, Time};

/// Parameters of the bank-level power-gating controller.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerGatingConfig {
    /// Idle time after the last access before a bank is gated off.
    pub idle_timeout: Time,
    /// Latency to wake a gated bank.
    pub wake_latency: Time,
    /// Energy to charge the virtual rail on wake-up.
    pub wake_energy: Energy,
    /// Energy to drain the rail on sleep.
    pub sleep_energy: Energy,
}

impl Default for PowerGatingConfig {
    fn default() -> Self {
        PowerGatingConfig {
            idle_timeout: Time::from_us(1.0),
            wake_latency: Time::from_ns(100.0),
            wake_energy: Energy::from_pj(500.0),
            sleep_energy: Energy::from_pj(120.0),
        }
    }
}

/// Closed-form bank-level power-gating accounting for one chip.
#[derive(Debug, Clone)]
pub struct BankPowerGating {
    config: PowerGatingConfig,
    banks: u32,
    bank_leakage: Power,
}

/// Result of comparing gated and ungated background energy over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerGatingReport {
    /// Background energy with gating enabled.
    pub gated: Energy,
    /// Background energy with every bank always powered.
    pub ungated: Energy,
    /// Number of sleep/wake transition pairs charged.
    pub transitions: u64,
    /// Added runtime from wake latencies.
    pub wake_stall: Time,
}

impl PowerGatingReport {
    /// `ungated / gated` improvement factor (∞-safe: returns 1.0 when both
    /// are zero).
    pub fn savings_factor(&self) -> f64 {
        if self.gated == Energy::ZERO {
            if self.ungated == Energy::ZERO {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.ungated / self.gated
        }
    }
}

impl BankPowerGating {
    /// Creates a controller for `banks` banks each leaking `bank_leakage`
    /// when powered.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(config: PowerGatingConfig, banks: u32, bank_leakage: Power) -> Self {
        assert!(banks > 0, "need at least one bank");
        BankPowerGating {
            config,
            banks,
            bank_leakage,
        }
    }

    /// The gating configuration.
    pub fn config(&self) -> &PowerGatingConfig {
        &self.config
    }

    /// Background energy over `runtime` with **no** gating: all banks leak
    /// the whole time.
    pub fn ungated_energy(&self, runtime: Time) -> Energy {
        self.bank_leakage * f64::from(self.banks) * runtime
    }

    /// Background energy over `runtime` with gating, given how many
    /// sequential bank-to-bank transitions the edge stream made and the
    /// average number of simultaneously active banks (1.0 for a pure
    /// sequential stream; slightly more while two banks overlap).
    ///
    /// Each transition charges wake + sleep energy plus the idle-timeout
    /// tail during which the previous bank is still powered.
    pub fn gated_energy(&self, runtime: Time, transitions: u64, active_banks: f64) -> Energy {
        let steady = self.bank_leakage * active_banks.max(0.0) * runtime;
        let per_transition = self.config.wake_energy
            + self.config.sleep_energy
            + self.bank_leakage * self.config.idle_timeout;
        steady + per_transition * transitions as f64
    }

    /// Full report for a run of `runtime` with `transitions` bank switches.
    pub fn report(&self, runtime: Time, transitions: u64) -> PowerGatingReport {
        PowerGatingReport {
            gated: self.gated_energy(runtime, transitions, 1.0),
            ungated: self.ungated_energy(runtime),
            transitions,
            wake_stall: self.config.wake_latency * transitions as f64,
        }
    }
}

/// Event-driven gating tracker: replays `(bank, time)` accesses and applies
/// the idle-timeout policy exactly.
#[derive(Debug, Clone)]
pub struct GatingTracker {
    config: PowerGatingConfig,
    bank_leakage: Power,
    /// Per-bank time of last access, `None` when the bank is gated off.
    last_access: Vec<Option<Time>>,
    powered_energy: Energy,
    transitions: u64,
    now: Time,
}

impl GatingTracker {
    /// Creates a tracker for `banks` banks, all initially gated off.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(config: PowerGatingConfig, banks: u32, bank_leakage: Power) -> Self {
        assert!(banks > 0, "need at least one bank");
        GatingTracker {
            config,
            bank_leakage,
            last_access: vec![None; banks as usize],
            powered_energy: Energy::ZERO,
            transitions: 0,
            now: Time::ZERO,
        }
    }

    /// Records an access to `bank` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or `at` precedes the previous event
    /// (the timeline must be monotonic).
    pub fn access(&mut self, bank: u32, at: Time) {
        assert!(at >= self.now, "timeline must be monotonic");
        self.settle_until(at);
        let slot = &mut self.last_access[bank as usize];
        if slot.is_none() {
            // Wake-up: charge rail energy.
            self.powered_energy += self.config.wake_energy;
            self.transitions += 1;
        }
        *slot = Some(at);
    }

    /// Advances time to `at`, accruing leakage for powered banks and gating
    /// off banks whose idle timeout expired.
    fn settle_until(&mut self, at: Time) {
        let timeout = self.config.idle_timeout;
        for slot in &mut self.last_access {
            if let Some(last) = *slot {
                let gate_at = last + timeout;
                // Strict `<`: an access arriving *exactly* at the deadline
                // finds the bank still powered. Gating on `==` would charge
                // a spurious sleep+wake pair (and an extra transition) for
                // an access the idle-timeout policy is meant to keep cheap.
                if gate_at < at {
                    // Powered from `now` until gate_at, then off.
                    let powered = (gate_at - self.now).max(Time::ZERO);
                    self.powered_energy += self.bank_leakage * powered + self.config.sleep_energy;
                    *slot = None;
                } else {
                    self.powered_energy += self.bank_leakage * (at - self.now);
                }
            }
        }
        self.now = at;
    }

    /// Finishes the timeline at `end` and returns total background energy.
    pub fn finish(mut self, end: Time) -> (Energy, u64) {
        self.settle_until(end);
        // Remaining powered banks sleep at the end of the run.
        for slot in &mut self.last_access {
            if slot.take().is_some() {
                self.powered_energy += self.config.sleep_energy;
            }
        }
        (self.powered_energy, self.transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gating() -> BankPowerGating {
        BankPowerGating::new(PowerGatingConfig::default(), 8, Power::from_mw(1.6))
    }

    #[test]
    fn ungated_counts_all_banks() {
        let g = gating();
        let e = g.ungated_energy(Time::from_ms(1.0));
        // 8 banks * 1.6 mW * 1 ms = 12.8 uJ
        assert!((e.as_uj() - 12.8).abs() < 1e-9);
    }

    #[test]
    fn gated_with_one_active_bank_saves_roughly_bank_count() {
        let g = gating();
        let runtime = Time::from_ms(10.0);
        let report = g.report(runtime, 8);
        assert!(report.gated < report.ungated);
        let f = report.savings_factor();
        // With rare transitions the saving approaches the bank count (8).
        assert!(f > 6.0 && f <= 8.0, "got factor {f}");
    }

    #[test]
    fn many_transitions_erode_savings() {
        let g = gating();
        let runtime = Time::from_us(100.0);
        let rare = g.report(runtime, 1).savings_factor();
        let frequent = g.report(runtime, 1000).savings_factor();
        assert!(frequent < rare);
    }

    #[test]
    fn zero_runtime_zero_transitions() {
        let g = gating();
        let r = g.report(Time::ZERO, 0);
        assert_eq!(r.gated, Energy::ZERO);
        assert_eq!(r.ungated, Energy::ZERO);
        assert_eq!(r.savings_factor(), 1.0);
    }

    #[test]
    fn wake_stall_accumulates() {
        let g = gating();
        let r = g.report(Time::from_ms(1.0), 5);
        assert!((r.wake_stall.as_ns() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn tracker_single_bank_sequence() {
        let cfg = PowerGatingConfig {
            idle_timeout: Time::from_ns(100.0),
            wake_latency: Time::from_ns(10.0),
            wake_energy: Energy::from_pj(10.0),
            sleep_energy: Energy::from_pj(5.0),
        };
        let leak = Power::from_mw(1.0); // 1 pJ/ns
        let mut t = GatingTracker::new(cfg, 4, leak);
        t.access(0, Time::ZERO);
        t.access(0, Time::from_ns(50.0));
        let (energy, transitions) = t.finish(Time::from_ns(1000.0));
        assert_eq!(transitions, 1);
        // Powered 0..150 ns (last access at 50 + timeout 100) = 150 pJ leak
        // + 10 pJ wake + 5 pJ sleep.
        assert!(
            (energy.as_pj() - 165.0).abs() < 1e-9,
            "got {}",
            energy.as_pj()
        );
    }

    #[test]
    fn tracker_access_at_exact_deadline_keeps_bank_awake() {
        // Regression: an access arriving exactly when the idle timeout
        // expires (`gate_at == at`) must find the bank still powered. The
        // pre-fix tracker gated the bank in `settle_until` and immediately
        // re-woke it, charging sleep + wake + an extra transition (130 pJ,
        // 2 transitions instead of 115 pJ, 1 transition below).
        let cfg = PowerGatingConfig {
            idle_timeout: Time::from_ns(100.0),
            wake_latency: Time::from_ns(10.0),
            wake_energy: Energy::from_pj(10.0),
            sleep_energy: Energy::from_pj(5.0),
        };
        let leak = Power::from_mw(1.0); // 1 pJ/ns
        let mut t = GatingTracker::new(cfg, 2, leak);
        t.access(0, Time::ZERO);
        t.access(0, Time::from_ns(100.0)); // exactly at the gate deadline
        let (energy, transitions) = t.finish(Time::from_ns(100.0));
        assert_eq!(transitions, 1, "boundary access must not re-wake");
        // 10 pJ wake + 100 ns leak + 5 pJ sleep at finish.
        assert!(
            (energy.as_pj() - 115.0).abs() < 1e-9,
            "got {}",
            energy.as_pj()
        );
    }

    #[test]
    fn tracker_bank_handoff_counts_two_transitions() {
        let cfg = PowerGatingConfig {
            idle_timeout: Time::from_ns(100.0),
            wake_latency: Time::from_ns(10.0),
            wake_energy: Energy::from_pj(10.0),
            sleep_energy: Energy::from_pj(5.0),
        };
        let leak = Power::from_mw(1.0);
        let mut t = GatingTracker::new(cfg, 2, leak);
        t.access(0, Time::ZERO);
        t.access(1, Time::from_ns(500.0)); // bank 0 gated at 100 ns
        let (energy, transitions) = t.finish(Time::from_ns(700.0));
        assert_eq!(transitions, 2);
        // Each bank leaks for its 100 ns idle timeout after the single
        // access, then gates off; plus wake + sleep per bank.
        assert!((energy.as_pj() - (100.0 + 100.0 + 2.0 * 15.0)).abs() < 1e-9);
    }

    #[test]
    fn tracker_matches_closed_form_for_sequential_stream() {
        let cfg = PowerGatingConfig::default();
        let leak = Power::from_mw(1.6);
        let banks = 8u32;
        let g = BankPowerGating::new(cfg.clone(), banks, leak);

        // Sequential stream touching banks 0..8 back to back, each for 1 ms.
        let mut t = GatingTracker::new(cfg.clone(), banks, leak);
        let per_bank = Time::from_ms(1.0);
        for b in 0..banks {
            let start = per_bank * f64::from(b);
            // Accesses every 0.5 us (inside the 1 us idle timeout) keep the
            // bank alive for its whole window.
            let mut at = start;
            while at < start + per_bank {
                t.access(b, at);
                at += Time::from_us(0.5);
            }
        }
        let total = per_bank * f64::from(banks);
        let (tracked, transitions) = t.finish(total);
        assert_eq!(transitions, u64::from(banks));
        let closed = g.gated_energy(total, u64::from(banks), 1.0);
        let rel = (tracked.as_pj() - closed.as_pj()).abs() / closed.as_pj();
        assert!(rel < 0.05, "tracker {tracked} vs closed form {closed}");
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn tracker_rejects_time_travel() {
        let mut t = GatingTracker::new(PowerGatingConfig::default(), 2, Power::from_mw(1.0));
        t.access(0, Time::from_ns(100.0));
        t.access(1, Time::from_ns(50.0));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = BankPowerGating::new(PowerGatingConfig::default(), 0, Power::ZERO);
    }
}
