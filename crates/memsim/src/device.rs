//! The [`MemoryDevice`] abstraction shared by every technology model.
//!
//! HyVE's memory controller (and the §6 analytic model) only ever asks a
//! device five questions: energy of a read, energy of a write, latency of
//! each, and background power while idle-but-powered. Each technology crate
//! answers from its own physics; the simulator stays device-agnostic.

use crate::units::{Energy, Power, Time};
use std::fmt;

/// Which memory technology a device models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Resistive RAM main memory.
    Reram,
    /// DDR-style dynamic RAM.
    Dram,
    /// On-chip static RAM.
    Sram,
    /// Small register-file storage (GraphR's local vertex store).
    RegisterFile,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Reram => "ReRAM",
            DeviceKind::Dram => "DRAM",
            DeviceKind::Sram => "SRAM",
            DeviceKind::RegisterFile => "RegFile",
        };
        f.write_str(s)
    }
}

/// Per-operation energy/latency interface implemented by every device model.
///
/// Energies are for an access of `bits` data bits (device models amortise
/// peripheral costs over the burst). Latencies are per *access*, independent
/// of burst length for the sizes used here.
pub trait MemoryDevice {
    /// Technology tag (used in reports and breakdowns).
    fn kind(&self) -> DeviceKind;

    /// Total capacity in bits.
    fn capacity_bits(&self) -> u64;

    /// Dynamic energy to read `bits` bits (sequential within one access).
    fn read_energy(&self, bits: u64) -> Energy;

    /// Dynamic energy to write `bits` bits.
    fn write_energy(&self, bits: u64) -> Energy;

    /// Latency of the *first* (or a random) read access — includes row
    /// sensing / CAS-style delays.
    fn read_latency(&self) -> Time;

    /// Latency of one write access.
    fn write_latency(&self) -> Time;

    /// Access granularity: bits delivered per access/burst.
    fn output_bits(&self) -> u32 {
        512
    }

    /// Per-access period once a sequential stream is flowing (pipelined
    /// back-to-back accesses). Defaults to the full read latency for devices
    /// without a streaming mode.
    fn burst_period(&self) -> Time {
        self.read_latency()
    }

    /// Time to stream `bits` bits sequentially: one full-latency access to
    /// prime the pipeline, then one burst period per subsequent access.
    fn sequential_read_time(&self, bits: u64) -> Time {
        let accesses = bits.div_ceil(u64::from(self.output_bits())).max(1);
        self.read_latency() + self.burst_period() * (accesses - 1) as f64
    }

    /// Per-access period of a *sequential write* stream. DRAM-style devices
    /// pipeline write bursts into an open row, so this approaches the burst
    /// period; program-pulse devices (ReRAM) stay at the full write latency —
    /// the "high write bandwidth" asymmetry that makes DRAM the right
    /// write-back target (HyVE §3.2).
    fn sequential_write_period(&self) -> Time {
        self.write_latency()
    }

    /// Background power while powered on (leakage + refresh where relevant).
    fn background_power(&self) -> Power;

    /// Extra penalty multiplier for a *random* (non-row-buffer-friendly)
    /// access relative to a sequential one. 1.0 means random costs the same.
    fn random_access_penalty(&self) -> f64 {
        1.0
    }

    /// Energy of a random read of `bits` bits (default: sequential energy
    /// scaled by [`random_access_penalty`](Self::random_access_penalty)).
    fn random_read_energy(&self, bits: u64) -> Energy {
        self.read_energy(bits) * self.random_access_penalty()
    }

    /// Energy of a random write of `bits` bits.
    fn random_write_energy(&self, bits: u64) -> Energy {
        self.write_energy(bits) * self.random_access_penalty()
    }

    /// Latency of reading one *word* from an already-selected location —
    /// the per-edge pipeline stage cost (Eq. 1). Word-addressed on-chip
    /// tiers (SRAM, register files) answer with their word access time;
    /// row/burst devices default to the full access latency.
    fn word_read_latency(&self) -> Time {
        self.read_latency()
    }

    /// Latency of writing one word (see
    /// [`word_read_latency`](Self::word_read_latency)).
    fn word_write_latency(&self) -> Time {
        self.write_latency()
    }

    /// Energy of a bulk (DMA-style) transfer of `bits` bits *into* the
    /// device. Row-organised on-chip tiers override this to amortise
    /// word-line/decoder energy over full rows; the default charges the
    /// ordinary sequential write energy.
    fn bulk_write_energy(&self, bits: u64) -> Energy {
        self.write_energy(bits)
    }

    /// Energy of a bulk transfer of `bits` bits *out of* the device (see
    /// [`bulk_write_energy`](Self::bulk_write_energy)).
    fn bulk_read_energy(&self, bits: u64) -> Energy {
        self.read_energy(bits)
    }

    /// Time to stream `bits` bits in or out at the device's bulk-transfer
    /// granularity. Defaults to the sequential read stream time.
    fn bulk_transfer_time(&self, bits: u64) -> Time {
        self.sequential_read_time(bits)
    }
}

/// Blanket impl so `&D` can be passed wherever a device is expected.
impl<D: MemoryDevice + ?Sized> MemoryDevice for &D {
    fn kind(&self) -> DeviceKind {
        (**self).kind()
    }
    fn capacity_bits(&self) -> u64 {
        (**self).capacity_bits()
    }
    fn read_energy(&self, bits: u64) -> Energy {
        (**self).read_energy(bits)
    }
    fn write_energy(&self, bits: u64) -> Energy {
        (**self).write_energy(bits)
    }
    fn read_latency(&self) -> Time {
        (**self).read_latency()
    }
    fn write_latency(&self) -> Time {
        (**self).write_latency()
    }
    fn output_bits(&self) -> u32 {
        (**self).output_bits()
    }
    fn burst_period(&self) -> Time {
        (**self).burst_period()
    }
    fn sequential_write_period(&self) -> Time {
        (**self).sequential_write_period()
    }
    fn background_power(&self) -> Power {
        (**self).background_power()
    }
    fn random_access_penalty(&self) -> f64 {
        (**self).random_access_penalty()
    }
    fn word_read_latency(&self) -> Time {
        (**self).word_read_latency()
    }
    fn word_write_latency(&self) -> Time {
        (**self).word_write_latency()
    }
    fn bulk_write_energy(&self, bits: u64) -> Energy {
        (**self).bulk_write_energy(bits)
    }
    fn bulk_read_energy(&self, bits: u64) -> Energy {
        (**self).bulk_read_energy(bits)
    }
    fn bulk_transfer_time(&self, bits: u64) -> Time {
        (**self).bulk_transfer_time(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl MemoryDevice for Fake {
        fn kind(&self) -> DeviceKind {
            DeviceKind::Sram
        }
        fn capacity_bits(&self) -> u64 {
            1024
        }
        fn read_energy(&self, bits: u64) -> Energy {
            Energy::from_pj(bits as f64)
        }
        fn write_energy(&self, bits: u64) -> Energy {
            Energy::from_pj(2.0 * bits as f64)
        }
        fn read_latency(&self) -> Time {
            Time::from_ns(1.0)
        }
        fn write_latency(&self) -> Time {
            Time::from_ns(2.0)
        }
        fn background_power(&self) -> Power {
            Power::from_mw(1.0)
        }
        fn random_access_penalty(&self) -> f64 {
            3.0
        }
    }

    #[test]
    fn random_defaults_scale_sequential() {
        let d = Fake;
        assert_eq!(d.random_read_energy(10).as_pj(), 30.0);
        assert_eq!(d.random_write_energy(10).as_pj(), 60.0);
    }

    #[test]
    fn reference_impl_delegates() {
        let d = Fake;
        let r: &dyn MemoryDevice = &d;
        assert_eq!(r.kind(), DeviceKind::Sram);
        assert_eq!((&&d).capacity_bits(), 1024);
        assert_eq!(d.read_latency(), Time::from_ns(1.0));
        assert_eq!(d.random_access_penalty(), 3.0);
        assert_eq!(d.output_bits(), 512);
        assert_eq!(d.burst_period(), Time::from_ns(1.0));
    }

    #[test]
    fn sequential_stream_time_pipelines() {
        let d = Fake;
        // 1024 bits = 2 accesses of 512: first pays latency, second one period.
        let t = d.sequential_read_time(1024);
        assert_eq!(t, Time::from_ns(2.0));
        // Zero bits still costs one access.
        assert_eq!(d.sequential_read_time(0), Time::from_ns(1.0));
    }

    #[test]
    fn bulk_and_word_defaults_fall_back_to_access_costs() {
        let d = Fake;
        assert_eq!(d.word_read_latency(), d.read_latency());
        assert_eq!(d.word_write_latency(), d.write_latency());
        assert_eq!(d.bulk_read_energy(128), d.read_energy(128));
        assert_eq!(d.bulk_write_energy(128), d.write_energy(128));
        assert_eq!(d.bulk_transfer_time(1024), d.sequential_read_time(1024));
        // The blanket `&D` impl forwards the extended surface too.
        let r: &dyn MemoryDevice = &d;
        assert_eq!(r.word_read_latency(), d.read_latency());
        assert_eq!(r.bulk_transfer_time(1024), d.sequential_read_time(1024));
    }

    #[test]
    fn kind_display() {
        assert_eq!(DeviceKind::Reram.to_string(), "ReRAM");
        assert_eq!(DeviceKind::RegisterFile.to_string(), "RegFile");
    }
}
