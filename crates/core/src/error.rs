//! Error type for the simulator.

use crate::stats::RunReport;
use std::error::Error;
use std::fmt;

/// Errors produced by engine configuration and runs.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The system configuration is inconsistent.
    InvalidConfig {
        /// Explanation.
        message: String,
    },
    /// The graph cannot be scheduled on this configuration (e.g. too many
    /// processing units for the vertex count).
    Unschedulable {
        /// Explanation.
        message: String,
    },
    /// A graph-layer error surfaced during partitioning.
    Graph(hyve_graph::GraphError),
    /// A memory-device model rejected its configuration.
    Device(hyve_memsim::DeviceError),
    /// A convergence-bounded algorithm was still changing values when it
    /// hit its iteration cap. The partial report covers the capped run, so
    /// callers can inspect (or knowingly accept) the truncated result.
    MaxIterationsExceeded {
        /// The algorithm that failed to converge.
        algorithm: &'static str,
        /// The iteration cap that was reached.
        max_iterations: u32,
        /// Costs of the truncated run (boxed: reports are large).
        report: Box<RunReport>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
            CoreError::Unschedulable { message } => {
                write!(f, "graph not schedulable: {message}")
            }
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Device(e) => write!(f, "device error: {e}"),
            CoreError::MaxIterationsExceeded {
                algorithm,
                max_iterations,
                ..
            } => write!(
                f,
                "{algorithm} did not converge within {max_iterations} iterations"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hyve_graph::GraphError> for CoreError {
    fn from(e: hyve_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<hyve_memsim::DeviceError> for CoreError {
    fn from(e: hyve_memsim::DeviceError) -> Self {
        CoreError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig {
            message: "zero PUs".into(),
        };
        assert!(e.to_string().contains("zero PUs"));
        let g = CoreError::from(hyve_graph::GraphError::EmptyGraph);
        assert!(g.to_string().contains("no vertices"));
        assert!(Error::source(&g).is_some());
    }
}
