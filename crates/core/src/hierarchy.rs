//! The composable memory-hierarchy layer (§3): a declarative
//! [`HierarchySpec`] lowered from [`SystemConfig`], and the fully
//! constructed [`HierarchyInstance`] a
//! [`SimulationSession`](crate::SimulationSession) builds **once** and
//! reuses across runs and sweep points.
//!
//! The paper's claim is that the hierarchy is *composable*: swap the edge
//! channel (ReRAM/DRAM), the off-chip vertex channel, the on-chip tier and
//! the optimizations, and energy/time follow (Fig. 16, Table 4). This
//! module makes that literal:
//!
//! * **spec** — [`HierarchySpec::lower`] translates a [`SystemConfig`] into
//!   channel descriptions ([`ChannelSpec`]: role + [`DeviceSpec`] + ganged
//!   chip count). All device selection happens here; the engine never
//!   pattern-matches a memory-technology enum again.
//! * **instance** — [`HierarchyInstance::build`] constructs every device
//!   model, the per-channel cost memos ([`OpCosts`]), the inter-PU router
//!   (§4.2) and the edge-channel power-gating controller (§4.1) exactly
//!   once. Runs and sweeps borrow the instance read-only.
//! * **ledgers** — each run opens a fresh [`Ledgers`] value (one
//!   [`AccessStats`] per channel plus logic); the phase-level accounting
//!   passes in the crate-private `accounting` module write into it, and it
//!   closes into the report's [`EnergyBreakdown`].
//!
//! Adding a hierarchy variant means adding a [`DeviceSpec`] arm and a
//! lowering rule — not editing the engine.

use crate::config::{EdgeMemoryKind, SystemConfig, VertexMemoryKind};
use crate::controller::{AddressMap, ResilienceModel};
use crate::error::CoreError;
use crate::router::Router;
use crate::stats::EnergyBreakdown;
use hyve_memsim::{
    AccessStats, BankPowerGating, DramChip, DramChipConfig, EccProfile, Energy, FaultPlan,
    MemoryDevice, Power, PowerGatingConfig, RegisterFile, ReramChip, ReramChipConfig, SramArray,
    SramConfig, Time,
};
use std::cell::Cell;
use std::fmt;

/// Number of memory chips provisioned on the edge-memory channel. The
/// subsystem is sized for large graphs, so its background power does not
/// shrink with the (scaled) dataset — this is what bank-level power gating
/// recovers (§4.1, Fig. 15).
pub const EDGE_CHANNEL_CHIPS: u32 = 8;

/// Chips on the off-chip vertex channel (vertex data is 10–100× smaller
/// than edges, §3).
pub const VERTEX_CHANNEL_CHIPS: u32 = 2;

/// Static power of the hybrid memory controller and miscellaneous logic.
const CONTROLLER_POWER: Power = Power::from_mw(40.0);

thread_local! {
    /// Per-thread count of device-model constructions — test
    /// instrumentation for the "build once per session, not once per run"
    /// contract. Thread-local so concurrently running tests cannot perturb
    /// each other's deltas.
    static DEVICE_CONSTRUCTIONS: Cell<u64> = const { Cell::new(0) };
}

/// Device-model constructions performed by the *current thread* so far.
///
/// Snapshot it before and after an operation to assert how many device
/// models the operation built; see the session tests for the
/// once-per-session guarantee.
pub fn device_constructions() -> u64 {
    DEVICE_CONSTRUCTIONS.with(Cell::get)
}

/// Role a channel plays in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelRole {
    /// Sequential-read stream of partitioned edge data (§3.1).
    EdgeStream,
    /// Off-chip global vertex memory (§3.2).
    GlobalVertex,
    /// On-chip local vertex tier serving per-edge random accesses.
    LocalVertex,
}

impl fmt::Display for ChannelRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChannelRole::EdgeStream => "edge stream",
            ChannelRole::GlobalVertex => "global vertex",
            ChannelRole::LocalVertex => "local vertex",
        })
    }
}

/// Declarative description of the device behind a channel — enough to
/// construct the model without consulting the [`SystemConfig`] again.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceSpec {
    /// ReRAM main-memory chip.
    Reram(ReramChipConfig),
    /// DDR-style DRAM chip.
    Dram(DramChipConfig),
    /// On-chip SRAM array.
    Sram(SramConfig),
    /// Small per-PU register file (the GraphR-style local tier).
    RegisterFile {
        /// 32-bit entries per file.
        entries: u32,
    },
}

impl DeviceSpec {
    /// Technology tag of the described device.
    pub fn kind(&self) -> hyve_memsim::DeviceKind {
        match self {
            DeviceSpec::Reram(_) => hyve_memsim::DeviceKind::Reram,
            DeviceSpec::Dram(_) => hyve_memsim::DeviceKind::Dram,
            DeviceSpec::Sram(_) => hyve_memsim::DeviceKind::Sram,
            DeviceSpec::RegisterFile { .. } => hyve_memsim::DeviceKind::RegisterFile,
        }
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceSpec::Reram(c) => write!(f, "ReRAM {} Gbit/chip", c.density_gbit),
            DeviceSpec::Dram(c) => write!(f, "DRAM {} Gbit/chip", c.density_gbit),
            DeviceSpec::Sram(c) => {
                write!(f, "SRAM {} MB", c.capacity_bytes / (1024 * 1024))
            }
            DeviceSpec::RegisterFile { entries } => {
                write!(f, "register file ({entries} × 32-bit)")
            }
        }
    }
}

/// One channel of the hierarchy, declaratively: its role, its device, and
/// how many chips are ganged on the channel (streaming in parallel like a
/// DIMM rank).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSpec {
    /// What the channel stores.
    pub role: ChannelRole,
    /// Device technology and parameters.
    pub device: DeviceSpec,
    /// Chips ganged on the channel.
    pub chips: u32,
}

impl fmt::Display for ChannelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ×{}", self.device, self.chips)
    }
}

/// The declarative hierarchy a [`SystemConfig`] lowers into: every device
/// choice resolved, nothing constructed yet.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchySpec {
    /// Configuration name carried through to reports.
    pub name: &'static str,
    /// Processing-unit count (sizes the router and logic leakage).
    pub num_pus: u32,
    /// Edge-stream channel.
    pub edge: ChannelSpec,
    /// Off-chip global vertex channel.
    pub global_vertex: ChannelSpec,
    /// Optional on-chip local vertex tier; `None` means every vertex touch
    /// is a random access at the global channel (acc+DRAM / acc+ReRAM).
    pub local_vertex: Option<ChannelSpec>,
    /// Inter-PU source-interval sharing through the N×N router (§4.2).
    pub data_sharing: bool,
    /// Bank-level power gating of the edge channel (§4.1; requires a
    /// nonvolatile edge device).
    pub power_gating: bool,
    /// Deterministic fault-injection plan. The default,
    /// [`FaultPlan::none()`], is inert: no resilience model is built and
    /// runs take exactly the fault-free code path.
    pub faults: FaultPlan,
}

impl HierarchySpec {
    /// Lowers a [`SystemConfig`] into the declarative hierarchy it denotes.
    /// This is the *only* place memory-technology enums are interpreted.
    pub fn lower(config: &SystemConfig) -> HierarchySpec {
        let edge_device = match config.edge_memory {
            EdgeMemoryKind::Reram => DeviceSpec::Reram(config.reram_config()),
            EdgeMemoryKind::Dram => DeviceSpec::Dram(config.dram_config()),
        };
        let global_device = match config.offchip_vertex {
            VertexMemoryKind::Dram => DeviceSpec::Dram(config.dram_config()),
            VertexMemoryKind::Reram => DeviceSpec::Reram(config.reram_config()),
        };
        HierarchySpec {
            name: config.name,
            num_pus: config.num_pus,
            edge: ChannelSpec {
                role: ChannelRole::EdgeStream,
                device: edge_device,
                chips: EDGE_CHANNEL_CHIPS,
            },
            global_vertex: ChannelSpec {
                role: ChannelRole::GlobalVertex,
                device: global_device,
                chips: VERTEX_CHANNEL_CHIPS,
            },
            local_vertex: config.sram_config().map(|sc| ChannelSpec {
                role: ChannelRole::LocalVertex,
                device: DeviceSpec::Sram(sc),
                chips: 1,
            }),
            data_sharing: config.data_sharing,
            power_gating: config.power_gating,
            faults: FaultPlan::none(),
        }
    }
}

impl fmt::Display for HierarchySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "hierarchy {} ({} PUs)", self.name, self.num_pus)?;
        writeln!(f, "  edge stream:   {}", self.edge)?;
        writeln!(f, "  global vertex: {}", self.global_vertex)?;
        match &self.local_vertex {
            Some(c) => writeln!(f, "  local vertex:  {c}")?,
            None => writeln!(f, "  local vertex:  none (random off-chip access)")?,
        }
        writeln!(
            f,
            "  data sharing:  {}",
            if self.data_sharing {
                "on (N×N router)"
            } else {
                "off"
            }
        )?;
        write!(
            f,
            "  power gating:  {}",
            if self.power_gating {
                "on (edge banks)"
            } else {
                "off"
            }
        )?;
        if self.faults.is_active() {
            write!(
                f,
                "\n  faults:        seed={}, ecc={}",
                self.faults.seed,
                self.faults.ecc.name()
            )?;
        }
        Ok(())
    }
}

/// The constructed device model behind a channel. A closed enum (rather
/// than a trait object) keeps [`HierarchyInstance`] — and with it the
/// session — `Clone` and cheap to share across sweep threads.
#[derive(Debug, Clone)]
enum ChannelDevice {
    Reram(ReramChip),
    Dram(DramChip),
    Sram(SramArray),
    RegFile(RegisterFile),
}

impl ChannelDevice {
    fn as_memory_device(&self) -> &dyn MemoryDevice {
        match self {
            ChannelDevice::Reram(c) => c,
            ChannelDevice::Dram(c) => c,
            ChannelDevice::Sram(c) => c,
            ChannelDevice::RegFile(c) => c,
        }
    }
}

/// Per-operation scalar costs of a channel's device, captured once at build
/// time so the per-run accounting passes never re-derive them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCosts {
    /// Latency of a first/random read access.
    pub read_latency: Time,
    /// Latency of one write access.
    pub write_latency: Time,
    /// Per-access period of a flowing sequential read stream.
    pub burst_period: Time,
    /// Per-access period of a sequential write stream.
    pub sequential_write_period: Time,
    /// Bits delivered per access/burst.
    pub output_bits: u32,
    /// Background power of one chip while powered.
    pub background_power: Power,
    /// Latency of one word read (on-chip tiers).
    pub word_read_latency: Time,
    /// Latency of one word write (on-chip tiers).
    pub word_write_latency: Time,
}

impl OpCosts {
    fn capture(device: &dyn MemoryDevice) -> OpCosts {
        OpCosts {
            read_latency: device.read_latency(),
            write_latency: device.write_latency(),
            burst_period: device.burst_period(),
            sequential_write_period: device.sequential_write_period(),
            output_bits: device.output_bits(),
            background_power: device.background_power(),
            word_read_latency: device.word_read_latency(),
            word_write_latency: device.word_write_latency(),
        }
    }

    /// Folds an ECC profile's per-access overheads into the cost memo:
    /// every access latency stretches by the in-line syndrome pipeline, and
    /// background power grows by the check-bit storage fraction (the extra
    /// cells leak like the data cells they sit beside). Applied once at
    /// build time, only when the session's fault plan is active.
    pub fn with_ecc(self, ecc: EccProfile) -> OpCosts {
        let lat = 1.0 + ecc.latency_overhead();
        let storage = 1.0 + ecc.storage_overhead(self.output_bits);
        OpCosts {
            read_latency: self.read_latency * lat,
            write_latency: self.write_latency * lat,
            burst_period: self.burst_period * lat,
            sequential_write_period: self.sequential_write_period * lat,
            output_bits: self.output_bits,
            background_power: self.background_power * storage,
            word_read_latency: self.word_read_latency * lat,
            word_write_latency: self.word_write_latency * lat,
        }
    }
}

/// A fully-constructed channel: device model + cost memo + channel width.
///
/// Channels are built once per session by [`HierarchyInstance::build`] and
/// borrowed read-only by every run; per-run access counts accumulate in
/// [`Ledgers`], not here.
#[derive(Debug, Clone)]
pub struct Channel {
    role: ChannelRole,
    chips: u32,
    device: ChannelDevice,
    costs: OpCosts,
}

impl Channel {
    fn build(spec: &ChannelSpec) -> Result<Channel, CoreError> {
        let device = match &spec.device {
            DeviceSpec::Reram(c) => ChannelDevice::Reram(ReramChip::try_new(c.clone())?),
            DeviceSpec::Dram(c) => ChannelDevice::Dram(DramChip::try_new(c.clone())?),
            DeviceSpec::Sram(c) => ChannelDevice::Sram(SramArray::try_new(c.clone())?),
            DeviceSpec::RegisterFile { entries } => {
                if *entries == 0 {
                    return Err(CoreError::InvalidConfig {
                        message: "register-file tier needs at least one entry".into(),
                    });
                }
                ChannelDevice::RegFile(RegisterFile::new(*entries))
            }
        };
        DEVICE_CONSTRUCTIONS.with(|c| c.set(c.get() + 1));
        let costs = OpCosts::capture(device.as_memory_device());
        Ok(Channel {
            role: spec.role,
            chips: spec.chips,
            device,
            costs,
        })
    }

    /// The channel's role in the hierarchy.
    pub fn role(&self) -> ChannelRole {
        self.role
    }

    /// Chips ganged on the channel.
    pub fn chips(&self) -> u32 {
        self.chips
    }

    /// The memoized per-operation scalar costs.
    pub fn costs(&self) -> &OpCosts {
        &self.costs
    }

    /// The device model, through the uniform [`MemoryDevice`] interface.
    pub fn device(&self) -> &dyn MemoryDevice {
        self.device.as_memory_device()
    }

    /// The ReRAM chip model, when the channel is ReRAM-backed (the power
    /// gating controller needs bank geometry the trait does not expose).
    fn reram(&self) -> Option<&ReramChip> {
        match &self.device {
            ChannelDevice::Reram(c) => Some(c),
            _ => None,
        }
    }
}

/// Bank-level power gating of the edge channel, pre-bound to the channel's
/// bank geometry at build time (§4.1 + §3.4's sequential address layout).
#[derive(Debug, Clone)]
pub(crate) struct EdgeGating {
    gating: BankPowerGating,
    map: AddressMap,
}

impl EdgeGating {
    fn for_channel(chip: &ReramChip, chips: u32) -> EdgeGating {
        let gating = BankPowerGating::new(
            PowerGatingConfig::default(),
            chip.banks() * chips,
            chip.bank_leakage(),
        );
        // Sequential layout (§3.4): a scan wakes banks in address order,
        // one transition per bank the edge data spans.
        let map = AddressMap::new(
            chips,
            chip.banks(),
            chip.capacity_bits() / u64::from(chip.banks()) / 8,
        );
        EdgeGating { gating, map }
    }

    /// Sleep/wake transition pairs charged over a run: one per bank the
    /// edge data spans (§3.4's sequential layout), per iteration. The
    /// trace layer reports exactly this number.
    pub(crate) fn transitions(&self, edge_bits: u64, iterations: u32) -> u64 {
        self.map.banks_spanned(edge_bits.div_ceil(8)) * u64::from(iterations)
    }

    /// Gated background energy of the edge channel over `total_time`, for
    /// edge data of `edge_bits` scanned once per iteration.
    pub(crate) fn background_energy(
        &self,
        total_time: Time,
        edge_bits: u64,
        iterations: u32,
    ) -> Energy {
        self.gating
            .gated_energy(total_time, self.transitions(edge_bits, iterations), 1.0)
    }
}

/// The validated, fully-constructed hierarchy: every channel's device model
/// plus the router and power-gating controller, built **once** per session.
#[derive(Debug, Clone)]
pub struct HierarchyInstance {
    spec: HierarchySpec,
    edge: Channel,
    global_vertex: Channel,
    local_vertex: Option<Channel>,
    router: Option<Router>,
    gating: Option<EdgeGating>,
    resilience: Option<ResilienceModel>,
}

impl HierarchyInstance {
    /// Constructs every device in the spec.
    ///
    /// # Errors
    ///
    /// Propagates device-model validation failures, and rejects power
    /// gating on a volatile (non-ReRAM) edge channel — gating relies on
    /// nonvolatility to skip state save/restore (§4.1).
    pub fn build(spec: HierarchySpec) -> Result<HierarchyInstance, CoreError> {
        let mut edge = Channel::build(&spec.edge)?;
        let mut global_vertex = Channel::build(&spec.global_vertex)?;
        let mut local_vertex = spec.local_vertex.as_ref().map(Channel::build).transpose()?;
        let router = spec.data_sharing.then(|| Router::new(spec.num_pus));
        let gating = if spec.power_gating {
            match edge.reram() {
                Some(chip) => Some(EdgeGating::for_channel(chip, edge.chips())),
                None => {
                    return Err(CoreError::InvalidConfig {
                        message: "bank-level power gating requires nonvolatile (ReRAM) edge memory"
                            .into(),
                    })
                }
            }
        } else {
            None
        };
        let resilience = if spec.faults.is_active() {
            spec.faults
                .validate()
                .map_err(|message| CoreError::InvalidConfig { message })?;
            // Resolve the plan against the edge channel's bank geometry and
            // cell type — no extra device constructions.
            let (banks_per_chip, cell_bits) = match &spec.edge.device {
                DeviceSpec::Reram(cfg) => (cfg.banks, cfg.cell.bits.bits()),
                // DRAM edge channel: a DDR4-style device has 16 banks and
                // single-level cells.
                _ => (16, 1),
            };
            // ECC datapaths sit on every channel's access path: fold the
            // per-access overheads into the cost memos once, at build time.
            if spec.faults.ecc != EccProfile::None {
                let ecc = spec.faults.ecc;
                edge.costs = edge.costs.with_ecc(ecc);
                global_vertex.costs = global_vertex.costs.with_ecc(ecc);
                if let Some(local) = &mut local_vertex {
                    local.costs = local.costs.with_ecc(ecc);
                }
            }
            Some(ResilienceModel::new(
                spec.faults.clone(),
                spec.edge.chips,
                banks_per_chip,
                cell_bits,
            ))
        } else {
            None
        };
        Ok(HierarchyInstance {
            spec,
            edge,
            global_vertex,
            local_vertex,
            router,
            gating,
            resilience,
        })
    }

    /// The declarative spec this instance was built from.
    pub fn spec(&self) -> &HierarchySpec {
        &self.spec
    }

    /// The edge-stream channel.
    pub fn edge(&self) -> &Channel {
        &self.edge
    }

    /// The off-chip global vertex channel.
    pub fn global_vertex(&self) -> &Channel {
        &self.global_vertex
    }

    /// The on-chip local vertex tier, if the hierarchy has one.
    pub fn local_vertex(&self) -> Option<&Channel> {
        self.local_vertex.as_ref()
    }

    /// The inter-PU data-sharing router, when sharing is on.
    pub fn router(&self) -> Option<&Router> {
        self.router.as_ref()
    }

    /// The pre-bound edge-channel power-gating controller, when gating is
    /// on.
    pub(crate) fn gating(&self) -> Option<&EdgeGating> {
        self.gating.as_ref()
    }

    /// The controller's resilience model, when the session's fault plan is
    /// active. `None` guarantees the fault-free accounting path runs
    /// untouched.
    pub fn resilience(&self) -> Option<&ResilienceModel> {
        self.resilience.as_ref()
    }

    /// Static power of the hybrid memory controller and misc logic.
    pub fn controller_power(&self) -> Power {
        CONTROLLER_POWER
    }

    /// Opens a fresh set of per-channel ledgers for one run.
    pub fn ledgers(&self) -> Ledgers {
        Ledgers::default()
    }
}

/// Per-run access ledgers, one [`AccessStats`] per hierarchy channel plus
/// the logic block. Accounting passes accumulate into these; the order of
/// `record_*` calls per channel is part of the bit-exactness contract
/// (float accumulation is order-sensitive).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Ledgers {
    /// Edge-stream channel ledger.
    pub edge: AccessStats,
    /// Off-chip global vertex ledger.
    pub global_vertex: AccessStats,
    /// On-chip local vertex ledger (untouched when the tier is absent).
    pub local_vertex: AccessStats,
    /// Processing units, router and controller.
    pub logic: AccessStats,
}

impl Ledgers {
    /// Closes the ledgers into the report's energy breakdown.
    pub fn into_breakdown(self) -> EnergyBreakdown {
        EnergyBreakdown {
            edge_memory: self.edge,
            offchip_vertex: self.global_vertex,
            onchip_vertex: self.local_vertex,
            logic: self.logic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_memsim::DeviceKind;

    #[test]
    fn lowering_resolves_all_five_presets() {
        let cases = [
            (
                SystemConfig::acc_dram(),
                DeviceKind::Dram,
                DeviceKind::Dram,
                false,
            ),
            (
                SystemConfig::acc_reram(),
                DeviceKind::Reram,
                DeviceKind::Reram,
                false,
            ),
            (
                SystemConfig::acc_sram_dram(),
                DeviceKind::Dram,
                DeviceKind::Dram,
                true,
            ),
            (
                SystemConfig::hyve(),
                DeviceKind::Reram,
                DeviceKind::Dram,
                true,
            ),
            (
                SystemConfig::hyve_opt(),
                DeviceKind::Reram,
                DeviceKind::Dram,
                true,
            ),
        ];
        for (cfg, edge, global, has_local) in cases {
            let spec = HierarchySpec::lower(&cfg);
            assert_eq!(spec.edge.device.kind(), edge, "{}", cfg.name);
            assert_eq!(spec.global_vertex.device.kind(), global, "{}", cfg.name);
            assert_eq!(spec.local_vertex.is_some(), has_local, "{}", cfg.name);
            assert_eq!(spec.edge.chips, EDGE_CHANNEL_CHIPS);
            assert_eq!(spec.global_vertex.chips, VERTEX_CHANNEL_CHIPS);
            assert_eq!(spec.data_sharing, cfg.data_sharing);
            assert_eq!(spec.power_gating, cfg.power_gating);
        }
    }

    #[test]
    fn build_constructs_each_device_exactly_once() {
        let before = device_constructions();
        let h = HierarchyInstance::build(HierarchySpec::lower(&SystemConfig::hyve_opt())).unwrap();
        assert_eq!(device_constructions() - before, 3, "edge + global + local");
        assert!(h.router().is_some());
        assert!(h.gating().is_some());
        assert_eq!(h.edge().role(), ChannelRole::EdgeStream);
        assert_eq!(h.edge().device().kind(), DeviceKind::Reram);
        assert_eq!(h.local_vertex().unwrap().device().kind(), DeviceKind::Sram);

        let before = device_constructions();
        let h = HierarchyInstance::build(HierarchySpec::lower(&SystemConfig::acc_dram())).unwrap();
        assert_eq!(device_constructions() - before, 2, "no local tier");
        assert!(h.router().is_none());
        assert!(h.gating().is_none());
        assert!(h.local_vertex().is_none());
    }

    #[test]
    fn cost_memo_matches_device_answers() {
        let h = HierarchyInstance::build(HierarchySpec::lower(&SystemConfig::hyve())).unwrap();
        for ch in [h.edge(), h.global_vertex(), h.local_vertex().unwrap()] {
            let d = ch.device();
            let c = ch.costs();
            assert_eq!(c.read_latency, d.read_latency());
            assert_eq!(c.write_latency, d.write_latency());
            assert_eq!(c.burst_period, d.burst_period());
            assert_eq!(c.sequential_write_period, d.sequential_write_period());
            assert_eq!(c.output_bits, d.output_bits());
            assert_eq!(c.background_power, d.background_power());
            assert_eq!(c.word_read_latency, d.word_read_latency());
            assert_eq!(c.word_write_latency, d.word_write_latency());
        }
    }

    #[test]
    fn gating_on_volatile_edge_rejected_at_build() {
        let mut spec = HierarchySpec::lower(&SystemConfig::acc_dram());
        spec.power_gating = true;
        assert!(matches!(
            HierarchyInstance::build(spec),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn register_file_tier_builds_through_the_same_path() {
        let spec = ChannelSpec {
            role: ChannelRole::LocalVertex,
            device: DeviceSpec::RegisterFile { entries: 64 },
            chips: 1,
        };
        let ch = Channel::build(&spec).unwrap();
        assert_eq!(ch.device().kind(), DeviceKind::RegisterFile);
        assert_eq!(ch.costs().output_bits, ch.device().output_bits());
        let bad = ChannelSpec {
            device: DeviceSpec::RegisterFile { entries: 0 },
            ..spec
        };
        assert!(Channel::build(&bad).is_err());
    }

    #[test]
    fn spec_display_is_reviewable() {
        let s = HierarchySpec::lower(&SystemConfig::hyve_opt()).to_string();
        assert!(s.contains("acc+HyVE-opt"));
        assert!(s.contains("ReRAM 4 Gbit/chip ×8"));
        assert!(s.contains("DRAM 4 Gbit/chip ×2"));
        assert!(s.contains("SRAM 2 MB"));
        assert!(s.contains("data sharing:  on"));
        assert!(s.contains("power gating:  on"));
        let none = HierarchySpec::lower(&SystemConfig::acc_dram()).to_string();
        assert!(none.contains("none (random off-chip access)"));
    }

    #[test]
    fn active_fault_plan_builds_resilience_without_extra_devices() {
        let mut spec = HierarchySpec::lower(&SystemConfig::hyve_opt());
        spec.faults = FaultPlan::parse("seed=1,reram-ber=1e-5,ecc=secded").unwrap();
        let before = device_constructions();
        let h = HierarchyInstance::build(spec).unwrap();
        assert_eq!(
            device_constructions() - before,
            3,
            "resilience model must not construct devices"
        );
        let model = h.resilience().expect("plan is active");
        assert_eq!(model.edge_chips(), EDGE_CHANNEL_CHIPS);
        assert_eq!(model.edge_banks_per_chip(), 8, "default ReRAM chip banks");
        assert_eq!(model.edge_cell_bits(), 1, "paper settles on SLC");
        // ECC stretches the memoized latencies past the raw device answers.
        let ch = h.edge();
        assert!(ch.costs().read_latency > ch.device().read_latency());
        assert!(ch.costs().background_power > ch.device().background_power());
        assert_eq!(ch.costs().output_bits, ch.device().output_bits());
    }

    #[test]
    fn inert_fault_plan_leaves_no_trace_on_the_instance() {
        let mut spec = HierarchySpec::lower(&SystemConfig::hyve());
        spec.faults = FaultPlan::none().with_seed(123);
        let h = HierarchyInstance::build(spec).unwrap();
        assert!(h.resilience().is_none());
        let c = h.edge().costs();
        assert_eq!(c.read_latency, h.edge().device().read_latency());
    }

    #[test]
    fn invalid_fault_plan_rejected_at_build() {
        let mut spec = HierarchySpec::lower(&SystemConfig::hyve());
        spec.faults.reram_ber = 2.0;
        assert!(matches!(
            HierarchyInstance::build(spec),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn ledgers_close_into_breakdown_fields() {
        let mut l = Ledgers::default();
        l.edge.record_read(64, Energy::from_pj(1.0), Time::ZERO);
        l.logic.record_background(Energy::from_pj(2.0));
        let b = l.into_breakdown();
        assert_eq!(b.edge_memory.bits_read, 64);
        assert_eq!(b.logic.background_energy, Energy::from_pj(2.0));
    }
}
