//! The HyVE execution engine: a deterministic phase-level simulator of
//! Algorithm 2 over the interval-block grid.
//!
//! The engine does two jobs at once:
//!
//! 1. **Functional execution** — runs the [`EdgeProgram`] over the grid in
//!    Algorithm 2's block order (super blocks scanned vertically, round-robin
//!    steps inside each), producing real vertex values validated against the
//!    sequential references.
//! 2. **Cost accounting** — every iteration makes exactly the same memory
//!    accesses regardless of values (the edge-centric model streams *all*
//!    edges every iteration, §7.1), so per-iteration energy/time is computed
//!    from the grid's static structure using the device models, then scaled
//!    by the iteration count the functional run produced. Per-edge time uses
//!    Eq. (1)'s pipelining: the bottleneck stage among edge supply, local
//!    vertex access and the processing unit sets the period.
//!
//! ## Scheduling (paper Algorithm 2 / Fig. 7)
//!
//! With `P` intervals and `N` PUs, the grid decomposes into `(P/N)²` *super
//! blocks* of `N×N` blocks. Destination intervals load once per super-block
//! column; source intervals load once per super block when data sharing is
//! on (each PU then reads other PUs' source memories through the router,
//! round-robin across `N` steps) and once per *step* when it is off.

use crate::accounting::{self, Workload};
use crate::config::SystemConfig;
use crate::error::CoreError;
use crate::exec::{fan_out_mut, BlockPlan, ExecutionStrategy};
use crate::hierarchy::{HierarchyInstance, HierarchySpec};
use crate::pu::ProcessingUnit;
use crate::stats::{PhaseTimes, RunReport, RunTrace};
use crate::trace::{SharedSink, TraceChannel, TraceEvent};
use hyve_algorithms::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_graph::{EdgeList, FlatGrid, GridGraph, VertexId};
use hyve_memsim::{FaultPlan, Time};

/// Cost of the one-shot preprocessing step: writing the partitioned edge
/// data into the edge memory and the initial vertex values into the global
/// vertex memory (§3.1: "during the algorithm initialization, the edge data
/// go through a one-shot preprocessing step and are written into the
/// memory"). Excluded from steady-state run reports, matching the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessingReport {
    /// Edge data written (bits), including block headers.
    pub edge_bits: u64,
    /// Initial vertex data written (bits).
    pub vertex_bits: u64,
    /// Total write energy.
    pub energy: hyve_memsim::Energy,
    /// Total write time (sequential stream).
    pub time: Time,
}

/// One PU's reusable per-run working memory, threaded through
/// [`fan_out_mut`] each iteration so the hot loop never allocates.
struct PuScratch<V> {
    /// Monotone: the PU's working copy of the snapshot. Accumulate: the
    /// PU's message accumulator.
    values: Vec<V>,
    /// Monotone only: which intervals this PU wrote earlier in the current
    /// pass (within-pass propagation makes a globally-clean interval
    /// locally dirty, which must veto skipping).
    touched: Vec<bool>,
    /// Whether `values` holds live data for the current iteration. False
    /// when every block was skipped or empty and the lazy snapshot copy was
    /// elided; the reduce ignores inactive PUs.
    active: bool,
    /// Non-empty blocks this PU walked in the current iteration. Always
    /// maintained (two `u64` writes per block — the `trace_overhead` bench
    /// pins this as unmeasurable); only *read* when a trace sink is
    /// attached.
    blocks_processed: u64,
    /// Non-empty blocks this PU elided via dirty-interval skipping.
    blocks_skipped: u64,
}

/// Whether `new` counts as a change against `old` for convergence and
/// dirty-interval tracking. A value that is not equal to itself (an IEEE
/// NaN escaping a user [`EdgeProgram`]) never registers: counting NaN as
/// "changed" would hold `changed` true forever and spin every converge-bound
/// run to its iteration cap (see the `Monotone` invariants on
/// [`ExecutionMode`]).
#[allow(clippy::eq_op)]
fn registers_change<V: PartialEq>(old: &V, new: &V) -> bool {
    new != old && new == new
}

/// The HyVE simulator core.
///
/// Crate-private since the session API landed: construct a
/// [`SimulationSession`](crate::SimulationSession) instead — the builder
/// validates the configuration and constructs the memory hierarchy once,
/// and every run borrows both.
#[derive(Debug, Clone)]
pub(crate) struct Engine {
    config: SystemConfig,
    hierarchy: HierarchyInstance,
    pu: ProcessingUnit,
}

impl Engine {
    /// Validates the configuration, lowers it into a
    /// [`HierarchySpec`] and constructs every device model once.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] from [`SystemConfig::validate`] or
    /// device-model construction.
    pub(crate) fn try_new(config: SystemConfig) -> Result<Self, CoreError> {
        Engine::try_new_with_faults(config, FaultPlan::none())
    }

    /// Like [`try_new`](Self::try_new), with a fault-injection plan lowered
    /// into the hierarchy spec. An inert plan ([`FaultPlan::none()`])
    /// produces exactly the engine `try_new` builds.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] from configuration or plan validation,
    /// or device-model construction.
    pub(crate) fn try_new_with_faults(
        config: SystemConfig,
        faults: FaultPlan,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let mut spec = HierarchySpec::lower(&config);
        spec.faults = faults;
        let hierarchy = HierarchyInstance::build(spec)?;
        Ok(Engine {
            config,
            hierarchy,
            pu: ProcessingUnit::new(),
        })
    }

    /// The engine's configuration.
    pub(crate) fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The fully-constructed memory hierarchy, built at session build time
    /// and reused by every run.
    pub(crate) fn hierarchy(&self) -> &HierarchyInstance {
        &self.hierarchy
    }

    /// Picks the interval count `P` for a graph: the smallest multiple of
    /// the PU count such that `2·N` intervals (N source + N destination
    /// sections) fit in on-chip memory. Configurations without on-chip
    /// vertex memory use `P = N` (scheduling granularity only).
    pub fn plan_intervals<P: EdgeProgram>(&self, program: &P, num_vertices: u32) -> u32 {
        let n = self.config.num_pus;
        let Some(sram_mb) = self.config.sram_mb else {
            return n.min(num_vertices.max(1));
        };
        let state_words = match program.mode() {
            // Accumulate programs keep value + accumulator resident.
            ExecutionMode::Accumulate => 2u64,
            ExecutionMode::Monotone => 1u64,
        };
        let bytes_per_vertex = (u64::from(program.value_bits()).div_ceil(8)).max(1) * state_words;
        // Effective capacity: the physical SRAM shrunk by the dataset scale,
        // so the vertex-data : SRAM ratio matches the full-size experiment.
        let sram_bytes = (sram_mb * 1024 * 1024 / u64::from(self.config.dataset_scale)).max(1);
        let needed = 2 * u64::from(n) * u64::from(num_vertices) * bytes_per_vertex;
        let min_p = needed.div_ceil(sram_bytes).max(1) as u32;
        // Round up to a multiple of N, cap at the vertex count.
        let p = min_p.div_ceil(n) * n;
        p.min(num_vertices.max(1)).max(1)
    }

    /// Partitions the edge list with the planned interval count and runs.
    /// Test-only shorthand: the session layer has its own report-only
    /// wrappers.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and partitioning errors.
    #[cfg(test)]
    pub fn run_on_edge_list<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<RunReport, CoreError> {
        self.run_on_edge_list_with_values(program, graph)
            .map(|(report, _)| report)
    }

    /// Like [`run_on_edge_list`](Self::run_on_edge_list), also returning the
    /// final vertex values.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and partitioning errors.
    pub fn run_on_edge_list_with_values<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        let p = self.plan_intervals(program, graph.num_vertices());
        let grid = GridGraph::partition(graph, p)?;
        self.run_with_values(program, &grid)
    }

    /// Runs over an existing grid. The grid's interval count must be a
    /// multiple of the PU count.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unschedulable`] when `P mod N ≠ 0`; configuration errors
    /// otherwise.
    #[cfg(test)]
    pub fn run<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<RunReport, CoreError> {
        self.run_with_values(program, grid).map(|(r, _)| r)
    }

    /// Like [`run`](Self::run), also returning final vertex values.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_values<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        self.run_traced(program, grid, ExecutionStrategy::Sequential, true, None)
            .map(|(report, values, _)| (report, values))
    }

    /// Runs under an explicit [`ExecutionStrategy`], returning the report,
    /// the final vertex values, and the per-iteration [`RunTrace`]. Any
    /// thread count yields output bit-identical to the sequential path:
    /// per-PU outcomes are pure functions of the iteration-start snapshot
    /// and reduce in fixed PU order (see [`crate::exec`]).
    ///
    /// `skip_clean` enables dirty-interval skipping for monotone programs
    /// (see [`functional_run`](Self::functional_run)); it is a pure
    /// optimisation toggle — results are bit-identical either way.
    ///
    /// `sink` is the optional trace receiver. Tracing is observation-only:
    /// every emitted [`TraceEvent`] copies values this function computed
    /// anyway, so reports and values are bit-identical with or without a
    /// sink (the golden suite pins this).
    ///
    /// # Errors
    ///
    /// [`CoreError::Unschedulable`] when the grid's interval count is below
    /// the PU count or not divisible by it;
    /// [`CoreError::MaxIterationsExceeded`] (carrying the partial report)
    /// when a converge-bound program is still changing values at its
    /// iteration cap.
    pub(crate) fn run_traced<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
        strategy: ExecutionStrategy,
        skip_clean: bool,
        sink: Option<&SharedSink>,
    ) -> Result<(RunReport, Vec<P::Value>, RunTrace), CoreError> {
        let n = self.config.num_pus;
        let p = grid.num_intervals();
        if p < n {
            return Err(CoreError::Unschedulable {
                message: format!("{p} intervals < {n} processing units"),
            });
        }
        if !p.is_multiple_of(n) {
            return Err(CoreError::Unschedulable {
                message: format!("{p} intervals not divisible by {n} processing units"),
            });
        }
        let schedule = crate::schedule::SuperBlockSchedule::new(p, n).expect("shape checked above");
        // The contiguous SoA edge stream is memoized on the grid (built on
        // first run, invalidated on mutation), and the per-run artifacts
        // (block plan, out-degrees) derive from it in a single pass each
        // instead of per-iteration rescans.
        let flat = grid.flat();
        let plan = BlockPlan::build(flat, &schedule, strategy);
        let meta = GraphMeta {
            num_vertices: grid.num_vertices(),
            num_edges: grid.num_edges(),
            out_degrees: flat.out_degrees().to_vec(),
        };

        if let Some(sink) = sink {
            sink.record(&TraceEvent::RunStart {
                algorithm: program.name(),
                config: self.config.name,
                num_vertices: grid.num_vertices(),
                num_edges: grid.num_edges(),
                intervals: p,
                num_pus: n,
            });
        }

        // ---- functional pass -------------------------------------------
        let (values, trace) = self.functional_run(
            program, grid, flat, &meta, &plan, strategy, skip_clean, sink,
        );

        // ---- cost pass --------------------------------------------------
        let w = Workload::for_run(program, grid, &plan, self.config.num_pus);
        let report = self.account(program, trace.iterations, &w);

        if let Some(sink) = sink {
            sink.record(&TraceEvent::Phases {
                phases: report.phases,
            });
            let b = &report.breakdown;
            for (channel, stats) in [
                (TraceChannel::EdgeMemory, b.edge_memory),
                (TraceChannel::OffchipVertex, b.offchip_vertex),
                (TraceChannel::OnchipVertex, b.onchip_vertex),
                (TraceChannel::Logic, b.logic),
            ] {
                sink.record(&TraceEvent::ChannelLedger { channel, stats });
            }
            if let Some(gating) = self.hierarchy.gating() {
                sink.record(&TraceEvent::GatingTransitions {
                    transitions: gating.transitions(w.edge_bits, trace.iterations),
                });
            }
            if self.hierarchy.router().is_some() {
                let (words, reroutes) = accounting::router_traffic(&w);
                let iters = u64::from(trace.iterations);
                sink.record(&TraceEvent::RouterTraffic {
                    words: words * iters,
                    reroutes: reroutes * iters,
                });
            }
            if let Some(rel) = &report.reliability {
                sink.record(&TraceEvent::Reliability {
                    corrected: rel.corrected,
                    uncorrectable: rel.uncorrectable,
                    retries: rel.retries,
                });
                for r in &rel.remaps {
                    sink.record(&TraceEvent::BankRemap {
                        chip: r.chip,
                        bank: r.bank,
                        spare_chip: r.spare_chip,
                        spare_bank: r.spare_bank,
                    });
                }
            }
            sink.record(&TraceEvent::RunEnd {
                iterations: report.iterations,
                edges_processed: report.edges_processed,
            });
        }

        // A converge-bound program that was still changing values when it
        // hit its cap did not finish its job: surface that as a typed error
        // carrying the partial report (the trace artifact above is complete
        // either way, so observers see the capped run).
        if let IterationBound::Converge { max } = program.bound() {
            if trace.iterations >= max && trace.changed.last().copied().unwrap_or(false) {
                return Err(CoreError::MaxIterationsExceeded {
                    algorithm: program.name(),
                    max_iterations: max,
                    report: Box::new(report),
                });
            }
        }
        Ok((report, values, trace))
    }

    /// Cost of the one-shot initialization write (§3.1). ReRAM's limited
    /// write bandwidth makes this slower than on DRAM, but it happens once:
    /// steady-state execution never writes the edge memory again.
    ///
    /// # Errors
    ///
    /// None today; kept fallible for future grid-dependent validation.
    pub fn preprocessing_report<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<PreprocessingReport, CoreError> {
        let edge_mem = self.hierarchy.edge().device();
        let vertex_mem = self.hierarchy.global_vertex().device();
        let edge_bits = grid.edge_storage_bits();
        let vertex_bits = grid.vertex_storage_bits(u64::from(program.value_bits()));
        let edge_accesses = edge_bits.div_ceil(u64::from(edge_mem.output_bits())).max(1);
        let vertex_accesses = vertex_bits
            .div_ceil(u64::from(vertex_mem.output_bits()))
            .max(1);
        let energy = edge_mem.write_energy(edge_bits) + vertex_mem.write_energy(vertex_bits);
        let time = edge_mem.write_latency() * edge_accesses as f64
            + vertex_mem.write_latency() * vertex_accesses as f64;
        Ok(PreprocessingReport {
            edge_bits,
            vertex_bits,
            energy,
            time,
        })
    }

    /// Executes the program over the flattened grid, one snapshot-based
    /// pass per iteration.
    ///
    /// Each PU walks its own blocks (in schedule order) against the
    /// iteration-start snapshot — accumulate programs into a per-PU
    /// accumulator, monotone programs into a per-PU working copy that sees
    /// the PU's *own* earlier writes. The per-PU outcomes then reduce into
    /// the global values in **fixed PU order** via [`EdgeProgram::merge`],
    /// so the result is a pure function of `(program, grid, schedule)` and
    /// is bit-identical for every [`ExecutionStrategy`]. Monotone merges are
    /// semilattice joins (min for BFS/CC/SSSP), so the reduction preserves
    /// monotonicity and converges to the same fixpoint as the references.
    ///
    /// ## Scratch reuse
    ///
    /// Each PU owns one [`PuScratch`] for the whole run, lent back to it
    /// every iteration through [`fan_out_mut`]: accumulate mode refills it
    /// with the identity instead of re-allocating, monotone mode copies the
    /// snapshot into it instead of cloning — and only lazily, on the first
    /// block the PU actually processes, so a fully-skipped PU costs nothing
    /// and is ignored by the reduce (merging a PU whose local values equal
    /// the snapshot is a no-op, since the join is idempotent).
    ///
    /// ## Dirty-interval skipping (`skip_clean`, monotone only)
    ///
    /// A block `(I, J)` may be skipped in iteration `k` when interval `I`
    /// is *clean* — no vertex of `I` changed in iteration `k-1`'s reduce —
    /// and the PU has not touched `I` itself earlier in this pass (for
    /// undirected programs the same must hold for `J`, which also acts as a
    /// message source). A clean, untouched interval holds exactly the
    /// values it held at the same point of iteration `k-1`, so the skipped
    /// block would re-send precisely the messages it sent then — messages
    /// the destination already absorbed, and absorbing a message twice is a
    /// no-op for an idempotent join. Values, per-iteration `changed` flags,
    /// iteration counts and therefore [`RunReport`]s are bit-identical with
    /// the skip on or off (the cost pass charges full sweeps per §7.1
    /// regardless — accounting is untouched by design; see the proptest
    /// equivalence suite and DESIGN.md for the full argument).
    #[allow(clippy::too_many_arguments)]
    fn functional_run<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
        flat: &FlatGrid,
        meta: &GraphMeta,
        plan: &BlockPlan,
        strategy: ExecutionStrategy,
        skip_clean: bool,
        sink: Option<&SharedSink>,
    ) -> (Vec<P::Value>, RunTrace) {
        let nv = meta.num_vertices as usize;
        let p = flat.num_intervals() as usize;
        let partition = grid.partition_info();
        let mut values: Vec<P::Value> = (0..meta.num_vertices)
            .map(|v| program.init(VertexId::new(v), meta))
            .collect();
        let bound = program.bound();
        let mode = program.mode();
        let undirected = program.undirected();
        let mut iterations = 0;
        let mut changed_flags = Vec::new();

        let mut scratch: Vec<PuScratch<P::Value>> = (0..plan.num_pus())
            .map(|_| PuScratch {
                values: vec![program.identity(); nv],
                touched: vec![false; p],
                active: false,
                blocks_processed: 0,
                blocks_skipped: 0,
            })
            .collect();
        // Iteration 1 scans every block — unless the program guarantees
        // identity-valued sources scatter only absorbed messages, in which
        // case only the intervals seeded away from the identity (the source
        // interval, for BFS/SSSP) start dirty and the first sweep is almost
        // free. The plain `!=` is deliberate: a NaN init value compares
        // unequal to everything and therefore conservatively stays dirty.
        let mut dirty = vec![true; p];
        if matches!(mode, ExecutionMode::Monotone) && program.scatter_absorbs_identity() {
            let identity = program.identity();
            dirty.fill(false);
            for (v, value) in values.iter().enumerate() {
                if *value != identity {
                    dirty[partition.interval_of(VertexId::new(v as u32)) as usize] = true;
                }
            }
        }
        let mut dirty_next = vec![false; p];

        for _ in 0..bound.max_iterations() {
            iterations += 1;
            // Fan the per-PU block work out; each worker reads only the
            // iteration-start snapshot plus its own scratch.
            let snapshot = &values;
            let dirty_now = &dirty;
            fan_out_mut(strategy, &mut scratch, |pu, scratch| match mode {
                ExecutionMode::Accumulate => {
                    scratch.active = true;
                    // Accumulate mode walks every block unconditionally.
                    scratch.blocks_processed = plan.blocks(pu).len() as u64;
                    scratch.blocks_skipped = 0;
                    scratch.values.fill(program.identity());
                    let acc = &mut scratch.values;
                    for &(src, dst) in plan.blocks(pu) {
                        for e in flat.block_edges(src, dst) {
                            let msg = program.scatter(snapshot[e.src.index()], &e, meta);
                            acc[e.dst.index()] = program.merge(acc[e.dst.index()], msg);
                            if undirected {
                                let msg =
                                    program.scatter(snapshot[e.dst.index()], &e.reversed(), meta);
                                acc[e.src.index()] = program.merge(acc[e.src.index()], msg);
                            }
                        }
                    }
                }
                ExecutionMode::Monotone => {
                    scratch.active = false;
                    scratch.blocks_processed = 0;
                    scratch.blocks_skipped = 0;
                    scratch.touched.fill(false);
                    for &(src, dst) in plan.blocks(pu) {
                        let range = flat.block_range(src, dst);
                        if range.is_empty() {
                            continue;
                        }
                        let (si, di) = (src as usize, dst as usize);
                        let src_clean = !dirty_now[si] && !scratch.touched[si];
                        let clean =
                            src_clean && (!undirected || (!dirty_now[di] && !scratch.touched[di]));
                        if skip_clean && clean {
                            scratch.blocks_skipped += 1;
                            continue;
                        }
                        scratch.blocks_processed += 1;
                        if !scratch.active {
                            // Lazy snapshot copy: deferred past skipped and
                            // empty blocks so a quiescent PU never pays it.
                            scratch.values.copy_from_slice(snapshot);
                            scratch.active = true;
                        }
                        let local = &mut scratch.values;
                        for e in flat.edges_in(range) {
                            let msg = program.scatter(local[e.src.index()], &e, meta);
                            let cur = local[e.dst.index()];
                            let merged = program.merge(cur, msg);
                            if registers_change(&cur, &merged) {
                                local[e.dst.index()] = merged;
                                scratch.touched[di] = true;
                            }
                            if undirected {
                                let msg =
                                    program.scatter(local[e.dst.index()], &e.reversed(), meta);
                                let cur = local[e.src.index()];
                                let merged = program.merge(cur, msg);
                                if registers_change(&cur, &merged) {
                                    local[e.src.index()] = merged;
                                    scratch.touched[si] = true;
                                }
                            }
                        }
                    }
                }
            });

            // Reduce in fixed PU order — the determinism anchor.
            let mut changed = false;
            dirty_next.fill(false);
            match mode {
                ExecutionMode::Accumulate => {
                    let (first, rest) = scratch.split_at_mut(1);
                    let total = &mut first[0].values;
                    for acc in rest.iter() {
                        for (t, a) in total.iter_mut().zip(&acc.values) {
                            *t = program.merge(*t, *a);
                        }
                    }
                    for v in 0..nv {
                        let new = program.apply(VertexId::new(v as u32), total[v], values[v], meta);
                        if registers_change(&values[v], &new) {
                            changed = true;
                        }
                        values[v] = new;
                    }
                }
                ExecutionMode::Monotone => {
                    // A PU's local values differ from the snapshot only in
                    // intervals it touched (every local write is gated on a
                    // registered change), and joining a value the global
                    // state already absorbed is a no-op — so merging only
                    // the touched intervals is exact, not an approximation.
                    for local in scratch.iter().filter(|s| s.active) {
                        for (i, _) in local.touched.iter().enumerate().filter(|(_, t)| **t) {
                            for v in partition.interval_vertices(i as u32) {
                                let vi = v.index();
                                let cur = values[vi];
                                let merged = program.merge(cur, local.values[vi]);
                                if registers_change(&cur, &merged) {
                                    values[vi] = merged;
                                    changed = true;
                                    dirty_next[i] = true;
                                }
                            }
                        }
                    }
                }
            }
            changed_flags.push(changed);
            if let Some(sink) = sink {
                sink.record(&TraceEvent::IterationEnd {
                    iteration: iterations,
                    changed,
                    blocks_processed: scratch.iter().map(|s| s.blocks_processed).sum(),
                    blocks_skipped: scratch.iter().map(|s| s.blocks_skipped).sum(),
                });
            }
            std::mem::swap(&mut dirty, &mut dirty_next);
            if matches!(bound, IterationBound::Converge { .. }) && !changed {
                break;
            }
        }
        (
            values,
            RunTrace {
                iterations,
                changed: changed_flags,
            },
        )
    }

    /// Computes the full energy/time report for `iterations` identical
    /// passes over the grid, by orchestrating the phase-level passes in
    /// [`crate::accounting`] over the session's [`HierarchyInstance`].
    ///
    /// Every iteration makes exactly the same accesses (§7.1), so the
    /// passes run once and the ledgers scale by the iteration count the
    /// functional run produced.
    fn account<P: EdgeProgram>(&self, program: &P, iterations: u32, w: &Workload) -> RunReport {
        let hierarchy = &self.hierarchy;
        let w = *w;
        let mut ledgers = hierarchy.ledgers();

        let edge = accounting::edge_stream(hierarchy.edge(), &w);
        let (loading_time, updating_time, processing_time, overhead_time) =
            match hierarchy.local_vertex() {
                Some(local) => {
                    let traffic = accounting::interval_traffic(
                        hierarchy.global_vertex(),
                        local,
                        hierarchy.spec().data_sharing,
                        &w,
                        &mut ledgers,
                    );
                    let processing = accounting::onchip_processing(
                        hierarchy.edge(),
                        local,
                        &self.pu,
                        &w,
                        &mut ledgers,
                    );
                    let overhead = match hierarchy.router() {
                        Some(router) => accounting::router_overhead(router, &w, &mut ledgers),
                        None => Time::ZERO,
                    };
                    (traffic.loading, traffic.updating, processing, overhead)
                }
                None => {
                    // No on-chip tier: every vertex touch is a random access
                    // straight at the off-chip device.
                    let processing = accounting::random_access(
                        hierarchy.global_vertex(),
                        &self.pu,
                        &w,
                        &mut ledgers,
                    );
                    (Time::ZERO, Time::ZERO, processing, Time::ZERO)
                }
            };
        edge.commit(&w, &mut ledgers);

        // ---- iteration time & scaling ------------------------------------
        // Loading is double-buffered against processing: the controller
        // prefetches the next intervals while PUs process the current ones,
        // so only the non-overlapped remainder extends the iteration.
        let busy = processing_time.max(edge.stream_time);
        let exposed_loading = (loading_time - busy).max(Time::ZERO);
        let iteration_time = exposed_loading + busy + updating_time + overhead_time;
        let iters = f64::from(iterations);
        let mut phases = PhaseTimes {
            loading: exposed_loading * iters,
            processing: busy * iters,
            updating: updating_time * iters,
            overhead: overhead_time * iters,
        };
        accounting::scale_by_iterations(&mut ledgers, iters);

        let mut total_time = iteration_time * iters;
        // Reliability pass (only when the session's fault plan is active):
        // interprets the plan against the run-total ledgers, single-threaded
        // from the plan's seed — outcomes are identical across execution
        // strategies by construction. Corrections, retry backoff and remap
        // re-streams expose serially, extending overhead and the leakage
        // window.
        let reliability = hierarchy.resilience().map(|model| {
            let outcome = accounting::reliability(model, hierarchy, &w, iterations, &mut ledgers);
            phases.overhead += outcome.exposed_time;
            total_time += outcome.exposed_time;
            outcome.report
        });
        accounting::background(
            hierarchy,
            &self.pu,
            total_time,
            iterations,
            &w,
            &mut ledgers,
        );

        RunReport {
            algorithm: program.name(),
            config: self.config.name,
            iterations,
            edges_processed: w.ne * w.traversal_factor * u64::from(iterations),
            intervals: w.p,
            phases,
            breakdown: ledgers.into_breakdown(),
            reliability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_algorithms::{reference, Bfs, ConnectedComponents, PageRank, SpMv, Sssp};
    use hyve_graph::{Csr, DatasetProfile, Edge};

    fn small_graph() -> EdgeList {
        DatasetProfile::youtube_scaled().generate(11)
    }

    /// Test shorthand: sessions own engine construction in the public API.
    fn engine_for(cfg: SystemConfig) -> Engine {
        Engine::try_new(cfg).unwrap()
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve_opt());
        let (_, values) = engine
            .run_on_edge_list_with_values(&PageRank::new(5), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        let expect = reference::pagerank(&csr, 5, 0.85);
        for (a, b) in values.iter().zip(expect.iter()) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1e-6), "{a} vs {b}");
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve());
        let src = VertexId::new(0);
        let (_, values) = engine
            .run_on_edge_list_with_values(&Bfs::new(src), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        assert_eq!(values, reference::bfs_levels(&csr, src));
    }

    #[test]
    fn cc_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve_opt());
        let (_, values) = engine
            .run_on_edge_list_with_values(&ConnectedComponents::new(), &g)
            .unwrap();
        assert_eq!(values, reference::connected_components(&g));
    }

    #[test]
    fn sssp_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve_opt());
        let src = VertexId::new(1);
        let (_, values) = engine
            .run_on_edge_list_with_values(&Sssp::new(src), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        let expect = reference::sssp_distances(&csr, src);
        for (a, b) in values.iter().zip(expect.iter()) {
            if b.is_infinite() {
                assert!(a.is_infinite());
            } else {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn spmv_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::acc_sram_dram());
        let spmv = SpMv::new();
        let (_, values) = engine.run_on_edge_list_with_values(&spmv, &g).unwrap();
        let x: Vec<f32> = (0..g.num_vertices())
            .map(|v| spmv.input(VertexId::new(v)))
            .collect();
        let expect = reference::spmv(&g, &x);
        for (a, b) in values.iter().zip(expect.iter()) {
            assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn all_configs_run_pagerank() {
        let g = small_graph();
        for cfg in [
            SystemConfig::acc_dram(),
            SystemConfig::acc_reram(),
            SystemConfig::acc_sram_dram(),
            SystemConfig::hyve(),
            SystemConfig::hyve_opt(),
        ] {
            let engine = engine_for(cfg);
            let report = engine.run_on_edge_list(&PageRank::new(3), &g).unwrap();
            assert!(report.energy().as_pj() > 0.0, "{}", report.config);
            assert!(report.elapsed().as_ns() > 0.0);
            assert!(report.mteps_per_watt() > 0.0);
        }
    }

    #[test]
    fn hyve_beats_conventional_hierarchies_on_energy_efficiency() {
        // The headline Fig. 16 ordering.
        let g = small_graph();
        let eff = |cfg: SystemConfig| {
            engine_for(cfg)
                .run_on_edge_list(&PageRank::new(5), &g)
                .unwrap()
                .mteps_per_watt()
        };
        let dram = eff(SystemConfig::acc_dram());
        let sd = eff(SystemConfig::acc_sram_dram());
        let hyve = eff(SystemConfig::hyve());
        let opt = eff(SystemConfig::hyve_opt());
        assert!(hyve > sd, "HyVE {hyve} must beat SD {sd}");
        assert!(sd > dram, "SD {sd} must beat acc+DRAM {dram}");
        assert!(opt > hyve, "optimizations must help: {opt} vs {hyve}");
    }

    #[test]
    fn data_sharing_reduces_offchip_reads() {
        let g = small_graph();
        let base = engine_for(SystemConfig::hyve().with_data_sharing(false))
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        let shared = engine_for(SystemConfig::hyve())
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        assert!(
            shared.breakdown.offchip_vertex.bits_read < base.breakdown.offchip_vertex.bits_read
        );
    }

    #[test]
    fn power_gating_cuts_edge_background() {
        let g = small_graph();
        let base = engine_for(SystemConfig::hyve())
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        let gated = engine_for(SystemConfig::hyve().with_power_gating(true))
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        assert!(
            gated.breakdown.edge_memory.background_energy
                < base.breakdown.edge_memory.background_energy * 0.5
        );
    }

    #[test]
    fn interval_planning_respects_sram() {
        // Use scale 1 so the arithmetic is direct: 2 MB SRAM, PR needs
        // 16 bytes/vertex resident (64-bit value × 2 states);
        // 2·8·nv·16 ≤ 2 MB ⇒ nv ≤ 8192 for P = 8.
        let engine = engine_for(SystemConfig::hyve_opt().with_dataset_scale(1));
        let pr = PageRank::new(1);
        assert_eq!(engine.plan_intervals(&pr, 8_000), 8);
        let p = engine.plan_intervals(&pr, 100_000);
        assert!(p > 8 && p.is_multiple_of(8), "got {p}");
        // The dataset scale shrinks the effective SRAM, raising P.
        let scaled = engine_for(SystemConfig::hyve_opt().with_dataset_scale(64));
        assert!(scaled.plan_intervals(&pr, 8_000) > 8);
        // No SRAM: P = N.
        let raw = engine_for(SystemConfig::acc_dram());
        assert_eq!(raw.plan_intervals(&pr, 100_000), 8);
    }

    #[test]
    fn run_rejects_mismatched_grid() {
        let g = small_graph();
        let grid = GridGraph::partition(&g, 3).unwrap(); // not divisible by 8
        let engine = engine_for(SystemConfig::hyve());
        assert!(matches!(
            engine.run(&PageRank::new(1), &grid),
            Err(CoreError::Unschedulable { .. })
        ));
    }

    fn unschedulable_message(engine: &Engine, grid: &GridGraph) -> String {
        match engine.run(&PageRank::new(1), grid) {
            Err(CoreError::Unschedulable { message }) => message,
            other => panic!("expected Unschedulable, got {other:?}"),
        }
    }

    #[test]
    fn too_few_intervals_reports_the_shortage() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve()); // 8 PUs
        let grid = GridGraph::partition(&g, 4).unwrap();
        assert_eq!(
            unschedulable_message(&engine, &grid),
            "4 intervals < 8 processing units"
        );
    }

    #[test]
    fn indivisible_intervals_report_the_divisibility() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve()); // 8 PUs
        let grid = GridGraph::partition(&g, 12).unwrap();
        assert_eq!(
            unschedulable_message(&engine, &grid),
            "12 intervals not divisible by 8 processing units"
        );
    }

    #[test]
    fn skipping_off_matches_skipping_on_bit_for_bit() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve_opt());
        let grid = GridGraph::partition(&g, 16).unwrap();
        for threads in [0usize, 3] {
            let strategy = match threads {
                0 => ExecutionStrategy::Sequential,
                t => ExecutionStrategy::Parallel { threads: t },
            };
            let (fast_report, fast_values, fast_trace) = engine
                .run_traced(&Sssp::new(VertexId::new(0)), &grid, strategy, true, None)
                .unwrap();
            let (full_report, full_values, full_trace) = engine
                .run_traced(&Sssp::new(VertexId::new(0)), &grid, strategy, false, None)
                .unwrap();
            assert_eq!(fast_report, full_report);
            assert_eq!(fast_values, full_values);
            assert_eq!(fast_trace, full_trace);
        }
    }

    #[test]
    fn nan_values_never_register_as_changed() {
        assert!(registers_change(&1.0f32, &2.0));
        assert!(!registers_change(&1.0f32, &1.0));
        assert!(!registers_change(&1.0f32, &f32::NAN));
        assert!(!registers_change(&f32::NAN, &f32::NAN));
        // NaN as the *old* value still lets a real value land.
        assert!(registers_change(&f32::NAN, &1.0));
    }

    #[test]
    fn undirected_program_doubles_traversals() {
        // A 16-chain takes several iterations to converge, so capping CC at
        // one iteration is a non-convergence: the run surfaces the typed
        // error, and the partial report it carries still shows the doubled
        // (undirected) traversal count for that one iteration.
        let g = EdgeList::from_edges(16, (0..15).map(|i| Edge::new(i, i + 1))).unwrap();
        let engine = engine_for(SystemConfig::hyve().with_num_pus(2));
        match engine.run_on_edge_list(&ConnectedComponents::new().with_max_iterations(1), &g) {
            Err(CoreError::MaxIterationsExceeded {
                algorithm,
                max_iterations,
                report,
            }) => {
                assert_eq!(algorithm, "CC");
                assert_eq!(max_iterations, 1);
                assert_eq!(report.iterations, 1);
                assert_eq!(report.edges_processed, 2 * 15);
            }
            other => panic!("expected MaxIterationsExceeded, got {other:?}"),
        }
    }

    #[test]
    fn converged_runs_do_not_raise_max_iterations() {
        // With enough headroom the same program converges and returns Ok.
        let g = EdgeList::from_edges(16, (0..15).map(|i| Edge::new(i, i + 1))).unwrap();
        let engine = engine_for(SystemConfig::hyve().with_num_pus(2));
        let cc = engine
            .run_on_edge_list(&ConnectedComponents::new(), &g)
            .unwrap();
        assert!(cc.iterations > 1);
    }

    #[test]
    fn preprocessing_is_one_shot_and_write_dominated() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve());
        let grid = GridGraph::partition(&g, 8).unwrap();
        let pre = engine
            .preprocessing_report(&PageRank::new(10), &grid)
            .unwrap();
        assert_eq!(pre.edge_bits, grid.edge_storage_bits());
        assert!(pre.energy.as_pj() > 0.0);
        assert!(pre.time.as_ns() > 0.0);
        // ReRAM's slow writes: preprocessing on HyVE takes longer than on
        // the all-DRAM hierarchy, but costs less energy per bit is not
        // required — only the latency asymmetry is structural.
        let dram_pre = engine_for(SystemConfig::acc_dram())
            .preprocessing_report(&PageRank::new(10), &grid)
            .unwrap();
        assert!(
            pre.time > dram_pre.time,
            "{} vs {}",
            pre.time,
            dram_pre.time
        );
    }

    #[test]
    fn report_has_consistent_breakdown() {
        let g = small_graph();
        let report = engine_for(SystemConfig::hyve_opt())
            .run_on_edge_list(&PageRank::new(2), &g)
            .unwrap();
        let b = &report.breakdown;
        let sum = b.edge_memory.total_energy()
            + b.offchip_vertex.total_energy()
            + b.onchip_vertex.total_energy()
            + b.logic.total_energy();
        assert!((sum.as_pj() - report.energy().as_pj()).abs() < 1.0);
        assert!(b.memory_fraction() > 0.3 && b.memory_fraction() < 1.0);
    }

    #[test]
    fn devices_constructed_once_per_session_not_per_run() {
        let g = small_graph();
        let before = crate::hierarchy::device_constructions();
        let engine = engine_for(SystemConfig::hyve_opt());
        let built = crate::hierarchy::device_constructions();
        // hyve_opt has three channels: edge ReRAM, global DRAM, local SRAM.
        assert_eq!(built - before, 3);

        // Repeated runs and preprocessing reports reuse the same instance.
        engine.run_on_edge_list(&PageRank::new(2), &g).unwrap();
        engine
            .run_on_edge_list(&Bfs::new(VertexId::new(0)), &g)
            .unwrap();
        let grid = GridGraph::partition(&g, 8).unwrap();
        engine
            .preprocessing_report(&PageRank::new(1), &grid)
            .unwrap();
        assert_eq!(crate::hierarchy::device_constructions(), built);
    }

    #[test]
    fn fault_runs_report_reliability_and_stay_seed_deterministic() {
        let g = small_graph();
        let plan = FaultPlan::parse("seed=2018,reram-ber=1e-5,dram-ber=1e-9,ecc=secded").unwrap();
        let engine = Engine::try_new_with_faults(SystemConfig::hyve_opt(), plan.clone()).unwrap();
        let a = engine.run_on_edge_list(&PageRank::new(5), &g).unwrap();
        let rel = a.reliability.as_ref().expect("active plan reports");
        assert!(rel.corrected > 0, "1e-5 BER over the edge stream corrects");
        assert!(rel.remaps.is_empty(), "no persistent faults configured");
        // Same seed, fresh engine: bit-identical outcome.
        let again = Engine::try_new_with_faults(SystemConfig::hyve_opt(), plan)
            .unwrap()
            .run_on_edge_list(&PageRank::new(5), &g)
            .unwrap();
        assert_eq!(a, again);
        // Different seed: the report may differ, the run still completes.
        let other = Engine::try_new_with_faults(
            SystemConfig::hyve_opt(),
            FaultPlan::parse("seed=7,reram-ber=1e-5,dram-ber=1e-9,ecc=secded").unwrap(),
        )
        .unwrap()
        .run_on_edge_list(&PageRank::new(5), &g)
        .unwrap();
        assert!(other.reliability.is_some());
    }

    #[test]
    fn stuck_bank_run_completes_degraded_via_sparing() {
        let g = small_graph();
        let plan = FaultPlan::parse("seed=1,stuck-bank=0:3,stuck-bank=2:1").unwrap();
        let faulty = Engine::try_new_with_faults(SystemConfig::hyve(), plan).unwrap();
        let report = faulty.run_on_edge_list(&PageRank::new(3), &g).unwrap();
        let rel = report.reliability.as_ref().expect("plan is active");
        assert_eq!(rel.remaps.len(), 2, "both stuck banks spared");
        assert_eq!((rel.remaps[0].chip, rel.remaps[0].bank), (0, 3));
        assert!(rel.degraded_fraction > 0.0);
        // Degradation costs extra edge transfers relative to a clean run.
        let clean = engine_for(SystemConfig::hyve())
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        assert!(clean.reliability.is_none());
        assert!(
            report.breakdown.edge_memory.bits_read > clean.breakdown.edge_memory.bits_read,
            "remapped banks re-stream their share"
        );
    }
}
