//! The HyVE execution engine: a deterministic phase-level simulator of
//! Algorithm 2 over the interval-block grid.
//!
//! The engine does two jobs at once:
//!
//! 1. **Functional execution** — runs the [`EdgeProgram`] over the grid in
//!    Algorithm 2's block order (super blocks scanned vertically, round-robin
//!    steps inside each), producing real vertex values validated against the
//!    sequential references.
//! 2. **Cost accounting** — every iteration makes exactly the same memory
//!    accesses regardless of values (the edge-centric model streams *all*
//!    edges every iteration, §7.1), so per-iteration energy/time is computed
//!    from the grid's static structure using the device models, then scaled
//!    by the iteration count the functional run produced. Per-edge time uses
//!    Eq. (1)'s pipelining: the bottleneck stage among edge supply, local
//!    vertex access and the processing unit sets the period.
//!
//! ## Scheduling (paper Algorithm 2 / Fig. 7)
//!
//! With `P` intervals and `N` PUs, the grid decomposes into `(P/N)²` *super
//! blocks* of `N×N` blocks. Destination intervals load once per super-block
//! column; source intervals load once per super block when data sharing is
//! on (each PU then reads other PUs' source memories through the router,
//! round-robin across `N` steps) and once per *step* when it is off.

use crate::config::{EdgeMemoryKind, SystemConfig, VertexMemoryKind};
use crate::error::CoreError;
use crate::exec::{fan_out, BlockPlan, ExecutionStrategy};
use crate::pu::ProcessingUnit;
use crate::router::Router;
use crate::stats::{EnergyBreakdown, PhaseTimes, RunReport};
use hyve_algorithms::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_graph::{EdgeList, GridGraph, VertexId};
use hyve_memsim::{
    BankPowerGating, DramChip, Energy, MemoryDevice, Power, PowerGatingConfig, ReramChip,
    SramArray, Time,
};

/// Number of memory chips provisioned on the edge-memory channel. The
/// subsystem is sized for large graphs, so its background power does not
/// shrink with the (scaled) dataset — this is what bank-level power gating
/// recovers (§4.1, Fig. 15).
const EDGE_CHANNEL_CHIPS: u32 = 8;

/// Chips on the off-chip vertex channel (vertex data is 10–100× smaller
/// than edges, §3).
const VERTEX_CHANNEL_CHIPS: u32 = 2;

/// Banks that can overlap random accesses on a channel.
const BANK_PARALLELISM: f64 = 16.0;

/// Requests the memory controller keeps in flight on a sequential stream,
/// hiding per-access latency behind the data transfer.
const OUTSTANDING_REQUESTS: f64 = 16.0;

/// Static power of the hybrid memory controller and miscellaneous logic.
const CONTROLLER_POWER: Power = Power::from_mw(40.0);

/// Either main-memory technology, behind one object.
enum Channel {
    Reram(ReramChip),
    Dram(DramChip),
}

impl Channel {
    fn device(&self) -> &dyn MemoryDevice {
        match self {
            Channel::Reram(c) => c,
            Channel::Dram(c) => c,
        }
    }
}

/// Cost of the one-shot preprocessing step: writing the partitioned edge
/// data into the edge memory and the initial vertex values into the global
/// vertex memory (§3.1: "during the algorithm initialization, the edge data
/// go through a one-shot preprocessing step and are written into the
/// memory"). Excluded from steady-state run reports, matching the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessingReport {
    /// Edge data written (bits), including block headers.
    pub edge_bits: u64,
    /// Initial vertex data written (bits).
    pub vertex_bits: u64,
    /// Total write energy.
    pub energy: hyve_memsim::Energy,
    /// Total write time (sequential stream).
    pub time: Time,
}

/// The HyVE simulator.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Engine {
    config: SystemConfig,
    pu: ProcessingUnit,
}

impl Engine {
    /// Creates an engine for a configuration.
    pub fn new(config: SystemConfig) -> Self {
        Engine {
            config,
            pu: ProcessingUnit::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Picks the interval count `P` for a graph: the smallest multiple of
    /// the PU count such that `2·N` intervals (N source + N destination
    /// sections) fit in on-chip memory. Configurations without on-chip
    /// vertex memory use `P = N` (scheduling granularity only).
    pub fn plan_intervals<P: EdgeProgram>(&self, program: &P, num_vertices: u32) -> u32 {
        let n = self.config.num_pus;
        let Some(sram_mb) = self.config.sram_mb else {
            return n.min(num_vertices.max(1));
        };
        let state_words = match program.mode() {
            // Accumulate programs keep value + accumulator resident.
            ExecutionMode::Accumulate => 2u64,
            ExecutionMode::Monotone => 1u64,
        };
        let bytes_per_vertex = (u64::from(program.value_bits()).div_ceil(8)).max(1) * state_words;
        // Effective capacity: the physical SRAM shrunk by the dataset scale,
        // so the vertex-data : SRAM ratio matches the full-size experiment.
        let sram_bytes = (sram_mb * 1024 * 1024 / u64::from(self.config.dataset_scale)).max(1);
        let needed = 2 * u64::from(n) * u64::from(num_vertices) * bytes_per_vertex;
        let min_p = needed.div_ceil(sram_bytes).max(1) as u32;
        // Round up to a multiple of N, cap at the vertex count.
        let p = min_p.div_ceil(n) * n;
        p.min(num_vertices.max(1)).max(1)
    }

    /// Partitions the edge list with the planned interval count and runs.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and partitioning errors.
    pub fn run_on_edge_list<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<RunReport, CoreError> {
        self.run_on_edge_list_with_values(program, graph)
            .map(|(report, _)| report)
    }

    /// Like [`run_on_edge_list`](Self::run_on_edge_list), also returning the
    /// final vertex values.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and partitioning errors.
    pub fn run_on_edge_list_with_values<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        let p = self.plan_intervals(program, graph.num_vertices());
        let grid = GridGraph::partition(graph, p)?;
        self.run_with_values(program, &grid)
    }

    /// Runs over an existing grid. The grid's interval count must be a
    /// multiple of the PU count.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unschedulable`] when `P mod N ≠ 0`; configuration errors
    /// otherwise.
    pub fn run<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<RunReport, CoreError> {
        self.run_with_values(program, grid).map(|(r, _)| r)
    }

    /// Like [`run`](Self::run), also returning final vertex values.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_values<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        self.run_with_values_strategy(program, grid, ExecutionStrategy::Sequential)
    }

    /// Runs under an explicit [`ExecutionStrategy`]. Any thread count yields
    /// output bit-identical to the sequential path: per-PU outcomes are pure
    /// functions of the iteration-start snapshot and reduce in fixed PU
    /// order (see [`crate::exec`]).
    pub(crate) fn run_with_values_strategy<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
        strategy: ExecutionStrategy,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        self.config.validate()?;
        let n = self.config.num_pus;
        let p = grid.num_intervals();
        if !p.is_multiple_of(n) && p >= n {
            return Err(CoreError::Unschedulable {
                message: format!("{p} intervals not divisible by {n} processing units"),
            });
        }
        if p < n {
            return Err(CoreError::Unschedulable {
                message: format!("{p} intervals < {n} processing units"),
            });
        }
        let schedule = crate::schedule::SuperBlockSchedule::new(p, n).expect("shape checked above");
        let plan = BlockPlan::build(grid, &schedule, strategy);

        // ---- functional pass -------------------------------------------
        let (values, iterations, changed_per_iter) =
            self.functional_run(program, grid, &plan, strategy);

        // ---- cost pass --------------------------------------------------
        let report = self.account(program, grid, iterations, &changed_per_iter, &plan)?;
        Ok((report, values))
    }

    /// Cost of the one-shot initialization write (§3.1). ReRAM's limited
    /// write bandwidth makes this slower than on DRAM, but it happens once:
    /// steady-state execution never writes the edge memory again.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn preprocessing_report<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<PreprocessingReport, CoreError> {
        self.config.validate()?;
        let edge_mem: Box<dyn MemoryDevice> = match self.config.edge_memory {
            EdgeMemoryKind::Reram => Box::new(ReramChip::try_new(self.config.reram_config())?),
            EdgeMemoryKind::Dram => Box::new(DramChip::try_new(self.config.dram_config())?),
        };
        let vertex_mem: Box<dyn MemoryDevice> = match self.config.offchip_vertex {
            VertexMemoryKind::Dram => Box::new(DramChip::try_new(self.config.dram_config())?),
            VertexMemoryKind::Reram => Box::new(ReramChip::try_new(self.config.reram_config())?),
        };
        let edge_bits = grid.edge_storage_bits();
        let vertex_bits = grid.vertex_storage_bits(u64::from(program.value_bits()));
        let edge_accesses = edge_bits.div_ceil(u64::from(edge_mem.output_bits())).max(1);
        let vertex_accesses = vertex_bits
            .div_ceil(u64::from(vertex_mem.output_bits()))
            .max(1);
        let energy = edge_mem.write_energy(edge_bits) + vertex_mem.write_energy(vertex_bits);
        let time = edge_mem.write_latency() * edge_accesses as f64
            + vertex_mem.write_latency() * vertex_accesses as f64;
        Ok(PreprocessingReport {
            edge_bits,
            vertex_bits,
            energy,
            time,
        })
    }

    /// Executes the program over the grid, one snapshot-based pass per
    /// iteration.
    ///
    /// Each PU walks its own blocks (in schedule order) against the
    /// iteration-start snapshot — accumulate programs into a per-PU
    /// accumulator, monotone programs into a per-PU working copy that sees
    /// the PU's *own* earlier writes. The per-PU outcomes then reduce into
    /// the global values in **fixed PU order** via [`EdgeProgram::merge`],
    /// so the result is a pure function of `(program, grid, schedule)` and
    /// is bit-identical for every [`ExecutionStrategy`]. Monotone merges are
    /// semilattice joins (min for BFS/CC/SSSP), so the reduction preserves
    /// monotonicity and converges to the same fixpoint as the references.
    fn functional_run<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
        plan: &BlockPlan,
        strategy: ExecutionStrategy,
    ) -> (Vec<P::Value>, u32, Vec<bool>) {
        let meta = GraphMeta {
            num_vertices: grid.num_vertices(),
            num_edges: grid.num_edges(),
            out_degrees: {
                let mut deg = vec![0u32; grid.num_vertices() as usize];
                for e in grid.iter_edges() {
                    deg[e.src.index()] += 1;
                }
                deg
            },
        };
        let nv = meta.num_vertices as usize;
        let mut values: Vec<P::Value> = (0..meta.num_vertices)
            .map(|v| program.init(VertexId::new(v), &meta))
            .collect();
        let bound = program.bound();
        let mut iterations = 0;
        let mut changed_flags = Vec::new();

        for _ in 0..bound.max_iterations() {
            iterations += 1;
            // Fan the per-PU block work out; each worker reads only the
            // iteration-start snapshot plus its own writes.
            let snapshot = &values;
            let per_pu: Vec<Vec<P::Value>> = fan_out(strategy, plan.num_pus(), |pu| match program
                .mode()
            {
                ExecutionMode::Accumulate => {
                    let mut acc = vec![program.identity(); nv];
                    for &(src, dst) in plan.blocks(pu) {
                        for e in grid.block_at(src, dst).edges() {
                            let msg = program.scatter(snapshot[e.src.index()], e, &meta);
                            acc[e.dst.index()] = program.merge(acc[e.dst.index()], msg);
                            if program.undirected() {
                                let msg =
                                    program.scatter(snapshot[e.dst.index()], &e.reversed(), &meta);
                                acc[e.src.index()] = program.merge(acc[e.src.index()], msg);
                            }
                        }
                    }
                    acc
                }
                ExecutionMode::Monotone => {
                    let mut local = snapshot.clone();
                    for &(src, dst) in plan.blocks(pu) {
                        for e in grid.block_at(src, dst).edges() {
                            let msg = program.scatter(local[e.src.index()], e, &meta);
                            local[e.dst.index()] = program.merge(local[e.dst.index()], msg);
                            if program.undirected() {
                                let msg =
                                    program.scatter(local[e.dst.index()], &e.reversed(), &meta);
                                local[e.src.index()] = program.merge(local[e.src.index()], msg);
                            }
                        }
                    }
                    local
                }
            });

            // Reduce in fixed PU order — the determinism anchor.
            let mut changed = false;
            match program.mode() {
                ExecutionMode::Accumulate => {
                    let mut outcomes = per_pu.into_iter();
                    let mut total = outcomes
                        .next()
                        .unwrap_or_else(|| vec![program.identity(); nv]);
                    for acc in outcomes {
                        for (t, a) in total.iter_mut().zip(acc) {
                            *t = program.merge(*t, a);
                        }
                    }
                    for v in 0..nv {
                        let new =
                            program.apply(VertexId::new(v as u32), total[v], values[v], &meta);
                        if new != values[v] {
                            changed = true;
                        }
                        values[v] = new;
                    }
                }
                ExecutionMode::Monotone => {
                    for local in per_pu {
                        for (v, l) in values.iter_mut().zip(local) {
                            let merged = program.merge(*v, l);
                            if merged != *v {
                                *v = merged;
                                changed = true;
                            }
                        }
                    }
                }
            }
            changed_flags.push(changed);
            if matches!(bound, IterationBound::Converge { .. }) && !changed {
                break;
            }
        }
        (values, iterations, changed_flags)
    }

    /// Computes the full energy/time report for `iterations` identical
    /// passes over the grid.
    fn account<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
        iterations: u32,
        _changed: &[bool],
        plan: &BlockPlan,
    ) -> Result<RunReport, CoreError> {
        let cfg = &self.config;
        let n = cfg.num_pus;
        let p = grid.num_intervals();
        let s = p / n;
        let nv = u64::from(grid.num_vertices());
        let ne = grid.num_edges();
        let traversal_factor = if program.undirected() { 2 } else { 1 };
        let value_bits = u64::from(program.value_bits());

        // ---- devices ----------------------------------------------------
        let edge_mem = match cfg.edge_memory {
            EdgeMemoryKind::Reram => Channel::Reram(ReramChip::try_new(cfg.reram_config())?),
            EdgeMemoryKind::Dram => Channel::Dram(DramChip::try_new(cfg.dram_config())?),
        };
        let vertex_mem = match cfg.offchip_vertex {
            VertexMemoryKind::Dram => Channel::Dram(DramChip::try_new(cfg.dram_config())?),
            VertexMemoryKind::Reram => Channel::Reram(ReramChip::try_new(cfg.reram_config())?),
        };
        let sram = match cfg.sram_config() {
            Some(sc) => Some(SramArray::try_new(sc)?),
            None => None,
        };
        let router = cfg.data_sharing.then(|| Router::new(n));

        let mut breakdown = EnergyBreakdown::default();
        let mut phases = PhaseTimes::default();

        // ---- per-iteration edge stream ----------------------------------
        let edge_bits = grid.edge_storage_bits();
        let edev = edge_mem.device();
        let edge_accesses = edge_bits.div_ceil(u64::from(edev.output_bits())).max(1);
        let edge_read_energy = edev.read_energy(edge_bits);
        let edge_stream_time = edev.sequential_read_time(edge_bits);

        // ---- per-iteration vertex interval traffic -----------------------
        // With data sharing (Algorithm 2 + router): destination intervals
        // load once and write back once per iteration (Eq. 7); source
        // intervals load once per super block (Eq. 8 ⇒ Nv·P/N vertices).
        //
        // Without sharing (Fig. 14's baseline): a processing unit cannot
        // read another PU's source memory, so every step reloads its source
        // interval from off-chip — Nv·P source vertices per iteration
        // instead of Nv·P/N. Destination intervals stay resident either way.
        let (dst_load_vertices, dst_store_vertices, src_load_vertices) = if cfg.data_sharing {
            (nv, nv, nv * u64::from(s))
        } else {
            (nv, nv, nv * u64::from(p))
        };
        let dst_load_bits = dst_load_vertices * value_bits;
        let src_load_bits = src_load_vertices * value_bits;
        let vdev = vertex_mem.device();
        let interval_loads = if cfg.data_sharing {
            u64::from(p) + u64::from(s * s) * u64::from(n)
        } else {
            u64::from(p) + u64::from(s * s) * u64::from(n) * u64::from(n)
        };

        // ---- accounting helpers ------------------------------------------
        let words_per_value = value_bits.div_ceil(32).max(1);

        let (loading_time, updating_time, processing_time, overhead_time);

        if let Some(sram) = &sram {
            // Off-chip loads stream sequentially; on-chip fills proceed in
            // parallel across PU memories, so the channel is the bottleneck.
            let load_bits = dst_load_bits + src_load_bits;
            // Chips on the vertex channel stream in parallel (ganged like a
            // DIMM rank), multiplying sequential bandwidth. Interval-load
            // request latencies pipeline behind the stream: the controller
            // keeps many requests outstanding, so latency only shows when it
            // exceeds the streaming time.
            let stream = vdev.sequential_read_time(load_bits / u64::from(VERTEX_CHANNEL_CHIPS));
            let latency = vdev.read_latency() * (interval_loads as f64 / OUTSTANDING_REQUESTS);
            let lt_channel = stream.max(latency);
            let lt_sram = sram.bulk_transfer_time(load_bits) / f64::from(n);
            loading_time = lt_channel.max(lt_sram);
            breakdown.offchip_vertex.record_read(
                load_bits,
                vdev.read_energy(load_bits),
                lt_channel,
            );
            breakdown.onchip_vertex.record_write(
                load_bits,
                sram.bulk_write_energy(load_bits),
                Time::ZERO,
            );

            // Write-back of destination intervals (Eq. 7: Nv per iteration
            // with sharing; Nv·S without).
            let store_bits = dst_store_vertices * value_bits;
            // Write-back streams at the device's sequential-write rate:
            // burst-pipelined on DRAM, program-pulse-limited on ReRAM — the
            // §3.2 reason HyVE keeps vertices in DRAM.
            let ut_channel = vdev.write_latency() * f64::from(p)
                + vdev.sequential_write_period()
                    * (store_bits.div_ceil(u64::from(vdev.output_bits() * VERTEX_CHANNEL_CHIPS)))
                        as f64;
            updating_time = ut_channel;
            breakdown.offchip_vertex.record_write(
                store_bits,
                vdev.write_energy(store_bits),
                ut_channel,
            );
            breakdown.onchip_vertex.record_read(
                store_bits,
                sram.bulk_read_energy(store_bits),
                Time::ZERO,
            );

            // Per-edge processing (Eq. 1 pipelining): stage period is the
            // max of edge supply, source read, destination read+write, PU.
            let edges_per_access = (u64::from(edev.output_bits()) / hyve_graph::Edge::BITS).max(1);
            let edge_supply = edev.burst_period() * (f64::from(n) / edges_per_access as f64);
            let src_stage = sram.word_read_latency() * words_per_value as f64;
            let dst_stage =
                (sram.word_read_latency() + sram.word_write_latency()) * words_per_value as f64;
            let pu_stage = self.pu.pipelined_period();
            let per_edge =
                edge_supply.max(src_stage).max(dst_stage).max(pu_stage) * traversal_factor as f64;

            // Steps synchronise: each step costs the *largest* block in
            // it. The per-step maxima are memoized in the block plan, so
            // repeated runs over the same grid skip the grid re-scan.
            processing_time = per_edge * plan.sync_edges() as f64;

            // Per-edge on-chip + PU energy.
            let traversals = ne * traversal_factor;
            let sram_read = sram.read_energy(32) * words_per_value as f64;
            let sram_write = sram.write_energy(32) * words_per_value as f64;
            let per_edge_onchip = sram_read * 2.0 + sram_write;
            breakdown.onchip_vertex.record_read(
                traversals * value_bits * 2,
                per_edge_onchip * traversals as f64,
                Time::ZERO,
            );
            breakdown.logic.record_read(
                0,
                self.pu.edge_energy(program.arithmetic()) * traversals as f64,
                Time::ZERO,
            );

            // Accumulate programs run an apply pass over resident vertices:
            // read accumulator + previous value, write result, one ALU op.
            if program.mode() == ExecutionMode::Accumulate {
                let apply_ops = nv;
                breakdown.onchip_vertex.record_read(
                    apply_ops * value_bits * 2,
                    (sram_read * 2.0 + sram_write) * apply_ops as f64,
                    Time::ZERO,
                );
                breakdown.logic.record_read(
                    0,
                    self.pu.edge_energy(true) * apply_ops as f64,
                    Time::ZERO,
                );
            }

            // Router: reroute per step; hop energy on every shared source read.
            if let Some(router) = &router {
                let steps = u64::from(s * s) * u64::from(n);
                let hop = router.hop_energy_per_word() * (traversals * words_per_value) as f64
                    + router.reroute_energy() * steps as f64;
                breakdown.logic.record_read(0, hop, Time::ZERO);
                overhead_time = router.reroute_latency() * steps as f64;
            } else {
                overhead_time = Time::ZERO;
            }
        } else {
            // No on-chip vertex memory: every vertex touch is a random
            // access straight at the off-chip device.
            loading_time = Time::ZERO;
            updating_time = Time::ZERO;
            overhead_time = Time::ZERO;
            let traversals = ne * traversal_factor;
            let rd = vdev.random_read_energy(value_bits);
            let wr = vdev.random_write_energy(value_bits);
            breakdown.offchip_vertex.record_read(
                traversals * value_bits * 2,
                rd * 2.0 * traversals as f64,
                Time::ZERO,
            );
            breakdown.offchip_vertex.record_write(
                traversals * value_bits,
                wr * traversals as f64,
                Time::ZERO,
            );
            breakdown.logic.record_read(
                0,
                self.pu.edge_energy(program.arithmetic()) * traversals as f64,
                Time::ZERO,
            );

            // Three random vertex accesses per edge, partially hidden by
            // bank-level parallelism on the shared vertex channel.
            let per_edge_latency =
                (vdev.read_latency() * 2.0 + vdev.write_latency()) / BANK_PARALLELISM;
            let per_edge =
                per_edge_latency.max(self.pu.pipelined_period()) * traversal_factor as f64;
            processing_time = per_edge * ne as f64;
        }

        // Edge-memory dynamic accounting (same for both paths).
        breakdown
            .edge_memory
            .record_read(edge_bits, edge_read_energy, edge_stream_time);
        let _ = edge_accesses;

        // ---- iteration time & scaling ------------------------------------
        // Loading is double-buffered against processing: the controller
        // prefetches the next intervals while PUs process the current ones,
        // so only the non-overlapped remainder extends the iteration.
        let busy = processing_time.max(edge_stream_time);
        let exposed_loading = (loading_time - busy).max(Time::ZERO);
        let iteration_time = exposed_loading + busy + updating_time + overhead_time;
        let iters = f64::from(iterations);
        phases.loading = exposed_loading * iters;
        phases.processing = busy * iters;
        phases.updating = updating_time * iters;
        phases.overhead = overhead_time * iters;

        // Scale dynamic energies by iteration count.
        for stats in [
            &mut breakdown.edge_memory,
            &mut breakdown.offchip_vertex,
            &mut breakdown.onchip_vertex,
            &mut breakdown.logic,
        ] {
            stats.reads = (stats.reads as f64 * iters) as u64;
            stats.writes = (stats.writes as f64 * iters) as u64;
            stats.bits_read = (stats.bits_read as f64 * iters) as u64;
            stats.bits_written = (stats.bits_written as f64 * iters) as u64;
            stats.dynamic_energy *= iters;
            stats.busy_time *= iters;
        }

        let total_time = iteration_time * iters;

        // ---- background energy -------------------------------------------
        // Edge channel: provisioned chips leak unless power gating is on.
        let edge_bg = match (&edge_mem, cfg.power_gating) {
            (Channel::Reram(chip), true) => {
                let gating = BankPowerGating::new(
                    PowerGatingConfig::default(),
                    chip.banks() * EDGE_CHANNEL_CHIPS,
                    chip.bank_leakage(),
                );
                // Sequential layout (§3.4): a scan wakes banks in address
                // order, one transition per bank the edge data spans.
                let map = crate::controller::AddressMap::new(
                    EDGE_CHANNEL_CHIPS,
                    chip.banks(),
                    chip.capacity_bits() / u64::from(chip.banks()) / 8,
                );
                let transitions_per_iter = map.banks_spanned(edge_bits.div_ceil(8));
                gating.gated_energy(
                    total_time,
                    transitions_per_iter * u64::from(iterations),
                    1.0,
                )
            }
            (channel, _) => {
                channel.device().background_power() * f64::from(EDGE_CHANNEL_CHIPS) * total_time
            }
        };
        breakdown.edge_memory.record_background(edge_bg);

        // Vertex channel always powered (random/bursty traffic, §4.1).
        breakdown.offchip_vertex.record_background(
            vertex_mem.device().background_power() * f64::from(VERTEX_CHANNEL_CHIPS) * total_time,
        );
        if let Some(sram) = &sram {
            breakdown
                .onchip_vertex
                .record_background(sram.background_power() * total_time);
        }
        let logic_power = self.pu.leakage() * f64::from(n)
            + router.as_ref().map_or(Power::ZERO, Router::leakage)
            + CONTROLLER_POWER;
        breakdown.logic.record_background(logic_power * total_time);

        Ok(RunReport {
            algorithm: program.name(),
            config: cfg.name,
            iterations,
            edges_processed: ne * traversal_factor * u64::from(iterations),
            intervals: p,
            phases,
            breakdown,
        })
    }
}

/// Sanity check: background energies must be non-negative.
fn _assert_energy_valid(e: Energy) {
    debug_assert!(e.is_valid());
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_algorithms::{reference, Bfs, ConnectedComponents, PageRank, SpMv, Sssp};
    use hyve_graph::{Csr, DatasetProfile, Edge};

    fn small_graph() -> EdgeList {
        DatasetProfile::youtube_scaled().generate(11)
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = small_graph();
        let engine = Engine::new(SystemConfig::hyve_opt());
        let (_, values) = engine
            .run_on_edge_list_with_values(&PageRank::new(5), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        let expect = reference::pagerank(&csr, 5, 0.85);
        for (a, b) in values.iter().zip(expect.iter()) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1e-6), "{a} vs {b}");
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let g = small_graph();
        let engine = Engine::new(SystemConfig::hyve());
        let src = VertexId::new(0);
        let (_, values) = engine
            .run_on_edge_list_with_values(&Bfs::new(src), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        assert_eq!(values, reference::bfs_levels(&csr, src));
    }

    #[test]
    fn cc_matches_reference() {
        let g = small_graph();
        let engine = Engine::new(SystemConfig::hyve_opt());
        let (_, values) = engine
            .run_on_edge_list_with_values(&ConnectedComponents::new(), &g)
            .unwrap();
        assert_eq!(values, reference::connected_components(&g));
    }

    #[test]
    fn sssp_matches_reference() {
        let g = small_graph();
        let engine = Engine::new(SystemConfig::hyve_opt());
        let src = VertexId::new(1);
        let (_, values) = engine
            .run_on_edge_list_with_values(&Sssp::new(src), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        let expect = reference::sssp_distances(&csr, src);
        for (a, b) in values.iter().zip(expect.iter()) {
            if b.is_infinite() {
                assert!(a.is_infinite());
            } else {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn spmv_matches_reference() {
        let g = small_graph();
        let engine = Engine::new(SystemConfig::acc_sram_dram());
        let spmv = SpMv::new();
        let (_, values) = engine.run_on_edge_list_with_values(&spmv, &g).unwrap();
        let x: Vec<f32> = (0..g.num_vertices())
            .map(|v| spmv.input(VertexId::new(v)))
            .collect();
        let expect = reference::spmv(&g, &x);
        for (a, b) in values.iter().zip(expect.iter()) {
            assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn all_configs_run_pagerank() {
        let g = small_graph();
        for cfg in [
            SystemConfig::acc_dram(),
            SystemConfig::acc_reram(),
            SystemConfig::acc_sram_dram(),
            SystemConfig::hyve(),
            SystemConfig::hyve_opt(),
        ] {
            let engine = Engine::new(cfg);
            let report = engine.run_on_edge_list(&PageRank::new(3), &g).unwrap();
            assert!(report.energy().as_pj() > 0.0, "{}", report.config);
            assert!(report.elapsed().as_ns() > 0.0);
            assert!(report.mteps_per_watt() > 0.0);
        }
    }

    #[test]
    fn hyve_beats_conventional_hierarchies_on_energy_efficiency() {
        // The headline Fig. 16 ordering.
        let g = small_graph();
        let eff = |cfg: SystemConfig| {
            Engine::new(cfg)
                .run_on_edge_list(&PageRank::new(5), &g)
                .unwrap()
                .mteps_per_watt()
        };
        let dram = eff(SystemConfig::acc_dram());
        let sd = eff(SystemConfig::acc_sram_dram());
        let hyve = eff(SystemConfig::hyve());
        let opt = eff(SystemConfig::hyve_opt());
        assert!(hyve > sd, "HyVE {hyve} must beat SD {sd}");
        assert!(sd > dram, "SD {sd} must beat acc+DRAM {dram}");
        assert!(opt > hyve, "optimizations must help: {opt} vs {hyve}");
    }

    #[test]
    fn data_sharing_reduces_offchip_reads() {
        let g = small_graph();
        let base = Engine::new(SystemConfig::hyve().with_data_sharing(false))
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        let shared = Engine::new(SystemConfig::hyve())
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        assert!(
            shared.breakdown.offchip_vertex.bits_read < base.breakdown.offchip_vertex.bits_read
        );
    }

    #[test]
    fn power_gating_cuts_edge_background() {
        let g = small_graph();
        let base = Engine::new(SystemConfig::hyve())
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        let gated = Engine::new(SystemConfig::hyve().with_power_gating(true))
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        assert!(
            gated.breakdown.edge_memory.background_energy
                < base.breakdown.edge_memory.background_energy * 0.5
        );
    }

    #[test]
    fn interval_planning_respects_sram() {
        // Use scale 1 so the arithmetic is direct: 2 MB SRAM, PR needs
        // 16 bytes/vertex resident (64-bit value × 2 states);
        // 2·8·nv·16 ≤ 2 MB ⇒ nv ≤ 8192 for P = 8.
        let engine = Engine::new(SystemConfig::hyve_opt().with_dataset_scale(1));
        let pr = PageRank::new(1);
        assert_eq!(engine.plan_intervals(&pr, 8_000), 8);
        let p = engine.plan_intervals(&pr, 100_000);
        assert!(p > 8 && p.is_multiple_of(8), "got {p}");
        // The dataset scale shrinks the effective SRAM, raising P.
        let scaled = Engine::new(SystemConfig::hyve_opt().with_dataset_scale(64));
        assert!(scaled.plan_intervals(&pr, 8_000) > 8);
        // No SRAM: P = N.
        let raw = Engine::new(SystemConfig::acc_dram());
        assert_eq!(raw.plan_intervals(&pr, 100_000), 8);
    }

    #[test]
    fn run_rejects_mismatched_grid() {
        let g = small_graph();
        let grid = GridGraph::partition(&g, 3).unwrap(); // not divisible by 8
        let engine = Engine::new(SystemConfig::hyve());
        assert!(matches!(
            engine.run(&PageRank::new(1), &grid),
            Err(CoreError::Unschedulable { .. })
        ));
    }

    #[test]
    fn undirected_program_doubles_traversals() {
        let g = EdgeList::from_edges(16, (0..15).map(|i| Edge::new(i, i + 1))).unwrap();
        let engine = Engine::new(SystemConfig::hyve().with_num_pus(2));
        let cc = engine
            .run_on_edge_list(&ConnectedComponents::new().with_max_iterations(1), &g)
            .unwrap();
        assert_eq!(cc.edges_processed, 2 * 15);
    }

    #[test]
    fn preprocessing_is_one_shot_and_write_dominated() {
        let g = small_graph();
        let engine = Engine::new(SystemConfig::hyve());
        let grid = GridGraph::partition(&g, 8).unwrap();
        let pre = engine
            .preprocessing_report(&PageRank::new(10), &grid)
            .unwrap();
        assert_eq!(pre.edge_bits, grid.edge_storage_bits());
        assert!(pre.energy.as_pj() > 0.0);
        assert!(pre.time.as_ns() > 0.0);
        // ReRAM's slow writes: preprocessing on HyVE takes longer than on
        // the all-DRAM hierarchy, but costs less energy per bit is not
        // required — only the latency asymmetry is structural.
        let dram_pre = Engine::new(SystemConfig::acc_dram())
            .preprocessing_report(&PageRank::new(10), &grid)
            .unwrap();
        assert!(
            pre.time > dram_pre.time,
            "{} vs {}",
            pre.time,
            dram_pre.time
        );
    }

    #[test]
    fn report_has_consistent_breakdown() {
        let g = small_graph();
        let report = Engine::new(SystemConfig::hyve_opt())
            .run_on_edge_list(&PageRank::new(2), &g)
            .unwrap();
        let b = &report.breakdown;
        let sum = b.edge_memory.total_energy()
            + b.offchip_vertex.total_energy()
            + b.onchip_vertex.total_energy()
            + b.logic.total_energy();
        assert!((sum.as_pj() - report.energy().as_pj()).abs() < 1.0);
        assert!(b.memory_fraction() > 0.3 && b.memory_fraction() < 1.0);
    }
}
