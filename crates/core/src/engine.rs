//! The HyVE execution engine: a deterministic phase-level simulator of
//! Algorithm 2 over the interval-block grid.
//!
//! The engine does two jobs at once:
//!
//! 1. **Functional execution** — runs the [`EdgeProgram`] over the grid in
//!    Algorithm 2's block order (super blocks scanned vertically, round-robin
//!    steps inside each), producing real vertex values validated against the
//!    sequential references.
//! 2. **Cost accounting** — every iteration makes exactly the same memory
//!    accesses regardless of values (the edge-centric model streams *all*
//!    edges every iteration, §7.1), so per-iteration energy/time is computed
//!    from the grid's static structure using the device models, then scaled
//!    by the iteration count the functional run produced. Per-edge time uses
//!    Eq. (1)'s pipelining: the bottleneck stage among edge supply, local
//!    vertex access and the processing unit sets the period.
//!
//! ## Scheduling (paper Algorithm 2 / Fig. 7)
//!
//! With `P` intervals and `N` PUs, the grid decomposes into `(P/N)²` *super
//! blocks* of `N×N` blocks. Destination intervals load once per super-block
//! column; source intervals load once per super block when data sharing is
//! on (each PU then reads other PUs' source memories through the router,
//! round-robin across `N` steps) and once per *step* when it is off.

use crate::accounting::{self, Workload};
use crate::config::SystemConfig;
use crate::error::CoreError;
use crate::exec::{fan_out, BlockPlan, ExecutionStrategy};
use crate::hierarchy::{HierarchyInstance, HierarchySpec};
use crate::pu::ProcessingUnit;
use crate::stats::{PhaseTimes, RunReport};
use hyve_algorithms::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_graph::{EdgeList, GridGraph, VertexId};
use hyve_memsim::Time;

/// Cost of the one-shot preprocessing step: writing the partitioned edge
/// data into the edge memory and the initial vertex values into the global
/// vertex memory (§3.1: "during the algorithm initialization, the edge data
/// go through a one-shot preprocessing step and are written into the
/// memory"). Excluded from steady-state run reports, matching the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessingReport {
    /// Edge data written (bits), including block headers.
    pub edge_bits: u64,
    /// Initial vertex data written (bits).
    pub vertex_bits: u64,
    /// Total write energy.
    pub energy: hyve_memsim::Energy,
    /// Total write time (sequential stream).
    pub time: Time,
}

/// The HyVE simulator core.
///
/// Crate-private since the session API landed: construct a
/// [`SimulationSession`](crate::SimulationSession) instead — the builder
/// validates the configuration and constructs the memory hierarchy once,
/// and every run borrows both.
#[derive(Debug, Clone)]
pub(crate) struct Engine {
    config: SystemConfig,
    hierarchy: HierarchyInstance,
    pu: ProcessingUnit,
}

impl Engine {
    /// Validates the configuration, lowers it into a
    /// [`HierarchySpec`] and constructs every device model once.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] from [`SystemConfig::validate`] or
    /// device-model construction.
    pub(crate) fn try_new(config: SystemConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let hierarchy = HierarchyInstance::build(HierarchySpec::lower(&config))?;
        Ok(Engine {
            config,
            hierarchy,
            pu: ProcessingUnit::new(),
        })
    }

    /// The engine's configuration.
    pub(crate) fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The fully-constructed memory hierarchy, built at session build time
    /// and reused by every run.
    pub(crate) fn hierarchy(&self) -> &HierarchyInstance {
        &self.hierarchy
    }

    /// Picks the interval count `P` for a graph: the smallest multiple of
    /// the PU count such that `2·N` intervals (N source + N destination
    /// sections) fit in on-chip memory. Configurations without on-chip
    /// vertex memory use `P = N` (scheduling granularity only).
    pub fn plan_intervals<P: EdgeProgram>(&self, program: &P, num_vertices: u32) -> u32 {
        let n = self.config.num_pus;
        let Some(sram_mb) = self.config.sram_mb else {
            return n.min(num_vertices.max(1));
        };
        let state_words = match program.mode() {
            // Accumulate programs keep value + accumulator resident.
            ExecutionMode::Accumulate => 2u64,
            ExecutionMode::Monotone => 1u64,
        };
        let bytes_per_vertex = (u64::from(program.value_bits()).div_ceil(8)).max(1) * state_words;
        // Effective capacity: the physical SRAM shrunk by the dataset scale,
        // so the vertex-data : SRAM ratio matches the full-size experiment.
        let sram_bytes = (sram_mb * 1024 * 1024 / u64::from(self.config.dataset_scale)).max(1);
        let needed = 2 * u64::from(n) * u64::from(num_vertices) * bytes_per_vertex;
        let min_p = needed.div_ceil(sram_bytes).max(1) as u32;
        // Round up to a multiple of N, cap at the vertex count.
        let p = min_p.div_ceil(n) * n;
        p.min(num_vertices.max(1)).max(1)
    }

    /// Partitions the edge list with the planned interval count and runs.
    /// Test-only shorthand: the session layer has its own report-only
    /// wrappers.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and partitioning errors.
    #[cfg(test)]
    pub fn run_on_edge_list<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<RunReport, CoreError> {
        self.run_on_edge_list_with_values(program, graph)
            .map(|(report, _)| report)
    }

    /// Like [`run_on_edge_list`](Self::run_on_edge_list), also returning the
    /// final vertex values.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and partitioning errors.
    pub fn run_on_edge_list_with_values<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        let p = self.plan_intervals(program, graph.num_vertices());
        let grid = GridGraph::partition(graph, p)?;
        self.run_with_values(program, &grid)
    }

    /// Runs over an existing grid. The grid's interval count must be a
    /// multiple of the PU count.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unschedulable`] when `P mod N ≠ 0`; configuration errors
    /// otherwise.
    #[cfg(test)]
    pub fn run<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<RunReport, CoreError> {
        self.run_with_values(program, grid).map(|(r, _)| r)
    }

    /// Like [`run`](Self::run), also returning final vertex values.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_values<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        self.run_with_values_strategy(program, grid, ExecutionStrategy::Sequential)
    }

    /// Runs under an explicit [`ExecutionStrategy`]. Any thread count yields
    /// output bit-identical to the sequential path: per-PU outcomes are pure
    /// functions of the iteration-start snapshot and reduce in fixed PU
    /// order (see [`crate::exec`]).
    pub(crate) fn run_with_values_strategy<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
        strategy: ExecutionStrategy,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        let n = self.config.num_pus;
        let p = grid.num_intervals();
        if !p.is_multiple_of(n) && p >= n {
            return Err(CoreError::Unschedulable {
                message: format!("{p} intervals not divisible by {n} processing units"),
            });
        }
        if p < n {
            return Err(CoreError::Unschedulable {
                message: format!("{p} intervals < {n} processing units"),
            });
        }
        let schedule = crate::schedule::SuperBlockSchedule::new(p, n).expect("shape checked above");
        let plan = BlockPlan::build(grid, &schedule, strategy);

        // ---- functional pass -------------------------------------------
        let (values, iterations, changed_per_iter) =
            self.functional_run(program, grid, &plan, strategy);

        // ---- cost pass --------------------------------------------------
        let report = self.account(program, grid, iterations, &changed_per_iter, &plan);
        Ok((report, values))
    }

    /// Cost of the one-shot initialization write (§3.1). ReRAM's limited
    /// write bandwidth makes this slower than on DRAM, but it happens once:
    /// steady-state execution never writes the edge memory again.
    ///
    /// # Errors
    ///
    /// None today; kept fallible for future grid-dependent validation.
    pub fn preprocessing_report<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<PreprocessingReport, CoreError> {
        let edge_mem = self.hierarchy.edge().device();
        let vertex_mem = self.hierarchy.global_vertex().device();
        let edge_bits = grid.edge_storage_bits();
        let vertex_bits = grid.vertex_storage_bits(u64::from(program.value_bits()));
        let edge_accesses = edge_bits.div_ceil(u64::from(edge_mem.output_bits())).max(1);
        let vertex_accesses = vertex_bits
            .div_ceil(u64::from(vertex_mem.output_bits()))
            .max(1);
        let energy = edge_mem.write_energy(edge_bits) + vertex_mem.write_energy(vertex_bits);
        let time = edge_mem.write_latency() * edge_accesses as f64
            + vertex_mem.write_latency() * vertex_accesses as f64;
        Ok(PreprocessingReport {
            edge_bits,
            vertex_bits,
            energy,
            time,
        })
    }

    /// Executes the program over the grid, one snapshot-based pass per
    /// iteration.
    ///
    /// Each PU walks its own blocks (in schedule order) against the
    /// iteration-start snapshot — accumulate programs into a per-PU
    /// accumulator, monotone programs into a per-PU working copy that sees
    /// the PU's *own* earlier writes. The per-PU outcomes then reduce into
    /// the global values in **fixed PU order** via [`EdgeProgram::merge`],
    /// so the result is a pure function of `(program, grid, schedule)` and
    /// is bit-identical for every [`ExecutionStrategy`]. Monotone merges are
    /// semilattice joins (min for BFS/CC/SSSP), so the reduction preserves
    /// monotonicity and converges to the same fixpoint as the references.
    fn functional_run<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
        plan: &BlockPlan,
        strategy: ExecutionStrategy,
    ) -> (Vec<P::Value>, u32, Vec<bool>) {
        let meta = GraphMeta {
            num_vertices: grid.num_vertices(),
            num_edges: grid.num_edges(),
            out_degrees: {
                let mut deg = vec![0u32; grid.num_vertices() as usize];
                for e in grid.iter_edges() {
                    deg[e.src.index()] += 1;
                }
                deg
            },
        };
        let nv = meta.num_vertices as usize;
        let mut values: Vec<P::Value> = (0..meta.num_vertices)
            .map(|v| program.init(VertexId::new(v), &meta))
            .collect();
        let bound = program.bound();
        let mut iterations = 0;
        let mut changed_flags = Vec::new();

        for _ in 0..bound.max_iterations() {
            iterations += 1;
            // Fan the per-PU block work out; each worker reads only the
            // iteration-start snapshot plus its own writes.
            let snapshot = &values;
            let per_pu: Vec<Vec<P::Value>> = fan_out(strategy, plan.num_pus(), |pu| match program
                .mode()
            {
                ExecutionMode::Accumulate => {
                    let mut acc = vec![program.identity(); nv];
                    for &(src, dst) in plan.blocks(pu) {
                        for e in grid.block_at(src, dst).edges() {
                            let msg = program.scatter(snapshot[e.src.index()], e, &meta);
                            acc[e.dst.index()] = program.merge(acc[e.dst.index()], msg);
                            if program.undirected() {
                                let msg =
                                    program.scatter(snapshot[e.dst.index()], &e.reversed(), &meta);
                                acc[e.src.index()] = program.merge(acc[e.src.index()], msg);
                            }
                        }
                    }
                    acc
                }
                ExecutionMode::Monotone => {
                    let mut local = snapshot.clone();
                    for &(src, dst) in plan.blocks(pu) {
                        for e in grid.block_at(src, dst).edges() {
                            let msg = program.scatter(local[e.src.index()], e, &meta);
                            local[e.dst.index()] = program.merge(local[e.dst.index()], msg);
                            if program.undirected() {
                                let msg =
                                    program.scatter(local[e.dst.index()], &e.reversed(), &meta);
                                local[e.src.index()] = program.merge(local[e.src.index()], msg);
                            }
                        }
                    }
                    local
                }
            });

            // Reduce in fixed PU order — the determinism anchor.
            let mut changed = false;
            match program.mode() {
                ExecutionMode::Accumulate => {
                    let mut outcomes = per_pu.into_iter();
                    let mut total = outcomes
                        .next()
                        .unwrap_or_else(|| vec![program.identity(); nv]);
                    for acc in outcomes {
                        for (t, a) in total.iter_mut().zip(acc) {
                            *t = program.merge(*t, a);
                        }
                    }
                    for v in 0..nv {
                        let new =
                            program.apply(VertexId::new(v as u32), total[v], values[v], &meta);
                        if new != values[v] {
                            changed = true;
                        }
                        values[v] = new;
                    }
                }
                ExecutionMode::Monotone => {
                    for local in per_pu {
                        for (v, l) in values.iter_mut().zip(local) {
                            let merged = program.merge(*v, l);
                            if merged != *v {
                                *v = merged;
                                changed = true;
                            }
                        }
                    }
                }
            }
            changed_flags.push(changed);
            if matches!(bound, IterationBound::Converge { .. }) && !changed {
                break;
            }
        }
        (values, iterations, changed_flags)
    }

    /// Computes the full energy/time report for `iterations` identical
    /// passes over the grid, by orchestrating the phase-level passes in
    /// [`crate::accounting`] over the session's [`HierarchyInstance`].
    ///
    /// Every iteration makes exactly the same accesses (§7.1), so the
    /// passes run once and the ledgers scale by the iteration count the
    /// functional run produced.
    fn account<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
        iterations: u32,
        _changed: &[bool],
        plan: &BlockPlan,
    ) -> RunReport {
        let hierarchy = &self.hierarchy;
        let w = Workload::for_run(program, grid, plan, self.config.num_pus);
        let mut ledgers = hierarchy.ledgers();

        let edge = accounting::edge_stream(hierarchy.edge(), &w);
        let (loading_time, updating_time, processing_time, overhead_time) =
            match hierarchy.local_vertex() {
                Some(local) => {
                    let traffic = accounting::interval_traffic(
                        hierarchy.global_vertex(),
                        local,
                        hierarchy.spec().data_sharing,
                        &w,
                        &mut ledgers,
                    );
                    let processing = accounting::onchip_processing(
                        hierarchy.edge(),
                        local,
                        &self.pu,
                        &w,
                        &mut ledgers,
                    );
                    let overhead = match hierarchy.router() {
                        Some(router) => accounting::router_overhead(router, &w, &mut ledgers),
                        None => Time::ZERO,
                    };
                    (traffic.loading, traffic.updating, processing, overhead)
                }
                None => {
                    // No on-chip tier: every vertex touch is a random access
                    // straight at the off-chip device.
                    let processing = accounting::random_access(
                        hierarchy.global_vertex(),
                        &self.pu,
                        &w,
                        &mut ledgers,
                    );
                    (Time::ZERO, Time::ZERO, processing, Time::ZERO)
                }
            };
        edge.commit(&w, &mut ledgers);

        // ---- iteration time & scaling ------------------------------------
        // Loading is double-buffered against processing: the controller
        // prefetches the next intervals while PUs process the current ones,
        // so only the non-overlapped remainder extends the iteration.
        let busy = processing_time.max(edge.stream_time);
        let exposed_loading = (loading_time - busy).max(Time::ZERO);
        let iteration_time = exposed_loading + busy + updating_time + overhead_time;
        let iters = f64::from(iterations);
        let phases = PhaseTimes {
            loading: exposed_loading * iters,
            processing: busy * iters,
            updating: updating_time * iters,
            overhead: overhead_time * iters,
        };
        accounting::scale_by_iterations(&mut ledgers, iters);

        let total_time = iteration_time * iters;
        accounting::background(
            hierarchy,
            &self.pu,
            total_time,
            iterations,
            &w,
            &mut ledgers,
        );

        RunReport {
            algorithm: program.name(),
            config: self.config.name,
            iterations,
            edges_processed: w.ne * w.traversal_factor * u64::from(iterations),
            intervals: w.p,
            phases,
            breakdown: ledgers.into_breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_algorithms::{reference, Bfs, ConnectedComponents, PageRank, SpMv, Sssp};
    use hyve_graph::{Csr, DatasetProfile, Edge};

    fn small_graph() -> EdgeList {
        DatasetProfile::youtube_scaled().generate(11)
    }

    /// Test shorthand: sessions own engine construction in the public API.
    fn engine_for(cfg: SystemConfig) -> Engine {
        Engine::try_new(cfg).unwrap()
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve_opt());
        let (_, values) = engine
            .run_on_edge_list_with_values(&PageRank::new(5), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        let expect = reference::pagerank(&csr, 5, 0.85);
        for (a, b) in values.iter().zip(expect.iter()) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1e-6), "{a} vs {b}");
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve());
        let src = VertexId::new(0);
        let (_, values) = engine
            .run_on_edge_list_with_values(&Bfs::new(src), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        assert_eq!(values, reference::bfs_levels(&csr, src));
    }

    #[test]
    fn cc_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve_opt());
        let (_, values) = engine
            .run_on_edge_list_with_values(&ConnectedComponents::new(), &g)
            .unwrap();
        assert_eq!(values, reference::connected_components(&g));
    }

    #[test]
    fn sssp_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve_opt());
        let src = VertexId::new(1);
        let (_, values) = engine
            .run_on_edge_list_with_values(&Sssp::new(src), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        let expect = reference::sssp_distances(&csr, src);
        for (a, b) in values.iter().zip(expect.iter()) {
            if b.is_infinite() {
                assert!(a.is_infinite());
            } else {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn spmv_matches_reference() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::acc_sram_dram());
        let spmv = SpMv::new();
        let (_, values) = engine.run_on_edge_list_with_values(&spmv, &g).unwrap();
        let x: Vec<f32> = (0..g.num_vertices())
            .map(|v| spmv.input(VertexId::new(v)))
            .collect();
        let expect = reference::spmv(&g, &x);
        for (a, b) in values.iter().zip(expect.iter()) {
            assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn all_configs_run_pagerank() {
        let g = small_graph();
        for cfg in [
            SystemConfig::acc_dram(),
            SystemConfig::acc_reram(),
            SystemConfig::acc_sram_dram(),
            SystemConfig::hyve(),
            SystemConfig::hyve_opt(),
        ] {
            let engine = engine_for(cfg);
            let report = engine.run_on_edge_list(&PageRank::new(3), &g).unwrap();
            assert!(report.energy().as_pj() > 0.0, "{}", report.config);
            assert!(report.elapsed().as_ns() > 0.0);
            assert!(report.mteps_per_watt() > 0.0);
        }
    }

    #[test]
    fn hyve_beats_conventional_hierarchies_on_energy_efficiency() {
        // The headline Fig. 16 ordering.
        let g = small_graph();
        let eff = |cfg: SystemConfig| {
            engine_for(cfg)
                .run_on_edge_list(&PageRank::new(5), &g)
                .unwrap()
                .mteps_per_watt()
        };
        let dram = eff(SystemConfig::acc_dram());
        let sd = eff(SystemConfig::acc_sram_dram());
        let hyve = eff(SystemConfig::hyve());
        let opt = eff(SystemConfig::hyve_opt());
        assert!(hyve > sd, "HyVE {hyve} must beat SD {sd}");
        assert!(sd > dram, "SD {sd} must beat acc+DRAM {dram}");
        assert!(opt > hyve, "optimizations must help: {opt} vs {hyve}");
    }

    #[test]
    fn data_sharing_reduces_offchip_reads() {
        let g = small_graph();
        let base = engine_for(SystemConfig::hyve().with_data_sharing(false))
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        let shared = engine_for(SystemConfig::hyve())
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        assert!(
            shared.breakdown.offchip_vertex.bits_read < base.breakdown.offchip_vertex.bits_read
        );
    }

    #[test]
    fn power_gating_cuts_edge_background() {
        let g = small_graph();
        let base = engine_for(SystemConfig::hyve())
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        let gated = engine_for(SystemConfig::hyve().with_power_gating(true))
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        assert!(
            gated.breakdown.edge_memory.background_energy
                < base.breakdown.edge_memory.background_energy * 0.5
        );
    }

    #[test]
    fn interval_planning_respects_sram() {
        // Use scale 1 so the arithmetic is direct: 2 MB SRAM, PR needs
        // 16 bytes/vertex resident (64-bit value × 2 states);
        // 2·8·nv·16 ≤ 2 MB ⇒ nv ≤ 8192 for P = 8.
        let engine = engine_for(SystemConfig::hyve_opt().with_dataset_scale(1));
        let pr = PageRank::new(1);
        assert_eq!(engine.plan_intervals(&pr, 8_000), 8);
        let p = engine.plan_intervals(&pr, 100_000);
        assert!(p > 8 && p.is_multiple_of(8), "got {p}");
        // The dataset scale shrinks the effective SRAM, raising P.
        let scaled = engine_for(SystemConfig::hyve_opt().with_dataset_scale(64));
        assert!(scaled.plan_intervals(&pr, 8_000) > 8);
        // No SRAM: P = N.
        let raw = engine_for(SystemConfig::acc_dram());
        assert_eq!(raw.plan_intervals(&pr, 100_000), 8);
    }

    #[test]
    fn run_rejects_mismatched_grid() {
        let g = small_graph();
        let grid = GridGraph::partition(&g, 3).unwrap(); // not divisible by 8
        let engine = engine_for(SystemConfig::hyve());
        assert!(matches!(
            engine.run(&PageRank::new(1), &grid),
            Err(CoreError::Unschedulable { .. })
        ));
    }

    #[test]
    fn undirected_program_doubles_traversals() {
        let g = EdgeList::from_edges(16, (0..15).map(|i| Edge::new(i, i + 1))).unwrap();
        let engine = engine_for(SystemConfig::hyve().with_num_pus(2));
        let cc = engine
            .run_on_edge_list(&ConnectedComponents::new().with_max_iterations(1), &g)
            .unwrap();
        assert_eq!(cc.edges_processed, 2 * 15);
    }

    #[test]
    fn preprocessing_is_one_shot_and_write_dominated() {
        let g = small_graph();
        let engine = engine_for(SystemConfig::hyve());
        let grid = GridGraph::partition(&g, 8).unwrap();
        let pre = engine
            .preprocessing_report(&PageRank::new(10), &grid)
            .unwrap();
        assert_eq!(pre.edge_bits, grid.edge_storage_bits());
        assert!(pre.energy.as_pj() > 0.0);
        assert!(pre.time.as_ns() > 0.0);
        // ReRAM's slow writes: preprocessing on HyVE takes longer than on
        // the all-DRAM hierarchy, but costs less energy per bit is not
        // required — only the latency asymmetry is structural.
        let dram_pre = engine_for(SystemConfig::acc_dram())
            .preprocessing_report(&PageRank::new(10), &grid)
            .unwrap();
        assert!(
            pre.time > dram_pre.time,
            "{} vs {}",
            pre.time,
            dram_pre.time
        );
    }

    #[test]
    fn report_has_consistent_breakdown() {
        let g = small_graph();
        let report = engine_for(SystemConfig::hyve_opt())
            .run_on_edge_list(&PageRank::new(2), &g)
            .unwrap();
        let b = &report.breakdown;
        let sum = b.edge_memory.total_energy()
            + b.offchip_vertex.total_energy()
            + b.onchip_vertex.total_energy()
            + b.logic.total_energy();
        assert!((sum.as_pj() - report.energy().as_pj()).abs() < 1.0);
        assert!(b.memory_fraction() > 0.3 && b.memory_fraction() < 1.0);
    }

    #[test]
    fn devices_constructed_once_per_session_not_per_run() {
        let g = small_graph();
        let before = crate::hierarchy::device_constructions();
        let engine = engine_for(SystemConfig::hyve_opt());
        let built = crate::hierarchy::device_constructions();
        // hyve_opt has three channels: edge ReRAM, global DRAM, local SRAM.
        assert_eq!(built - before, 3);

        // Repeated runs and preprocessing reports reuse the same instance.
        engine.run_on_edge_list(&PageRank::new(2), &g).unwrap();
        engine
            .run_on_edge_list(&Bfs::new(VertexId::new(0)), &g)
            .unwrap();
        let grid = GridGraph::partition(&g, 8).unwrap();
        engine
            .preprocessing_report(&PageRank::new(1), &grid)
            .unwrap();
        assert_eq!(crate::hierarchy::device_constructions(), built);
    }
}
