//! # hyve-core — the HyVE architecture simulator
//!
//! This crate implements the paper's contribution: the **Hybrid Vertex-Edge
//! memory hierarchy** (§3) and its execution engine:
//!
//! * [`SystemConfig`] — the memory-hierarchy configuration space the
//!   evaluation sweeps (acc+DRAM, acc+ReRAM, acc+SRAM+DRAM, HyVE,
//!   HyVE-opt; Fig. 16),
//! * [`HierarchySpec`] / [`HierarchyInstance`] — the declarative memory
//!   hierarchy a configuration lowers into, and its fully-constructed
//!   channel set (device models built **once** per session, per-channel
//!   [`Ledgers`] accumulated by the accounting passes),
//! * [`SimulationSession`] — the validated entry point: a builder that
//!   checks the configuration once, constructs the hierarchy, and selects
//!   an [`ExecutionStrategy`] (sequential, or a deterministic thread
//!   fan-out over PUs and sweeps), driving a crate-private engine that
//!   simulates Algorithm 2's super-block scheduling (loading / assigning /
//!   rerouting / processing / synchronizing / updating), with per-edge
//!   pipelining per Eq. (1),
//! * [`Router`] — the N×N pipelined router that implements inter-PU data
//!   sharing (§4.2, Fig. 7),
//! * bank-level power gating of the nonvolatile edge memory (§4.1),
//! * [`RunReport`] — energy/time accounting with the Fig. 17 breakdown,
//! * [`trace`] — structured observability: typed [`TraceEvent`]s fed to a
//!   [`TraceSink`] attached via
//!   [`SessionBuilder::with_trace`](session::SessionBuilder::with_trace),
//!   aggregated by [`MetricsRecorder`] into a versioned JSONL
//!   [`TraceArtifact`]. Zero-cost when disabled, and observation never
//!   perturbs accounting (golden reports are bit-identical either way),
//! * reliability — a deterministic seed-driven fault model
//!   ([`FaultPlan`], [`EccProfile`]) with ECC correction, bounded retry,
//!   and edge-bank sparing ([`ResilienceModel`]), surfaced as a
//!   [`ReliabilityReport`] on the run report; with the default
//!   [`FaultPlan::none`] the fault path is never entered and every report
//!   stays bit-identical to a fault-free build.
//!
//! ```
//! use hyve_core::{SimulationSession, SystemConfig};
//! use hyve_algorithms::PageRank;
//! use hyve_graph::DatasetProfile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = DatasetProfile::youtube_scaled().generate(1);
//! let session = SimulationSession::builder(SystemConfig::hyve_opt()).build()?;
//! let report = session.run_on_edge_list(&PageRank::new(5), &graph)?;
//! assert!(report.mteps_per_watt() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
pub mod config;
pub mod controller;
pub mod engine;
pub mod error;
pub mod exec;
pub mod hierarchy;
pub mod pu;
pub mod router;
pub mod schedule;
pub mod session;
pub mod stats;
pub mod trace;
pub mod workflow;

pub use config::{EdgeMemoryKind, SystemConfig, VertexMemoryKind};
pub use controller::{
    AddressMap, BankRemap, BankSpareMap, EdgeAddress, EdgeBuffer, ResilienceModel, StreamAnalysis,
    StreamBound,
};
pub use engine::PreprocessingReport;
pub use error::CoreError;
pub use exec::ExecutionStrategy;
pub use hierarchy::{
    Channel, ChannelRole, ChannelSpec, DeviceSpec, HierarchyInstance, HierarchySpec, Ledgers,
};
pub use hyve_memsim::{EccProfile, FaultPlan};
pub use pu::ProcessingUnit;
pub use router::Router;
pub use schedule::{Assignment, SuperBlockSchedule};
pub use session::{SessionBuilder, SimulationSession};
pub use stats::{EnergyBreakdown, PhaseTimes, ReliabilityReport, RunReport, RunTrace};
pub use trace::{
    MetricsRecorder, ReliabilityTotals, SharedRecorder, SharedSink, TraceArtifact, TraceChannel,
    TraceDiff, TraceEvent, TraceSink,
};
pub use workflow::WorkingFlow;
