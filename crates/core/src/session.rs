//! The public entry point to the simulator: a validated, strategy-aware
//! session.
//!
//! [`SimulationSession`] replaces direct engine construction. The builder
//! validates the [`SystemConfig`] **once, at build time**, lowers it into a
//! [`HierarchySpec`](crate::HierarchySpec) and constructs every device
//! model of the resulting [`HierarchyInstance`] exactly once — every later
//! run borrows the same instance and no construction path panics — and
//! selects an [`ExecutionStrategy`]:
//!
//! ```
//! use hyve_core::{ExecutionStrategy, SimulationSession, SystemConfig};
//! use hyve_algorithms::PageRank;
//! use hyve_graph::DatasetProfile;
//!
//! # fn main() -> Result<(), hyve_core::CoreError> {
//! let graph = DatasetProfile::youtube_scaled().generate(1);
//! let session = SimulationSession::builder(SystemConfig::hyve_opt())
//!     .strategy(ExecutionStrategy::Parallel { threads: 4 })
//!     .build()?;
//! let report = session.run_on_edge_list(&PageRank::new(5), &graph)?;
//! assert!(report.mteps_per_watt() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! Determinism guarantee: for a fixed `(config, program, graph)`, every
//! strategy — `Sequential` or `Parallel` with any thread count — produces a
//! bit-identical [`RunReport`] and identical vertex values (see
//! [`crate::exec`] for the reduction argument).

use crate::config::SystemConfig;
use crate::engine::{Engine, PreprocessingReport};
use crate::error::CoreError;
use crate::exec::{fan_out, ExecutionStrategy};
use crate::hierarchy::HierarchyInstance;
use crate::stats::{RunReport, RunTrace};
use crate::trace::{SharedSink, TraceSink};
use hyve_algorithms::EdgeProgram;
use hyve_graph::{EdgeList, GridGraph};
use hyve_memsim::FaultPlan;

/// Builder for a [`SimulationSession`].
///
/// Created by [`SimulationSession::builder`]; finish with
/// [`build`](SessionBuilder::build).
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    config: SystemConfig,
    strategy: ExecutionStrategy,
    dirty_skipping: bool,
    sink: Option<SharedSink>,
    faults: FaultPlan,
}

impl SessionBuilder {
    /// Sets the execution strategy (default: sequential).
    pub fn strategy(mut self, strategy: ExecutionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables or disables dirty-interval skipping for monotone programs
    /// (default: enabled). A pure optimisation toggle: the engine skips
    /// blocks whose source interval saw no change last iteration, and the
    /// semilattice-join semantics make the skip provably bit-identical —
    /// values, iteration counts and [`RunReport`]s are unchanged either
    /// way. Disable it to benchmark the full-rescan path or to cross-check
    /// equivalence (as the proptest suite does).
    pub fn dirty_interval_skipping(mut self, enabled: bool) -> Self {
        self.dirty_skipping = enabled;
        self
    }

    /// Attaches a [`TraceSink`]: every run of the built session feeds it
    /// typed [`TraceEvent`](crate::TraceEvent)s — iteration summaries,
    /// phase times, per-channel ledgers, gating transitions, router
    /// traffic. Tracing is observation-only: reports and values are
    /// bit-identical with or without a sink, and with no sink attached the
    /// run path is unchanged (see the `trace_overhead` bench).
    ///
    /// Pass a [`SharedRecorder`](crate::SharedRecorder) clone to collect a
    /// [`TraceArtifact`](crate::TraceArtifact) you can read back after the
    /// run. [`sweep`](SimulationSession::sweep) runs stay untraced — a
    /// sweep point builds its own engine per configuration.
    pub fn with_trace(mut self, sink: impl TraceSink + 'static) -> Self {
        self.sink = Some(SharedSink::new(sink));
        self
    }

    /// Injects a deterministic [`FaultPlan`] into every run of the built
    /// session: raw bit errors per channel, ECC correction with its
    /// energy/latency overheads, bounded retry of uncorrectable errors, and
    /// edge-bank sparing for persistent faults. The outcome lands in
    /// [`RunReport::reliability`](crate::RunReport::reliability).
    ///
    /// Fault outcomes are a deterministic function of the plan's seed and
    /// the run's access totals — independent of execution strategy, so the
    /// parallel-equals-sequential guarantee holds for fault runs too. The
    /// default (and [`FaultPlan::none`]) leaves the fault path disabled and
    /// every report bit-identical to a session without this call.
    /// [`sweep`](SimulationSession::sweep) runs stay fault-free.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Shorthand for `strategy(ExecutionStrategy::Parallel { threads })`.
    pub fn parallel(self, threads: usize) -> Self {
        self.strategy(ExecutionStrategy::Parallel { threads })
    }

    /// Shorthand for `strategy(ExecutionStrategy::Sequential)`.
    pub fn sequential(self) -> Self {
        self.strategy(ExecutionStrategy::Sequential)
    }

    /// Validates the configuration and strategy and builds the session.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the [`SystemConfig`] fails
    /// [`SystemConfig::validate`], the [`FaultPlan`] fails
    /// [`FaultPlan::validate`], or a parallel strategy requests zero
    /// threads. This is the single validation point: sessions never panic
    /// on construction input.
    pub fn build(self) -> Result<SimulationSession, CoreError> {
        let engine = Engine::try_new_with_faults(self.config, self.faults)?;
        if let ExecutionStrategy::Parallel { threads: 0 } = self.strategy {
            return Err(CoreError::InvalidConfig {
                message: "parallel execution needs at least one thread".into(),
            });
        }
        Ok(SimulationSession {
            engine,
            strategy: self.strategy,
            dirty_skipping: self.dirty_skipping,
            sink: self.sink,
        })
    }
}

/// A validated simulation session over one [`SystemConfig`].
///
/// See the [module docs](self) for the builder workflow and the determinism
/// guarantee.
#[derive(Debug, Clone)]
pub struct SimulationSession {
    engine: Engine,
    strategy: ExecutionStrategy,
    dirty_skipping: bool,
    sink: Option<SharedSink>,
}

impl SimulationSession {
    /// Starts building a session for `config`.
    pub fn builder(config: SystemConfig) -> SessionBuilder {
        SessionBuilder {
            config,
            strategy: ExecutionStrategy::Sequential,
            dirty_skipping: true,
            sink: None,
            faults: FaultPlan::none(),
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &SystemConfig {
        self.engine.config()
    }

    /// The session's execution strategy.
    pub fn strategy(&self) -> ExecutionStrategy {
        self.strategy
    }

    /// The memory hierarchy the configuration lowered into: every device
    /// model was constructed once at [`build`](SessionBuilder::build) time
    /// and is reused by every run of this session.
    pub fn hierarchy(&self) -> &HierarchyInstance {
        self.engine.hierarchy()
    }

    /// Picks the interval count `P` for a graph: the smallest multiple of
    /// the PU count such that `2·N` intervals fit in on-chip memory
    /// (configurations without on-chip vertex memory use `P = N`).
    pub fn plan_intervals<P: EdgeProgram>(&self, program: &P, num_vertices: u32) -> u32 {
        self.engine.plan_intervals(program, num_vertices)
    }

    /// Runs over an existing grid.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unschedulable`] when the grid's interval count is not a
    /// positive multiple of the PU count.
    pub fn run<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<RunReport, CoreError> {
        self.run_with_values(program, grid).map(|(r, _)| r)
    }

    /// Like [`run`](Self::run), also returning final vertex values.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_values<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        self.run_with_trace(program, grid)
            .map(|(report, values, _)| (report, values))
    }

    /// Like [`run_with_values`](Self::run_with_values), also returning the
    /// per-iteration [`RunTrace`] — the handle equivalence tests use to
    /// assert that engine optimisations leave the iteration structure (not
    /// just the final values) untouched.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_trace<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<(RunReport, Vec<P::Value>, RunTrace), CoreError> {
        self.engine.run_traced(
            program,
            grid,
            self.strategy,
            self.dirty_skipping,
            self.sink.as_ref(),
        )
    }

    /// Partitions the edge list with the planned interval count and runs.
    ///
    /// # Errors
    ///
    /// Propagates partitioning errors.
    pub fn run_on_edge_list<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<RunReport, CoreError> {
        self.run_on_edge_list_with_values(program, graph)
            .map(|(r, _)| r)
    }

    /// Like [`run_on_edge_list`](Self::run_on_edge_list), also returning
    /// the final vertex values.
    ///
    /// # Errors
    ///
    /// Propagates partitioning errors.
    pub fn run_on_edge_list_with_values<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        let p = self.engine.plan_intervals(program, graph.num_vertices());
        let grid = GridGraph::partition(graph, p)?;
        self.run_with_values(program, &grid)
    }

    /// Cost of the one-shot initialization write (§3.1).
    ///
    /// # Errors
    ///
    /// Propagates device-model errors.
    pub fn preprocessing_report<P: EdgeProgram>(
        &self,
        program: &P,
        grid: &GridGraph,
    ) -> Result<PreprocessingReport, CoreError> {
        self.engine.preprocessing_report(program, grid)
    }

    /// Runs `program` on `graph` under every configuration in `configs`,
    /// returning reports in input order.
    ///
    /// Under a parallel strategy the *configurations* fan out across
    /// threads (the figure-sweep workload) while each run executes its PUs
    /// sequentially, avoiding thread oversubscription; results land in
    /// input-indexed slots, so the output is identical to a sequential
    /// sweep — including every report's energy and phase times.
    ///
    /// # Errors
    ///
    /// The first failing configuration's error, in input order.
    pub fn sweep<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
        configs: &[SystemConfig],
    ) -> Result<Vec<RunReport>, CoreError> {
        let results: Vec<Result<RunReport, CoreError>> =
            fan_out(self.strategy, configs.len(), |i| {
                let engine = Engine::try_new(configs[i].clone())?;
                let p = engine.plan_intervals(program, graph.num_vertices());
                let grid = GridGraph::partition(graph, p)?;
                engine
                    .run_traced(
                        program,
                        &grid,
                        ExecutionStrategy::Sequential,
                        self.dirty_skipping,
                        // Sweep points stay untraced: each builds its own
                        // engine, and interleaved event streams from
                        // concurrent configurations would be unattributable.
                        None,
                    )
                    .map(|(report, _, _)| report)
            });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_algorithms::{Bfs, PageRank};
    use hyve_graph::{DatasetProfile, VertexId};

    fn graph() -> EdgeList {
        DatasetProfile::youtube_scaled().generate(5)
    }

    #[test]
    fn builder_validates_config_up_front() {
        let bad = SystemConfig::hyve().with_num_pus(0);
        assert!(matches!(
            SimulationSession::builder(bad).build(),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn builder_rejects_zero_threads() {
        assert!(matches!(
            SimulationSession::builder(SystemConfig::hyve())
                .parallel(0)
                .build(),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn parallel_report_is_bit_identical_to_sequential() {
        let g = graph();
        let sequential = SimulationSession::builder(SystemConfig::hyve_opt())
            .build()
            .unwrap();
        let (seq_report, seq_values) = sequential
            .run_on_edge_list_with_values(&Bfs::new(VertexId::new(0)), &g)
            .unwrap();
        for threads in [1, 2, 4, 8] {
            let parallel = SimulationSession::builder(SystemConfig::hyve_opt())
                .parallel(threads)
                .build()
                .unwrap();
            let (par_report, par_values) = parallel
                .run_on_edge_list_with_values(&Bfs::new(VertexId::new(0)), &g)
                .unwrap();
            assert_eq!(par_report, seq_report, "threads = {threads}");
            assert_eq!(par_values, seq_values, "threads = {threads}");
        }
    }

    #[test]
    fn fault_plan_none_builds_the_default_session() {
        let g = graph();
        let default = SimulationSession::builder(SystemConfig::hyve_opt())
            .build()
            .unwrap()
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        let explicit = SimulationSession::builder(SystemConfig::hyve_opt())
            .with_faults(FaultPlan::none())
            .build()
            .unwrap()
            .run_on_edge_list(&PageRank::new(3), &g)
            .unwrap();
        assert_eq!(default, explicit);
        assert!(explicit.reliability.is_none());
    }

    #[test]
    fn fault_runs_are_bit_identical_across_strategies() {
        let g = graph();
        let plan = FaultPlan::parse("seed=7,reram-ber=2e-5,dram-ber=1e-9,ecc=secded").unwrap();
        let sequential = SimulationSession::builder(SystemConfig::hyve_opt())
            .with_faults(plan.clone())
            .build()
            .unwrap();
        let (seq_report, seq_values) = sequential
            .run_on_edge_list_with_values(&PageRank::new(3), &g)
            .unwrap();
        assert!(seq_report.reliability.is_some());
        for threads in [1, 2, 4, 8] {
            let parallel = SimulationSession::builder(SystemConfig::hyve_opt())
                .with_faults(plan.clone())
                .parallel(threads)
                .build()
                .unwrap();
            let (par_report, par_values) = parallel
                .run_on_edge_list_with_values(&PageRank::new(3), &g)
                .unwrap();
            assert_eq!(par_report, seq_report, "threads = {threads}");
            assert_eq!(par_values, seq_values, "threads = {threads}");
        }
    }

    #[test]
    fn builder_rejects_invalid_fault_plan() {
        let mut plan = FaultPlan::none();
        plan.reram_ber = 2.0;
        assert!(matches!(
            SimulationSession::builder(SystemConfig::hyve())
                .with_faults(plan)
                .build(),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn sweep_matches_individual_runs_in_order() {
        let g = graph();
        let configs = [
            SystemConfig::acc_dram(),
            SystemConfig::acc_sram_dram(),
            SystemConfig::hyve(),
            SystemConfig::hyve_opt(),
        ];
        let session = SimulationSession::builder(SystemConfig::hyve())
            .parallel(4)
            .build()
            .unwrap();
        let swept = session.sweep(&PageRank::new(3), &g, &configs).unwrap();
        assert_eq!(swept.len(), configs.len());
        for (cfg, report) in configs.iter().zip(&swept) {
            let lone = SimulationSession::builder(cfg.clone())
                .build()
                .unwrap()
                .run_on_edge_list(&PageRank::new(3), &g)
                .unwrap();
            assert_eq!(*report, lone, "{}", cfg.name);
        }
    }

    #[test]
    fn traced_run_is_bit_identical_and_recorder_matches_report() {
        use crate::trace::{SharedRecorder, TraceChannel};
        let g = graph();
        let plain = SimulationSession::builder(SystemConfig::hyve_opt())
            .build()
            .unwrap();
        let (plain_report, plain_values) = plain
            .run_on_edge_list_with_values(&Bfs::new(VertexId::new(0)), &g)
            .unwrap();

        let recorder = SharedRecorder::new();
        let traced = SimulationSession::builder(SystemConfig::hyve_opt())
            .with_trace(recorder.clone())
            .build()
            .unwrap();
        let (traced_report, traced_values) = traced
            .run_on_edge_list_with_values(&Bfs::new(VertexId::new(0)), &g)
            .unwrap();
        assert_eq!(traced_report, plain_report, "tracing must not perturb");
        assert_eq!(traced_values, plain_values);

        let a = recorder.artifact();
        assert_eq!(a.algorithm, plain_report.algorithm);
        assert_eq!(a.config, plain_report.config);
        assert_eq!(a.iterations_total, plain_report.iterations);
        assert_eq!(a.edges_processed, plain_report.edges_processed);
        assert_eq!(a.intervals, plain_report.intervals);
        assert_eq!(a.iterations.len() as u32, plain_report.iterations);
        assert_eq!(a.phases, plain_report.phases);
        assert_eq!(a.channels.len(), 4);
        let edge = a
            .channels
            .iter()
            .find(|c| c.channel == TraceChannel::EdgeMemory)
            .unwrap();
        assert_eq!(edge.stats, plain_report.breakdown.edge_memory);
        // hyve_opt gates the edge channel and shares through the router.
        assert!(a.gating_transitions.is_some());
        assert!(a.router.is_some());
        // Iterations are 1-based and the last one converged (no change).
        assert_eq!(a.iterations[0].iteration, 1);
        assert!(!a.iterations.last().unwrap().changed);
        assert!(a.iterations[0].blocks_processed > 0);
    }

    #[test]
    fn dirty_skipping_shows_up_in_trace_skip_counts() {
        use crate::trace::SharedRecorder;
        let g = graph();
        let recorder = SharedRecorder::new();
        let session = SimulationSession::builder(SystemConfig::hyve_opt())
            .with_trace(recorder.clone())
            .build()
            .unwrap();
        session
            .run_on_edge_list(&Bfs::new(VertexId::new(0)), &g)
            .unwrap();
        let skipped: u64 = recorder
            .artifact()
            .iterations
            .iter()
            .map(|s| s.blocks_skipped)
            .sum();
        assert!(skipped > 0, "BFS opts into skipping; some blocks must skip");
    }

    #[test]
    fn sweep_surfaces_first_error_in_input_order() {
        let g = graph();
        let configs = [SystemConfig::hyve(), SystemConfig::hyve().with_num_pus(0)];
        let session = SimulationSession::builder(SystemConfig::hyve())
            .build()
            .unwrap();
        assert!(session.sweep(&PageRank::new(1), &g, &configs).is_err());
    }
}
