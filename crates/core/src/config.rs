//! System configuration: which device sits at each level of the hierarchy
//! and which optimizations are enabled.
//!
//! The paper's Fig. 16 sweep compares five accelerator configurations that
//! differ *only* here; [`SystemConfig`] provides each as a preset:
//!
//! | preset | edge memory | off-chip vertex | on-chip vertex | sharing | gating |
//! |---|---|---|---|---|---|
//! | [`SystemConfig::acc_dram`] | DRAM | DRAM (random) | — | – | – |
//! | [`SystemConfig::acc_reram`] | ReRAM | ReRAM (random) | — | – | – |
//! | [`SystemConfig::acc_sram_dram`] | DRAM | DRAM | SRAM | – | – |
//! | [`SystemConfig::hyve`] | ReRAM | DRAM | SRAM | – | – |
//! | [`SystemConfig::hyve_opt`] | ReRAM | DRAM | SRAM | ✓ | ✓ |

use crate::error::CoreError;
use hyve_memsim::{CellBits, DramChipConfig, ReramChipConfig, SramConfig};

/// Technology of the (sequential-read) edge memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeMemoryKind {
    /// ReRAM main memory (HyVE's choice).
    Reram,
    /// Conventional DRAM.
    Dram,
}

/// Technology of the off-chip (global) vertex memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexMemoryKind {
    /// DRAM — high write bandwidth, HyVE's choice (§3.2).
    Dram,
    /// ReRAM — used by the all-ReRAM baseline.
    Reram,
}

/// Full system configuration for a [`SimulationSession`](crate::SimulationSession) run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Descriptive name shown in reports.
    pub name: &'static str,
    /// Number of processing units (paper: 8).
    pub num_pus: u32,
    /// Edge-memory technology.
    pub edge_memory: EdgeMemoryKind,
    /// Off-chip vertex memory technology.
    pub offchip_vertex: VertexMemoryKind,
    /// Total on-chip SRAM vertex memory in megabytes; `None` means vertices
    /// are accessed randomly in off-chip memory (acc+DRAM / acc+ReRAM).
    pub sram_mb: Option<u64>,
    /// Inter-PU source-interval sharing (§4.2).
    pub data_sharing: bool,
    /// Bank-level power gating of the edge memory (§4.1; effective only
    /// with nonvolatile edge memory).
    pub power_gating: bool,
    /// Memory chip density in gigabits (paper sweeps 4/8/16).
    pub density_gbit: u32,
    /// ReRAM cell bits (Fig. 13 sweeps 1–3; SLC is the paper's choice).
    pub cell_bits: CellBits,
    /// Down-scaling factor of the dataset relative to the paper's originals
    /// (see `DESIGN.md`). Interval planning shrinks the *effective* SRAM by
    /// this factor so the vertex-data : on-chip-capacity ratio — which sets
    /// the partition count `P` and with it the loading-traffic share — stays
    /// what it would be at full scale. Device energy/leakage still model the
    /// full-size SRAM. Use 1 for unscaled graphs.
    pub dataset_scale: u32,
}

impl SystemConfig {
    /// Accelerator with DRAM everywhere and no on-chip vertex memory.
    pub fn acc_dram() -> Self {
        SystemConfig {
            name: "acc+DRAM",
            num_pus: 8,
            edge_memory: EdgeMemoryKind::Dram,
            offchip_vertex: VertexMemoryKind::Dram,
            sram_mb: None,
            data_sharing: false,
            power_gating: false,
            density_gbit: 4,
            cell_bits: CellBits::Slc,
            dataset_scale: 64,
        }
    }

    /// Accelerator with ReRAM everywhere — shows that naively swapping
    /// DRAM for ReRAM buys little (§7.3.3: only 1.31×).
    pub fn acc_reram() -> Self {
        SystemConfig {
            name: "acc+ReRAM",
            edge_memory: EdgeMemoryKind::Reram,
            offchip_vertex: VertexMemoryKind::Reram,
            ..Self::acc_dram()
        }
    }

    /// Conventional best practice: SRAM vertex buffers over all-DRAM
    /// (the paper's "SD" configuration). §7.3.3 notes all four accelerator
    /// configurations use the *same* data scheduling, so SD runs the shared
    /// super-block schedule too; only the devices differ.
    pub fn acc_sram_dram() -> Self {
        SystemConfig {
            name: "acc+SRAM+DRAM",
            sram_mb: Some(2),
            data_sharing: true,
            ..Self::acc_dram()
        }
    }

    /// HyVE: ReRAM edges + DRAM global vertices + SRAM local vertices,
    /// shared scheduling, power gating off (2 MB is Table 4's sweet spot
    /// with sharing on).
    pub fn hyve() -> Self {
        SystemConfig {
            name: "acc+HyVE",
            edge_memory: EdgeMemoryKind::Reram,
            offchip_vertex: VertexMemoryKind::Dram,
            sram_mb: Some(2),
            data_sharing: true,
            ..Self::acc_dram()
        }
    }

    /// HyVE plus the aggressive bank-level power-gating scheme (§4.1) —
    /// the paper's best configuration.
    pub fn hyve_opt() -> Self {
        SystemConfig {
            name: "acc+HyVE-opt",
            power_gating: true,
            ..Self::hyve()
        }
    }

    /// Returns a copy with a different SRAM capacity (Table 4 sweeps).
    pub fn with_sram_mb(mut self, mb: u64) -> Self {
        self.sram_mb = Some(mb);
        self
    }

    /// Returns a copy with data sharing toggled.
    pub fn with_data_sharing(mut self, on: bool) -> Self {
        self.data_sharing = on;
        self
    }

    /// Returns a copy with power gating toggled.
    pub fn with_power_gating(mut self, on: bool) -> Self {
        self.power_gating = on;
        self
    }

    /// Returns a copy with a different chip density.
    pub fn with_density(mut self, gbit: u32) -> Self {
        self.density_gbit = gbit;
        self
    }

    /// Returns a copy with a different ReRAM cell type (Fig. 13).
    pub fn with_cell_bits(mut self, bits: CellBits) -> Self {
        self.cell_bits = bits;
        self
    }

    /// Returns a copy with a different PU count.
    pub fn with_num_pus(mut self, n: u32) -> Self {
        self.num_pus = n;
        self
    }

    /// Returns a copy with a different dataset down-scaling factor.
    pub fn with_dataset_scale(mut self, scale: u32) -> Self {
        self.dataset_scale = scale;
        self
    }

    /// ReRAM chip configuration implied by this system config.
    pub fn reram_config(&self) -> ReramChipConfig {
        let mut c = ReramChipConfig::with_density(self.density_gbit);
        c.cell = hyve_memsim::ReramCellParams::with_bits(self.cell_bits);
        c
    }

    /// DRAM chip configuration implied by this system config.
    pub fn dram_config(&self) -> DramChipConfig {
        DramChipConfig::with_density(self.density_gbit)
    }

    /// SRAM configuration, if the hierarchy includes on-chip vertex memory.
    pub fn sram_config(&self) -> Option<SramConfig> {
        self.sram_mb.map(SramConfig::with_capacity_mb)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when PU count / density / SRAM size is
    /// zero, or power gating is requested on a volatile (DRAM) edge memory.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.num_pus == 0 {
            return Err(CoreError::InvalidConfig {
                message: "at least one processing unit required".into(),
            });
        }
        if self.density_gbit == 0 {
            return Err(CoreError::InvalidConfig {
                message: "chip density must be positive".into(),
            });
        }
        if self.sram_mb == Some(0) {
            return Err(CoreError::InvalidConfig {
                message: "SRAM capacity must be positive when present".into(),
            });
        }
        if self.dataset_scale == 0 {
            return Err(CoreError::InvalidConfig {
                message: "dataset scale must be at least 1".into(),
            });
        }
        if self.power_gating && self.edge_memory == EdgeMemoryKind::Dram {
            return Err(CoreError::InvalidConfig {
                message: "bank-level power gating requires nonvolatile (ReRAM) edge memory".into(),
            });
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    /// The optimized HyVE configuration.
    fn default() -> Self {
        Self::hyve_opt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_table() {
        let sd = SystemConfig::acc_sram_dram();
        assert_eq!(sd.edge_memory, EdgeMemoryKind::Dram);
        assert_eq!(sd.sram_mb, Some(2));
        // §7.3.3: all accelerator configs share the same data scheduling.
        assert!(sd.data_sharing && !sd.power_gating);

        let hyve = SystemConfig::hyve();
        assert_eq!(hyve.edge_memory, EdgeMemoryKind::Reram);
        assert_eq!(hyve.offchip_vertex, VertexMemoryKind::Dram);
        assert!(hyve.data_sharing && !hyve.power_gating);

        let opt = SystemConfig::hyve_opt();
        assert!(opt.data_sharing && opt.power_gating);
        assert_eq!(opt.sram_mb, Some(2));
        assert_eq!(opt.num_pus, 8);
    }

    #[test]
    fn all_presets_validate() {
        for cfg in [
            SystemConfig::acc_dram(),
            SystemConfig::acc_reram(),
            SystemConfig::acc_sram_dram(),
            SystemConfig::hyve(),
            SystemConfig::hyve_opt(),
        ] {
            cfg.validate().expect("preset must validate");
        }
    }

    #[test]
    fn gating_on_dram_rejected() {
        let bad = SystemConfig::acc_dram().with_power_gating(true);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn zero_values_rejected() {
        assert!(SystemConfig::hyve().with_num_pus(0).validate().is_err());
        assert!(SystemConfig::hyve().with_density(0).validate().is_err());
        assert!(SystemConfig::hyve().with_sram_mb(0).validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let c = SystemConfig::hyve()
            .with_sram_mb(8)
            .with_data_sharing(true)
            .with_density(16);
        assert_eq!(c.sram_mb, Some(8));
        assert!(c.data_sharing);
        assert_eq!(c.density_gbit, 16);
        assert_eq!(c.reram_config().density_gbit, 16);
        assert_eq!(c.dram_config().density_gbit, 16);
        assert!(c.sram_config().is_some());
    }

    #[test]
    fn default_is_optimized() {
        assert_eq!(SystemConfig::default(), SystemConfig::hyve_opt());
    }
}
