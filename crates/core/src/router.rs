//! The pipelined N×N router that implements data sharing (§4.2, Fig. 7).
//!
//! With data sharing on, each processing unit reads its *source* interval
//! through the router from whichever PU's on-chip memory holds it. The
//! paper argues throughput is unaffected (each PU is attached to exactly one
//! source memory at a time and the path is pipelined, ~5–10 SRAM cycles of
//! latency); the costs that remain are a small per-word interconnect energy
//! and a per-step rerouting overhead.

use hyve_memsim::{Energy, Power, Time};

/// An N-port crossbar-style router between PUs and source vertex memories.
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    ports: u32,
    hop_energy_per_word: Energy,
    reroute_latency: Time,
    reroute_energy: Energy,
    leakage: Power,
}

impl Router {
    /// Creates a router with `ports` ports (one per PU).
    ///
    /// Interconnect costs grow with port count: the wire/mux energy per
    /// transferred word scales ~linearly in N, leakage with N².
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: u32) -> Self {
        assert!(ports > 0, "router needs at least one port");
        let n = f64::from(ports);
        Router {
            ports,
            hop_energy_per_word: Energy::from_pj(0.15) * n.sqrt(),
            reroute_latency: Time::from_ns(10.0),
            reroute_energy: Energy::from_pj(12.0) * n,
            leakage: Power::from_uw(40.0) * n * n,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// Interconnect energy of moving one 32-bit word through the router.
    pub fn hop_energy_per_word(&self) -> Energy {
        self.hop_energy_per_word
    }

    /// Latency of re-routing all connections at a step boundary
    /// (§4.2: ≈10 ns, comparable to a remote L3 hit on Ivy Bridge).
    pub fn reroute_latency(&self) -> Time {
        self.reroute_latency
    }

    /// Energy of one rerouting (switch reconfiguration across all ports).
    pub fn reroute_energy(&self) -> Energy {
        self.reroute_energy
    }

    /// Static leakage of the crossbar.
    pub fn leakage(&self) -> Power {
        self.leakage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_ports() {
        let r4 = Router::new(4);
        let r8 = Router::new(8);
        assert!(r8.hop_energy_per_word() > r4.hop_energy_per_word());
        assert!(r8.reroute_energy() > r4.reroute_energy());
        assert!(r8.leakage() > r4.leakage());
        assert_eq!(r8.ports(), 8);
    }

    #[test]
    fn reroute_latency_near_remote_l3() {
        // §4.2 anchors the remote access at ~10 ns.
        let r = Router::new(8);
        assert!((r.reroute_latency().as_ns() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn hop_energy_small_vs_sram_access() {
        // Sharing must be cheaper than re-loading from DRAM; the hop adds
        // well under one SRAM read (23.84 pJ).
        let r = Router::new(8);
        assert!(r.hop_energy_per_word().as_pj() < 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = Router::new(0);
    }
}
