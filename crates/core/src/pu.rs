//! CMOS processing-unit cost model (§6.4).
//!
//! HyVE processes edges with conventional CMOS operators. The paper anchors
//! the arithmetic path to a 32-bit floating-point multiplier: 3.7 pJ per
//! operation and 18.783 ns unpipelined latency, noting the latency "can be
//! further reduced by introducing pipelining". The comparison path
//! (BFS/CC min-updates) is far cheaper — a 32-bit comparator at 22 nm.

use hyve_memsim::{Energy, Power, Time};

/// One CMOS processing unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessingUnit {
    arithmetic_energy: Energy,
    compare_energy: Energy,
    unpipelined_latency: Time,
    pipelined_period: Time,
    leakage: Power,
}

impl ProcessingUnit {
    /// The paper's parameters: 3.7 pJ / 18.783 ns multiplier, pipelined to a
    /// 1.5 ns initiation interval (matching the on-chip SRAM cycle).
    pub fn new() -> Self {
        ProcessingUnit {
            arithmetic_energy: Energy::from_pj(3.7),
            compare_energy: Energy::from_pj(0.9),
            unpipelined_latency: Time::from_ns(18.783),
            pipelined_period: Time::from_ns(1.5),
            leakage: Power::from_mw(8.0),
        }
    }

    /// Energy of processing one edge.
    pub fn edge_energy(&self, arithmetic: bool) -> Energy {
        if arithmetic {
            self.arithmetic_energy
        } else {
            self.compare_energy
        }
    }

    /// Steady-state per-edge period with the operator pipelined.
    pub fn pipelined_period(&self) -> Time {
        self.pipelined_period
    }

    /// Latency of a single un-pipelined operation (fills the pipeline).
    pub fn unpipelined_latency(&self) -> Time {
        self.unpipelined_latency
    }

    /// Static leakage of the unit.
    pub fn leakage(&self) -> Power {
        self.leakage
    }
}

impl Default for ProcessingUnit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper() {
        let pu = ProcessingUnit::new();
        assert!((pu.edge_energy(true).as_pj() - 3.7).abs() < 1e-12);
        assert!((pu.unpipelined_latency().as_ns() - 18.783).abs() < 1e-12);
    }

    #[test]
    fn compare_cheaper_than_multiply() {
        let pu = ProcessingUnit::new();
        assert!(pu.edge_energy(false) < pu.edge_energy(true));
    }

    #[test]
    fn pipelining_beats_raw_latency() {
        let pu = ProcessingUnit::default();
        assert!(pu.pipelined_period() < pu.unpipelined_latency());
    }
}
