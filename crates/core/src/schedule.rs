//! The super-block schedule of Algorithm 2, as a first-class value.
//!
//! With `P` intervals and `N` processing units, the P×P block grid
//! decomposes into `(P/N)²` super blocks of N×N blocks. Algorithm 2 scans
//! super blocks **vertically** (Fig. 7, right), loads destination intervals
//! once per super-block row band, and executes each super block in `N`
//! round-robin *steps*: in step `s`, PU `p` processes the block whose source
//! interval is `sx·N + (p + s) mod N` and whose destination interval is
//! `sy·N + p` — so every PU touches a distinct source and a distinct
//! destination in every step, and the router only ever permutes connections.

use crate::error::CoreError;

/// One block assignment inside a step: which PU processes which block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// Processing unit index.
    pub pu: u32,
    /// Source interval of the block.
    pub src_interval: u32,
    /// Destination interval of the block.
    pub dst_interval: u32,
}

/// A full Algorithm-2 schedule.
///
/// ```
/// use hyve_core::schedule::SuperBlockSchedule;
///
/// # fn main() -> Result<(), hyve_core::CoreError> {
/// let schedule = SuperBlockSchedule::new(16, 4)?;
/// assert_eq!(schedule.super_blocks_per_side(), 4);
/// assert_eq!(schedule.steps_per_iteration(), 4 * 4 * 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperBlockSchedule {
    intervals: u32,
    pus: u32,
}

impl SuperBlockSchedule {
    /// Creates a schedule for `intervals` intervals over `pus` PUs.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unschedulable`] unless `intervals` is a positive
    /// multiple of `pus`.
    pub fn new(intervals: u32, pus: u32) -> Result<Self, CoreError> {
        if pus == 0 {
            return Err(CoreError::Unschedulable {
                message: "need at least one processing unit".into(),
            });
        }
        if intervals == 0 || !intervals.is_multiple_of(pus) {
            return Err(CoreError::Unschedulable {
                message: format!("{intervals} intervals not a positive multiple of {pus} PUs"),
            });
        }
        Ok(SuperBlockSchedule { intervals, pus })
    }

    /// Number of intervals `P`.
    pub fn intervals(&self) -> u32 {
        self.intervals
    }

    /// Number of processing units `N`.
    pub fn pus(&self) -> u32 {
        self.pus
    }

    /// Super blocks per grid side (`P/N`).
    pub fn super_blocks_per_side(&self) -> u32 {
        self.intervals / self.pus
    }

    /// Total steps in one iteration: `(P/N)² · N`.
    pub fn steps_per_iteration(&self) -> u64 {
        let s = u64::from(self.super_blocks_per_side());
        s * s * u64::from(self.pus)
    }

    /// The N assignments of one step.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn step_assignments(&self, sx: u32, sy: u32, step: u32) -> Vec<Assignment> {
        let s = self.super_blocks_per_side();
        assert!(sx < s && sy < s, "super block ({sx},{sy}) out of {s}x{s}");
        assert!(step < self.pus, "step {step} out of {} steps", self.pus);
        (0..self.pus)
            .map(|pu| Assignment {
                pu,
                src_interval: sx * self.pus + (pu + step) % self.pus,
                dst_interval: sy * self.pus + pu,
            })
            .collect()
    }

    /// Iterates the full Algorithm-2 order:
    /// `for sy { for sx { for step { [N assignments] } } }`.
    pub fn iter(&self) -> Iter {
        Iter {
            schedule: *self,
            sy: 0,
            sx: 0,
            step: 0,
            done: false,
        }
    }
}

/// Iterator over the steps of a [`SuperBlockSchedule`]; yields
/// `((sx, sy, step), assignments)`.
#[derive(Debug, Clone)]
pub struct Iter {
    schedule: SuperBlockSchedule,
    sy: u32,
    sx: u32,
    step: u32,
    done: bool,
}

impl Iterator for Iter {
    type Item = ((u32, u32, u32), Vec<Assignment>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let s = self.schedule.super_blocks_per_side();
        let key = (self.sx, self.sy, self.step);
        let assignments = self.schedule.step_assignments(self.sx, self.sy, self.step);
        // Advance: step, then sx, then sy (vertical scan per Fig. 7).
        self.step += 1;
        if self.step == self.schedule.pus() {
            self.step = 0;
            self.sx += 1;
            if self.sx == s {
                self.sx = 0;
                self.sy += 1;
                if self.sy == s {
                    self.done = true;
                }
            }
        }
        Some((key, assignments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rejects_bad_shapes() {
        assert!(SuperBlockSchedule::new(0, 8).is_err());
        assert!(SuperBlockSchedule::new(12, 8).is_err());
        assert!(SuperBlockSchedule::new(8, 0).is_err());
        assert!(SuperBlockSchedule::new(8, 8).is_ok());
    }

    #[test]
    fn every_block_processed_exactly_once_per_iteration() {
        let schedule = SuperBlockSchedule::new(12, 4).unwrap();
        let mut seen = HashSet::new();
        for (_, assignments) in schedule.iter() {
            for a in assignments {
                assert!(
                    seen.insert((a.src_interval, a.dst_interval)),
                    "block ({}, {}) scheduled twice",
                    a.src_interval,
                    a.dst_interval
                );
            }
        }
        assert_eq!(seen.len(), 12 * 12, "all P² blocks covered");
    }

    #[test]
    fn each_step_uses_distinct_sources_and_destinations() {
        // The data-sharing property (Fig. 7): within a step no two PUs read
        // the same source interval or write the same destination interval.
        let schedule = SuperBlockSchedule::new(16, 8).unwrap();
        for (_, assignments) in schedule.iter() {
            let srcs: HashSet<u32> = assignments.iter().map(|a| a.src_interval).collect();
            let dsts: HashSet<u32> = assignments.iter().map(|a| a.dst_interval).collect();
            assert_eq!(srcs.len(), 8);
            assert_eq!(dsts.len(), 8);
        }
    }

    #[test]
    fn pu_keeps_its_destination_across_steps() {
        // §4.2: each PU owns one destination interval for the whole super
        // block; only sources reroute.
        let schedule = SuperBlockSchedule::new(8, 4).unwrap();
        for sy in 0..2 {
            for sx in 0..2 {
                let first = schedule.step_assignments(sx, sy, 0);
                for step in 1..4 {
                    let now = schedule.step_assignments(sx, sy, step);
                    for (a, b) in first.iter().zip(now.iter()) {
                        assert_eq!(a.dst_interval, b.dst_interval);
                        assert_ne!(a.src_interval, b.src_interval);
                    }
                }
            }
        }
    }

    #[test]
    fn vertical_scan_order() {
        // Fig. 7: super blocks scan down a column before moving right —
        // i.e. sy advances slowest in our (sx inner, sy outer) layout.
        let schedule = SuperBlockSchedule::new(8, 4).unwrap();
        let keys: Vec<(u32, u32, u32)> = schedule.iter().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), 2 * 2 * 4);
        assert_eq!(keys[0], (0, 0, 0));
        assert_eq!(keys[3], (0, 0, 3));
        assert_eq!(keys[4], (1, 0, 0)); // next super block in the row band
        assert_eq!(keys[8], (0, 1, 0)); // then the next band
    }

    #[test]
    fn iterator_length_matches_formula() {
        let schedule = SuperBlockSchedule::new(24, 8).unwrap();
        assert_eq!(
            schedule.iter().count() as u64,
            schedule.steps_per_iteration()
        );
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_step_panics() {
        let schedule = SuperBlockSchedule::new(8, 4).unwrap();
        let _ = schedule.step_assignments(0, 0, 4);
    }
}
