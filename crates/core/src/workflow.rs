//! The dynamic-graph working flow of Fig. 4 / §5: a host manages graph
//! mutations **online** (incremental preprocessing into the grid's reserved
//! space) while the accelerator executes algorithms **offline** over the
//! current snapshot.
//!
//! [`WorkingFlow`] ties the pieces together: it owns a [`DynamicGrid`],
//! forwards mutation requests, tracks when enough has changed that the
//! engine should re-plan its partitioning, and rebuilds the execution grid
//! on demand.

use crate::engine::Engine;
use crate::error::CoreError;
use crate::stats::RunReport;
use hyve_algorithms::EdgeProgram;
use hyve_graph::{DynamicGrid, EdgeList, GridGraph, Mutation, MutationOutcome};

/// Online mutation handling + offline analysis over one evolving graph.
///
/// ```
/// use hyve_core::{SystemConfig, WorkingFlow};
/// use hyve_algorithms::DegreeCentrality;
/// use hyve_graph::{Edge, EdgeList, Mutation};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = EdgeList::from_edges(64, (0..32).map(|i| Edge::new(i, i + 32)))?;
/// let mut flow = WorkingFlow::new(SystemConfig::hyve_opt(), &graph)?;
/// flow.apply(Mutation::AddEdge(Edge::new(0, 1)))?;
/// let (report, degrees) = flow.analyze_with_values(&DegreeCentrality::new())?;
/// assert_eq!(degrees[1], 1.0);
/// assert!(report.energy().as_pj() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WorkingFlow {
    engine: Engine,
    dynamic: DynamicGrid,
    mutations_since_analysis: u64,
}

impl WorkingFlow {
    /// Grid granularity used for the online structure: fine enough that the
    /// §5 O(1) updates stay cheap, independent of the engine's per-run
    /// planning (which re-partitions the live snapshot anyway).
    const ONLINE_INTERVALS: u32 = 256;

    /// Builds the flow from an initial graph.
    ///
    /// # Errors
    ///
    /// Propagates configuration and partitioning errors.
    pub fn new(config: crate::config::SystemConfig, graph: &EdgeList) -> Result<Self, CoreError> {
        let engine = Engine::try_new(config)?;
        let p = Self::ONLINE_INTERVALS.min(graph.num_vertices().max(1));
        let grid = GridGraph::partition(graph, p)?;
        Ok(WorkingFlow {
            engine,
            dynamic: DynamicGrid::new(grid, 0.30),
            mutations_since_analysis: 0,
        })
    }

    /// The flow's configuration.
    pub fn config(&self) -> &crate::config::SystemConfig {
        self.engine.config()
    }

    /// The memory hierarchy the configuration lowered into (constructed
    /// once, reused by every [`analyze`](Self::analyze) call).
    pub fn hierarchy(&self) -> &crate::hierarchy::HierarchyInstance {
        self.engine.hierarchy()
    }

    /// The online dynamic structure.
    pub fn dynamic(&self) -> &DynamicGrid {
        &self.dynamic
    }

    /// Mutations applied since the last offline analysis.
    pub fn mutations_since_analysis(&self) -> u64 {
        self.mutations_since_analysis
    }

    /// Online path: applies one mutation (§5's four request kinds).
    ///
    /// # Errors
    ///
    /// Propagates [`DynamicGrid::apply`] failures (out-of-range vertices,
    /// removing absent edges).
    pub fn apply(&mut self, m: Mutation) -> Result<MutationOutcome, CoreError> {
        let outcome = self.dynamic.apply(m).map_err(CoreError::Graph)?;
        self.mutations_since_analysis += 1;
        Ok(outcome)
    }

    /// Applies a batch of mutations, stopping at the first error.
    ///
    /// # Errors
    ///
    /// The first mutation failure; earlier mutations remain applied.
    pub fn apply_all<I: IntoIterator<Item = Mutation>>(
        &mut self,
        mutations: I,
    ) -> Result<u64, CoreError> {
        let mut applied = 0;
        for m in mutations {
            self.apply(m)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Offline path: runs a program over the live snapshot (tombstoned
    /// vertices excluded) and returns the cost report.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn analyze<P: EdgeProgram>(&mut self, program: &P) -> Result<RunReport, CoreError> {
        self.analyze_with_values(program).map(|(r, _)| r)
    }

    /// Like [`analyze`](Self::analyze), also returning vertex values.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn analyze_with_values<P: EdgeProgram>(
        &mut self,
        program: &P,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        let live = self.dynamic.live_edge_list();
        self.mutations_since_analysis = 0;
        self.engine.run_on_edge_list_with_values(program, &live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use hyve_algorithms::{reference, Bfs, DegreeCentrality};
    use hyve_graph::{Csr, Edge, VertexId};

    fn graph() -> EdgeList {
        EdgeList::from_edges(32, (0..31).map(|i| Edge::new(i, i + 1))).unwrap()
    }

    #[test]
    fn online_then_offline_roundtrip() {
        let mut flow = WorkingFlow::new(SystemConfig::hyve_opt(), &graph()).unwrap();
        flow.apply(Mutation::AddEdge(Edge::new(0, 31))).unwrap();
        assert_eq!(flow.mutations_since_analysis(), 1);
        let (_, levels) = flow
            .analyze_with_values(&Bfs::new(VertexId::new(0)))
            .unwrap();
        // The shortcut reaches vertex 31 in one hop now.
        assert_eq!(levels[31], 1);
        assert_eq!(flow.mutations_since_analysis(), 0);
    }

    #[test]
    fn tombstoned_vertices_excluded_from_analysis() {
        let mut flow = WorkingFlow::new(SystemConfig::hyve(), &graph()).unwrap();
        flow.apply(Mutation::RemoveVertex(VertexId::new(1)))
            .unwrap();
        let (_, levels) = flow
            .analyze_with_values(&Bfs::new(VertexId::new(0)))
            .unwrap();
        // The chain is severed at vertex 1: everything past it unreached.
        assert_eq!(levels[0], 0);
        assert!(levels[2..].iter().all(|&l| l == u32::MAX));
    }

    #[test]
    fn batch_apply_counts() {
        let mut flow = WorkingFlow::new(SystemConfig::hyve_opt(), &graph()).unwrap();
        let n = flow
            .apply_all((0..5).map(|i| Mutation::AddEdge(Edge::new(i, 31 - i))))
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(flow.dynamic().grid().num_edges(), 31 + 5);
    }

    #[test]
    fn batch_apply_stops_at_error() {
        let mut flow = WorkingFlow::new(SystemConfig::hyve_opt(), &graph()).unwrap();
        let result = flow.apply_all([
            Mutation::AddEdge(Edge::new(0, 1)),
            Mutation::RemoveEdge { src: 9, dst: 0 }, // absent
            Mutation::AddEdge(Edge::new(1, 2)),
        ]);
        assert!(result.is_err());
        // The first mutation stuck.
        assert_eq!(flow.dynamic().grid().num_edges(), 32);
    }

    #[test]
    fn analysis_matches_reference_on_evolved_graph() {
        let mut flow = WorkingFlow::new(SystemConfig::hyve_opt(), &graph()).unwrap();
        flow.apply(Mutation::AddEdge(Edge::new(5, 20))).unwrap();
        flow.apply(Mutation::RemoveEdge { src: 10, dst: 11 })
            .unwrap();
        let live = flow.dynamic().live_edge_list();
        let (_, levels) = flow
            .analyze_with_values(&Bfs::new(VertexId::new(0)))
            .unwrap();
        let csr = Csr::from_edge_list(&live);
        assert_eq!(levels, reference::bfs_levels(&csr, VertexId::new(0)));
    }

    #[test]
    fn degree_analysis_sees_live_edges_only() {
        let mut flow = WorkingFlow::new(SystemConfig::hyve(), &graph()).unwrap();
        flow.apply(Mutation::RemoveVertex(VertexId::new(5)))
            .unwrap();
        let (_, deg) = flow.analyze_with_values(&DegreeCentrality::new()).unwrap();
        assert_eq!(deg[5], 0.0, "tombstoned vertex receives nothing");
        assert_eq!(deg[6], 0.0, "edge 5->6 is inert");
        assert_eq!(deg[7], 1.0);
    }
}
