//! The parallel execution core: strategy selection, the per-PU thread
//! fan-out, and the per-run block-cost memo.
//!
//! Algorithm 2 is parallel by construction — within a super-block step the
//! `N` processing units touch pairwise-distinct source and destination
//! intervals. The engine exploits that here: each PU's block work is a pure
//! function of the iteration-start snapshot, so the PU outcomes can be
//! computed on any number of OS threads and *reduced in fixed PU order*,
//! making every [`RunReport`](crate::stats::RunReport) bit-identical to the
//! sequential path regardless of thread count or interleaving.

use crate::schedule::SuperBlockSchedule;
use hyve_graph::FlatGrid;

/// How a [`SimulationSession`](crate::session::SimulationSession) executes
/// the per-PU work of each iteration (and sweeps over configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionStrategy {
    /// One OS thread; PUs run in index order.
    #[default]
    Sequential,
    /// Fan the per-PU work out over up to `threads` OS threads via
    /// `std::thread::scope`. Results are reduced in fixed PU order, so any
    /// thread count — including 1 — produces output bit-identical to
    /// [`Sequential`](ExecutionStrategy::Sequential).
    Parallel {
        /// Worker thread cap; must be ≥ 1.
        threads: usize,
    },
}

impl ExecutionStrategy {
    /// Worker threads this strategy uses for `tasks` independent tasks.
    pub(crate) fn worker_threads(self, tasks: usize) -> usize {
        match self {
            ExecutionStrategy::Sequential => 1,
            ExecutionStrategy::Parallel { threads } => threads.max(1).min(tasks.max(1)),
        }
    }
}

/// Runs `f(0), f(1), …, f(tasks-1)` under `strategy` and returns the results
/// indexed by task — the deterministic fan-out/reduce primitive everything
/// else builds on. `f` must be pure with respect to task index: outputs land
/// in a slot-per-task vector, so the caller's reduction order (fixed task
/// order) never depends on scheduling.
pub(crate) fn fan_out<O, F>(strategy: ExecutionStrategy, tasks: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let workers = strategy.worker_threads(tasks);
    if workers <= 1 || tasks <= 1 {
        return (0..tasks).map(f).collect();
    }
    let mut slots: Vec<Option<O>> = (0..tasks).map(|_| None).collect();
    let chunk = tasks.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (c, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(c * chunk + i));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task slot filled by its worker"))
        .collect()
}

/// In-place sibling of [`fan_out`]: runs `f(i, &mut states[i])` for every
/// state under `strategy`. This is how per-PU scratch buffers survive across
/// iterations — the engine allocates them once per run and lends each worker
/// exclusive access to its own slot, instead of collecting freshly-allocated
/// outputs every iteration. `f` must be pure with respect to `(i, state)`;
/// states are disjoint, so any thread interleaving leaves the same data in
/// the same slots.
pub(crate) fn fan_out_mut<S, F>(strategy: ExecutionStrategy, states: &mut [S], f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let tasks = states.len();
    let workers = strategy.worker_threads(tasks);
    if workers <= 1 || tasks <= 1 {
        for (i, state) in states.iter_mut().enumerate() {
            f(i, state);
        }
        return;
    }
    let chunk = tasks.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (c, state_chunk) in states.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (i, state) in state_chunk.iter_mut().enumerate() {
                    f(c * chunk + i, state);
                }
            });
        }
    });
}

/// Per-run static-cost memo over the block grid.
///
/// Algorithm 2's schedule is a pure function of `(P, N)`, and every
/// iteration walks exactly the same blocks — so the per-PU block lists and
/// the per-step synchronisation cost (each step costs its *largest* block)
/// are computed once per run and reused by both the functional pass (every
/// iteration) and the cost pass, instead of re-deriving the schedule and
/// re-scanning the grid per iteration.
/// One PU's `(src_interval, dst_interval)` blocks in schedule order.
type PuBlocks = Vec<(u32, u32)>;

#[derive(Debug, Clone)]
pub(crate) struct BlockPlan {
    /// For each PU, its `(src_interval, dst_interval)` blocks in schedule
    /// order (sy → sx → step).
    pu_blocks: Vec<PuBlocks>,
    /// Σ over steps of the step's maximum block edge count — the
    /// synchronised processing cost of one iteration, in edges.
    sync_edges: u64,
}

impl BlockPlan {
    /// Builds the memo over the flattened grid (block sizes are O(1)
    /// offset-table lookups), fanning the per-PU scans out under `strategy`.
    pub(crate) fn build(
        flat: &FlatGrid,
        schedule: &SuperBlockSchedule,
        strategy: ExecutionStrategy,
    ) -> Self {
        let n = schedule.pus();
        let s = schedule.super_blocks_per_side();
        let steps = (s as usize) * (s as usize) * (n as usize);
        // Each PU's schedule is closed-form: at (sy, sx, step) it owns the
        // block (sx·N + (pu+step) mod N, sy·N + pu).
        let per_pu: Vec<(PuBlocks, Vec<u64>)> = fan_out(strategy, n as usize, |pu| {
            let pu = pu as u32;
            let mut blocks = Vec::with_capacity(steps);
            let mut edges = Vec::with_capacity(steps);
            for sy in 0..s {
                for sx in 0..s {
                    for step in 0..n {
                        let src = sx * n + (pu + step) % n;
                        let dst = sy * n + pu;
                        blocks.push((src, dst));
                        edges.push(flat.block_len(src, dst) as u64);
                    }
                }
            }
            (blocks, edges)
        });
        // Reduce per-step costs in fixed PU order (max is exact on u64, so
        // this is deterministic for any fan-out).
        let mut step_max = vec![0u64; steps];
        for (_, edges) in &per_pu {
            for (m, &e) in step_max.iter_mut().zip(edges) {
                *m = (*m).max(e);
            }
        }
        BlockPlan {
            pu_blocks: per_pu.into_iter().map(|(blocks, _)| blocks).collect(),
            sync_edges: step_max.iter().sum(),
        }
    }

    /// Number of PUs the plan covers.
    pub(crate) fn num_pus(&self) -> usize {
        self.pu_blocks.len()
    }

    /// The blocks PU `pu` executes, in schedule order.
    pub(crate) fn blocks(&self, pu: usize) -> &[(u32, u32)] {
        &self.pu_blocks[pu]
    }

    /// Σ over steps of the step's maximum block edge count.
    pub(crate) fn sync_edges(&self) -> u64 {
        self.sync_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_graph::{DatasetProfile, GridGraph};
    use std::collections::HashSet;

    #[test]
    fn fan_out_preserves_task_order_for_any_thread_count() {
        for strategy in [
            ExecutionStrategy::Sequential,
            ExecutionStrategy::Parallel { threads: 1 },
            ExecutionStrategy::Parallel { threads: 3 },
            ExecutionStrategy::Parallel { threads: 8 },
            ExecutionStrategy::Parallel { threads: 64 },
        ] {
            let out = fan_out(strategy, 13, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fan_out_handles_empty_and_single_task() {
        let none: Vec<usize> = fan_out(ExecutionStrategy::Parallel { threads: 4 }, 0, |i| i);
        assert!(none.is_empty());
        let one = fan_out(ExecutionStrategy::Parallel { threads: 4 }, 1, |i| i + 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn fan_out_mut_updates_every_slot_in_place_for_any_thread_count() {
        for strategy in [
            ExecutionStrategy::Sequential,
            ExecutionStrategy::Parallel { threads: 1 },
            ExecutionStrategy::Parallel { threads: 3 },
            ExecutionStrategy::Parallel { threads: 16 },
        ] {
            let mut states: Vec<Vec<usize>> = (0..9).map(|i| vec![i]).collect();
            fan_out_mut(strategy, &mut states, |i, s| s.push(i * i));
            for (i, s) in states.iter().enumerate() {
                assert_eq!(s, &vec![i, i * i], "slot {i} under {strategy:?}");
            }
            let mut empty: Vec<u8> = Vec::new();
            fan_out_mut(strategy, &mut empty, |_, _| unreachable!());
        }
    }

    #[test]
    fn plan_matches_schedule_iteration() {
        let graph = DatasetProfile::youtube_scaled().generate(3);
        let grid = GridGraph::partition(&graph, 16).unwrap();
        let schedule = SuperBlockSchedule::new(16, 4).unwrap();
        let plan = BlockPlan::build(&grid.flatten(), &schedule, ExecutionStrategy::Sequential);

        // Every block appears exactly once across PUs.
        let mut seen = HashSet::new();
        for pu in 0..plan.num_pus() {
            for &(src, dst) in plan.blocks(pu) {
                assert!(seen.insert((src, dst)), "block ({src},{dst}) planned twice");
                assert_eq!(dst % 4, pu as u32, "PU owns dst intervals ≡ pu (mod N)");
            }
        }
        assert_eq!(seen.len(), 16 * 16);

        // The sync cost matches a direct scan over the schedule.
        let direct: u64 = schedule
            .iter()
            .map(|(_, assignments)| {
                assignments
                    .iter()
                    .map(|a| grid.block_at(a.src_interval, a.dst_interval).len() as u64)
                    .max()
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(plan.sync_edges(), direct);
    }

    #[test]
    fn plan_is_identical_for_any_strategy() {
        let graph = DatasetProfile::youtube_scaled().generate(9);
        let flat = GridGraph::partition(&graph, 8).unwrap().flatten();
        let schedule = SuperBlockSchedule::new(8, 8).unwrap();
        let base = BlockPlan::build(&flat, &schedule, ExecutionStrategy::Sequential);
        for threads in [1, 2, 5, 8] {
            let par = BlockPlan::build(&flat, &schedule, ExecutionStrategy::Parallel { threads });
            assert_eq!(par.sync_edges(), base.sync_edges());
            for pu in 0..base.num_pus() {
                assert_eq!(par.blocks(pu), base.blocks(pu));
            }
        }
    }
}
