//! Run accounting: per-component energy breakdown (Fig. 17), phase times,
//! the headline MTEPS/W metric, and the reliability outcome of fault runs.

use crate::controller::BankRemap;
use hyve_memsim::{AccessStats, Energy, EnergyDelay, Time};
use std::fmt;

/// Energy split by hierarchy component — the paper's Fig. 17 categories
/// ("Other logic units", "Edge Memory", "Vertex Memory"), with vertex memory
/// further split on/off-chip.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Edge-memory channel (dynamic + background).
    pub edge_memory: AccessStats,
    /// Off-chip (global) vertex memory.
    pub offchip_vertex: AccessStats,
    /// On-chip (local) vertex memory.
    pub onchip_vertex: AccessStats,
    /// Processing units, router, controller.
    pub logic: AccessStats,
}

impl EnergyBreakdown {
    /// Total energy across all components.
    pub fn total(&self) -> Energy {
        self.edge_memory.total_energy()
            + self.offchip_vertex.total_energy()
            + self.onchip_vertex.total_energy()
            + self.logic.total_energy()
    }

    /// Combined vertex-memory energy (Fig. 17 groups on- and off-chip).
    pub fn vertex_memory(&self) -> Energy {
        self.offchip_vertex.total_energy() + self.onchip_vertex.total_energy()
    }

    /// Fraction of total energy spent in memory (edge + vertex) — the
    /// quantity the paper tracks from 88.62% (SD) down to 52.91% (opt).
    pub fn memory_fraction(&self) -> f64 {
        let total = self.total();
        if total == Energy::ZERO {
            return 0.0;
        }
        (self.edge_memory.total_energy() + self.vertex_memory()) / total
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        let pct = |e: Energy| {
            if total == Energy::ZERO {
                0.0
            } else {
                100.0 * (e / total)
            }
        };
        write!(
            f,
            "edge {} ({:.1}%), vertex {} ({:.1}%), logic {} ({:.1}%)",
            self.edge_memory.total_energy(),
            pct(self.edge_memory.total_energy()),
            self.vertex_memory(),
            pct(self.vertex_memory()),
            self.logic.total_energy(),
            pct(self.logic.total_energy()),
        )
    }
}

/// Per-iteration trace of the functional pass.
///
/// Exposed by
/// [`SimulationSession::run_with_trace`](crate::SimulationSession::run_with_trace)
/// so equivalence tests can assert that engine optimisations (dirty-interval
/// skipping, scratch reuse) leave the iteration structure untouched, not
/// just the final values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTrace {
    /// Iterations actually executed.
    pub iterations: u32,
    /// Whether each iteration changed at least one vertex value; one entry
    /// per executed iteration.
    pub changed: Vec<bool>,
}

/// Wall-clock time split across Algorithm 2's phases.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Loading intervals into on-chip memory.
    pub loading: Time,
    /// Streaming and processing edges.
    pub processing: Time,
    /// Writing destination intervals back.
    pub updating: Time,
    /// Rerouting + synchronisation overhead.
    pub overhead: Time,
}

impl PhaseTimes {
    /// Total elapsed time.
    pub fn total(&self) -> Time {
        self.loading + self.processing + self.updating + self.overhead
    }

    /// The four phases with their stable names, in schedule order — the
    /// shape trace serialization and report pretty-printers iterate over.
    pub fn named(&self) -> [(&'static str, Time); 4] {
        [
            ("loading", self.loading),
            ("processing", self.processing),
            ("updating", self.updating),
            ("overhead", self.overhead),
        ]
    }
}

/// Reliability outcome of one run under an active
/// [`FaultPlan`](hyve_memsim::FaultPlan).
///
/// All counts are run totals across every channel; remaps cover the edge
/// channel, the only one with bank sparing. `None` on a [`RunReport`]
/// means the run executed fault-free (the default).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReliabilityReport {
    /// Bit errors corrected in-line by ECC.
    pub corrected: u64,
    /// Detectable-but-uncorrectable errors (each triggers retries).
    pub uncorrectable: u64,
    /// Total re-read attempts across all uncorrectable errors.
    pub retries: u64,
    /// Edge banks remapped onto spares, in escalation order.
    pub remaps: Vec<BankRemap>,
    /// Spare banks the edge channel reserved for this run.
    pub spare_banks: u64,
    /// Persistent faults that found no spare (lost capacity).
    pub unspared: u64,
    /// Fraction of edge-bank capacity lost to faults and spares in use.
    pub degraded_fraction: f64,
}

impl fmt::Display for ReliabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} corrected, {} uncorrectable ({} retries), {} bank remap(s), {:.2}% capacity degraded",
            self.corrected,
            self.uncorrectable,
            self.retries,
            self.remaps.len(),
            100.0 * self.degraded_fraction,
        )
    }
}

/// Complete result of an engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Configuration name.
    pub config: &'static str,
    /// Iterations executed.
    pub iterations: u32,
    /// Total edge traversals across all iterations.
    pub edges_processed: u64,
    /// Interval partition count `P` the scheduler chose.
    pub intervals: u32,
    /// Phase time split.
    pub phases: PhaseTimes,
    /// Per-component energy.
    pub breakdown: EnergyBreakdown,
    /// Reliability outcome; `None` for fault-free runs (the default).
    pub reliability: Option<ReliabilityReport>,
}

impl RunReport {
    /// Total elapsed simulated time.
    pub fn elapsed(&self) -> Time {
        self.phases.total()
    }

    /// Total energy.
    pub fn energy(&self) -> Energy {
        self.breakdown.total()
    }

    /// Energy-delay product.
    pub fn edp(&self) -> EnergyDelay {
        self.energy() * self.elapsed()
    }

    /// Traversal throughput in millions of edges per second.
    pub fn mteps(&self) -> f64 {
        if self.elapsed() == Time::ZERO {
            return 0.0;
        }
        self.edges_processed as f64 / self.elapsed().as_s() / 1e6
    }

    /// The paper's headline metric: millions of traversed edges per second
    /// per watt — numerically, traversed edges per microjoule.
    pub fn mteps_per_watt(&self) -> f64 {
        let e = self.energy();
        if e == Energy::ZERO {
            return 0.0;
        }
        self.edges_processed as f64 / e.as_uj()
    }

    /// Average power over the run.
    pub fn avg_power(&self) -> hyve_memsim::Power {
        if self.elapsed() == Time::ZERO {
            hyve_memsim::Power::ZERO
        } else {
            self.energy() / self.elapsed()
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} iters, {} edges, {} elapsed, {} total, {:.1} MTEPS/W [{}]",
            self.algorithm,
            self.config,
            self.iterations,
            self.edges_processed,
            self.elapsed(),
            self.energy(),
            self.mteps_per_watt(),
            self.breakdown,
        )?;
        if let Some(rel) = &self.reliability {
            write!(f, " | reliability: {rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_memsim::Power;

    fn report() -> RunReport {
        let mut breakdown = EnergyBreakdown::default();
        breakdown
            .edge_memory
            .record_read(512, Energy::from_pj(100.0), Time::from_ns(2.0));
        breakdown
            .onchip_vertex
            .record_read(32, Energy::from_pj(24.0), Time::from_ns(1.0));
        breakdown
            .logic
            .record_read(0, Energy::from_pj(4.0), Time::ZERO);
        RunReport {
            algorithm: "PR",
            config: "acc+HyVE",
            iterations: 10,
            edges_processed: 1000,
            intervals: 8,
            phases: PhaseTimes {
                loading: Time::from_ns(100.0),
                processing: Time::from_ns(800.0),
                updating: Time::from_ns(90.0),
                overhead: Time::from_ns(10.0),
            },
            breakdown,
            reliability: None,
        }
    }

    #[test]
    fn totals_add_up() {
        let r = report();
        assert!((r.energy().as_pj() - 128.0).abs() < 1e-9);
        assert!((r.elapsed().as_ns() - 1000.0).abs() < 1e-9);
        assert!((r.edp().as_pj_ns() - 128_000.0).abs() < 1e-6);
    }

    #[test]
    fn mteps_per_watt_is_edges_per_microjoule() {
        let r = report();
        // 1000 edges / 128 pJ = 1000 / 1.28e-4 uJ.
        let expect = 1000.0 / (128.0 * 1e-6);
        assert!((r.mteps_per_watt() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn mteps_and_power() {
        let r = report();
        // 1000 edges in 1 us = 1e9 edges/s = 1000 MTEPS.
        assert!((r.mteps() - 1000.0).abs() < 1e-9);
        let p: Power = r.avg_power();
        assert!((p.as_mw() - 0.128).abs() < 1e-9);
    }

    #[test]
    fn memory_fraction() {
        let r = report();
        let frac = r.breakdown.memory_fraction();
        assert!((frac - 124.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn zero_report_is_safe() {
        let r = RunReport {
            algorithm: "BFS",
            config: "x",
            iterations: 0,
            edges_processed: 0,
            intervals: 1,
            phases: PhaseTimes::default(),
            breakdown: EnergyBreakdown::default(),
            reliability: None,
        };
        assert_eq!(r.mteps(), 0.0);
        assert_eq!(r.mteps_per_watt(), 0.0);
        assert_eq!(r.avg_power(), Power::ZERO);
        assert_eq!(r.breakdown.memory_fraction(), 0.0);
    }

    #[test]
    fn display_contains_headline() {
        let s = report().to_string();
        assert!(s.contains("PR"));
        assert!(s.contains("MTEPS/W"));
        assert!(
            !s.contains("reliability"),
            "fault-free reports stay silent about reliability"
        );
    }

    #[test]
    fn reliability_surfaces_in_display() {
        let mut r = report();
        r.reliability = Some(ReliabilityReport {
            corrected: 12,
            uncorrectable: 2,
            retries: 5,
            remaps: vec![BankRemap {
                chip: 0,
                bank: 3,
                spare_chip: 7,
                spare_bank: 7,
            }],
            spare_banks: 2,
            unspared: 0,
            degraded_fraction: 1.0 / 64.0,
        });
        let s = r.to_string();
        assert!(s.contains("reliability"));
        assert!(s.contains("12 corrected"));
        assert!(s.contains("1 bank remap"));
    }
}
