//! The hybrid memory controller (§3.3, Fig. 4): address mapping, edge
//! buffering and vertex data scheduling.
//!
//! The controller is the abstraction layer between the accelerator logic
//! and the hybrid memory modules. Three of its responsibilities are
//! modelled explicitly:
//!
//! * **Address mapping** — translating a block's position in the grid to a
//!   (chip, bank, row) location in the edge memory, §3.4's sequential
//!   layout. This is what the power-gating controller consults to know
//!   which bank a stream is entering.
//! * **Edge buffering** — a small FIFO decouples the edge memory's bursty
//!   512-bit accesses from the per-edge consumption of the processing
//!   units; its occupancy statistics show when the stream is supply- or
//!   consumer-bound.
//! * **Scheduling stalls** — "during scheduling, on-chip vertex memory
//!   access requests are stalled" (§3.3); the controller counts them.
//! * **Resilience** — the detect→retry→remap escalation ladder for memory
//!   faults: ECC corrects what it can, detectable-uncorrectable errors are
//!   re-read with backoff, and persistently faulty edge banks are remapped
//!   onto spare banks ([`BankSpareMap`]) so a run degrades (less effective
//!   capacity, extra transfers) instead of aborting.

use hyve_memsim::{FaultPlan, Time};

/// Physical placement of a byte range in the edge memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeAddress {
    /// Chip on the edge channel.
    pub chip: u32,
    /// Bank within the chip.
    pub bank: u32,
    /// Byte offset within the bank.
    pub offset: u64,
}

/// Maps sequential edge-memory offsets onto chips and banks (§3.1: no bank
/// interleaving — data fills one bank completely before the next, so a
/// sequential scan powers exactly one bank at a time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    chips: u32,
    banks_per_chip: u32,
    bank_bytes: u64,
}

impl AddressMap {
    /// Creates a map over `chips × banks_per_chip` banks of `bank_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(chips: u32, banks_per_chip: u32, bank_bytes: u64) -> Self {
        assert!(
            chips > 0 && banks_per_chip > 0 && bank_bytes > 0,
            "degenerate address map"
        );
        AddressMap {
            chips,
            banks_per_chip,
            bank_bytes,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.chips) * u64::from(self.banks_per_chip) * self.bank_bytes
    }

    /// Translates a byte offset.
    ///
    /// # Panics
    ///
    /// Panics if the offset exceeds the capacity.
    pub fn translate(&self, byte_offset: u64) -> EdgeAddress {
        assert!(
            byte_offset < self.capacity_bytes(),
            "offset {byte_offset} beyond capacity {}",
            self.capacity_bytes()
        );
        let bank_linear = byte_offset / self.bank_bytes;
        EdgeAddress {
            chip: (bank_linear / u64::from(self.banks_per_chip)) as u32,
            bank: (bank_linear % u64::from(self.banks_per_chip)) as u32,
            offset: byte_offset % self.bank_bytes,
        }
    }

    /// Number of bank boundaries a sequential scan of `bytes` bytes
    /// starting at offset 0 crosses — the power-gating transition count.
    pub fn banks_spanned(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bank_bytes).max(1)
    }
}

/// A FIFO edge buffer between edge memory and the processing units.
///
/// Tracked analytically: given the producer period (one burst of
/// `edges_per_burst` every `burst_period`) and the consumer period (one
/// edge every `consume_period` aggregated across PUs), the buffer either
/// hides the mismatch or stalls one side.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeBuffer {
    capacity_edges: u32,
}

/// Which side of the edge buffer limits throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamBound {
    /// The edge memory cannot keep the buffer full (supply-bound).
    Supply,
    /// The processing units cannot drain it (consumer-bound).
    Consumer,
    /// Perfectly matched rates.
    Balanced,
}

/// Steady-state analysis of the edge stream through the buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamAnalysis {
    /// Effective per-edge period seen by the PUs.
    pub effective_period: Time,
    /// Which side limits throughput.
    pub bound: StreamBound,
    /// Steady-state buffer occupancy fraction (0 = starved, 1 = full).
    pub occupancy: f64,
}

impl EdgeBuffer {
    /// Creates a buffer holding `capacity_edges` edges.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_edges: u32) -> Self {
        assert!(capacity_edges > 0, "edge buffer needs capacity");
        EdgeBuffer { capacity_edges }
    }

    /// Buffer capacity in edges.
    pub fn capacity(&self) -> u32 {
        self.capacity_edges
    }

    /// Steady-state behaviour for given producer/consumer rates.
    pub fn analyze(
        &self,
        burst_period: Time,
        edges_per_burst: u32,
        consume_period: Time,
    ) -> StreamAnalysis {
        let supply_per_edge = burst_period / f64::from(edges_per_burst.max(1));
        let (bound, effective, occupancy) = if supply_per_edge > consume_period {
            (StreamBound::Supply, supply_per_edge, 0.0)
        } else if supply_per_edge < consume_period {
            (StreamBound::Consumer, consume_period, 1.0)
        } else {
            (StreamBound::Balanced, consume_period, 0.5)
        };
        StreamAnalysis {
            effective_period: effective,
            bound,
            occupancy,
        }
    }
}

impl Default for EdgeBuffer {
    /// 64 edges — a few bursts of slack, matching the controller sketch.
    fn default() -> Self {
        EdgeBuffer::new(64)
    }
}

/// One bank-sparing decision: a persistently faulty edge bank and the
/// spare bank now serving its address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankRemap {
    /// Chip of the faulty bank.
    pub chip: u32,
    /// Faulty bank within the chip.
    pub bank: u32,
    /// Chip of the spare now serving the range.
    pub spare_chip: u32,
    /// Spare bank within that chip.
    pub spare_bank: u32,
}

/// Spare-bank allocator for the edge channel.
///
/// A small fraction of banks (at least one) is reserved at the *top* of
/// the linear bank space as spares; persistent faults consume them from
/// the highest linear index downward. Banks that fail after the spares
/// run out are simply lost capacity — the run still completes, just more
/// degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankSpareMap {
    banks_per_chip: u32,
    total_banks: u64,
    spare_banks: u64,
    next_spare: u64,
    remaps: Vec<BankRemap>,
    unspared: u64,
}

impl BankSpareMap {
    /// Creates a spare map over `chips × banks_per_chip` banks, reserving
    /// 1/32 of them (at least one) as spares.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(chips: u32, banks_per_chip: u32) -> Self {
        assert!(chips > 0 && banks_per_chip > 0, "degenerate spare map");
        let total_banks = u64::from(chips) * u64::from(banks_per_chip);
        let spare_banks = (total_banks / 32).max(1).min(total_banks);
        BankSpareMap {
            banks_per_chip,
            total_banks,
            spare_banks,
            next_spare: total_banks,
            remaps: Vec::new(),
            unspared: 0,
        }
    }

    /// Number of banks reserved as spares.
    pub fn spare_banks(&self) -> u64 {
        self.spare_banks
    }

    /// Remaps a persistently faulty bank onto the next free spare.
    ///
    /// Returns the remap record, or `None` when the spare pool is
    /// exhausted (the bank is then counted as unspared lost capacity).
    /// Remapping the same bank twice is idempotent.
    pub fn remap(&mut self, chip: u32, bank: u32) -> Option<BankRemap> {
        if let Some(existing) = self
            .remaps
            .iter()
            .find(|r| r.chip == chip && r.bank == bank)
        {
            return Some(*existing);
        }
        let used = self.total_banks - self.next_spare;
        if used >= self.spare_banks {
            self.unspared += 1;
            return None;
        }
        self.next_spare -= 1;
        let record = BankRemap {
            chip,
            bank,
            spare_chip: (self.next_spare / u64::from(self.banks_per_chip)) as u32,
            spare_bank: (self.next_spare % u64::from(self.banks_per_chip)) as u32,
        };
        self.remaps.push(record);
        Some(record)
    }

    /// All remaps performed so far, in escalation order.
    pub fn remaps(&self) -> &[BankRemap] {
        &self.remaps
    }

    /// Persistent faults that found no spare left.
    pub fn unspared(&self) -> u64 {
        self.unspared
    }

    /// Fraction of total bank capacity lost to faults and their spares.
    pub fn degraded_fraction(&self) -> f64 {
        (self.remaps.len() as u64 + self.unspared) as f64 / self.total_banks as f64
    }
}

/// The controller's reliability configuration, resolved against the edge
/// channel's bank geometry.
///
/// Holds the immutable facts the accounting pass needs — the
/// [`FaultPlan`], the edge bank geometry and the edge cell bits (MLC
/// sensitivity). Mutable escalation state ([`BankSpareMap`]) is created
/// fresh per run via [`ResilienceModel::spare_map`], so concurrent runs on
/// one session stay independent and deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceModel {
    plan: FaultPlan,
    edge_chips: u32,
    edge_banks_per_chip: u32,
    edge_cell_bits: u32,
}

impl ResilienceModel {
    /// Creates a model from a plan and the edge channel's geometry.
    ///
    /// # Panics
    ///
    /// Panics if the bank geometry is degenerate.
    pub fn new(
        plan: FaultPlan,
        edge_chips: u32,
        edge_banks_per_chip: u32,
        edge_cell_bits: u32,
    ) -> Self {
        assert!(
            edge_chips > 0 && edge_banks_per_chip > 0,
            "degenerate edge bank geometry"
        );
        ResilienceModel {
            plan,
            edge_chips,
            edge_banks_per_chip,
            edge_cell_bits: edge_cell_bits.max(1),
        }
    }

    /// The fault plan being enforced.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Edge-channel chips.
    pub fn edge_chips(&self) -> u32 {
        self.edge_chips
    }

    /// Banks per edge chip.
    pub fn edge_banks_per_chip(&self) -> u32 {
        self.edge_banks_per_chip
    }

    /// Bits per edge-memory cell (MLC raw-BER sensitivity).
    pub fn edge_cell_bits(&self) -> u32 {
        self.edge_cell_bits
    }

    /// Total edge banks across all chips.
    pub fn total_edge_banks(&self) -> u64 {
        u64::from(self.edge_chips) * u64::from(self.edge_banks_per_chip)
    }

    /// A fresh spare map for one run's escalation state.
    pub fn spare_map(&self) -> BankSpareMap {
        BankSpareMap::new(self.edge_chips, self.edge_banks_per_chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_walks_banks_then_chips() {
        let map = AddressMap::new(2, 4, 1024);
        assert_eq!(map.capacity_bytes(), 8 * 1024);
        let a = map.translate(0);
        assert_eq!((a.chip, a.bank, a.offset), (0, 0, 0));
        let b = map.translate(1024 * 3 + 5);
        assert_eq!((b.chip, b.bank, b.offset), (0, 3, 5));
        let c = map.translate(1024 * 4);
        assert_eq!((c.chip, c.bank, c.offset), (1, 0, 0));
        let d = map.translate(8 * 1024 - 1);
        assert_eq!((d.chip, d.bank), (1, 3));
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn translation_bounds_checked() {
        let map = AddressMap::new(1, 1, 16);
        let _ = map.translate(16);
    }

    #[test]
    fn banks_spanned_counts_transitions() {
        let map = AddressMap::new(2, 4, 1024);
        assert_eq!(map.banks_spanned(1), 1);
        assert_eq!(map.banks_spanned(1024), 1);
        assert_eq!(map.banks_spanned(1025), 2);
        assert_eq!(map.banks_spanned(5000), 5);
    }

    #[test]
    fn buffer_identifies_bound_side() {
        let buf = EdgeBuffer::default();
        // Supply: 512-bit burst (8 edges) every 1.983 ns = 0.248 ns/edge;
        // consumer takes 2 ns/edge ⇒ consumer-bound, buffer full.
        let a = buf.analyze(Time::from_ns(1.983), 8, Time::from_ns(2.0));
        assert_eq!(a.bound, StreamBound::Consumer);
        assert_eq!(a.occupancy, 1.0);
        assert_eq!(a.effective_period, Time::from_ns(2.0));
        // Slow memory: burst every 40 ns ⇒ 5 ns/edge supply vs 2 ns drain.
        let b = buf.analyze(Time::from_ns(40.0), 8, Time::from_ns(2.0));
        assert_eq!(b.bound, StreamBound::Supply);
        assert_eq!(b.occupancy, 0.0);
        assert_eq!(b.effective_period, Time::from_ns(5.0));
    }

    #[test]
    fn balanced_stream() {
        let buf = EdgeBuffer::new(8);
        let a = buf.analyze(Time::from_ns(16.0), 8, Time::from_ns(2.0));
        assert_eq!(a.bound, StreamBound::Balanced);
        assert_eq!(a.occupancy, 0.5);
        assert_eq!(buf.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_dims_panic() {
        let _ = AddressMap::new(0, 4, 1024);
    }

    #[test]
    fn spare_map_allocates_from_the_top_down() {
        // 8 chips × 8 banks = 64 banks → 2 spares (64/32).
        let mut map = BankSpareMap::new(8, 8);
        assert_eq!(map.spare_banks(), 2);
        let first = map.remap(0, 3).unwrap();
        assert_eq!((first.spare_chip, first.spare_bank), (7, 7));
        let second = map.remap(2, 1).unwrap();
        assert_eq!((second.spare_chip, second.spare_bank), (7, 6));
        // Pool exhausted: third fault is lost capacity, not a remap.
        assert!(map.remap(4, 4).is_none());
        assert_eq!(map.unspared(), 1);
        assert_eq!(map.remaps().len(), 2);
        assert!((map.degraded_fraction() - 3.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn spare_map_remap_is_idempotent() {
        let mut map = BankSpareMap::new(2, 8);
        assert_eq!(map.spare_banks(), 1, "16 banks still reserve one spare");
        let a = map.remap(0, 0).unwrap();
        let b = map.remap(0, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(map.remaps().len(), 1);
    }

    #[test]
    fn resilience_model_resolves_geometry() {
        let plan = FaultPlan::none().with_seed(3);
        let model = ResilienceModel::new(plan.clone(), 8, 8, 2);
        assert_eq!(model.plan(), &plan);
        assert_eq!(model.total_edge_banks(), 64);
        assert_eq!(model.edge_cell_bits(), 2);
        // Each run gets fresh, independent escalation state.
        let mut a = model.spare_map();
        a.remap(1, 1);
        assert!(model.spare_map().remaps().is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate edge bank geometry")]
    fn resilience_model_rejects_zero_banks() {
        let _ = ResilienceModel::new(FaultPlan::none(), 0, 8, 1);
    }
}
