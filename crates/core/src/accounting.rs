//! Phase-level cost-accounting passes over the memory hierarchy.
//!
//! Each pass models one phase of Algorithm 2 — the edge stream, interval
//! traffic with/without sharing, on-chip access + PU work, router
//! overhead, the random-access fallback, and background power — reading
//! the static [`Workload`] description and writing into its channels'
//! [`Ledgers`]. The engine assembles the pass outputs into
//! [`PhaseTimes`](crate::stats::PhaseTimes) and scales by the functional
//! run's iteration count.
//!
//! **Bit-exactness contract:** the golden-snapshot suite pins every float
//! in a [`RunReport`](crate::stats::RunReport). Float accumulation is
//! order-sensitive, so the order of `record_*` calls *per channel* — and
//! the arithmetic inside each pass — must not be reordered without
//! re-blessing the baselines.

use crate::controller::ResilienceModel;
use crate::exec::BlockPlan;
use crate::hierarchy::{Channel, DeviceSpec, HierarchyInstance, Ledgers};
use crate::pu::ProcessingUnit;
use crate::router::Router;
use crate::stats::ReliabilityReport;
use hyve_algorithms::{EdgeProgram, ExecutionMode};
use hyve_graph::GridGraph;
use hyve_memsim::{
    expected_count, mlc_ber_factor, AccessStats, EccProfile, Energy, FaultPlan, FaultRng, Power,
    Time,
};

/// Banks that can overlap random accesses on a channel.
const BANK_PARALLELISM: f64 = 16.0;

/// Requests the memory controller keeps in flight on a sequential stream,
/// hiding per-access latency behind the data transfer.
const OUTSTANDING_REQUESTS: f64 = 16.0;

/// Static, value-independent description of one run's work: every
/// iteration makes exactly the same memory accesses (§7.1), so the passes
/// only need these scalars plus the hierarchy.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Workload {
    /// Processing units `N`.
    pub n: u32,
    /// Interval partition count `P`.
    pub p: u32,
    /// Super blocks per side, `S = P/N`.
    pub s: u32,
    /// Vertices in the graph.
    pub nv: u64,
    /// Edges in the graph.
    pub ne: u64,
    /// Traversals per edge (2 when the program walks edges undirected).
    pub traversal_factor: u64,
    /// Bits per vertex value.
    pub value_bits: u64,
    /// 32-bit words per vertex value.
    pub words_per_value: u64,
    /// Whether edge work uses the arithmetic (vs. compare) ALU path.
    pub arithmetic: bool,
    /// Whether the program runs an apply pass over resident vertices.
    pub accumulate: bool,
    /// Σ over schedule steps of the step's largest block, in edges.
    pub sync_edges: u64,
    /// Stored edge-array size in bits, including block headers.
    pub edge_bits: u64,
}

impl Workload {
    /// Captures the scalars for one `(program, grid, plan)` run.
    pub(crate) fn for_run<P: EdgeProgram>(
        program: &P,
        grid: &GridGraph,
        plan: &BlockPlan,
        num_pus: u32,
    ) -> Workload {
        let p = grid.num_intervals();
        let value_bits = u64::from(program.value_bits());
        Workload {
            n: num_pus,
            p,
            s: p / num_pus,
            nv: u64::from(grid.num_vertices()),
            ne: grid.num_edges(),
            traversal_factor: if program.undirected() { 2 } else { 1 },
            value_bits,
            words_per_value: value_bits.div_ceil(32).max(1),
            arithmetic: program.arithmetic(),
            accumulate: program.mode() == ExecutionMode::Accumulate,
            sync_edges: plan.sync_edges(),
            edge_bits: grid.edge_storage_bits(),
        }
    }

    /// Edge traversals per iteration.
    pub(crate) fn traversals(&self) -> u64 {
        self.ne * self.traversal_factor
    }
}

/// Per-iteration cost of the sequential scan over the whole edge array.
pub(crate) struct EdgeStream {
    /// Dynamic read energy of one full scan.
    pub energy: Energy,
    /// Streaming time of one full scan.
    pub stream_time: Time,
}

/// Edge-stream pass: the edge-centric model reads *all* edges every
/// iteration (§7.1), one pipelined sequential stream per pass.
pub(crate) fn edge_stream(edge: &Channel, w: &Workload) -> EdgeStream {
    let dev = edge.device();
    EdgeStream {
        energy: dev.read_energy(w.edge_bits),
        stream_time: dev.sequential_read_time(w.edge_bits),
    }
}

impl EdgeStream {
    /// Records the scan in the edge channel's ledger. Called after the
    /// vertex-side passes so the edge ledger's accumulation order matches
    /// the report contract.
    pub(crate) fn commit(&self, w: &Workload, ledgers: &mut Ledgers) {
        ledgers
            .edge
            .record_read(w.edge_bits, self.energy, self.stream_time);
    }
}

/// Phase times produced by the interval-traffic pass.
pub(crate) struct IntervalTraffic {
    /// Time to load source + destination intervals on-chip.
    pub loading: Time,
    /// Time to write destination intervals back.
    pub updating: Time,
}

/// Interval-traffic pass (hierarchies with an on-chip tier).
///
/// With data sharing (Algorithm 2 + router): destination intervals load
/// once and write back once per iteration (Eq. 7); source intervals load
/// once per super block (Eq. 8 ⇒ `Nv·P/N` vertices). Without sharing
/// (Fig. 14's baseline): every step reloads its source interval from
/// off-chip — `Nv·P` source vertices per iteration. Destination intervals
/// stay resident either way.
pub(crate) fn interval_traffic(
    global: &Channel,
    local: &Channel,
    data_sharing: bool,
    w: &Workload,
    ledgers: &mut Ledgers,
) -> IntervalTraffic {
    let (dst_load_vertices, dst_store_vertices, src_load_vertices) = if data_sharing {
        (w.nv, w.nv, w.nv * u64::from(w.s))
    } else {
        (w.nv, w.nv, w.nv * u64::from(w.p))
    };
    let dst_load_bits = dst_load_vertices * w.value_bits;
    let src_load_bits = src_load_vertices * w.value_bits;
    let interval_loads = if data_sharing {
        u64::from(w.p) + u64::from(w.s * w.s) * u64::from(w.n)
    } else {
        u64::from(w.p) + u64::from(w.s * w.s) * u64::from(w.n) * u64::from(w.n)
    };

    // Off-chip loads stream sequentially; on-chip fills proceed in
    // parallel across PU memories, so the channel is the bottleneck.
    // Chips on the vertex channel stream in parallel (ganged like a DIMM
    // rank), multiplying sequential bandwidth. Interval-load request
    // latencies pipeline behind the stream: the controller keeps many
    // requests outstanding, so latency only shows when it exceeds the
    // streaming time.
    let vdev = global.device();
    let load_bits = dst_load_bits + src_load_bits;
    let stream = vdev.sequential_read_time(load_bits / u64::from(global.chips()));
    let latency = global.costs().read_latency * (interval_loads as f64 / OUTSTANDING_REQUESTS);
    let lt_channel = stream.max(latency);
    let lt_local = local.device().bulk_transfer_time(load_bits) / f64::from(w.n);
    let loading = lt_channel.max(lt_local);
    ledgers
        .global_vertex
        .record_read(load_bits, vdev.read_energy(load_bits), lt_channel);
    ledgers.local_vertex.record_write(
        load_bits,
        local.device().bulk_write_energy(load_bits),
        Time::ZERO,
    );

    // Write-back of destination intervals streams at the device's
    // sequential-write rate: burst-pipelined on DRAM, program-pulse-limited
    // on ReRAM — the §3.2 reason HyVE keeps vertices in DRAM.
    let store_bits = dst_store_vertices * w.value_bits;
    let ut_channel = global.costs().write_latency * f64::from(w.p)
        + global.costs().sequential_write_period
            * (store_bits.div_ceil(u64::from(global.costs().output_bits * global.chips()))) as f64;
    ledgers
        .global_vertex
        .record_write(store_bits, vdev.write_energy(store_bits), ut_channel);
    ledgers.local_vertex.record_read(
        store_bits,
        local.device().bulk_read_energy(store_bits),
        Time::ZERO,
    );
    IntervalTraffic {
        loading,
        updating: ut_channel,
    }
}

/// On-chip access + PU pass: Eq. (1)'s per-edge pipelining (the bottleneck
/// stage among edge supply, source read, destination read+write and the PU
/// sets the period) and the per-edge on-chip/logic energy. Returns the
/// processing time of one iteration.
pub(crate) fn onchip_processing(
    edge: &Channel,
    local: &Channel,
    pu: &ProcessingUnit,
    w: &Workload,
    ledgers: &mut Ledgers,
) -> Time {
    let edges_per_access = (u64::from(edge.costs().output_bits) / hyve_graph::Edge::BITS).max(1);
    let edge_supply = edge.costs().burst_period * (f64::from(w.n) / edges_per_access as f64);
    let src_stage = local.costs().word_read_latency * w.words_per_value as f64;
    let dst_stage = (local.costs().word_read_latency + local.costs().word_write_latency)
        * w.words_per_value as f64;
    let pu_stage = pu.pipelined_period();
    let per_edge =
        edge_supply.max(src_stage).max(dst_stage).max(pu_stage) * w.traversal_factor as f64;

    // Steps synchronise: each step costs the *largest* block in it; the
    // per-step maxima are memoized in the block plan.
    let processing = per_edge * w.sync_edges as f64;

    // Per-edge on-chip + PU energy.
    let traversals = w.traversals();
    let local_dev = local.device();
    let word_read = local_dev.read_energy(32) * w.words_per_value as f64;
    let word_write = local_dev.write_energy(32) * w.words_per_value as f64;
    let per_edge_onchip = word_read * 2.0 + word_write;
    ledgers.local_vertex.record_read(
        traversals * w.value_bits * 2,
        per_edge_onchip * traversals as f64,
        Time::ZERO,
    );
    ledgers.logic.record_read(
        0,
        pu.edge_energy(w.arithmetic) * traversals as f64,
        Time::ZERO,
    );

    // Accumulate programs run an apply pass over resident vertices: read
    // accumulator + previous value, write result, one ALU op.
    if w.accumulate {
        let apply_ops = w.nv;
        ledgers.local_vertex.record_read(
            apply_ops * w.value_bits * 2,
            (word_read * 2.0 + word_write) * apply_ops as f64,
            Time::ZERO,
        );
        ledgers
            .logic
            .record_read(0, pu.edge_energy(true) * apply_ops as f64, Time::ZERO);
    }
    processing
}

/// Per-iteration router traffic: (32-bit words forwarded between PUs,
/// reroute steps). Shared by [`router_overhead`] and the trace layer so
/// the numbers an observer sees are the numbers the ledger was charged
/// for.
pub(crate) fn router_traffic(w: &Workload) -> (u64, u64) {
    let steps = u64::from(w.s * w.s) * u64::from(w.n);
    (w.traversals() * w.words_per_value, steps)
}

/// Router pass: reroute per step, hop energy on every shared source read
/// (§4.2). Returns the per-iteration rerouting overhead time.
pub(crate) fn router_overhead(router: &Router, w: &Workload, ledgers: &mut Ledgers) -> Time {
    let (words, steps) = router_traffic(w);
    let hop = router.hop_energy_per_word() * words as f64 + router.reroute_energy() * steps as f64;
    ledgers.logic.record_read(0, hop, Time::ZERO);
    router.reroute_latency() * steps as f64
}

/// Random-access fallback (no on-chip tier): every vertex touch goes
/// straight at the off-chip device, partially hidden by bank-level
/// parallelism. Returns the processing time of one iteration.
pub(crate) fn random_access(
    global: &Channel,
    pu: &ProcessingUnit,
    w: &Workload,
    ledgers: &mut Ledgers,
) -> Time {
    let traversals = w.traversals();
    let vdev = global.device();
    let rd = vdev.random_read_energy(w.value_bits);
    let wr = vdev.random_write_energy(w.value_bits);
    ledgers.global_vertex.record_read(
        traversals * w.value_bits * 2,
        rd * 2.0 * traversals as f64,
        Time::ZERO,
    );
    ledgers.global_vertex.record_write(
        traversals * w.value_bits,
        wr * traversals as f64,
        Time::ZERO,
    );
    ledgers.logic.record_read(
        0,
        pu.edge_energy(w.arithmetic) * traversals as f64,
        Time::ZERO,
    );

    // Three random vertex accesses per edge, overlapped across banks.
    let per_edge_latency =
        (global.costs().read_latency * 2.0 + global.costs().write_latency) / BANK_PARALLELISM;
    let per_edge = per_edge_latency.max(pu.pipelined_period()) * w.traversal_factor as f64;
    per_edge * w.ne as f64
}

/// Scales each channel's dynamic counters by the iteration count. Runs
/// before the background pass: background energy accrues over the *total*
/// runtime and must not be scaled again.
pub(crate) fn scale_by_iterations(ledgers: &mut Ledgers, iters: f64) {
    for stats in [
        &mut ledgers.edge,
        &mut ledgers.global_vertex,
        &mut ledgers.local_vertex,
        &mut ledgers.logic,
    ] {
        stats.reads = (stats.reads as f64 * iters) as u64;
        stats.writes = (stats.writes as f64 * iters) as u64;
        stats.bits_read = (stats.bits_read as f64 * iters) as u64;
        stats.bits_written = (stats.bits_written as f64 * iters) as u64;
        stats.dynamic_energy *= iters;
        stats.busy_time *= iters;
    }
}

/// Output of the reliability pass: the run's reliability report plus the
/// serially-exposed time (corrections, retry backoff, remap re-streams)
/// the engine adds to the overhead phase and the total runtime.
pub(crate) struct ReliabilityOutcome {
    /// Time exposed serially on top of the fault-free schedule.
    pub exposed_time: Time,
    /// Corrections / retries / remaps for the report and the trace layer.
    pub report: ReliabilityReport,
}

/// Raw bit-error rate a channel's device sees under a plan: ReRAM scaled
/// by MLC sensitivity, DRAM at its retention rate, on-chip tiers at the
/// soft-error rate.
fn channel_ber(plan: &FaultPlan, device: &DeviceSpec) -> f64 {
    match device {
        DeviceSpec::Reram(cfg) => plan.reram_ber * mlc_ber_factor(cfg.cell.bits.bits()),
        DeviceSpec::Dram(_) => plan.dram_ber,
        DeviceSpec::Sram(_) | DeviceSpec::RegisterFile { .. } => plan.sram_ber,
    }
}

/// Detect→retry ECC escalation over one channel's run-total traffic.
///
/// Charges the syndrome-decode energy on every protected access, the
/// correction energy/latency on corrected errors, and bounded re-reads
/// with linear backoff on detectable-uncorrectable ones. Without ECC, raw
/// errors are *silent*: nothing is observed, nothing is charged.
fn channel_escalation(
    ch: &Channel,
    stats: &mut AccessStats,
    ber: f64,
    ecc: EccProfile,
    max_retries: u32,
    rng: &mut FaultRng,
    report: &mut ReliabilityReport,
) -> Time {
    let word_bits = ch.costs().output_bits;
    if ecc == EccProfile::None {
        return Time::ZERO;
    }
    // The syndrome pipeline checks every access; its latency is already in
    // the cost memo, its energy is charged here.
    let accesses = stats.reads + stats.writes;
    stats.dynamic_energy += ecc.detect_energy(word_bits) * accesses as f64;
    if ber <= 0.0 {
        return Time::ZERO;
    }

    let bits = stats.bits_read + stats.bits_written;
    let expected_errors = bits as f64 * ber;
    let expected_due = ecc.uncorrectable_expected(expected_errors, ber, word_bits);
    let due = expected_count(expected_due, rng);
    let corrected = expected_count(expected_errors, rng).saturating_sub(due);

    // Correctable: decode + flip, exposed serially on the access path.
    stats.dynamic_energy += ecc.correct_energy(word_bits) * corrected as f64;
    let mut exposed = ecc.correct_latency() * corrected as f64;

    // Detectable-uncorrectable: each event is re-read up to the retry
    // budget with linearly growing backoff (attempt k waits k access
    // latencies). Events beyond the sampling cap extrapolate at the
    // sampled mean so huge error counts stay O(cap) — and deterministic.
    const EVENT_CAP: u64 = 10_000;
    let sampled = due.min(EVENT_CAP);
    let mut retries = 0u64;
    let mut backoff_units = 0u64;
    for _ in 0..sampled {
        let attempts = 1 + rng.below(u64::from(max_retries));
        retries += attempts;
        backoff_units += attempts * (attempts + 1) / 2;
    }
    if due > sampled && sampled > 0 {
        retries += (retries / sampled) * (due - sampled);
        backoff_units += (backoff_units / sampled) * (due - sampled);
    }
    stats.reads += retries;
    stats.bits_read += retries * u64::from(word_bits);
    stats.dynamic_energy += ch.device().read_energy(u64::from(word_bits)) * retries as f64;
    let retry_time = ch.costs().read_latency * backoff_units as f64;
    stats.busy_time += retry_time;
    exposed += retry_time;

    report.corrected += corrected;
    report.uncorrectable += due;
    report.retries += retries;
    exposed
}

/// Reliability pass: interprets the session's [`FaultPlan`] against the
/// run's total traffic, charging ECC corrections, retry backoff and bank
/// sparing into the ledgers.
///
/// Runs once per run, single-threaded, after [`scale_by_iterations`] (so
/// the ledger counters are run totals) and before [`background`] (so the
/// exposed time extends the leakage window). All randomness comes from
/// the plan's seed, consumed in a fixed channel order — outcomes are
/// identical across execution strategies and thread counts by
/// construction.
pub(crate) fn reliability(
    model: &ResilienceModel,
    hierarchy: &HierarchyInstance,
    w: &Workload,
    iterations: u32,
    ledgers: &mut Ledgers,
) -> ReliabilityOutcome {
    let plan = model.plan();
    let spec = hierarchy.spec();
    let mut rng = FaultRng::new(plan.seed);
    let mut report = ReliabilityReport::default();
    let mut exposed = Time::ZERO;

    // Detect→retry, per channel in fixed ledger order.
    exposed += channel_escalation(
        hierarchy.edge(),
        &mut ledgers.edge,
        channel_ber(plan, &spec.edge.device),
        plan.ecc,
        plan.max_retries,
        &mut rng,
        &mut report,
    );
    exposed += channel_escalation(
        hierarchy.global_vertex(),
        &mut ledgers.global_vertex,
        channel_ber(plan, &spec.global_vertex.device),
        plan.ecc,
        plan.max_retries,
        &mut rng,
        &mut report,
    );
    if let (Some(local), Some(local_spec)) = (hierarchy.local_vertex(), &spec.local_vertex) {
        exposed += channel_escalation(
            local,
            &mut ledgers.local_vertex,
            channel_ber(plan, &local_spec.device),
            plan.ecc,
            plan.max_retries,
            &mut rng,
            &mut report,
        );
    }

    // Remap: persistent edge-bank faults — factory-stuck banks plus banks
    // whose endurance budget the run's scan count exhausted — are spared
    // so the run completes degraded instead of aborting.
    let mut spares = model.spare_map();
    let banks_per_chip = u64::from(model.edge_banks_per_chip());
    let data_banks = model
        .total_edge_banks()
        .saturating_sub(spares.spare_banks());
    let mut persistent: Vec<(u32, u32)> = plan.stuck_banks.clone();
    if let Some(limit) = plan.wear_limit {
        // Process variation: each bank's endurance is a seed-deterministic
        // draw in [0.5, 1.5) × the nominal limit; banks the run's scans
        // outlived go persistent.
        for linear in 0..data_banks {
            let endurance = ((limit as f64 * (0.5 + rng.next_f64())) as u64).max(1);
            if u64::from(iterations) >= endurance {
                persistent.push((
                    (linear / banks_per_chip) as u32,
                    (linear % banks_per_chip) as u32,
                ));
            }
        }
    }
    for (chip, bank) in persistent {
        spares.remap(chip, bank);
    }

    // Each remapped bank's share of the edge array now streams from its
    // spare — extra transfers every iteration, charged to the edge ledger.
    let remapped = spares.remaps().len() as u64;
    if remapped > 0 {
        let share_bits = (w.edge_bits / data_banks.max(1)).max(1);
        let extra_bits = share_bits * remapped * u64::from(iterations);
        let dev = hierarchy.edge().device();
        let extra_time = dev.sequential_read_time(extra_bits);
        ledgers
            .edge
            .record_read(extra_bits, dev.read_energy(extra_bits), extra_time);
        exposed += extra_time;
    }

    report.remaps = spares.remaps().to_vec();
    report.spare_banks = spares.spare_banks();
    report.unspared = spares.unspared();
    report.degraded_fraction = spares.degraded_fraction();

    ReliabilityOutcome {
        exposed_time: exposed,
        report,
    }
}

/// Background pass: leakage/refresh over the whole run. The edge channel
/// is gated when the hierarchy carries a power-gating controller (§4.1);
/// the vertex channel stays powered (random/bursty traffic).
pub(crate) fn background(
    hierarchy: &HierarchyInstance,
    pu: &ProcessingUnit,
    total_time: Time,
    iterations: u32,
    w: &Workload,
    ledgers: &mut Ledgers,
) {
    let edge_bg = match hierarchy.gating() {
        Some(gating) => gating.background_energy(total_time, w.edge_bits, iterations),
        None => {
            hierarchy.edge().costs().background_power
                * f64::from(hierarchy.edge().chips())
                * total_time
        }
    };
    ledgers.edge.record_background(edge_bg);

    let global = hierarchy.global_vertex();
    ledgers.global_vertex.record_background(
        global.costs().background_power * f64::from(global.chips()) * total_time,
    );
    if let Some(local) = hierarchy.local_vertex() {
        ledgers
            .local_vertex
            .record_background(local.costs().background_power * total_time);
    }
    let logic_power = pu.leakage() * f64::from(w.n)
        + hierarchy.router().map_or(Power::ZERO, Router::leakage)
        + hierarchy.controller_power();
    ledgers.logic.record_background(logic_power * total_time);
}
