//! Structured run observability: typed trace events, pluggable sinks, and
//! a versioned JSONL metrics artifact.
//!
//! The paper's evaluation (Figs. 14–21, Table 4) is a set of derived views
//! over one run — phase times, per-channel energy, gating transitions.
//! This module turns those views into data: the engine feeds typed
//! [`TraceEvent`]s to a [`TraceSink`] attached via
//! [`SessionBuilder::with_trace`](crate::SessionBuilder::with_trace), and
//! the bundled [`MetricsRecorder`] aggregates them into a
//! [`TraceArtifact`] that serializes to a versioned JSONL file
//! ([`SCHEMA`]) and diffs against another artifact.
//!
//! ## Observation never perturbs accounting
//!
//! Tracing is strictly read-only: every event carries *copies* of values
//! the engine computed anyway, emitted after the fact.
//! [`RunReport`](crate::RunReport)s are
//! bit-identical with a sink attached or not (the golden suite pins this),
//! and with no sink attached the only residue on the hot path is a pair of
//! per-block `u64` increments (see the `trace_overhead` criterion bench).
//!
//! ## Exactness
//!
//! Floats in the artifact are serialized twice: a human-readable decimal
//! field (`*_ns` / `*_pj`) and an exact `f64::to_bits` hex field
//! (`*_bits`). The parser reads the hex field, so a round-tripped artifact
//! is bit-identical to its source and a self-diff is exactly zero.

use crate::controller::BankRemap;
use crate::stats::PhaseTimes;
use hyve_memsim::{AccessStats, Energy, Time};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Version tag of the JSONL artifact schema. Bump when the line shapes
/// change incompatibly; [`TraceArtifact::from_jsonl`] rejects other tags.
pub const SCHEMA: &str = "hyve-trace/1";

/// The hierarchy channel a ledger snapshot belongs to — the Fig. 17
/// categories, mirroring [`EnergyBreakdown`](crate::EnergyBreakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceChannel {
    /// Edge-memory channel.
    EdgeMemory,
    /// Off-chip (global) vertex memory.
    OffchipVertex,
    /// On-chip (local) vertex memory.
    OnchipVertex,
    /// Processing units, router, controller.
    Logic,
}

impl TraceChannel {
    /// All four channels in report order.
    pub const ALL: [TraceChannel; 4] = [
        TraceChannel::EdgeMemory,
        TraceChannel::OffchipVertex,
        TraceChannel::OnchipVertex,
        TraceChannel::Logic,
    ];

    /// Stable artifact name of the channel.
    pub fn name(self) -> &'static str {
        match self {
            TraceChannel::EdgeMemory => "edge_memory",
            TraceChannel::OffchipVertex => "offchip_vertex",
            TraceChannel::OnchipVertex => "onchip_vertex",
            TraceChannel::Logic => "logic",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<TraceChannel> {
        TraceChannel::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for TraceChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed observation the engine emits during a run.
///
/// Events arrive in a fixed order: one [`RunStart`](TraceEvent::RunStart),
/// one [`IterationEnd`](TraceEvent::IterationEnd) per executed iteration,
/// then the run-total records ([`Phases`](TraceEvent::Phases), one
/// [`ChannelLedger`](TraceEvent::ChannelLedger) per channel, optional
/// [`GatingTransitions`](TraceEvent::GatingTransitions),
/// [`RouterTraffic`](TraceEvent::RouterTraffic), and — on fault runs —
/// [`Reliability`](TraceEvent::Reliability) plus one
/// [`BankRemap`](TraceEvent::BankRemap) per spared bank) and a closing
/// [`RunEnd`](TraceEvent::RunEnd).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A run began.
    RunStart {
        /// Algorithm name.
        algorithm: &'static str,
        /// Configuration name.
        config: &'static str,
        /// Vertices in the graph.
        num_vertices: u32,
        /// Edges in the graph.
        num_edges: u64,
        /// Interval partition count `P`.
        intervals: u32,
        /// Processing units `N`.
        num_pus: u32,
    },
    /// One functional iteration finished its reduce.
    IterationEnd {
        /// 1-based iteration index.
        iteration: u32,
        /// Whether any vertex value changed.
        changed: bool,
        /// Non-empty blocks the PUs actually walked.
        blocks_processed: u64,
        /// Non-empty blocks elided by dirty-interval skipping.
        blocks_skipped: u64,
    },
    /// Run-total phase time split (already scaled by iterations).
    Phases {
        /// The report's phase times.
        phases: PhaseTimes,
    },
    /// Final ledger of one hierarchy channel (post scaling + background).
    ChannelLedger {
        /// Which channel.
        channel: TraceChannel,
        /// The channel's access statistics.
        stats: AccessStats,
    },
    /// Power-gating sleep/wake transition pairs charged over the run.
    GatingTransitions {
        /// Transition-pair count.
        transitions: u64,
    },
    /// Inter-PU router traffic over the run.
    RouterTraffic {
        /// 32-bit words forwarded between PUs.
        words: u64,
        /// Reroute steps taken.
        reroutes: u64,
    },
    /// Run-total ECC escalation counters, emitted only when a
    /// [`FaultPlan`](hyve_memsim::FaultPlan) was active.
    Reliability {
        /// Bit errors corrected in-line by ECC.
        corrected: u64,
        /// Detectable-but-uncorrectable errors.
        uncorrectable: u64,
        /// Total re-read attempts across all uncorrectable errors.
        retries: u64,
    },
    /// One edge bank remapped onto a spare; emitted once per remap, in
    /// escalation order, only when a fault plan was active.
    BankRemap {
        /// Failed bank's chip index.
        chip: u32,
        /// Failed bank's index within its chip.
        bank: u32,
        /// Spare bank's chip index.
        spare_chip: u32,
        /// Spare bank's index within its chip.
        spare_bank: u32,
    },
    /// The run completed.
    RunEnd {
        /// Iterations executed.
        iterations: u32,
        /// Total edge traversals.
        edges_processed: u64,
    },
}

/// Receiver of [`TraceEvent`]s.
///
/// Implementations must be `Send`: a sink attached to a session may be
/// driven from whichever thread runs the engine.
pub trait TraceSink: Send {
    /// Receives one event. Called synchronously from the engine; keep it
    /// cheap or buffer internally.
    fn record(&mut self, event: &TraceEvent);
}

/// A cloneable, thread-safe handle to an attached [`TraceSink`], stored in
/// the session and threaded through the engine.
#[derive(Clone)]
pub struct SharedSink(Arc<Mutex<dyn TraceSink>>);

impl SharedSink {
    /// Wraps a sink for sharing with the session.
    pub fn new(sink: impl TraceSink + 'static) -> SharedSink {
        SharedSink(Arc::new(Mutex::new(sink)))
    }

    /// Forwards one event to the wrapped sink.
    pub(crate) fn record(&self, event: &TraceEvent) {
        self.0.lock().expect("trace sink poisoned").record(event);
    }
}

impl fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SharedSink(..)")
    }
}

/// One iteration's sample in the artifact's time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationSample {
    /// 1-based iteration index.
    pub iteration: u32,
    /// Whether any vertex value changed.
    pub changed: bool,
    /// Non-empty blocks walked.
    pub blocks_processed: u64,
    /// Non-empty blocks skipped as clean.
    pub blocks_skipped: u64,
}

/// Final access totals of one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelSeries {
    /// Which channel.
    pub channel: TraceChannel,
    /// Run-total access statistics.
    pub stats: AccessStats,
}

/// Router traffic totals over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterTotals {
    /// 32-bit words forwarded between PUs.
    pub words: u64,
    /// Reroute steps taken.
    pub reroutes: u64,
}

/// Reliability totals of a fault run: the escalation counters plus every
/// bank remap, in escalation order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReliabilityTotals {
    /// Bit errors corrected in-line by ECC.
    pub corrected: u64,
    /// Detectable-but-uncorrectable errors.
    pub uncorrectable: u64,
    /// Total re-read attempts across all uncorrectable errors.
    pub retries: u64,
    /// Edge banks remapped onto spares.
    pub remaps: Vec<BankRemap>,
}

/// Aggregated metrics of one run: the [`MetricsRecorder`]'s output and the
/// JSONL artifact's in-memory form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceArtifact {
    /// Algorithm name.
    pub algorithm: String,
    /// Configuration name.
    pub config: String,
    /// Vertices in the graph.
    pub num_vertices: u32,
    /// Edges in the graph.
    pub num_edges: u64,
    /// Interval partition count `P`.
    pub intervals: u32,
    /// Processing units `N`.
    pub num_pus: u32,
    /// Iterations executed.
    pub iterations_total: u32,
    /// Total edge traversals.
    pub edges_processed: u64,
    /// Per-iteration time series.
    pub iterations: Vec<IterationSample>,
    /// Run-total phase times.
    pub phases: PhaseTimes,
    /// Final per-channel ledgers, in report order.
    pub channels: Vec<ChannelSeries>,
    /// Power-gating transition pairs, when gating was on.
    pub gating_transitions: Option<u64>,
    /// Router traffic, when data sharing was on.
    pub router: Option<RouterTotals>,
    /// Reliability counters and remaps, when a fault plan was active.
    pub reliability: Option<ReliabilityTotals>,
}

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// One parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(String),
    Bool(bool),
}

/// Parses one flat JSON object (string/number/bool values only — all the
/// schema needs, so no external JSON dependency).
fn parse_flat_object(line: &str) -> Result<HashMap<String, JsonValue>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut map = HashMap::new();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
            if chars.next() != Some('"') {
                return Err("expected '\"'".into());
            }
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => return Ok(s),
                    Some('\\') => match chars.next() {
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('u') => {
                            let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                            let code =
                                u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some(c) => s.push(c),
                    None => return Err("unterminated string".into()),
                }
            }
        };
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        return Ok(map);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some('t') | Some('f') => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    other => return Err(format!("bad literal {other:?}")),
                }
            }
            Some(_) => {
                let tok: String = std::iter::from_fn(|| {
                    chars.next_if(|c| !matches!(c, ',' | '}') && !c.is_whitespace())
                })
                .collect();
                if tok.is_empty() {
                    return Err(format!("missing value for key {key:?}"));
                }
                JsonValue::Num(tok)
            }
            None => return Err("unexpected end of line".into()),
        };
        map.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    Ok(map)
}

/// Field accessors over a parsed line.
struct Fields<'a>(&'a HashMap<String, JsonValue>);

impl Fields<'_> {
    fn str(&self, key: &str) -> Result<&str, String> {
        match self.0.get(key) {
            Some(JsonValue::Str(s)) => Ok(s),
            _ => Err(format!("missing string field {key:?}")),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.0.get(key) {
            Some(JsonValue::Num(n)) => n.parse().map_err(|_| format!("field {key:?} is not a u64")),
            _ => Err(format!("missing numeric field {key:?}")),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        self.u64(key)?
            .try_into()
            .map_err(|_| format!("field {key:?} overflows u32"))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.0.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            _ => Err(format!("missing boolean field {key:?}")),
        }
    }

    /// Reads an exact `f64` from a `*_bits` hex field.
    fn bits(&self, key: &str) -> Result<f64, String> {
        let hex = self.str(key)?;
        u64::from_str_radix(hex, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("field {key:?} is not a hex bit pattern"))
    }
}

/// Error from [`TraceArtifact::from_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace artifact line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl TraceArtifact {
    /// Sum of all channels' total energy.
    pub fn total_energy(&self) -> Energy {
        self.channels
            .iter()
            .fold(Energy::ZERO, |acc, c| acc + c.stats.total_energy())
    }

    /// Total elapsed simulated time.
    pub fn elapsed(&self) -> Time {
        self.phases.total()
    }

    /// Serializes to the versioned JSONL form ([`SCHEMA`]): a header line
    /// followed by one event object per line. Floats carry both a decimal
    /// and an exact hex-bits field; [`from_jsonl`](Self::from_jsonl) reads
    /// the latter, so the round trip is bit-exact.
    pub fn to_jsonl(&self) -> String {
        use fmt::Write;
        let bits = |v: f64| format!("{:016x}", v.to_bits());
        let mut out = String::new();
        writeln!(
            out,
            "{{\"schema\":\"{}\",\"algorithm\":\"{}\",\"config\":\"{}\",\
             \"vertices\":{},\"edges\":{},\"intervals\":{},\"pus\":{},\
             \"iterations\":{},\"edges_processed\":{}}}",
            SCHEMA,
            esc(&self.algorithm),
            esc(&self.config),
            self.num_vertices,
            self.num_edges,
            self.intervals,
            self.num_pus,
            self.iterations_total,
            self.edges_processed,
        )
        .expect("string write");
        for s in &self.iterations {
            writeln!(
                out,
                "{{\"event\":\"iteration\",\"i\":{},\"changed\":{},\
                 \"processed\":{},\"skipped\":{}}}",
                s.iteration, s.changed, s.blocks_processed, s.blocks_skipped,
            )
            .expect("string write");
        }
        let p = &self.phases;
        writeln!(
            out,
            "{{\"event\":\"phases\",\"loading_ns\":{},\"processing_ns\":{},\
             \"updating_ns\":{},\"overhead_ns\":{},\"loading_bits\":\"{}\",\
             \"processing_bits\":\"{}\",\"updating_bits\":\"{}\",\
             \"overhead_bits\":\"{}\"}}",
            p.loading.as_ns(),
            p.processing.as_ns(),
            p.updating.as_ns(),
            p.overhead.as_ns(),
            bits(p.loading.as_ns()),
            bits(p.processing.as_ns()),
            bits(p.updating.as_ns()),
            bits(p.overhead.as_ns()),
        )
        .expect("string write");
        for c in &self.channels {
            let s = &c.stats;
            writeln!(
                out,
                "{{\"event\":\"channel\",\"name\":\"{}\",\"reads\":{},\
                 \"writes\":{},\"bits_read\":{},\"bits_written\":{},\
                 \"dynamic_pj\":{},\"background_pj\":{},\"busy_ns\":{},\
                 \"dynamic_bits\":\"{}\",\"background_bits\":\"{}\",\
                 \"busy_bits\":\"{}\"}}",
                c.channel.name(),
                s.reads,
                s.writes,
                s.bits_read,
                s.bits_written,
                s.dynamic_energy.as_pj(),
                s.background_energy.as_pj(),
                s.busy_time.as_ns(),
                bits(s.dynamic_energy.as_pj()),
                bits(s.background_energy.as_pj()),
                bits(s.busy_time.as_ns()),
            )
            .expect("string write");
        }
        if let Some(t) = self.gating_transitions {
            writeln!(out, "{{\"event\":\"gating\",\"transitions\":{t}}}").expect("string write");
        }
        if let Some(r) = &self.router {
            writeln!(
                out,
                "{{\"event\":\"router\",\"words\":{},\"reroutes\":{}}}",
                r.words, r.reroutes,
            )
            .expect("string write");
        }
        if let Some(rel) = &self.reliability {
            writeln!(
                out,
                "{{\"event\":\"reliability\",\"corrected\":{},\
                 \"uncorrectable\":{},\"retries\":{}}}",
                rel.corrected, rel.uncorrectable, rel.retries,
            )
            .expect("string write");
            for r in &rel.remaps {
                writeln!(
                    out,
                    "{{\"event\":\"remap\",\"chip\":{},\"bank\":{},\
                     \"spare_chip\":{},\"spare_bank\":{}}}",
                    r.chip, r.bank, r.spare_chip, r.spare_bank,
                )
                .expect("string write");
            }
        }
        out
    }

    /// Parses a [`SCHEMA`]-versioned JSONL artifact.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] on an unknown schema tag, malformed line, or
    /// unknown event kind.
    pub fn from_jsonl(text: &str) -> Result<TraceArtifact, TraceParseError> {
        let err = |line: usize, message: String| TraceParseError { line, message };
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (first_no, first) = lines
            .next()
            .ok_or_else(|| err(0, "empty artifact".into()))?;
        let header = parse_flat_object(first).map_err(|m| err(first_no + 1, m))?;
        let h = Fields(&header);
        let schema = h.str("schema").map_err(|m| err(first_no + 1, m))?;
        if schema != SCHEMA {
            return Err(err(
                first_no + 1,
                format!("unsupported schema {schema:?} (expected {SCHEMA:?})"),
            ));
        }
        let mut artifact = TraceArtifact {
            algorithm: h.str("algorithm").map_err(|m| err(first_no + 1, m))?.into(),
            config: h.str("config").map_err(|m| err(first_no + 1, m))?.into(),
            num_vertices: h.u32("vertices").map_err(|m| err(first_no + 1, m))?,
            num_edges: h.u64("edges").map_err(|m| err(first_no + 1, m))?,
            intervals: h.u32("intervals").map_err(|m| err(first_no + 1, m))?,
            num_pus: h.u32("pus").map_err(|m| err(first_no + 1, m))?,
            iterations_total: h.u32("iterations").map_err(|m| err(first_no + 1, m))?,
            edges_processed: h.u64("edges_processed").map_err(|m| err(first_no + 1, m))?,
            ..TraceArtifact::default()
        };
        for (no, line) in lines {
            let no = no + 1;
            let map = parse_flat_object(line).map_err(|m| err(no, m))?;
            let f = Fields(&map);
            match f.str("event").map_err(|m| err(no, m))? {
                "iteration" => artifact.iterations.push(IterationSample {
                    iteration: f.u32("i").map_err(|m| err(no, m))?,
                    changed: f.bool("changed").map_err(|m| err(no, m))?,
                    blocks_processed: f.u64("processed").map_err(|m| err(no, m))?,
                    blocks_skipped: f.u64("skipped").map_err(|m| err(no, m))?,
                }),
                "phases" => {
                    artifact.phases = PhaseTimes {
                        loading: Time::from_ns(f.bits("loading_bits").map_err(|m| err(no, m))?),
                        processing: Time::from_ns(
                            f.bits("processing_bits").map_err(|m| err(no, m))?,
                        ),
                        updating: Time::from_ns(f.bits("updating_bits").map_err(|m| err(no, m))?),
                        overhead: Time::from_ns(f.bits("overhead_bits").map_err(|m| err(no, m))?),
                    }
                }
                "channel" => {
                    let name = f.str("name").map_err(|m| err(no, m))?;
                    let channel = TraceChannel::from_name(name)
                        .ok_or_else(|| err(no, format!("unknown channel {name:?}")))?;
                    artifact.channels.push(ChannelSeries {
                        channel,
                        stats: AccessStats {
                            reads: f.u64("reads").map_err(|m| err(no, m))?,
                            writes: f.u64("writes").map_err(|m| err(no, m))?,
                            bits_read: f.u64("bits_read").map_err(|m| err(no, m))?,
                            bits_written: f.u64("bits_written").map_err(|m| err(no, m))?,
                            dynamic_energy: Energy::from_pj(
                                f.bits("dynamic_bits").map_err(|m| err(no, m))?,
                            ),
                            background_energy: Energy::from_pj(
                                f.bits("background_bits").map_err(|m| err(no, m))?,
                            ),
                            busy_time: Time::from_ns(f.bits("busy_bits").map_err(|m| err(no, m))?),
                        },
                    });
                }
                "gating" => {
                    artifact.gating_transitions =
                        Some(f.u64("transitions").map_err(|m| err(no, m))?);
                }
                "router" => {
                    artifact.router = Some(RouterTotals {
                        words: f.u64("words").map_err(|m| err(no, m))?,
                        reroutes: f.u64("reroutes").map_err(|m| err(no, m))?,
                    });
                }
                "reliability" => {
                    let rel = artifact.reliability.get_or_insert_with(Default::default);
                    rel.corrected = f.u64("corrected").map_err(|m| err(no, m))?;
                    rel.uncorrectable = f.u64("uncorrectable").map_err(|m| err(no, m))?;
                    rel.retries = f.u64("retries").map_err(|m| err(no, m))?;
                }
                "remap" => {
                    artifact
                        .reliability
                        .get_or_insert_with(Default::default)
                        .remaps
                        .push(BankRemap {
                            chip: f.u32("chip").map_err(|m| err(no, m))?,
                            bank: f.u32("bank").map_err(|m| err(no, m))?,
                            spare_chip: f.u32("spare_chip").map_err(|m| err(no, m))?,
                            spare_bank: f.u32("spare_bank").map_err(|m| err(no, m))?,
                        });
                }
                other => return Err(err(no, format!("unknown event {other:?}"))),
            }
        }
        Ok(artifact)
    }

    /// Compares this artifact against `baseline`, channel by channel.
    pub fn diff(&self, baseline: &TraceArtifact) -> TraceDiff {
        let pct = |delta: f64, base: f64| {
            if base == 0.0 {
                if delta == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                100.0 * delta / base.abs()
            }
        };
        let channels = self
            .channels
            .iter()
            .map(|c| {
                let base = baseline
                    .channels
                    .iter()
                    .find(|b| b.channel == c.channel)
                    .map(|b| b.stats)
                    .unwrap_or_default();
                let e = c.stats.total_energy().as_pj();
                let be = base.total_energy().as_pj();
                let t = c.stats.busy_time.as_ns();
                let bt = base.busy_time.as_ns();
                ChannelDelta {
                    channel: c.channel,
                    energy_pj: e - be,
                    energy_pct: pct(e - be, be),
                    busy_ns: t - bt,
                    busy_pct: pct(t - bt, bt),
                }
            })
            .collect();
        let e = self.total_energy().as_pj();
        let be = baseline.total_energy().as_pj();
        let t = self.elapsed().as_ns();
        let bt = baseline.elapsed().as_ns();
        TraceDiff {
            channels,
            total_energy_pj: e - be,
            total_energy_pct: pct(e - be, be),
            elapsed_ns: t - bt,
            elapsed_pct: pct(t - bt, bt),
            iterations: i64::from(self.iterations_total) - i64::from(baseline.iterations_total),
        }
    }
}

/// Per-channel delta of a [`TraceArtifact::diff`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelDelta {
    /// Which channel.
    pub channel: TraceChannel,
    /// Total-energy delta in pJ (self − baseline).
    pub energy_pj: f64,
    /// Energy delta as a percentage of the baseline.
    pub energy_pct: f64,
    /// Busy-time delta in ns.
    pub busy_ns: f64,
    /// Busy-time delta as a percentage of the baseline.
    pub busy_pct: f64,
}

/// Result of diffing two artifacts: per-channel and headline deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// One delta per channel of the compared artifact.
    pub channels: Vec<ChannelDelta>,
    /// Total-energy delta in pJ.
    pub total_energy_pj: f64,
    /// Total-energy delta as a percentage of the baseline.
    pub total_energy_pct: f64,
    /// Elapsed-time delta in ns.
    pub elapsed_ns: f64,
    /// Elapsed-time delta as a percentage of the baseline.
    pub elapsed_pct: f64,
    /// Iteration-count delta.
    pub iterations: i64,
}

impl TraceDiff {
    /// True when every delta — per channel and headline — is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.iterations == 0
            && self.total_energy_pj == 0.0
            && self.elapsed_ns == 0.0
            && self
                .channels
                .iter()
                .all(|c| c.energy_pj == 0.0 && c.busy_ns == 0.0)
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.channels {
            writeln!(
                f,
                "{:<16} energy {:+.3} pJ ({:+.2}%)  busy {:+.3} ns ({:+.2}%)",
                c.channel.name(),
                c.energy_pj,
                c.energy_pct,
                c.busy_ns,
                c.busy_pct,
            )?;
        }
        writeln!(
            f,
            "{:<16} energy {:+.3} pJ ({:+.2}%)  elapsed {:+.3} ns ({:+.2}%)",
            "total", self.total_energy_pj, self.total_energy_pct, self.elapsed_ns, self.elapsed_pct,
        )?;
        write!(f, "{:<16} {:+}", "iterations", self.iterations)
    }
}

/// The bundled sink: aggregates the event stream of the most recent run
/// into a [`TraceArtifact`].
///
/// A new [`TraceEvent::RunStart`] resets the recorder, so a session that
/// runs several programs leaves the last run's artifact behind. Wrap it in
/// a [`SharedRecorder`] to keep a handle for reading the artifact after
/// the session consumed the sink.
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    artifact: TraceArtifact,
}

impl MetricsRecorder {
    /// A fresh recorder.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder::default()
    }

    /// The aggregated artifact of the most recent run.
    pub fn artifact(&self) -> &TraceArtifact {
        &self.artifact
    }
}

impl TraceSink for MetricsRecorder {
    fn record(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::RunStart {
                algorithm,
                config,
                num_vertices,
                num_edges,
                intervals,
                num_pus,
            } => {
                self.artifact = TraceArtifact {
                    algorithm: (*algorithm).into(),
                    config: (*config).into(),
                    num_vertices: *num_vertices,
                    num_edges: *num_edges,
                    intervals: *intervals,
                    num_pus: *num_pus,
                    ..TraceArtifact::default()
                };
            }
            TraceEvent::IterationEnd {
                iteration,
                changed,
                blocks_processed,
                blocks_skipped,
            } => self.artifact.iterations.push(IterationSample {
                iteration: *iteration,
                changed: *changed,
                blocks_processed: *blocks_processed,
                blocks_skipped: *blocks_skipped,
            }),
            TraceEvent::Phases { phases } => self.artifact.phases = *phases,
            TraceEvent::ChannelLedger { channel, stats } => {
                self.artifact.channels.push(ChannelSeries {
                    channel: *channel,
                    stats: *stats,
                })
            }
            TraceEvent::GatingTransitions { transitions } => {
                self.artifact.gating_transitions = Some(*transitions);
            }
            TraceEvent::RouterTraffic { words, reroutes } => {
                self.artifact.router = Some(RouterTotals {
                    words: *words,
                    reroutes: *reroutes,
                });
            }
            TraceEvent::Reliability {
                corrected,
                uncorrectable,
                retries,
            } => {
                let rel = self
                    .artifact
                    .reliability
                    .get_or_insert_with(Default::default);
                rel.corrected = *corrected;
                rel.uncorrectable = *uncorrectable;
                rel.retries = *retries;
            }
            TraceEvent::BankRemap {
                chip,
                bank,
                spare_chip,
                spare_bank,
            } => self
                .artifact
                .reliability
                .get_or_insert_with(Default::default)
                .remaps
                .push(BankRemap {
                    chip: *chip,
                    bank: *bank,
                    spare_chip: *spare_chip,
                    spare_bank: *spare_bank,
                }),
            TraceEvent::RunEnd {
                iterations,
                edges_processed,
            } => {
                self.artifact.iterations_total = *iterations;
                self.artifact.edges_processed = *edges_processed;
            }
        }
    }
}

/// A cloneable [`MetricsRecorder`] handle: attach one clone to a session
/// via [`with_trace`](crate::SessionBuilder::with_trace) and keep another
/// to read the [`TraceArtifact`] after the run.
///
/// ```
/// use hyve_core::{SimulationSession, SystemConfig};
/// use hyve_core::trace::SharedRecorder;
/// use hyve_algorithms::PageRank;
/// use hyve_graph::DatasetProfile;
///
/// # fn main() -> Result<(), hyve_core::CoreError> {
/// let recorder = SharedRecorder::new();
/// let session = SimulationSession::builder(SystemConfig::hyve_opt())
///     .with_trace(recorder.clone())
///     .build()?;
/// let graph = DatasetProfile::youtube_scaled().generate(1);
/// let report = session.run_on_edge_list(&PageRank::new(3), &graph)?;
/// let artifact = recorder.artifact();
/// assert_eq!(artifact.iterations_total, report.iterations);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder(Arc<Mutex<MetricsRecorder>>);

impl SharedRecorder {
    /// A fresh shared recorder.
    pub fn new() -> SharedRecorder {
        SharedRecorder::default()
    }

    /// A copy of the aggregated artifact of the most recent run.
    pub fn artifact(&self) -> TraceArtifact {
        self.0.lock().expect("recorder poisoned").artifact().clone()
    }
}

impl TraceSink for SharedRecorder {
    fn record(&mut self, event: &TraceEvent) {
        self.0.lock().expect("recorder poisoned").record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An artifact with awkward float values that would not survive a
    /// decimal round trip.
    fn artifact() -> TraceArtifact {
        let mut edge = AccessStats::new();
        edge.record_read(4096, Energy::from_pj(0.1 + 0.2), Time::from_ns(1.0 / 3.0));
        edge.record_background(Energy::from_pj(1e-17));
        let mut logic = AccessStats::new();
        logic.record_read(0, Energy::from_pj(2.5e9), Time::ZERO);
        TraceArtifact {
            algorithm: "PR".into(),
            config: "acc+HyVE-opt".into(),
            num_vertices: 1000,
            num_edges: 5000,
            intervals: 16,
            num_pus: 8,
            iterations_total: 2,
            edges_processed: 10_000,
            iterations: vec![
                IterationSample {
                    iteration: 1,
                    changed: true,
                    blocks_processed: 256,
                    blocks_skipped: 0,
                },
                IterationSample {
                    iteration: 2,
                    changed: false,
                    blocks_processed: 200,
                    blocks_skipped: 56,
                },
            ],
            phases: PhaseTimes {
                loading: Time::from_ns(0.1),
                processing: Time::from_ns(123.456_789),
                updating: Time::from_ns(7.0 / 11.0),
                overhead: Time::ZERO,
            },
            channels: vec![
                ChannelSeries {
                    channel: TraceChannel::EdgeMemory,
                    stats: edge,
                },
                ChannelSeries {
                    channel: TraceChannel::Logic,
                    stats: logic,
                },
            ],
            gating_transitions: Some(42),
            router: Some(RouterTotals {
                words: 123,
                reroutes: 9,
            }),
            reliability: None,
        }
    }

    #[test]
    fn jsonl_round_trip_is_bit_exact() {
        let a = artifact();
        let text = a.to_jsonl();
        let b = TraceArtifact::from_jsonl(&text).unwrap();
        // PartialEq over f64 fields: exact equality, not approximate.
        assert_eq!(a, b);
        // And the re-serialization is byte-identical.
        assert_eq!(text, b.to_jsonl());
    }

    #[test]
    fn self_diff_is_all_zeros() {
        let a = artifact();
        let d = a.diff(&a);
        assert!(d.is_zero(), "{d}");
        assert_eq!(d.iterations, 0);
        for c in &d.channels {
            assert_eq!(c.energy_pj, 0.0);
            assert_eq!(c.busy_ns, 0.0);
        }
    }

    #[test]
    fn diff_reports_deltas_and_percentages() {
        let a = artifact();
        let mut b = a.clone();
        b.channels[0].stats.dynamic_energy += Energy::from_pj(0.3);
        b.iterations_total += 1;
        let d = b.diff(&a);
        assert!(!d.is_zero());
        assert!((d.channels[0].energy_pj - 0.3).abs() < 1e-12);
        assert!(d.channels[0].energy_pct > 0.0);
        assert_eq!(d.iterations, 1);
        let text = d.to_string();
        assert!(text.contains("edge_memory"));
        assert!(text.contains("iterations"));
    }

    #[test]
    fn recorder_aggregates_event_stream() {
        let mut rec = MetricsRecorder::new();
        rec.record(&TraceEvent::RunStart {
            algorithm: "BFS",
            config: "acc+HyVE",
            num_vertices: 10,
            num_edges: 20,
            intervals: 8,
            num_pus: 8,
        });
        rec.record(&TraceEvent::IterationEnd {
            iteration: 1,
            changed: true,
            blocks_processed: 64,
            blocks_skipped: 0,
        });
        rec.record(&TraceEvent::Phases {
            phases: PhaseTimes::default(),
        });
        rec.record(&TraceEvent::ChannelLedger {
            channel: TraceChannel::EdgeMemory,
            stats: AccessStats::new(),
        });
        rec.record(&TraceEvent::GatingTransitions { transitions: 5 });
        rec.record(&TraceEvent::RunEnd {
            iterations: 1,
            edges_processed: 20,
        });
        let a = rec.artifact();
        assert_eq!(a.algorithm, "BFS");
        assert_eq!(a.iterations.len(), 1);
        assert_eq!(a.gating_transitions, Some(5));
        assert_eq!(a.iterations_total, 1);

        // A new RunStart resets to the new run.
        rec.record(&TraceEvent::RunStart {
            algorithm: "PR",
            config: "acc+HyVE",
            num_vertices: 10,
            num_edges: 20,
            intervals: 8,
            num_pus: 8,
        });
        assert_eq!(rec.artifact().algorithm, "PR");
        assert!(rec.artifact().iterations.is_empty());
    }

    #[test]
    fn parser_rejects_bad_input() {
        assert!(TraceArtifact::from_jsonl("").is_err());
        assert!(TraceArtifact::from_jsonl("{\"schema\":\"hyve-trace/99\"}").is_err());
        let good = artifact().to_jsonl();
        let truncated: String = good.chars().take(good.len() - 4).collect();
        assert!(TraceArtifact::from_jsonl(&truncated).is_err());
        let mut bad_event = good.clone();
        bad_event.push_str("{\"event\":\"martian\"}\n");
        let e = TraceArtifact::from_jsonl(&bad_event).unwrap_err();
        assert!(e.message.contains("martian"), "{e}");
    }

    #[test]
    fn reliability_round_trips_and_stays_absent_when_fault_free() {
        // Fault-free artifacts carry no reliability lines at all.
        let clean = artifact();
        assert!(!clean.to_jsonl().contains("reliability"));

        let mut faulty = clean.clone();
        faulty.reliability = Some(ReliabilityTotals {
            corrected: 17,
            uncorrectable: 3,
            retries: 8,
            remaps: vec![
                BankRemap {
                    chip: 0,
                    bank: 3,
                    spare_chip: 7,
                    spare_bank: 7,
                },
                BankRemap {
                    chip: 2,
                    bank: 1,
                    spare_chip: 7,
                    spare_bank: 6,
                },
            ],
        });
        let text = faulty.to_jsonl();
        assert!(text.contains("\"event\":\"reliability\""));
        assert_eq!(text.matches("\"event\":\"remap\"").count(), 2);
        let back = TraceArtifact::from_jsonl(&text).unwrap();
        assert_eq!(faulty, back);
        assert_eq!(text, back.to_jsonl());
    }

    #[test]
    fn recorder_aggregates_reliability_events() {
        let mut rec = MetricsRecorder::new();
        rec.record(&TraceEvent::RunStart {
            algorithm: "PR",
            config: "acc+HyVE",
            num_vertices: 10,
            num_edges: 20,
            intervals: 8,
            num_pus: 8,
        });
        // Remap may arrive before or after the counter record; both orders
        // must aggregate into the same artifact.
        rec.record(&TraceEvent::BankRemap {
            chip: 1,
            bank: 4,
            spare_chip: 7,
            spare_bank: 7,
        });
        rec.record(&TraceEvent::Reliability {
            corrected: 5,
            uncorrectable: 1,
            retries: 2,
        });
        let rel = rec.artifact().reliability.clone().expect("reliability");
        assert_eq!(rel.corrected, 5);
        assert_eq!(rel.retries, 2);
        assert_eq!(
            rel.remaps,
            vec![BankRemap {
                chip: 1,
                bank: 4,
                spare_chip: 7,
                spare_bank: 7,
            }]
        );
        // A new run resets the reliability totals along with the rest.
        rec.record(&TraceEvent::RunStart {
            algorithm: "BFS",
            config: "acc+HyVE",
            num_vertices: 10,
            num_edges: 20,
            intervals: 8,
            num_pus: 8,
        });
        assert!(rec.artifact().reliability.is_none());
    }

    #[test]
    fn channel_names_round_trip() {
        for c in TraceChannel::ALL {
            assert_eq!(TraceChannel::from_name(c.name()), Some(c));
        }
        assert_eq!(TraceChannel::from_name("nope"), None);
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut a = artifact();
        a.config = "weird \"name\" with \\slash\tand tab".to_string();
        // `config` is `&'static str` upstream, but the artifact itself must
        // survive arbitrary strings.
        let b = TraceArtifact::from_jsonl(&a.to_jsonl()).unwrap();
        assert_eq!(a.config, b.config);
    }
}
