//! Equivalence suite for dirty-interval skipping: for every algorithm,
//! partition scheme, direction and strategy, a session with skipping
//! enabled produces **bit-identical** output to a full-rescan session —
//! same values, same iteration count, same per-iteration `changed` flags,
//! and a `RunReport` whose every float matches down to the IEEE-754 bit
//! pattern.
//!
//! This is the executable form of the idempotence argument in DESIGN.md: a
//! clean, untouched interval re-sends exactly the messages it sent last
//! iteration, and an idempotent semilattice join absorbs a re-delivered
//! message as a no-op.

use hyve_algorithms::{Bfs, ConnectedComponents, EdgeProgram, PageRank, SpMv, Sssp};
use hyve_core::{SimulationSession, SystemConfig};
use hyve_graph::{Edge, EdgeList, GridGraph, PartitionScheme, VertexId};
use proptest::prelude::*;

/// Weighted graphs so SSSP exercises non-trivial distances.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (16u32..72).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv, 0.25f32..2.0), 1..250).prop_map(move |triples| {
            let mut g = EdgeList::new(nv);
            g.extend(
                triples
                    .into_iter()
                    .map(|(s, d, w)| Edge::with_weight(s, d, w)),
            );
            g
        })
    })
}

fn arb_scheme() -> impl Strategy<Value = PartitionScheme> {
    proptest::bool::ANY.prop_map(|rr| {
        if rr {
            PartitionScheme::RoundRobin
        } else {
            PartitionScheme::Contiguous
        }
    })
}

/// `threads == 0` means the sequential strategy.
fn build(skipping: bool, threads: usize) -> SimulationSession {
    let builder =
        SimulationSession::builder(SystemConfig::hyve()).dirty_interval_skipping(skipping);
    let builder = if threads > 0 {
        builder.parallel(threads)
    } else {
        builder.sequential()
    };
    builder.build().expect("preset configuration is valid")
}

/// Runs `program` with skipping on and off and asserts every observable —
/// report (field equality *and* float bit patterns), values, trace — is
/// identical.
fn assert_skip_equals_full<P: EdgeProgram>(program: &P, grid: &GridGraph, threads: usize) {
    let (full_report, full_values, full_trace) = build(false, threads)
        .run_with_trace(program, grid)
        .expect("full-rescan run failed");
    let (skip_report, skip_values, skip_trace) = build(true, threads)
        .run_with_trace(program, grid)
        .expect("skipping run failed");
    let name = program.name();
    assert_eq!(full_report, skip_report, "{name}: report drifted");
    assert_eq!(
        full_report.energy().as_pj().to_bits(),
        skip_report.energy().as_pj().to_bits(),
        "{name}: energy bits drifted"
    );
    assert_eq!(
        full_report.elapsed().as_ns().to_bits(),
        skip_report.elapsed().as_ns().to_bits(),
        "{name}: elapsed bits drifted"
    );
    assert_eq!(full_trace, skip_trace, "{name}: iteration trace drifted");
    // Debug formatting round-trips floats exactly, so string equality is
    // value-bit equality for every Value type (u32, f32, f64).
    assert_eq!(
        format!("{full_values:?}"),
        format!("{skip_values:?}"),
        "{name}: values drifted"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Skipping ≡ full rescan across all five algorithms (monotone *and*
    /// accumulate — the toggle must be a no-op for accumulate programs
    /// too), both partition schemes, directed and undirected propagation,
    /// and Sequential vs Parallel{1..=8}.
    #[test]
    fn skipping_is_bit_identical_to_full_rescan(
        g in arb_graph(),
        scheme in arb_scheme(),
        wide in proptest::bool::ANY,
        threads in 0usize..9,
    ) {
        let p = if wide { 16 } else { 8 };
        let grid = GridGraph::partition_with_scheme(&g, p, scheme).unwrap();
        assert_skip_equals_full(&Bfs::new(VertexId::new(0)), &grid, threads);
        assert_skip_equals_full(&Sssp::new(VertexId::new(0)), &grid, threads);
        // CC is undirected: blocks scatter from both interval coordinates.
        assert_skip_equals_full(&ConnectedComponents::new(), &grid, threads);
        assert_skip_equals_full(&PageRank::new(6), &grid, threads);
        assert_skip_equals_full(&SpMv::new(), &grid, threads);
    }

    /// The monotone fixpoint also survives skipping on graphs where whole
    /// intervals go quiet early: a long path keeps exactly one frontier
    /// interval dirty per iteration, maximising skipped blocks.
    #[test]
    fn skipping_handles_sparse_frontiers(len in 17u32..64, threads in 0usize..5) {
        let g = EdgeList::from_edges(len, (0..len - 1).map(|i| Edge::new(i, i + 1))).unwrap();
        let grid = GridGraph::partition(&g, 16).unwrap();
        assert_skip_equals_full(&Bfs::new(VertexId::new(0)), &grid, threads);
        assert_skip_equals_full(&Sssp::new(VertexId::new(0)), &grid, threads);
        assert_skip_equals_full(&ConnectedComponents::new(), &grid, threads);
    }
}
