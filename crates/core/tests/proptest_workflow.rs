//! Property-based tests of the §5 working flow: arbitrary interleavings of
//! online mutations and offline analyses always agree with a from-scratch
//! reference on the live graph.

use hyve_algorithms::{reference, Bfs, ConnectedComponents};
use hyve_core::{SystemConfig, WorkingFlow};
use hyve_graph::{Csr, Edge, EdgeList, Mutation, VertexId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (8u32..60).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv), 1..150).prop_map(move |pairs| {
            let mut g = EdgeList::new(nv);
            g.extend(pairs.into_iter().map(|(s, d)| Edge::new(s, d)));
            g
        })
    })
}

/// An op in the interleaving: mutation kinds or an analysis point.
type OpSpec = (u8, u32, u32);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any mutation sequence, analysis over the live snapshot equals
    /// the reference algorithm run on `live_edge_list()`.
    #[test]
    fn analysis_always_matches_live_reference(
        g in arb_graph(),
        ops in proptest::collection::vec(any::<OpSpec>(), 0..40),
    ) {
        let nv = g.num_vertices();
        let mut flow = WorkingFlow::new(SystemConfig::hyve_opt(), &g).unwrap();
        for (kind, a, b) in ops {
            match kind % 4 {
                0 => {
                    let _ = flow.apply(Mutation::AddEdge(Edge::new(a % nv, b % nv)));
                }
                1 => {
                    let _ = flow.apply(Mutation::RemoveEdge {
                        src: a % nv,
                        dst: b % nv,
                    });
                }
                2 => {
                    let _ = flow.apply(Mutation::AddVertex);
                }
                _ => {
                    let _ = flow.apply(Mutation::RemoveVertex(VertexId::new(a % nv)));
                }
            }
        }
        let live = flow.dynamic().live_edge_list();
        let (_, levels) = flow
            .analyze_with_values(&Bfs::new(VertexId::new(0)))
            .unwrap();
        let csr = Csr::from_edge_list(&live);
        prop_assert_eq!(&levels, &reference::bfs_levels(&csr, VertexId::new(0)));

        let (_, labels) = flow
            .analyze_with_values(&ConnectedComponents::new())
            .unwrap();
        prop_assert_eq!(&labels, &reference::connected_components(&live));
    }

    /// The mutation counter resets at every analysis and the live view
    /// never references a tombstoned endpoint.
    #[test]
    fn counters_and_tombstones_consistent(
        g in arb_graph(),
        kill in proptest::collection::vec(0u32..60, 0..10),
    ) {
        let nv = g.num_vertices();
        let mut flow = WorkingFlow::new(SystemConfig::hyve(), &g).unwrap();
        let kills = kill.len() as u64;
        for v in kill {
            let _ = flow.apply(Mutation::RemoveVertex(VertexId::new(v % nv)));
        }
        prop_assert_eq!(flow.mutations_since_analysis(), kills);
        let live = flow.dynamic().live_edge_list();
        for e in live.iter() {
            prop_assert!(!flow.dynamic().is_tombstoned(e.src));
            prop_assert!(!flow.dynamic().is_tombstoned(e.dst));
        }
        let _ = flow.analyze(&Bfs::new(VertexId::new(0))).unwrap();
        prop_assert_eq!(flow.mutations_since_analysis(), 0);
    }
}
