//! Property-based tests of the HyVE engine: functional results are exactly
//! the in-memory semantics on arbitrary graphs and configurations, and the
//! cost accounting obeys basic conservation laws.

use hyve_algorithms::{reference, Bfs, ConnectedComponents, PageRank, SpMv};
use hyve_core::{SimulationSession, SystemConfig};
use hyve_graph::{Csr, Edge, EdgeList, VertexId};
use proptest::prelude::*;

/// Builds a sequential session; generated configurations are always valid.
fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .build()
        .expect("valid config")
}

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (8u32..80).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv), 1..300).prop_map(move |pairs| {
            let mut g = EdgeList::new(nv);
            g.extend(pairs.into_iter().map(|(s, d)| Edge::new(s, d)));
            g
        })
    })
}

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    (0usize..5, 1u32..4, proptest::bool::ANY, proptest::bool::ANY).prop_map(
        |(preset, scale_exp, sharing, gating)| {
            let base = match preset {
                0 => SystemConfig::acc_dram(),
                1 => SystemConfig::acc_reram(),
                2 => SystemConfig::acc_sram_dram(),
                3 => SystemConfig::hyve(),
                _ => SystemConfig::hyve_opt(),
            };
            let cfg = base.with_dataset_scale(1 << scale_exp);
            // Only toggle optimizations where legal (gating needs ReRAM).
            let cfg = cfg.with_data_sharing(sharing);
            if cfg.edge_memory == hyve_core::EdgeMemoryKind::Reram {
                cfg.with_power_gating(gating)
            } else {
                cfg
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BFS through any engine configuration equals queue BFS.
    #[test]
    fn engine_bfs_invariant_under_config(g in arb_graph(), cfg in arb_config()) {
        let engine = session(cfg);
        let src = VertexId::new(0);
        let (report, values) = engine
            .run_on_edge_list_with_values(&Bfs::new(src), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        prop_assert_eq!(values, reference::bfs_levels(&csr, src));
        prop_assert!(report.energy().is_valid());
        prop_assert!(report.elapsed().is_valid());
    }

    /// CC results never depend on the hierarchy either.
    #[test]
    fn engine_cc_invariant_under_config(g in arb_graph(), cfg in arb_config()) {
        let engine = session(cfg);
        let (_, values) = engine
            .run_on_edge_list_with_values(&ConnectedComponents::new(), &g)
            .unwrap();
        prop_assert_eq!(values, reference::connected_components(&g));
    }

    /// Dynamic energy scales exactly linearly with the (fixed) iteration
    /// count for PR: 2k iterations cost twice k's dynamic energy.
    #[test]
    fn pr_dynamic_energy_linear_in_iterations(g in arb_graph(), k in 1u32..5) {
        let engine = session(SystemConfig::hyve_opt());
        let r1 = engine.run_on_edge_list(&PageRank::new(k), &g).unwrap();
        let r2 = engine.run_on_edge_list(&PageRank::new(2 * k), &g).unwrap();
        let d1 = r1.breakdown.edge_memory.dynamic_energy
            + r1.breakdown.offchip_vertex.dynamic_energy
            + r1.breakdown.onchip_vertex.dynamic_energy
            + r1.breakdown.logic.dynamic_energy;
        let d2 = r2.breakdown.edge_memory.dynamic_energy
            + r2.breakdown.offchip_vertex.dynamic_energy
            + r2.breakdown.onchip_vertex.dynamic_energy
            + r2.breakdown.logic.dynamic_energy;
        let ratio = d2 / d1;
        prop_assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
        prop_assert_eq!(r2.edges_processed, 2 * r1.edges_processed);
    }

    /// The planner always returns a multiple of the PU count that fits the
    /// capacity constraint (at effective scale).
    #[test]
    fn planner_respects_capacity(nv in 8u32..1_000_000, scale_exp in 0u32..10) {
        let cfg = SystemConfig::hyve_opt().with_dataset_scale(1 << scale_exp);
        let engine = session(cfg.clone());
        let pr = PageRank::new(1);
        let p = engine.plan_intervals(&pr, nv);
        prop_assert!(p >= 1);
        prop_assert!(p <= nv);
        if p >= 8 {
            prop_assert_eq!(p % 8, 0, "P={} must be a PU multiple", p);
        }
        // Capacity: 2N resident intervals × 16 B/vertex fit in scaled SRAM,
        // unless P hit the vertex-count cap.
        if p < nv {
            let sram = 2 * 1024 * 1024 / (1u64 << scale_exp);
            let per_interval = (u64::from(nv).div_ceil(u64::from(p))) * 16;
            prop_assert!(
                2 * 8 * per_interval <= sram + 2 * 8 * 16,
                "P={p} overflows the scaled SRAM"
            );
        }
    }

    /// Reports are internally consistent: breakdown totals match, phases
    /// sum to elapsed, and MTEPS/W is finite and positive for non-empty
    /// graphs.
    #[test]
    fn report_consistency(g in arb_graph(), cfg in arb_config()) {
        let engine = session(cfg);
        let report = engine.run_on_edge_list(&SpMv::new(), &g).unwrap();
        let b = &report.breakdown;
        let total = b.edge_memory.total_energy()
            + b.offchip_vertex.total_energy()
            + b.onchip_vertex.total_energy()
            + b.logic.total_energy();
        prop_assert!((total.as_pj() - report.energy().as_pj()).abs() < 1.0);
        let phases = report.phases;
        let sum = phases.loading + phases.processing + phases.updating + phases.overhead;
        prop_assert!((sum.as_ns() - report.elapsed().as_ns()).abs() < 1e-3);
        prop_assert!(report.mteps_per_watt() > 0.0);
        prop_assert!(report.mteps_per_watt().is_finite());
    }
}
