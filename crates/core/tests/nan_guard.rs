//! Regression tests for the NaN convergence guard.
//!
//! The convergence check compares old and new vertex values with
//! `PartialEq`. A user program that lets an IEEE NaN escape `merge` or
//! `apply` would — without a guard — register as "changed" on every
//! iteration (`NaN != NaN`) and spin every converge-bound run to its
//! iteration cap. The engine treats a value that is not equal to itself as
//! *unchanged* (see the `Monotone` invariants on
//! `hyve_algorithms::ExecutionMode`), so such a program terminates
//! immediately instead.

use hyve_algorithms::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_core::{SimulationSession, SystemConfig};
use hyve_graph::{Edge, EdgeList, VertexId};

const CAP: u32 = 40;

fn line_graph() -> EdgeList {
    EdgeList::from_edges(32, (0..31).map(|i| Edge::new(i, i + 1))).unwrap()
}

fn session() -> SimulationSession {
    SimulationSession::builder(SystemConfig::hyve())
        .build()
        .expect("preset configuration is valid")
}

/// A malformed monotone program: every scattered message is NaN, and its
/// merge propagates NaN instead of ignoring it.
struct NanMonotone;

impl EdgeProgram for NanMonotone {
    type Value = f32;
    fn name(&self) -> &'static str {
        "NanMonotone"
    }
    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Monotone
    }
    fn bound(&self) -> IterationBound {
        IterationBound::Converge { max: CAP }
    }
    fn value_bits(&self) -> u32 {
        32
    }
    fn init(&self, v: VertexId, _: &GraphMeta) -> f32 {
        if v.raw() == 0 {
            0.0
        } else {
            f32::INFINITY
        }
    }
    fn identity(&self) -> f32 {
        f32::INFINITY
    }
    fn scatter(&self, _: f32, _: &Edge, _: &GraphMeta) -> f32 {
        f32::NAN
    }
    fn merge(&self, current: f32, message: f32) -> f32 {
        // Deliberately NaN-propagating (unlike f32::min, which drops NaN).
        if message.is_nan() || message < current {
            message
        } else {
            current
        }
    }
    fn apply(&self, _: VertexId, _: f32, _: f32, _: &GraphMeta) -> f32 {
        unreachable!("monotone programs never see apply")
    }
}

/// A malformed accumulate program whose `apply` always yields NaN.
struct NanAccumulate;

impl EdgeProgram for NanAccumulate {
    type Value = f32;
    fn name(&self) -> &'static str {
        "NanAccumulate"
    }
    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Accumulate
    }
    fn bound(&self) -> IterationBound {
        IterationBound::Converge { max: CAP }
    }
    fn value_bits(&self) -> u32 {
        32
    }
    fn init(&self, _: VertexId, _: &GraphMeta) -> f32 {
        1.0
    }
    fn identity(&self) -> f32 {
        0.0
    }
    fn scatter(&self, src: f32, _: &Edge, _: &GraphMeta) -> f32 {
        src
    }
    fn merge(&self, a: f32, b: f32) -> f32 {
        a + b
    }
    fn apply(&self, _: VertexId, _: f32, _: f32, _: &GraphMeta) -> f32 {
        f32::NAN
    }
}

#[test]
fn nan_emitting_monotone_program_terminates_immediately() {
    let (report, _, trace) = session()
        .run_with_trace(
            &NanMonotone,
            &hyve_graph::GridGraph::partition(&line_graph(), 8).unwrap(),
        )
        .unwrap();
    // Without the guard this spins to the 40-iteration cap; NaN messages
    // never register as change, so the run converges after one pass.
    assert_eq!(report.iterations, 1);
    assert_eq!(trace.changed, vec![false]);
}

#[test]
fn nan_emitting_accumulate_program_terminates_immediately() {
    let (report, values, trace) = session()
        .run_with_trace(
            &NanAccumulate,
            &hyve_graph::GridGraph::partition(&line_graph(), 8).unwrap(),
        )
        .unwrap();
    assert_eq!(report.iterations, 1);
    assert_eq!(trace.changed, vec![false]);
    // The NaN still lands in the stored values — the guard only stops the
    // convergence spin, it does not sanitise program output.
    assert!(values.iter().all(|v| v.is_nan()));
}

/// Well-formed converge-bound programs still iterate normally — the guard
/// must not eat legitimate changes.
#[test]
fn guard_does_not_suppress_real_convergence() {
    let g = line_graph();
    let (report, values, trace) = session()
        .run_with_trace(
            &hyve_algorithms::Bfs::new(VertexId::new(0)),
            &hyve_graph::GridGraph::partition(&g, 8).unwrap(),
        )
        .unwrap();
    assert!(report.iterations > 1);
    assert!(trace.changed[0]);
    assert!(!trace.changed[trace.changed.len() - 1]);
    assert_eq!(values[31], 31);
}
