//! Stale-cache property for the dynamic-update path: after an arbitrary
//! AddEdge/RemoveEdge sequence (each applied against a warmed
//! [`GridGraph::flat`] memo, so a missed invalidation would be observable),
//! running on the mutated grid is bit-identical to running on a grid rebuilt
//! from scratch from the mutated edge set.
//!
//! Vertex mutations are excluded on purpose: padding-slot vertices map to
//! intervals round-robin from the *old* materialised count, which a fresh
//! partition of the grown graph legitimately assigns differently — that is a
//! layout difference, not a stale cache. Edge mutations keep the vertex→
//! interval map fixed, and `to_edge_list` (row-major) + the stable
//! counting-sort partition reproduce the per-block edge order exactly.

use hyve_algorithms::PageRank;
use hyve_core::{SimulationSession, SystemConfig};
use hyve_graph::{DynamicGrid, Edge, EdgeList, GridGraph, Mutation};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (8u32..40).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv), 1..100).prop_map(move |pairs| {
            let mut g = EdgeList::new(nv);
            g.extend(pairs.into_iter().map(|(s, d)| Edge::new(s, d)));
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mutated_grid_runs_bit_identical_to_rebuild(
        g in arb_graph(),
        ops in proptest::collection::vec(
            (proptest::bool::ANY, 0u32..64, 0u32..64), 1..40),
    ) {
        let p = 4;
        let grid = GridGraph::partition(&g, p).unwrap();
        let mut d = DynamicGrid::new(grid, 0.3);
        for (add, a, b) in ops {
            let nv = d.num_vertices();
            // Warm the memo before every mutation.
            let _ = d.grid().flat();
            if add {
                let _ = d.apply(Mutation::AddEdge(Edge::new(a % nv, b % nv)));
            } else {
                let _ = d.apply(Mutation::RemoveEdge { src: a % nv, dst: b % nv });
            }
        }
        let scheme = d.grid().partition_info().scheme();
        let rebuilt =
            GridGraph::partition_with_scheme(&d.grid().to_edge_list(), p, scheme).unwrap();
        prop_assert_eq!(d.grid().flat(), rebuilt.flat());

        let session = SimulationSession::builder(SystemConfig::hyve().with_num_pus(2))
            .build()
            .unwrap();
        let (report_mut, values_mut) =
            session.run_with_values(&PageRank::new(3), d.grid()).unwrap();
        let (report_ref, values_ref) =
            session.run_with_values(&PageRank::new(3), &rebuilt).unwrap();
        prop_assert_eq!(format!("{values_mut:?}"), format!("{values_ref:?}"));
        prop_assert_eq!(format!("{report_mut:?}"), format!("{report_ref:?}"));
    }
}
