//! # hyve-baselines — CPU+DRAM analytic baselines
//!
//! The paper anchors its evaluation against two software systems on a
//! hexa-core 3.3 GHz Intel i7 measured with Intel PCM (§7.1):
//!
//! * **CPU+DRAM** — an NXgraph-like in-memory system (one thread pinned per
//!   core),
//! * **CPU+DRAM-opt** — Galois, the state-of-the-art shared-memory runtime.
//!
//! We cannot redistribute a physical machine, so this crate models the same
//! quantities the paper extracted from PCM: throughput from a
//! cycles-per-edge cost (memory-bound graph kernels retire an edge every
//! handful of cycles per core) and power from package + DRAM draw. The
//! figures are chosen so the CPU baselines land where the paper puts them —
//! roughly two orders of magnitude below the accelerator configurations in
//! MTEPS/W (§7.3.3: 114.42× for CPU+DRAM, 83.31× for Galois vs acc+HyVE).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hyve_graph::EdgeList;
use hyve_memsim::{Energy, EnergyDelay, Power, Time};

/// An analytic CPU platform model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSystem {
    /// Descriptive name.
    pub name: &'static str,
    /// Physical cores used.
    pub cores: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Average core cycles to traverse one edge (per core, including all
    /// stalls — graph kernels are memory-latency-bound).
    pub cycles_per_edge: f64,
    /// Package (core + uncore) power while running.
    pub package_power: Power,
    /// DRAM subsystem power under graph-workload traffic.
    pub dram_power: Power,
}

impl CpuSystem {
    /// The NXgraph-like in-memory baseline on the paper's i7 (8 threads
    /// pinned with `SET_AFFINITY`, §7.3.3).
    pub fn nxgraph_like() -> Self {
        CpuSystem {
            name: "CPU+DRAM",
            cores: 6,
            clock_ghz: 3.3,
            cycles_per_edge: 38.0,
            package_power: Power::from_w(45.0),
            dram_power: Power::from_w(12.0),
        }
    }

    /// The Galois baseline ("CPU+DRAM-opt"): a better runtime retires edges
    /// in fewer cycles at the same power.
    pub fn galois_like() -> Self {
        CpuSystem {
            name: "CPU+DRAM-opt",
            cycles_per_edge: 27.0,
            ..Self::nxgraph_like()
        }
    }

    /// Total system power.
    pub fn system_power(&self) -> Power {
        self.package_power + self.dram_power
    }

    /// Time to traverse `edges` edge-iterations.
    ///
    /// # Panics
    ///
    /// Panics if the system has zero cores or clock.
    pub fn execution_time(&self, edges: u64) -> Time {
        assert!(self.cores > 0 && self.clock_ghz > 0.0, "degenerate CPU");
        let cycles = edges as f64 * self.cycles_per_edge / f64::from(self.cores);
        Time::from_ns(cycles / self.clock_ghz)
    }

    /// Energy of traversing `edges` edge-iterations.
    pub fn energy(&self, edges: u64) -> Energy {
        self.system_power() * self.execution_time(edges)
    }

    /// Energy-delay product of the run.
    pub fn edp(&self, edges: u64) -> EnergyDelay {
        self.energy(edges) * self.execution_time(edges)
    }

    /// The paper's headline metric for a run of `edges` traversals.
    pub fn mteps_per_watt(&self, edges: u64) -> f64 {
        let e = self.energy(edges);
        if e == Energy::ZERO {
            0.0
        } else {
            edges as f64 / e.as_uj()
        }
    }

    /// Convenience: edge-iterations for running `iterations` passes over a
    /// graph.
    pub fn workload_edges(graph: &EdgeList, iterations: u32) -> u64 {
        graph.len() as u64 * u64::from(iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_in_expected_range() {
        let cpu = CpuSystem::nxgraph_like();
        // 6 cores * 3.3 GHz / 38 cycles ≈ 521 MTEPS.
        let t = cpu.execution_time(521_000_000);
        assert!((t.as_s() - 1.0).abs() < 0.01, "got {t}");
    }

    #[test]
    fn efficiency_two_orders_below_accelerators() {
        let cpu = CpuSystem::nxgraph_like();
        let eff = cpu.mteps_per_watt(1_000_000);
        // Paper's accelerator configs land at 300–1500 MTEPS/W; the CPU
        // should be ~100× below (≈5–15).
        assert!(eff > 3.0 && eff < 20.0, "got {eff}");
    }

    #[test]
    fn galois_is_faster_same_power() {
        let nx = CpuSystem::nxgraph_like();
        let galois = CpuSystem::galois_like();
        assert!(galois.execution_time(1000) < nx.execution_time(1000));
        assert_eq!(galois.system_power(), nx.system_power());
        assert!(galois.mteps_per_watt(1000) > nx.mteps_per_watt(1000));
    }

    #[test]
    fn energy_scales_linearly() {
        let cpu = CpuSystem::nxgraph_like();
        let e1 = cpu.energy(1000).as_pj();
        let e2 = cpu.energy(2000).as_pj();
        assert!((e2 - 2.0 * e1).abs() < 1e-6);
    }

    #[test]
    fn workload_edges_counts_iterations() {
        let mut g = EdgeList::new(4);
        g.extend([hyve_graph::Edge::new(0, 1), hyve_graph::Edge::new(1, 2)]);
        assert_eq!(CpuSystem::workload_edges(&g, 10), 20);
    }

    #[test]
    fn edp_positive() {
        let cpu = CpuSystem::galois_like();
        assert!(cpu.edp(100).as_pj_ns() > 0.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_cores_panics() {
        let mut cpu = CpuSystem::nxgraph_like();
        cpu.cores = 0;
        let _ = cpu.execution_time(1);
    }
}
