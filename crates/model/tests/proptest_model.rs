//! Property-based tests of the §6 analytic model: the Cauchy–Schwarz bound
//! really is a bound, ratios behave monotonically, and the recommender is
//! stable over the physical parameter space.

use hyve_memsim::{Energy, Time};
use hyve_model::general::{CostTerm, GraphWorkload, ModelCosts};
use hyve_model::{
    compare_edge_storage, global_vertex_edp_ratio, recommend, AccessPattern, CrossbarCosts,
    Objective, PartitionPolicy, Technology, WorkloadShape,
};
use proptest::prelude::*;

fn arb_term() -> impl Strategy<Value = CostTerm> {
    (0.01f64..100.0, 0.01f64..1000.0)
        .prop_map(|(ns, pj)| CostTerm::new(Time::from_ns(ns), Energy::from_pj(pj)))
}

fn arb_costs() -> impl Strategy<Value = ModelCosts> {
    (
        arb_term(),
        arb_term(),
        arb_term(),
        arb_term(),
        arb_term(),
        arb_term(),
    )
        .prop_map(|(a, b, c, d, e, f)| ModelCosts {
            seq_vertex_read: a,
            seq_vertex_write: b,
            rand_vertex_read: c,
            rand_vertex_write: d,
            edge_read: e,
            processing: f,
        })
}

fn arb_workload() -> impl Strategy<Value = GraphWorkload> {
    (1u64..100_000, 1u64..100_000, 1u64..1_000_000).prop_map(|(r, w, e)| GraphWorkload {
        seq_vertex_reads: r,
        seq_vertex_writes: w,
        edge_reads: e,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. (6) is a true lower bound on Eq. (5) for any cost/workload mix.
    #[test]
    fn cauchy_schwarz_bound_holds(costs in arb_costs(), w in arb_workload()) {
        let edp = costs.edp(&w).as_pj_ns();
        let bound = costs.edp_lower_bound(&w).as_pj_ns();
        prop_assert!(
            bound <= edp * (1.0 + 1e-9),
            "bound {bound} exceeds EDP {edp}"
        );
        // And the Eq. (1) time bound too.
        prop_assert!(
            costs.execution_time_lower_bound(&w) <= costs.execution_time(&w)
        );
    }

    /// Execution time and energy are monotone in every workload component.
    #[test]
    fn model_monotone_in_workload(costs in arb_costs(), w in arb_workload()) {
        let bigger = GraphWorkload {
            seq_vertex_reads: w.seq_vertex_reads + 1,
            seq_vertex_writes: w.seq_vertex_writes + 1,
            edge_reads: w.edge_reads + 1,
        };
        prop_assert!(costs.execution_time(&w) <= costs.execution_time(&bigger));
        prop_assert!(costs.energy(&w) <= costs.energy(&bigger));
    }

    /// The DRAM/ReRAM global-vertex EDP ratio grows with the partition
    /// count (more read-dominated ⇒ more ReRAM-friendly).
    #[test]
    fn vertex_edp_ratio_monotone_in_partitions(p1 in 8u32..10_000, p2 in 8u32..10_000) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let nv = 1_000_000u64;
        let r_lo = global_vertex_edp_ratio(
            PartitionPolicy::Hyve { intervals: lo, pus: 8 }, nv, 4);
        let r_hi = global_vertex_edp_ratio(
            PartitionPolicy::Hyve { intervals: hi, pus: 8 }, nv, 4);
        prop_assert!(r_lo <= r_hi * (1.0 + 1e-9), "{lo}:{r_lo} vs {hi}:{r_hi}");
    }

    /// Edge-storage pattern ordering: more writes always pushes the EDP
    /// ratio towards DRAM.
    #[test]
    fn edge_storage_pattern_ordering(density in 1u32..32) {
        let read = compare_edge_storage(density, AccessPattern::SequentialRead);
        let mixed = compare_edge_storage(density, AccessPattern::Mixed);
        let write = compare_edge_storage(density, AccessPattern::SequentialWrite);
        prop_assert!(read.edp_ratio >= mixed.edp_ratio);
        prop_assert!(mixed.edp_ratio >= write.edp_ratio);
    }

    /// The crossbar never beats CMOS within an 8×8 block's possible
    /// occupancy, with the paper's cost constants.
    #[test]
    fn crossbar_always_loses_in_range(navg in 0.05f64..64.0) {
        let c = CrossbarCosts::default();
        prop_assert!(c.per_edge_energy_mv(navg) > c.cmos_per_edge_energy());
    }

    /// The recommender's local-vertex and processing choices are invariant
    /// over the whole realistic workload space.
    #[test]
    fn recommender_stable_choices(
        nv in 1_000u64..100_000_000,
        density_edges in 2u64..64,
        partitions in 8u32..100_000,
        navg in 0.1f64..64.0,
        chip in prop::sample::select(vec![4u32, 8, 16]),
    ) {
        let shape = WorkloadShape {
            num_vertices: nv,
            num_edges: nv * density_edges,
            partitions,
            pus: 8,
            navg,
            density_gbit: chip,
        };
        for objective in [Objective::Latency, Objective::Energy, Objective::EnergyDelay] {
            let r = recommend(&shape, objective);
            prop_assert_eq!(r.local_vertex, Technology::Sram);
            prop_assert_eq!(r.processing, Technology::Cmos);
            prop_assert_eq!(r.rationale.len(), 4);
        }
        // Latency objective always picks DRAM edges.
        let r = recommend(&shape, Objective::Latency);
        prop_assert_eq!(r.edge_storage, Technology::Dram);
    }
}
