//! §6.3 — vertex storage analysis (Fig. 10 and Fig. 11).
//!
//! Vertices are read sequentially from *global* memory when intervals load
//! and written back once converged; the read : write ratio depends on the
//! partitioning policy:
//!
//! * HyVE (Eq. 7–8): `NR(v,s) = (P/N)·Nv`, `NW(v,s) = Nv` — few partitions,
//!   modest ratio ⇒ DRAM's cheap writes win the global-memory EDP,
//! * GraphR (Eq. 9): `NR(v,s) = 16 · non-empty-blocks`, `NW(v,s) = Nv` —
//!   tiny 8×8 blocks make the ratio enormous ⇒ read-cheap ReRAM wins.
//!
//! Fig. 11 widens the lens to the *whole* vertex storage: GraphR's register
//! files are faster per access than SRAM, but forcing 8×8 blocks multiplies
//! global traffic so much that HyVE wins delay, energy and EDP.

use crate::general::CostTerm;
use hyve_memsim::{
    DramChip, DramChipConfig, MemoryDevice, RegisterFile, ReramChip, ReramChipConfig, SramArray,
    SramConfig,
};

/// Which system's partitioning generates the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionPolicy {
    /// HyVE interval-block partitioning with data sharing (Eq. 8).
    Hyve {
        /// Total intervals P.
        intervals: u32,
        /// Processing units N.
        pus: u32,
    },
    /// GraphR 8×8 blocks (Eq. 9).
    GraphR {
        /// Number of non-empty 8×8 blocks.
        non_empty_blocks: u64,
    },
}

impl PartitionPolicy {
    /// Sequential global vertex reads per iteration.
    pub fn seq_reads(&self, num_vertices: u64) -> u64 {
        match *self {
            PartitionPolicy::Hyve { intervals, pus } => {
                num_vertices * u64::from(intervals) / u64::from(pus.max(1))
            }
            PartitionPolicy::GraphR { non_empty_blocks } => 16 * non_empty_blocks,
        }
    }

    /// Sequential global vertex writes per iteration (Eq. 7: every vertex
    /// written back once).
    pub fn seq_writes(&self, num_vertices: u64) -> u64 {
        num_vertices
    }
}

/// Global-memory EDP ratio `DRAM / ReRAM` for a policy (Fig. 10).
/// Values < 1 mean DRAM is the better global vertex memory.
///
/// ```
/// use hyve_model::{global_vertex_edp_ratio, PartitionPolicy};
/// // GraphR's read-dominated mix favours ReRAM:
/// let graphr = global_vertex_edp_ratio(
///     PartitionPolicy::GraphR { non_empty_blocks: 2_000_000 }, 100_000, 4);
/// // HyVE's fewer partitions pull the ratio down towards DRAM:
/// let hyve = global_vertex_edp_ratio(
///     PartitionPolicy::Hyve { intervals: 80, pus: 8 }, 100_000, 4);
/// assert!(hyve < graphr);
/// ```
pub fn global_vertex_edp_ratio(
    policy: PartitionPolicy,
    num_vertices: u64,
    density_gbit: u32,
) -> f64 {
    const VERTEX_BITS: u64 = 64; // value + index metadata, §3.4 record
    let reads = policy.seq_reads(num_vertices);
    let writes = policy.seq_writes(num_vertices);
    let dram = DramChip::new(DramChipConfig::with_density(density_gbit));
    let reram = ReramChip::new(ReramChipConfig::with_density(density_gbit));

    let cost = |dev: &dyn MemoryDevice| -> (f64, f64) {
        let per_access = u64::from(dev.output_bits()) / VERTEX_BITS;
        let read_accesses = reads.div_ceil(per_access).max(1);
        let write_accesses = writes.div_ceil(per_access).max(1);
        let t = dev.burst_period() * read_accesses as f64
            + dev.sequential_write_period() * write_accesses as f64;
        let e = dev.read_energy(reads * VERTEX_BITS)
            + dev.write_energy(writes * VERTEX_BITS)
            + dev.background_power() * t;
        (t.as_ns(), e.as_pj())
    };
    let (td, ed) = cost(&dram);
    let (tr, er) = cost(&reram);
    (td * ed) / (tr * er)
}

/// One side of the Fig. 11 comparison: counts plus total (time, energy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VertexStorageSide {
    /// Sequential global reads per iteration.
    pub global_reads: u64,
    /// Sequential global writes per iteration.
    pub global_writes: u64,
    /// Total vertex-storage cost (global + local traffic).
    pub total: CostTerm,
}

/// Inputs for [`vertex_storage_comparison`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexWorkload {
    /// Vertices in the graph.
    pub num_vertices: u64,
    /// Edges traversed per iteration.
    pub num_edges: u64,
    /// Non-empty 8×8 blocks (GraphR's grid).
    pub non_empty_blocks: u64,
    /// HyVE interval count P.
    pub hyve_intervals: u32,
    /// Processing units N.
    pub pus: u32,
}

/// Fig. 11: whole-vertex-storage comparison. Returns `(hyve, graphr)`;
/// the paper plots GraphR/HyVE ratios, which the caller derives.
pub fn vertex_storage_comparison(w: VertexWorkload) -> (VertexStorageSide, VertexStorageSide) {
    const VERTEX_BITS: u64 = 32;

    // --- HyVE: DRAM global + 2 MB SRAM local -------------------------------
    let dram = DramChip::new(DramChipConfig::default());
    let sram = SramArray::new(SramConfig::default());
    let hyve_policy = PartitionPolicy::Hyve {
        intervals: w.hyve_intervals,
        pus: w.pus,
    };
    let h_reads = hyve_policy.seq_reads(w.num_vertices);
    let h_writes = hyve_policy.seq_writes(w.num_vertices);
    let h_global_t = dram.burst_period()
        * ((h_reads + h_writes) * VERTEX_BITS).div_ceil(u64::from(dram.output_bits())) as f64;
    let h_global_e =
        dram.read_energy(h_reads * VERTEX_BITS) + dram.write_energy(h_writes * VERTEX_BITS);
    // Local: 2 reads + 1 write per edge, plus interval fills; the N
    // processing units drive N SRAM sections in parallel.
    let h_local_ops = 3 * w.num_edges;
    let h_local_t = (sram.word_read_latency() * 2.0 + sram.word_write_latency())
        * (w.num_edges as f64 / f64::from(w.pus.max(1)));
    let h_local_e = (sram.word_read_energy() * 2.0 + sram.word_write_energy()) * w.num_edges as f64
        + sram.bulk_write_energy(h_reads * VERTEX_BITS);
    let _ = h_local_ops;
    let hyve = VertexStorageSide {
        global_reads: h_reads,
        global_writes: h_writes,
        total: CostTerm::new(h_global_t + h_local_t, h_global_e + h_local_e),
    };

    // --- GraphR: ReRAM global + register files local -----------------------
    let reram = ReramChip::new(ReramChipConfig::default());
    let rf = RegisterFile::default();
    let g_policy = PartitionPolicy::GraphR {
        non_empty_blocks: w.non_empty_blocks,
    };
    let g_reads = g_policy.seq_reads(w.num_vertices);
    let g_writes = g_policy.seq_writes(w.num_vertices);
    // Each block fetches 8 source and 8 destination values — 256 bits, half
    // an access window — so every non-empty block costs two full accesses
    // whose width is mostly wasted. This under-utilisation is the §6.3
    // point: "dividing graphs into small partitions leads to more data
    // transfer between local and global vertex memory".
    let g_read_accesses = 2 * w.non_empty_blocks;
    let g_global_t = reram.burst_period() * g_read_accesses as f64
        + reram.sequential_write_period()
            * (g_writes * VERTEX_BITS).div_ceil(u64::from(reram.output_bits())) as f64;
    let g_global_e = reram.read_energy(512) * g_read_accesses as f64
        + reram.write_energy(g_writes * VERTEX_BITS);
    // Local register file: 2 reads + 1 write per edge + 16 fills per block,
    // again across N parallel graph engines.
    let g_local_t = ((rf.read_latency() * 2.0 + rf.write_latency()) * w.num_edges as f64
        + rf.write_latency() * (16 * w.non_empty_blocks) as f64)
        / f64::from(w.pus.max(1));
    let g_local_e = (rf.read_energy(VERTEX_BITS) * 2.0 + rf.write_energy(VERTEX_BITS))
        * w.num_edges as f64
        + rf.write_energy(VERTEX_BITS) * (16 * w.non_empty_blocks) as f64;
    let graphr = VertexStorageSide {
        global_reads: g_reads,
        global_writes: g_writes,
        total: CostTerm::new(g_global_t + g_local_t, g_global_e + g_local_e),
    };

    (hyve, graphr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> VertexWorkload {
        // Scaled LJ-like numbers.
        VertexWorkload {
            num_vertices: 75_781,
            num_edges: 1_078_125,
            non_empty_blocks: 700_000,
            hyve_intervals: 80,
            pus: 8,
        }
    }

    #[test]
    fn policy_counts_match_equations() {
        let hyve = PartitionPolicy::Hyve {
            intervals: 80,
            pus: 8,
        };
        assert_eq!(hyve.seq_reads(1000), 10_000); // (P/N)·Nv
        assert_eq!(hyve.seq_writes(1000), 1000);
        let graphr = PartitionPolicy::GraphR {
            non_empty_blocks: 500,
        };
        assert_eq!(graphr.seq_reads(1000), 8000); // 16·NEB
        assert_eq!(graphr.seq_writes(1000), 1000);
    }

    #[test]
    fn fig10_hyve_prefers_dram_graphr_prefers_reram() {
        let nv = 1_000_000u64;
        for density in [4, 8, 16] {
            let hyve = global_vertex_edp_ratio(
                PartitionPolicy::Hyve {
                    intervals: 80,
                    pus: 8,
                },
                nv,
                density,
            );
            let graphr = global_vertex_edp_ratio(
                PartitionPolicy::GraphR {
                    non_empty_blocks: 20_000_000,
                },
                nv,
                density,
            );
            assert!(
                hyve < graphr,
                "HyVE's mix must lean towards DRAM: {hyve} vs {graphr} at {density} Gb"
            );
            assert!(graphr > 1.0, "GraphR's read-heavy mix must favour ReRAM");
        }
    }

    #[test]
    fn fig10_hyve_ratio_below_one_at_default_density() {
        let r = global_vertex_edp_ratio(
            PartitionPolicy::Hyve {
                intervals: 16,
                pus: 8,
            },
            1_000_000,
            4,
        );
        assert!(r < 1.0, "few partitions ⇒ DRAM wins, got {r}");
    }

    #[test]
    fn fig11_hyve_wins_whole_vertex_storage() {
        let (hyve, graphr) = vertex_storage_comparison(workload());
        // GraphR reads far more vertices globally...
        assert!(graphr.global_reads > 10 * hyve.global_reads);
        // ...and loses delay, energy and EDP despite faster local storage.
        assert!(graphr.total.time > hyve.total.time);
        assert!(graphr.total.energy > hyve.total.energy);
        let edp_ratio = (graphr.total.time.as_ns() * graphr.total.energy.as_pj())
            / (hyve.total.time.as_ns() * hyve.total.energy.as_pj());
        assert!(
            edp_ratio > 1.0,
            "GraphR/HyVE EDP ratio {edp_ratio} must exceed 1"
        );
    }

    #[test]
    fn write_counts_equal_by_eq7() {
        let (hyve, graphr) = vertex_storage_comparison(workload());
        assert_eq!(hyve.global_writes, graphr.global_writes);
    }
}
