//! §6.6's "instructions for graph processing on ReRAMs", as an executable
//! recommender: given a workload's shape, pick the device for each level of
//! the hierarchy and the processing substrate, with the paper's reasoning
//! attached.

use crate::crossbar::CrossbarCosts;
use crate::edge_storage::{compare_edge_storage, AccessPattern};
use crate::vertex_storage::{global_vertex_edp_ratio, PartitionPolicy};
use std::fmt;

/// What the designer optimises for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimise execution time.
    Latency,
    /// Minimise energy.
    Energy,
    /// Minimise the energy-delay product.
    EnergyDelay,
}

/// A memory technology choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Resistive RAM.
    Reram,
    /// Dynamic RAM.
    Dram,
    /// Static RAM.
    Sram,
    /// CMOS logic.
    Cmos,
    /// ReRAM crossbar processing-in-memory.
    Crossbar,
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technology::Reram => "ReRAM",
            Technology::Dram => "DRAM",
            Technology::Sram => "SRAM",
            Technology::Cmos => "CMOS",
            Technology::Crossbar => "ReRAM crossbar",
        };
        f.write_str(s)
    }
}

/// Workload shape the recommendation is conditioned on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadShape {
    /// Vertices in the graph.
    pub num_vertices: u64,
    /// Edges in the graph.
    pub num_edges: u64,
    /// Intervals the vertex data must be cut into to fit on-chip.
    pub partitions: u32,
    /// Processing units.
    pub pus: u32,
    /// Average edges per non-empty 8×8 block (Table 1's Navg), for the
    /// crossbar question.
    pub navg: f64,
    /// Memory chip density under consideration (Gbit).
    pub density_gbit: u32,
}

/// A per-level recommendation with the §6.6 rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Device for the sequential-read edge storage.
    pub edge_storage: Technology,
    /// Device for the global (off-chip) vertex memory.
    pub global_vertex: Technology,
    /// Device for the local (random-access) vertex memory.
    pub local_vertex: Technology,
    /// Substrate for processing edges.
    pub processing: Technology,
    /// One-line justifications, in the same order.
    pub rationale: Vec<String>,
}

/// Applies §6.6's decision procedure.
///
/// ```
/// use hyve_model::recommend::{recommend, Objective, Technology, WorkloadShape};
/// let shape = WorkloadShape {
///     num_vertices: 1_000_000, num_edges: 30_000_000,
///     partitions: 80, pus: 8, navg: 1.5, density_gbit: 4,
/// };
/// let r = recommend(&shape, Objective::Energy);
/// // The paper's conclusion: HyVE's exact hierarchy.
/// assert_eq!(r.edge_storage, Technology::Reram);
/// assert_eq!(r.local_vertex, Technology::Sram);
/// assert_eq!(r.processing, Technology::Cmos);
/// ```
pub fn recommend(shape: &WorkloadShape, objective: Objective) -> Recommendation {
    let mut rationale = Vec::new();

    // Edge storage (§6.2 / Fig. 9): DRAM for latency, ReRAM otherwise.
    let read = compare_edge_storage(shape.density_gbit, AccessPattern::SequentialRead);
    let edge_storage = match objective {
        Objective::Latency if read.delay_ratio < 1.0 => Technology::Dram,
        _ => {
            if read.edp_ratio > 1.0 {
                Technology::Reram
            } else {
                Technology::Dram
            }
        }
    };
    rationale.push(format!(
        "edge storage: sequential-read DRAM/ReRAM ratios at {} Gb — delay {:.2}, \
         energy {:.2}, EDP {:.2} ⇒ {}",
        shape.density_gbit, read.delay_ratio, read.energy_ratio, read.edp_ratio, edge_storage
    ));

    // Global vertex memory (§6.3 / Fig. 10): depends on the partition count.
    let policy = PartitionPolicy::Hyve {
        intervals: shape.partitions,
        pus: shape.pus,
    };
    let edp_ratio = global_vertex_edp_ratio(policy, shape.num_vertices, shape.density_gbit);
    let global_vertex = if edp_ratio < 1.0 {
        Technology::Dram
    } else {
        Technology::Reram
    };
    rationale.push(format!(
        "global vertex memory: P={} partitions give a read:write mix with \
         DRAM/ReRAM EDP ratio {:.2} ⇒ {}",
        shape.partitions, edp_ratio, global_vertex
    ));

    // Local vertex memory (§6.3 / Fig. 11): SRAM, always — register files
    // force tiny partitions and explode global traffic.
    let local_vertex = Technology::Sram;
    rationale.push(
        "local vertex memory: SRAM — register files would force 8-vertex \
         partitions and multiply global transfers (Fig. 11)"
            .to_string(),
    );

    // Processing (§6.4): CMOS unless blocks are dense enough for the
    // crossbar to amortise its writes — which never happens on real graphs.
    let costs = CrossbarCosts::default();
    let processing = if costs.cmos_wins(shape.navg.max(0.01)) {
        Technology::Cmos
    } else {
        Technology::Crossbar
    };
    rationale.push(format!(
        "processing: Navg={:.2} edges per 8x8 block; crossbar per-edge MV energy {} \
         vs CMOS {} ⇒ {}",
        shape.navg,
        costs.per_edge_energy_mv(shape.navg.max(0.01)),
        costs.cmos_per_edge_energy(),
        processing
    ));

    Recommendation {
        edge_storage,
        global_vertex,
        local_vertex,
        processing,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical() -> WorkloadShape {
        WorkloadShape {
            num_vertices: 1_000_000,
            num_edges: 30_000_000,
            partitions: 80,
            pus: 8,
            navg: 1.5,
            density_gbit: 4,
        }
    }

    #[test]
    fn energy_objective_reproduces_hyve() {
        let r = recommend(&typical(), Objective::Energy);
        assert_eq!(r.edge_storage, Technology::Reram);
        assert_eq!(r.global_vertex, Technology::Dram);
        assert_eq!(r.local_vertex, Technology::Sram);
        assert_eq!(r.processing, Technology::Cmos);
        assert_eq!(r.rationale.len(), 4);
    }

    #[test]
    fn latency_objective_flips_edge_storage_to_dram() {
        let r = recommend(&typical(), Objective::Latency);
        assert_eq!(r.edge_storage, Technology::Dram);
        // The rest of the hierarchy is unchanged.
        assert_eq!(r.local_vertex, Technology::Sram);
    }

    #[test]
    fn graphr_like_partitioning_prefers_reram_globally() {
        // Emulate GraphR's enormous partition count via a huge P: the
        // read:write ratio becomes read-dominated and ReRAM wins.
        let mut shape = typical();
        shape.partitions = 100_000;
        let r = recommend(&shape, Objective::EnergyDelay);
        assert_eq!(r.global_vertex, Technology::Reram);
    }

    #[test]
    fn crossbar_never_recommended_at_real_sparsity() {
        for navg in [1.0, 1.5, 2.4, 10.0, 64.0] {
            let mut shape = typical();
            shape.navg = navg;
            let r = recommend(&shape, Objective::Energy);
            assert_eq!(r.processing, Technology::Cmos, "navg={navg}");
        }
    }

    #[test]
    fn rationale_mentions_each_choice() {
        let r = recommend(&typical(), Objective::Energy);
        assert!(r.rationale[0].contains("edge storage"));
        assert!(r.rationale[1].contains("global vertex"));
        assert!(r.rationale[2].contains("local vertex"));
        assert!(r.rationale[3].contains("processing"));
    }

    #[test]
    fn technology_display() {
        assert_eq!(Technology::Crossbar.to_string(), "ReRAM crossbar");
        assert_eq!(Technology::Cmos.to_string(), "CMOS");
    }
}
