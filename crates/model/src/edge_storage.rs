//! §6.2 — DRAM vs ReRAM as the (large, sequential) edge storage (Fig. 9).
//!
//! The comparison streams a fixed working set through each device with a
//! given read/write mix, counting dynamic energy plus the background energy
//! accrued over the stream's duration, with both devices configured at the
//! same output width and density.

use hyve_memsim::{
    DramChip, DramChipConfig, Energy, MemoryDevice, ReramChip, ReramChipConfig, Time,
};

/// Access mix for the Fig. 9 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// 100% sequential reads (the edge-memory pattern).
    SequentialRead,
    /// 100% sequential writes (preprocessing / initialisation).
    SequentialWrite,
    /// 50% reads, 50% writes.
    Mixed,
}

impl AccessPattern {
    /// Fraction of accesses that are reads.
    pub fn read_fraction(self) -> f64 {
        match self {
            AccessPattern::SequentialRead => 1.0,
            AccessPattern::SequentialWrite => 0.0,
            AccessPattern::Mixed => 0.5,
        }
    }

    /// All three patterns in Fig. 9's order.
    pub fn all() -> [AccessPattern; 3] {
        [
            AccessPattern::SequentialRead,
            AccessPattern::SequentialWrite,
            AccessPattern::Mixed,
        ]
    }
}

/// DRAM-over-ReRAM ratios for one pattern/density point of Fig. 9.
/// Values < 1 favour DRAM, > 1 favour ReRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedComparison {
    /// `delay(DRAM) / delay(ReRAM)`.
    pub delay_ratio: f64,
    /// `energy(DRAM) / energy(ReRAM)`.
    pub energy_ratio: f64,
    /// `EDP(DRAM) / EDP(ReRAM)`.
    pub edp_ratio: f64,
}

/// Streams `total_bits` with the given mix through one device and returns
/// (time, energy incl. background).
fn stream_cost<D: MemoryDevice>(
    dev: &D,
    total_bits: u64,
    pattern: AccessPattern,
) -> (Time, Energy) {
    let rf = pattern.read_fraction();
    let read_bits = (total_bits as f64 * rf) as u64;
    let write_bits = total_bits - read_bits;
    let out = u64::from(dev.output_bits());
    let read_accesses = read_bits.div_ceil(out);
    let write_accesses = write_bits.div_ceil(out);
    let time = dev.burst_period() * read_accesses as f64
        + dev.sequential_write_period() * write_accesses as f64
        + if read_accesses > 0 {
            dev.read_latency()
        } else {
            Time::ZERO
        };
    let dynamic = dev.read_energy(read_bits.max(u64::from(read_bits > 0)))
        * f64::from(u8::from(read_bits > 0))
        + dev.write_energy(write_bits.max(u64::from(write_bits > 0)))
            * f64::from(u8::from(write_bits > 0));
    let energy = dynamic + dev.background_power() * time;
    (time, energy)
}

/// Fig. 9: compares DRAM against ReRAM at a density for one access pattern,
/// streaming a 1 Gbit working set.
///
/// ```
/// use hyve_model::{compare_edge_storage, AccessPattern};
/// let c = compare_edge_storage(4, AccessPattern::SequentialRead);
/// // Paper: DRAM is faster (ratio < 1) but ReRAM wins energy and EDP.
/// assert!(c.delay_ratio < 1.0);
/// assert!(c.energy_ratio > 1.0);
/// assert!(c.edp_ratio > 1.0);
/// ```
pub fn compare_edge_storage(density_gbit: u32, pattern: AccessPattern) -> NormalizedComparison {
    let bits: u64 = 1 << 30;
    let dram = DramChip::new(DramChipConfig::with_density(density_gbit));
    let reram = ReramChip::new(ReramChipConfig::with_density(density_gbit));
    let (td, ed) = stream_cost(&dram, bits, pattern);
    let (tr, er) = stream_cost(&reram, bits, pattern);
    NormalizedComparison {
        delay_ratio: td / tr,
        energy_ratio: ed / er,
        edp_ratio: (td.as_ns() * ed.as_pj()) / (tr.as_ns() * er.as_pj()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_read_favors_reram_on_energy() {
        for density in [4, 8, 16] {
            let c = compare_edge_storage(density, AccessPattern::SequentialRead);
            assert!(c.delay_ratio < 1.0, "DRAM must be faster at {density} Gb");
            assert!(
                c.energy_ratio > 1.0,
                "ReRAM must be cheaper at {density} Gb"
            );
            assert!(c.edp_ratio > 1.0, "ReRAM must win EDP at {density} Gb");
        }
    }

    #[test]
    fn sequential_write_favors_dram() {
        let c = compare_edge_storage(4, AccessPattern::SequentialWrite);
        // The 10 ns set pulse makes ReRAM writes slow: DRAM wins delay by a
        // lot, and with it EDP.
        assert!(c.delay_ratio < 0.5);
        assert!(c.edp_ratio < 1.0);
    }

    #[test]
    fn reram_energy_advantage_grows_with_density() {
        let e4 = compare_edge_storage(4, AccessPattern::SequentialRead).energy_ratio;
        let e16 = compare_edge_storage(16, AccessPattern::SequentialRead).energy_ratio;
        assert!(
            e16 > e4,
            "refresh/standby growth must widen the gap: {e4} -> {e16}"
        );
    }

    #[test]
    fn mixed_sits_between_extremes() {
        let read = compare_edge_storage(4, AccessPattern::SequentialRead);
        let write = compare_edge_storage(4, AccessPattern::SequentialWrite);
        let mixed = compare_edge_storage(4, AccessPattern::Mixed);
        assert!(mixed.edp_ratio < read.edp_ratio);
        assert!(mixed.edp_ratio > write.edp_ratio);
    }

    #[test]
    fn read_fractions() {
        assert_eq!(AccessPattern::SequentialRead.read_fraction(), 1.0);
        assert_eq!(AccessPattern::SequentialWrite.read_fraction(), 0.0);
        assert_eq!(AccessPattern::Mixed.read_fraction(), 0.5);
        assert_eq!(AccessPattern::all().len(), 3);
    }
}
