//! §6.4 — processing edges on ReRAM crossbars vs CMOS (Eq. 10–16).
//!
//! GraphR maps each 8×8 block onto a crossbar: every edge is *written* into
//! the array (3.91 nJ, 50.88 ns — the paper's GraphR parameters), then a
//! matrix-vector read produces the updates (1.08 pJ, 29.31 ns). Because real
//! graphs leave 8×8 blocks nearly empty (Table 1: 1.23–2.38 edges), the
//! write cost amortises over almost nothing, and a 3.7 pJ CMOS multiplier
//! wins by orders of magnitude.

use hyve_memsim::{Energy, Time};

/// Cost parameters of the GraphR-style crossbar processing path.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarCosts {
    /// Energy to write one edge into the crossbar (`E_rram,w`).
    pub write_energy: Energy,
    /// Latency of one crossbar write (`T_rram,w`).
    pub write_latency: Time,
    /// Energy of one crossbar (matrix-vector) read (`E_rram,r`).
    pub read_energy: Energy,
    /// Latency of one crossbar read (`T_rram,r`).
    pub read_latency: Time,
    /// Crossbars ganged per value: 4 crossbars of 4-bit cells for 16-bit
    /// operands (§6.4).
    pub crossbars_per_value: u32,
    /// Rows selected in turn for non-MV algorithms (§6.4: 8).
    pub row_selects: u32,
    /// Energy of one CMOS operation at an output port (`E_op`).
    pub cmos_op_energy: Energy,
    /// Latency of one (pipelined) CMOS operation.
    pub cmos_op_latency: Time,
}

impl Default for CrossbarCosts {
    /// The paper's §7.4.3 GraphR parameters and §6.4 CMOS anchors.
    fn default() -> Self {
        CrossbarCosts {
            write_energy: Energy::from_nj(3.91),
            write_latency: Time::from_ns(50.88),
            read_energy: Energy::from_pj(1.08),
            read_latency: Time::from_ns(29.31),
            crossbars_per_value: 4,
            row_selects: 8,
            cmos_op_energy: Energy::from_pj(3.7),
            cmos_op_latency: Time::from_ns(18.783),
        }
    }
}

impl CrossbarCosts {
    /// Eq. (14): energy of one matrix-vector operation on a block with
    /// `navg` resident edges — write them all, then read once.
    pub fn block_mv_energy(&self, navg: f64) -> Energy {
        self.write_energy * navg + self.read_energy
    }

    /// Eq. (10): equivalent per-edge energy of one crossbar MV operation.
    ///
    /// # Panics
    ///
    /// Panics if `navg` is not positive.
    pub fn per_edge_energy(&self, navg: f64) -> Energy {
        assert!(navg > 0.0, "blocks must hold at least one edge on average");
        self.block_mv_energy(navg) / navg
    }

    /// Eq. (11)/(15): per-edge energy of 16-bit MV-based algorithms (PR):
    /// 4 crossbars of 4-bit cells ⇒ `4·(E_w + E_r/navg)`.
    pub fn per_edge_energy_mv(&self, navg: f64) -> Energy {
        self.per_edge_energy(navg) * f64::from(self.crossbars_per_value)
    }

    /// Eq. (12): per-edge energy of non-MV algorithms (BFS): rows selected
    /// in turn (8 MV passes) plus the CMOS operator at the output port.
    pub fn per_edge_energy_nmv(&self, navg: f64) -> Energy {
        self.per_edge_energy(navg) * f64::from(self.row_selects) + self.cmos_op_energy
    }

    /// Eq. (13): per-edge energy of plain CMOS processing.
    pub fn cmos_per_edge_energy(&self) -> Energy {
        self.cmos_op_energy
    }

    /// Eq. (16): per-edge latency of crossbar MV processing — each edge is
    /// written (serially), the read amortises over the block.
    pub fn per_edge_latency_mv(&self, navg: f64) -> Time {
        assert!(navg > 0.0, "blocks must hold at least one edge on average");
        self.write_latency + self.read_latency / navg
    }

    /// §6.4's conclusion, as a predicate: CMOS beats the crossbar on both
    /// energy and latency for a given block occupancy.
    pub fn cmos_wins(&self, navg: f64) -> bool {
        self.per_edge_energy_mv(navg) > self.cmos_per_edge_energy()
            && self.per_edge_latency_mv(navg) > self.cmos_op_latency
    }

    /// Occupancy at which the crossbar's per-edge MV energy would match
    /// CMOS — far beyond the 64 edges an 8×8 block can even hold, which is
    /// the quantitative form of the paper's conclusion.
    pub fn break_even_navg(&self) -> f64 {
        // 4(Ew + Er/n) = Eop  ⇒  n = 4·Er / (Eop − 4·Ew); negative ⇒ never.
        let denom = self.cmos_op_energy.as_pj()
            - f64::from(self.crossbars_per_value) * self.write_energy.as_pj();
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            f64::from(self.crossbars_per_value) * self.read_energy.as_pj() / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CrossbarCosts::default();
        assert!((c.write_energy.as_nj() - 3.91).abs() < 1e-12);
        assert!((c.write_latency.as_ns() - 50.88).abs() < 1e-12);
        assert!((c.read_energy.as_pj() - 1.08).abs() < 1e-12);
        assert!((c.read_latency.as_ns() - 29.31).abs() < 1e-12);
    }

    #[test]
    fn cmos_wins_at_table1_occupancies() {
        let c = CrossbarCosts::default();
        // Table 1's Navg range.
        for navg in [1.23, 1.44, 1.49, 1.73, 2.38] {
            assert!(c.cmos_wins(navg), "CMOS must win at navg={navg}");
            // The gap is orders of magnitude on energy.
            let ratio = c.per_edge_energy_mv(navg) / c.cmos_per_edge_energy();
            assert!(ratio > 1000.0, "ratio {ratio} at navg={navg}");
        }
    }

    #[test]
    fn crossbar_never_breaks_even() {
        // E_w alone (3.91 nJ) exceeds E_op (3.7 pJ), so no occupancy helps.
        let c = CrossbarCosts::default();
        assert_eq!(c.break_even_navg(), f64::INFINITY);
    }

    #[test]
    fn nmv_costs_more_than_mv() {
        let c = CrossbarCosts::default();
        assert!(c.per_edge_energy_nmv(1.5) > c.per_edge_energy_mv(1.5));
    }

    #[test]
    fn denser_blocks_amortise_reads() {
        let c = CrossbarCosts::default();
        assert!(c.per_edge_energy_mv(2.0) < c.per_edge_energy_mv(1.0));
        assert!(c.per_edge_latency_mv(2.0) < c.per_edge_latency_mv(1.0));
    }

    #[test]
    fn eq14_by_hand() {
        let c = CrossbarCosts::default();
        let e = c.block_mv_energy(2.0);
        assert!((e.as_pj() - (2.0 * 3910.0 + 1.08)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_occupancy_panics() {
        let _ = CrossbarCosts::default().per_edge_energy(0.0);
    }

    #[test]
    fn hypothetical_cheap_crossbar_breaks_even() {
        let c = CrossbarCosts {
            write_energy: Energy::from_pj(0.5),
            ..Default::default()
        }; // 4·0.5 = 2 < 3.7
        let n = c.break_even_navg();
        assert!(n.is_finite() && n > 0.0);
        assert!(!c.cmos_wins(n * 2.0) || c.per_edge_latency_mv(n * 2.0) > c.cmos_op_latency);
    }
}
