//! # hyve-model — the paper's §6 analytic model of graph processing on ReRAMs
//!
//! Implements equations (1)–(16):
//!
//! * [`general`] — total execution time (Eq. 1), energy (Eq. 2), EDP and the
//!   Cauchy–Schwarz lower bound (Eq. 6),
//! * [`edge_storage`] — DRAM vs ReRAM for the sequential edge stream
//!   (Fig. 9),
//! * [`vertex_storage`] — DRAM vs ReRAM as *global* vertex memory under the
//!   HyVE (Eq. 7–8) and GraphR (Eq. 9) partitioning schemes (Fig. 10), and
//!   the whole-vertex-storage comparison including local memories (Fig. 11),
//! * [`crossbar`] — ReRAM crossbar processing costs (Eq. 10–16), showing why
//!   CMOS beats crossbars when every edge must first be written in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossbar;
pub mod edge_storage;
pub mod general;
pub mod recommend;
pub mod vertex_storage;

pub use crossbar::CrossbarCosts;
pub use edge_storage::{compare_edge_storage, AccessPattern, NormalizedComparison};
pub use general::{CostTerm, GraphWorkload, ModelCosts};
pub use recommend::{recommend, Objective, Recommendation, Technology, WorkloadShape};
pub use vertex_storage::{
    global_vertex_edp_ratio, vertex_storage_comparison, PartitionPolicy, VertexStorageSide,
};
