//! The general model of §6.1: equations (1), (2), (5) and the
//! Cauchy–Schwarz lower bound (6).
//!
//! Notation (subscripts as in the paper):
//!
//! * `(v,s)` — sequential vertex access, `(v,r)` — random vertex access,
//! * `e` — edge access, `pu` — processing-unit operation,
//! * superscripts R/W — read/write.
//!
//! Eq. (3)–(4) tie the counts together: every edge traversal randomly reads
//! the source and destination locally and randomly writes the destination,
//! so `N(v,r) read = N(v,r) write = Ne`.

use hyve_memsim::{Energy, EnergyDelay, Time};

/// A (time, energy) pair for one operation class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostTerm {
    /// Time of one operation.
    pub time: Time,
    /// Energy of one operation.
    pub energy: Energy,
}

impl CostTerm {
    /// Creates a term.
    pub fn new(time: Time, energy: Energy) -> Self {
        CostTerm { time, energy }
    }

    /// The term's contribution to the Eq. (6) bound: √(T·E).
    pub fn geometric_mean(&self) -> f64 {
        (self.time.as_ns() * self.energy.as_pj()).sqrt()
    }
}

/// Operation counts of a workload (one full execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphWorkload {
    /// Sequential vertex reads `NR(v,s)` (interval loading).
    pub seq_vertex_reads: u64,
    /// Sequential vertex writes `NW(v,s)` (interval write-back; Eq. 7: Nv).
    pub seq_vertex_writes: u64,
    /// Edge reads `NR(e)` (each edge streamed once per iteration).
    pub edge_reads: u64,
}

impl GraphWorkload {
    /// Random local vertex reads, per Eq. (3): one source + one destination
    /// read per edge ⇒ the *count* `NR(v,r) = NR(e)` (the energy model
    /// charges the pair via the factor 2 in Eq. 2).
    pub fn random_vertex_reads(&self) -> u64 {
        self.edge_reads
    }

    /// Random local vertex writes, per Eq. (4).
    pub fn random_vertex_writes(&self) -> u64 {
        self.edge_reads
    }
}

/// Per-operation costs for all six classes of Eq. (1)/(2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelCosts {
    /// Sequential vertex read (global memory).
    pub seq_vertex_read: CostTerm,
    /// Sequential vertex write (global memory).
    pub seq_vertex_write: CostTerm,
    /// Random vertex read (local memory).
    pub rand_vertex_read: CostTerm,
    /// Random vertex write (local memory).
    pub rand_vertex_write: CostTerm,
    /// Edge read (edge memory).
    pub edge_read: CostTerm,
    /// Processing one edge.
    pub processing: CostTerm,
}

impl ModelCosts {
    /// Eq. (1): total execution time. The four per-edge stages (edge read,
    /// local vertex read, processing, local vertex write) pipeline, so each
    /// edge costs the *maximum* stage time; sequential transfers bracket the
    /// pipeline.
    pub fn execution_time(&self, w: &GraphWorkload) -> Time {
        let pipeline = self
            .rand_vertex_read
            .time
            .max(self.edge_read.time)
            .max(self.processing.time)
            .max(self.rand_vertex_write.time);
        self.seq_vertex_read.time * w.seq_vertex_reads as f64
            + pipeline * w.edge_reads as f64
            + self.seq_vertex_write.time * w.seq_vertex_writes as f64
    }

    /// Eq. (1)'s analytical lower bound: `max(...) ≥ (a+b+c+d)/4`.
    pub fn execution_time_lower_bound(&self, w: &GraphWorkload) -> Time {
        let quarter = (self.rand_vertex_read.time
            + self.edge_read.time
            + self.processing.time
            + self.rand_vertex_write.time)
            / 4.0;
        self.seq_vertex_read.time * w.seq_vertex_reads as f64
            + quarter * w.edge_reads as f64
            + self.seq_vertex_write.time * w.seq_vertex_writes as f64
    }

    /// Eq. (2): total energy. Random vertex reads appear with factor 2
    /// (source and destination are both read per edge).
    pub fn energy(&self, w: &GraphWorkload) -> Energy {
        self.seq_vertex_read.energy * w.seq_vertex_reads as f64
            + self.rand_vertex_read.energy * (2 * w.random_vertex_reads()) as f64
            + self.edge_read.energy * w.edge_reads as f64
            + self.processing.energy * w.edge_reads as f64
            + self.rand_vertex_write.energy * w.random_vertex_writes() as f64
            + self.seq_vertex_write.energy * w.seq_vertex_writes as f64
    }

    /// Eq. (5): energy-delay product.
    pub fn edp(&self, w: &GraphWorkload) -> EnergyDelay {
        self.energy(w) * self.execution_time(w)
    }

    /// Eq. (6): the Cauchy–Schwarz lower bound on T·E, in pJ·ns. Minimising
    /// EDP means minimising each √(T·E) term — which decouples the design
    /// into edge storage, vertex storage and processing-unit choices.
    pub fn edp_lower_bound(&self, w: &GraphWorkload) -> EnergyDelay {
        let ne = w.edge_reads as f64;
        let sum = w.seq_vertex_reads as f64 * self.seq_vertex_read.geometric_mean()
            + (2.0f64.sqrt() / 2.0) * ne * self.rand_vertex_read.geometric_mean()
            + 0.5 * ne * self.edge_read.geometric_mean()
            + 0.5 * ne * self.processing.geometric_mean()
            + 0.5 * ne * self.rand_vertex_write.geometric_mean()
            + w.seq_vertex_writes as f64 * self.seq_vertex_write.geometric_mean();
        EnergyDelay::from_pj_ns(sum * sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> ModelCosts {
        let t = |ns: f64, pj: f64| CostTerm::new(Time::from_ns(ns), Energy::from_pj(pj));
        ModelCosts {
            seq_vertex_read: t(0.5, 10.0),
            seq_vertex_write: t(0.5, 12.0),
            rand_vertex_read: t(1.0, 24.0),
            rand_vertex_write: t(0.6, 25.0),
            edge_read: t(0.25, 13.0),
            processing: t(1.5, 3.7),
        }
    }

    fn workload() -> GraphWorkload {
        GraphWorkload {
            seq_vertex_reads: 1_000,
            seq_vertex_writes: 500,
            edge_reads: 10_000,
        }
    }

    #[test]
    fn counts_follow_eq_3_and_4() {
        let w = workload();
        assert_eq!(w.random_vertex_reads(), w.edge_reads);
        assert_eq!(w.random_vertex_writes(), w.edge_reads);
    }

    #[test]
    fn pipeline_uses_bottleneck_stage() {
        let c = costs();
        let w = workload();
        // Bottleneck stage = processing at 1.5 ns.
        let expect = 0.5 * 1000.0 + 1.5 * 10_000.0 + 0.5 * 500.0;
        assert!((c.execution_time(&w).as_ns() - expect).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        let c = costs();
        let w = workload();
        assert!(c.execution_time_lower_bound(&w) <= c.execution_time(&w));
        assert!(c.edp_lower_bound(&w).as_pj_ns() <= c.edp(&w).as_pj_ns());
    }

    #[test]
    fn energy_matches_eq_2_by_hand() {
        let c = costs();
        let w = workload();
        let expect = 1000.0 * 10.0      // seq reads
            + 2.0 * 10_000.0 * 24.0     // 2 * random reads
            + 10_000.0 * 13.0           // edge reads
            + 10_000.0 * 3.7            // processing
            + 10_000.0 * 25.0           // random writes
            + 500.0 * 12.0; // seq writes
        assert!((c.energy(&w).as_pj() - expect).abs() < 1e-6);
    }

    #[test]
    fn edp_is_product() {
        let c = costs();
        let w = workload();
        let edp = c.edp(&w);
        let expect = c.energy(&w).as_pj() * c.execution_time(&w).as_ns();
        assert!((edp.as_pj_ns() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn zero_workload_is_zero() {
        let c = costs();
        let w = GraphWorkload::default();
        assert_eq!(c.execution_time(&w), Time::ZERO);
        assert_eq!(c.energy(&w), Energy::ZERO);
        assert_eq!(c.edp(&w).as_pj_ns(), 0.0);
    }

    #[test]
    fn improving_a_term_tightens_the_bound() {
        let c = costs();
        let w = workload();
        let base = c.edp_lower_bound(&w).as_pj_ns();
        let mut better = c;
        better.edge_read.energy = Energy::from_pj(1.0);
        assert!(better.edp_lower_bound(&w).as_pj_ns() < base);
    }
}
