//! Sparse matrix–vector multiplication as a one-iteration accumulate pass.
//!
//! `y = A·x` where `A` is the graph's (weighted) adjacency matrix with
//! `A[dst][src] = weight`: each edge contributes `x[src] · w` to `y[dst]`.
//! The second extra algorithm of the GraphR comparison (§7.4.3) and the
//! operation GraphR's crossbars natively compute.

use crate::program::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_graph::{Edge, VertexId};

/// One SpMV pass with a deterministic input vector.
///
/// The input vector is derived from the vertex id (`x[v] = 1 + (v mod 7)`),
/// which keeps runs reproducible without shipping a vector. Use
/// [`SpMv::with_uniform_input`] for the all-ones vector.
///
/// ```
/// use hyve_algorithms::{run_in_memory, GraphMeta, SpMv};
/// use hyve_graph::Edge;
///
/// let edges = [Edge::with_weight(0, 1, 2.0)];
/// let meta = GraphMeta::from_edges(2, &edges);
/// let run = run_in_memory(&SpMv::new().with_uniform_input(), &edges, &meta);
/// assert_eq!(run.values[1], 2.0); // y[1] = x[0] * 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpMv {
    uniform_input: bool,
}

impl SpMv {
    /// Creates an SpMV pass with the id-derived input vector.
    pub fn new() -> Self {
        SpMv {
            uniform_input: false,
        }
    }

    /// Uses the all-ones input vector instead.
    pub fn with_uniform_input(mut self) -> Self {
        self.uniform_input = true;
        self
    }

    /// The input vector entry for a vertex.
    pub fn input(&self, v: VertexId) -> f32 {
        if self.uniform_input {
            1.0
        } else {
            1.0 + (v.raw() % 7) as f32
        }
    }
}

impl EdgeProgram for SpMv {
    type Value = f32;

    fn name(&self) -> &'static str {
        "SpMV"
    }

    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Accumulate
    }

    fn bound(&self) -> IterationBound {
        IterationBound::Fixed(1)
    }

    fn value_bits(&self) -> u32 {
        32
    }

    fn init(&self, v: VertexId, _: &GraphMeta) -> f32 {
        self.input(v)
    }

    fn identity(&self) -> f32 {
        0.0
    }

    fn scatter(&self, src: f32, edge: &Edge, _: &GraphMeta) -> f32 {
        src * edge.weight
    }

    fn merge(&self, current: f32, message: f32) -> f32 {
        current + message
    }

    fn apply(&self, _: VertexId, acc: f32, _prev: f32, _: &GraphMeta) -> f32 {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_in_memory;

    #[test]
    fn matches_dense_multiply() {
        let edges = [
            Edge::with_weight(0, 1, 2.0),
            Edge::with_weight(1, 2, 3.0),
            Edge::with_weight(0, 2, 0.5),
        ];
        let meta = GraphMeta::from_edges(3, &edges);
        let spmv = SpMv::new();
        let run = run_in_memory(&spmv, &edges, &meta);
        let x: Vec<f32> = (0..3).map(|v| spmv.input(VertexId::new(v))).collect();
        // y[1] = 2*x0; y[2] = 3*x1 + 0.5*x0; y[0] = 0 (no in-edges).
        assert_eq!(run.values[0], 0.0);
        assert_eq!(run.values[1], 2.0 * x[0]);
        assert_eq!(run.values[2], 3.0 * x[1] + 0.5 * x[0]);
    }

    #[test]
    fn runs_exactly_one_iteration() {
        let edges = [Edge::new(0, 1)];
        let meta = GraphMeta::from_edges(2, &edges);
        let run = run_in_memory(&SpMv::new(), &edges, &meta);
        assert_eq!(run.iterations, 1);
    }

    #[test]
    fn uniform_input_is_row_sums() {
        let edges = [Edge::with_weight(0, 2, 1.5), Edge::with_weight(1, 2, 2.5)];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&SpMv::new().with_uniform_input(), &edges, &meta);
        assert_eq!(run.values[2], 4.0);
    }

    #[test]
    fn input_vector_is_deterministic() {
        let s = SpMv::new();
        assert_eq!(s.input(VertexId::new(0)), 1.0);
        assert_eq!(s.input(VertexId::new(7)), 1.0);
        assert_eq!(s.input(VertexId::new(3)), 4.0);
    }
}
