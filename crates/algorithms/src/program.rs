//! The [`EdgeProgram`] abstraction and a plain in-memory executor.
//!
//! §2.1 of the paper reduces GAS to the edge-centric loop of Algorithm 1:
//! stream edges, update each destination from its source. Concrete
//! algorithms differ only in
//!
//! * how vertex values are initialised,
//! * what a source "sends" along an edge ([`EdgeProgram::scatter`]),
//! * how messages combine at the destination ([`EdgeProgram::merge`]) —
//!   a sum for PR/SpMV, a min for BFS/CC/SSSP,
//! * whether merged values overwrite in place (monotone) or are folded in
//!   at iteration end ([`EdgeProgram::apply`], accumulate mode),
//! * and when to stop ([`IterationBound`]).
//!
//! Execution engines (HyVE, GraphR, CPU baselines) drive the same trait and
//! only differ in what each step *costs*.

use hyve_graph::{Edge, EdgeList, VertexId};

/// Static facts about the graph that programs may consult.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMeta {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Number of edges.
    pub num_edges: u64,
    /// Out-degree of every vertex (PR divides rank by it).
    pub out_degrees: Vec<u32>,
}

impl GraphMeta {
    /// Gathers metadata from an edge list.
    pub fn from_edge_list(g: &EdgeList) -> Self {
        GraphMeta {
            num_vertices: g.num_vertices(),
            num_edges: g.len() as u64,
            out_degrees: g.out_degrees(),
        }
    }

    /// Gathers metadata from a raw edge slice with an explicit vertex count.
    pub fn from_edges(num_vertices: u32, edges: &[Edge]) -> Self {
        let mut deg = vec![0u32; num_vertices as usize];
        for e in edges {
            deg[e.src.index()] += 1;
        }
        GraphMeta {
            num_vertices,
            num_edges: edges.len() as u64,
            out_degrees: deg,
        }
    }
}

/// How destination updates combine across an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Messages accumulate into a per-iteration scratch array that
    /// [`EdgeProgram::apply`] folds into the value at iteration end (PR, SpMV).
    Accumulate,
    /// Messages merge into the live value immediately; convergence is
    /// "no value changed this iteration" (BFS, CC, SSSP).
    ///
    /// ## Invariants monotone programs must uphold
    ///
    /// Engines optimise monotone execution (dirty-interval skipping,
    /// re-merging already-absorbed messages) on the strength of these
    /// properties, and the results are only guaranteed correct — and
    /// bit-identical across optimisation toggles — when they hold:
    ///
    /// * [`EdgeProgram::merge`] is a **semilattice join**: idempotent
    ///   (`merge(a, a) == a`), commutative and associative — `min` for
    ///   BFS/CC/SSSP. Idempotence is what makes re-delivering a message a
    ///   no-op, so an engine may skip work it can prove was already
    ///   absorbed.
    /// * [`EdgeProgram::scatter`] is **monotone** in the source value with
    ///   respect to the join order (an unchanged source re-sends an
    ///   identical message).
    /// * Values stay **self-equal** under `PartialEq`. An IEEE NaN violates
    ///   this (`NaN != NaN`); a convergence check comparing old and new
    ///   values would then see change forever and spin to the
    ///   [`IterationBound`] cap. Engines guard against it — a value that is
    ///   not equal to itself never registers as changed — so a NaN-emitting
    ///   program terminates instead of spinning, but its output is
    ///   unspecified beyond that.
    Monotone,
}

/// Iteration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationBound {
    /// Run exactly this many iterations (paper: PR runs 10).
    Fixed(u32),
    /// Run until no change, with a safety cap.
    Converge {
        /// Upper bound on iterations.
        max: u32,
    },
}

impl IterationBound {
    /// The maximum number of iterations this bound permits.
    pub fn max_iterations(self) -> u32 {
        match self {
            IterationBound::Fixed(n) => n,
            IterationBound::Converge { max } => max,
        }
    }
}

/// An edge-centric vertex program (paper Algorithm 1).
///
/// `Sync` is required so the engine can share one program instance across
/// the worker threads of a parallel
/// [`ExecutionStrategy`](../hyve_core/exec/enum.ExecutionStrategy.html).
pub trait EdgeProgram: Sync {
    /// Vertex value type.
    type Value: Copy + PartialEq + std::fmt::Debug + Send + Sync;

    /// Human-readable algorithm name ("PR", "BFS", ...).
    fn name(&self) -> &'static str;

    /// Whether updates accumulate or merge monotonically in place.
    fn mode(&self) -> ExecutionMode;

    /// Iteration policy.
    fn bound(&self) -> IterationBound;

    /// Width of one stored vertex value in bits (drives memory traffic).
    fn value_bits(&self) -> u32;

    /// Initial value of vertex `v`.
    fn init(&self, v: VertexId, meta: &GraphMeta) -> Self::Value;

    /// Identity element of [`merge`](Self::merge) — the accumulator's
    /// starting value (0 for sums, ∞ for mins).
    fn identity(&self) -> Self::Value;

    /// Message a source value sends along an edge.
    fn scatter(&self, src: Self::Value, edge: &Edge, meta: &GraphMeta) -> Self::Value;

    /// Combines a message into the destination's current/accumulated value.
    fn merge(&self, current: Self::Value, message: Self::Value) -> Self::Value;

    /// Folds the iteration's accumulator into the previous value
    /// (accumulate mode only; monotone programs never see this call).
    fn apply(
        &self,
        v: VertexId,
        acc: Self::Value,
        prev: Self::Value,
        meta: &GraphMeta,
    ) -> Self::Value;

    /// True if edges should also propagate dst → src (undirected semantics;
    /// connected components needs this on a directed edge list).
    fn undirected(&self) -> bool {
        false
    }

    /// True when messages scattered from an identity-valued source are
    /// absorbed by any destination:
    ///
    /// `merge(x, scatter(identity(), e, meta)) == x` for every `x` and `e`.
    ///
    /// Only consulted for [`ExecutionMode::Monotone`] programs. When it
    /// holds, an engine may start its first sweep with only the intervals
    /// whose initial values differ from the identity marked dirty — sources
    /// still at the identity provably send no effectual messages — which
    /// turns iteration 1 of a single-source program (BFS, SSSP) into a
    /// near-empty pass. Results stay bit-identical; opting in falsely
    /// (e.g. a merge that propagates NaN messages) silently corrupts runs,
    /// so the default is `false`.
    fn scatter_absorbs_identity(&self) -> bool {
        false
    }

    /// True when the per-edge update is arithmetic (multiply/add, as in PR,
    /// SSSP, SpMV) rather than a comparison (BFS, CC). Engines use this to
    /// pick the CMOS operator energy (§6.4: 3.7 pJ float multiply vs a much
    /// cheaper comparator).
    fn arithmetic(&self) -> bool {
        true
    }
}

/// Result of a plain in-memory run.
#[derive(Debug, Clone, PartialEq)]
pub struct InMemoryRun<V> {
    /// Final vertex values.
    pub values: Vec<V>,
    /// Iterations actually executed.
    pub iterations: u32,
    /// Total destination updates that changed a value.
    pub updates: u64,
}

/// Runs a program over raw edges with no cost model — the functional
/// semantics every engine must agree with.
///
/// ```
/// use hyve_algorithms::{run_in_memory, Bfs, GraphMeta};
/// use hyve_graph::{Edge, VertexId};
///
/// let edges = [Edge::new(0, 1), Edge::new(1, 2)];
/// let meta = GraphMeta::from_edges(3, &edges);
/// let run = run_in_memory(&Bfs::new(VertexId::new(0)), &edges, &meta);
/// assert_eq!(run.values, vec![0, 1, 2]);
/// ```
pub fn run_in_memory<P: EdgeProgram>(
    program: &P,
    edges: &[Edge],
    meta: &GraphMeta,
) -> InMemoryRun<P::Value> {
    let n = meta.num_vertices as usize;
    let mut values: Vec<P::Value> = (0..meta.num_vertices)
        .map(|v| program.init(VertexId::new(v), meta))
        .collect();
    let bound = program.bound();
    let mut iterations = 0;
    let mut updates = 0u64;

    for _ in 0..bound.max_iterations() {
        iterations += 1;
        let mut changed = false;
        match program.mode() {
            ExecutionMode::Accumulate => {
                let mut acc = vec![program.identity(); n];
                for e in edges {
                    let msg = program.scatter(values[e.src.index()], e, meta);
                    acc[e.dst.index()] = program.merge(acc[e.dst.index()], msg);
                    if program.undirected() {
                        let msg = program.scatter(values[e.dst.index()], &e.reversed(), meta);
                        acc[e.src.index()] = program.merge(acc[e.src.index()], msg);
                    }
                }
                for v in 0..n {
                    let new = program.apply(VertexId::new(v as u32), acc[v], values[v], meta);
                    if new != values[v] {
                        changed = true;
                        updates += 1;
                    }
                    values[v] = new;
                }
            }
            ExecutionMode::Monotone => {
                for e in edges {
                    let msg = program.scatter(values[e.src.index()], e, meta);
                    let merged = program.merge(values[e.dst.index()], msg);
                    if merged != values[e.dst.index()] {
                        values[e.dst.index()] = merged;
                        changed = true;
                        updates += 1;
                    }
                    if program.undirected() {
                        let msg = program.scatter(values[e.dst.index()], &e.reversed(), meta);
                        let merged = program.merge(values[e.src.index()], msg);
                        if merged != values[e.src.index()] {
                            values[e.src.index()] = merged;
                            changed = true;
                            updates += 1;
                        }
                    }
                }
            }
        }
        if let IterationBound::Converge { .. } = bound {
            if !changed {
                break;
            }
        }
    }

    InMemoryRun {
        values,
        iterations,
        updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy accumulate program: each vertex sums its in-neighbours' ids.
    struct SumIds;
    impl EdgeProgram for SumIds {
        type Value = u64;
        fn name(&self) -> &'static str {
            "SumIds"
        }
        fn mode(&self) -> ExecutionMode {
            ExecutionMode::Accumulate
        }
        fn bound(&self) -> IterationBound {
            IterationBound::Fixed(1)
        }
        fn value_bits(&self) -> u32 {
            64
        }
        fn init(&self, v: VertexId, _: &GraphMeta) -> u64 {
            u64::from(v.raw())
        }
        fn identity(&self) -> u64 {
            0
        }
        fn scatter(&self, src: u64, _: &Edge, _: &GraphMeta) -> u64 {
            src
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a + b
        }
        fn apply(&self, _: VertexId, acc: u64, _: u64, _: &GraphMeta) -> u64 {
            acc
        }
    }

    #[test]
    fn accumulate_mode_sums_messages() {
        let edges = [Edge::new(1, 0), Edge::new(2, 0), Edge::new(0, 2)];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&SumIds, &edges, &meta);
        assert_eq!(run.values, vec![3, 0, 0]); // v0 <- 1 + 2; v2 <- 0
        assert_eq!(run.iterations, 1);
    }

    #[test]
    fn fixed_bound_runs_exactly_n() {
        struct TwoIter;
        impl EdgeProgram for TwoIter {
            type Value = u64;
            fn name(&self) -> &'static str {
                "TwoIter"
            }
            fn mode(&self) -> ExecutionMode {
                ExecutionMode::Accumulate
            }
            fn bound(&self) -> IterationBound {
                IterationBound::Fixed(2)
            }
            fn value_bits(&self) -> u32 {
                64
            }
            fn init(&self, _: VertexId, _: &GraphMeta) -> u64 {
                1
            }
            fn identity(&self) -> u64 {
                0
            }
            fn scatter(&self, src: u64, _: &Edge, _: &GraphMeta) -> u64 {
                src
            }
            fn merge(&self, a: u64, b: u64) -> u64 {
                a + b
            }
            fn apply(&self, _: VertexId, acc: u64, _: u64, _: &GraphMeta) -> u64 {
                acc + 1
            }
        }
        let edges = [Edge::new(0, 1)];
        let meta = GraphMeta::from_edges(2, &edges);
        let run = run_in_memory(&TwoIter, &edges, &meta);
        assert_eq!(run.iterations, 2);
    }

    #[test]
    fn meta_from_edges_matches_edge_list() {
        let edges = [Edge::new(0, 1), Edge::new(0, 2), Edge::new(2, 1)];
        let list = EdgeList::from_edges(3, edges).unwrap();
        let a = GraphMeta::from_edge_list(&list);
        let b = GraphMeta::from_edges(3, &edges);
        assert_eq!(a, b);
        assert_eq!(a.out_degrees, vec![2, 0, 1]);
    }

    #[test]
    fn bound_max_iterations() {
        assert_eq!(IterationBound::Fixed(10).max_iterations(), 10);
        assert_eq!(IterationBound::Converge { max: 99 }.max_iterations(), 99);
    }
}
