//! Sequential reference implementations used to validate engine results.
//!
//! These deliberately use *different* algorithmic structures than the
//! edge-centric programs (queue BFS, union-find CC, Dijkstra SSSP) so that
//! agreement between an engine run and a reference is meaningful evidence
//! of correctness rather than the same code run twice.

use hyve_graph::{Csr, EdgeList, VertexId};
use std::collections::VecDeque;

/// Queue-based BFS levels (`u32::MAX` = unreached).
pub fn bfs_levels(csr: &Csr, source: VertexId) -> Vec<u32> {
    let n = csr.num_vertices() as usize;
    let mut levels = vec![u32::MAX; n];
    if source.index() >= n {
        return levels;
    }
    let mut queue = VecDeque::new();
    levels[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let next = levels[v.index()] + 1;
        for (u, _) in csr.neighbors(v) {
            if levels[u.index()] == u32::MAX {
                levels[u.index()] = next;
                queue.push_back(u);
            }
        }
    }
    levels
}

/// Union-find weakly-connected components; labels are each component's
/// minimum vertex id (matching the label-propagation program).
pub fn connected_components(g: &EdgeList) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();

    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        // Path compression.
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    for e in g.iter() {
        let a = find(&mut parent, e.src.raw());
        let b = find(&mut parent, e.dst.raw());
        if a != b {
            // Union by smaller root so the representative is the min id.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Power-iteration PageRank over the CSR, mirroring the paper's fixed
/// iteration count. Dangling mass is dropped, matching the edge-centric
/// program's semantics (no out-edges ⇒ no contribution).
pub fn pagerank(csr: &Csr, iterations: u32, damping: f32) -> Vec<f32> {
    let n = csr.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - damping) / n as f32;
    let mut ranks = vec![1.0 / n as f32; n];
    for _ in 0..iterations {
        let mut next = vec![0.0f32; n];
        for v in 0..n as u32 {
            let v = VertexId::new(v);
            let deg = csr.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = ranks[v.index()] / deg as f32;
            for (u, _) in csr.neighbors(v) {
                next[u.index()] += share;
            }
        }
        for r in next.iter_mut() {
            *r = base + damping * *r;
        }
        ranks = next;
    }
    ranks
}

/// Dijkstra SSSP distances (`f32::INFINITY` = unreachable).
///
/// # Panics
///
/// Panics on negative edge weights (Dijkstra precondition).
pub fn sssp_distances(csr: &Csr, source: VertexId) -> Vec<f32> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f32, VertexId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on distance.
            other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
        }
    }

    let n = csr.num_vertices() as usize;
    let mut dist = vec![f32::INFINITY; n];
    if source.index() >= n {
        return dist;
    }
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry(0.0, source));
    while let Some(Entry(d, v)) = heap.pop() {
        if d > dist[v.index()] {
            continue;
        }
        for (u, w) in csr.neighbors(v) {
            assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let nd = d + w;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(Entry(nd, u));
            }
        }
    }
    dist
}

/// Direct sparse matrix–vector product: `y[dst] += x[src] * w` per edge.
pub fn spmv(g: &EdgeList, x: &[f32]) -> Vec<f32> {
    let mut y = vec![0.0f32; g.num_vertices() as usize];
    for e in g.iter() {
        y[e.dst.index()] += x[e.src.index()] * e.weight;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_graph::Edge;

    fn diamond() -> EdgeList {
        // 0 -> {1,2} -> 3
        EdgeList::from_edges(
            4,
            [
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bfs_diamond() {
        let csr = Csr::from_edge_list(&diamond());
        assert_eq!(bfs_levels(&csr, VertexId::new(0)), vec![0, 1, 1, 2]);
    }

    #[test]
    fn cc_labels_are_min_ids() {
        let g =
            EdgeList::from_edges(6, [Edge::new(4, 1), Edge::new(1, 2), Edge::new(5, 3)]).unwrap();
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 1, 1, 3, 1, 3]);
    }

    #[test]
    fn pagerank_sums_to_at_most_one() {
        let csr = Csr::from_edge_list(&diamond());
        let pr = pagerank(&csr, 20, 0.85);
        // The sink (vertex 3) drains rank every iteration, so the total
        // decays below 1; it must stay positive and bounded.
        let total: f32 = pr.iter().sum();
        assert!(total > 0.1 && total <= 1.001, "total rank {total}");
        // Sink vertex 3 collects the most rank.
        assert!(pr[3] > pr[1]);
    }

    #[test]
    fn sssp_weighted_diamond() {
        let g = EdgeList::from_edges(
            4,
            [
                Edge::with_weight(0, 1, 1.0),
                Edge::with_weight(0, 2, 5.0),
                Edge::with_weight(1, 3, 1.0),
                Edge::with_weight(2, 3, 1.0),
            ],
        )
        .unwrap();
        let csr = Csr::from_edge_list(&g);
        let d = sssp_distances(&csr, VertexId::new(0));
        assert_eq!(d, vec![0.0, 1.0, 5.0, 2.0]);
    }

    #[test]
    fn spmv_direct() {
        let g = diamond();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = spmv(&g, &x);
        assert_eq!(y, vec![0.0, 1.0, 1.0, 5.0]);
    }

    #[test]
    fn empty_graph_references() {
        let g = EdgeList::new(0);
        assert!(connected_components(&g).is_empty());
        assert!(spmv(&g, &[]).is_empty());
        let csr = Csr::from_edge_list(&g);
        assert!(pagerank(&csr, 5, 0.85).is_empty());
    }
}
