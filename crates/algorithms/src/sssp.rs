//! Single-source shortest paths (Bellman-Ford-style, monotone min merge).
//!
//! One of the two extra algorithms the GraphR comparison adds (§7.4.3).
//! Distances relax along edges: `dist(dst) = min(dist(dst), dist(src) + w)`.

use crate::program::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_graph::{Edge, VertexId};

/// Distance value for unreached vertices.
pub const UNREACHABLE: f32 = f32::INFINITY;

/// Edge-centric SSSP from a source vertex, using edge weights.
///
/// ```
/// use hyve_algorithms::{run_in_memory, GraphMeta, Sssp};
/// use hyve_graph::{Edge, VertexId};
///
/// let edges = [Edge::with_weight(0, 1, 5.0), Edge::with_weight(1, 2, 1.0),
///              Edge::with_weight(0, 2, 10.0)];
/// let meta = GraphMeta::from_edges(3, &edges);
/// let run = run_in_memory(&Sssp::new(VertexId::new(0)), &edges, &meta);
/// assert_eq!(run.values, vec![0.0, 5.0, 6.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sssp {
    source: VertexId,
    max_iterations: u32,
}

impl Sssp {
    /// Creates an SSSP program rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp {
            source,
            max_iterations: 10_000,
        }
    }

    /// Overrides the convergence safety cap.
    pub fn with_max_iterations(mut self, max: u32) -> Self {
        self.max_iterations = max;
        self
    }

    /// The SSSP root.
    pub fn source(&self) -> VertexId {
        self.source
    }
}

impl EdgeProgram for Sssp {
    type Value = f32;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Monotone
    }

    fn bound(&self) -> IterationBound {
        IterationBound::Converge {
            max: self.max_iterations,
        }
    }

    fn value_bits(&self) -> u32 {
        32
    }

    fn init(&self, v: VertexId, _: &GraphMeta) -> f32 {
        if v == self.source {
            0.0
        } else {
            UNREACHABLE
        }
    }

    fn identity(&self) -> f32 {
        UNREACHABLE
    }

    fn scatter(&self, src: f32, edge: &Edge, _: &GraphMeta) -> f32 {
        src + edge.weight
    }

    fn merge(&self, current: f32, message: f32) -> f32 {
        current.min(message)
    }

    /// `∞ + w = ∞` for any finite weight, so unreachable sources never
    /// relax any destination.
    fn scatter_absorbs_identity(&self) -> bool {
        true
    }

    fn apply(&self, _: VertexId, acc: f32, prev: f32, _: &GraphMeta) -> f32 {
        acc.min(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_in_memory;

    #[test]
    fn unweighted_defaults_to_hop_count() {
        let edges = [Edge::new(0, 1), Edge::new(1, 2)];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&Sssp::new(VertexId::new(0)), &edges, &meta);
        assert_eq!(run.values, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn picks_cheaper_longer_path() {
        let edges = [
            Edge::with_weight(0, 2, 10.0),
            Edge::with_weight(0, 1, 1.0),
            Edge::with_weight(1, 2, 1.0),
        ];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&Sssp::new(VertexId::new(0)), &edges, &meta);
        assert_eq!(run.values[2], 2.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let edges = [Edge::new(1, 2)];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&Sssp::new(VertexId::new(0)), &edges, &meta);
        assert!(run.values[1].is_infinite());
        assert!(run.values[2].is_infinite());
    }

    #[test]
    fn respects_direction() {
        let edges = [Edge::new(1, 0)];
        let meta = GraphMeta::from_edges(2, &edges);
        let run = run_in_memory(&Sssp::new(VertexId::new(0)), &edges, &meta);
        assert!(run.values[1].is_infinite());
    }

    /// The law behind `scatter_absorbs_identity`: a relaxation from an
    /// unreachable source must leave every destination distance untouched.
    #[test]
    fn identity_messages_are_absorbed() {
        let sssp = Sssp::new(VertexId::new(0));
        assert!(sssp.scatter_absorbs_identity());
        let meta = GraphMeta::from_edges(2, &[]);
        let msg = sssp.scatter(sssp.identity(), &Edge::with_weight(0, 1, 2.5), &meta);
        for x in [0.0, 1.5, 1e30, f32::INFINITY] {
            assert_eq!(sssp.merge(x, msg).to_bits(), x.to_bits());
        }
    }
}
