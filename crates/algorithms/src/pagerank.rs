//! PageRank as an edge-centric program.
//!
//! The paper runs PR for a fixed 10 iterations (§7.1). Each iteration is a
//! full accumulate pass: every source sends `rank / out_degree` along each
//! out-edge; destinations sum, then apply the damping equation
//! `(1 − d)/N + d · Σ`.

use crate::program::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_graph::{Edge, VertexId};

/// PageRank with damping factor 0.85 (overridable).
///
/// ```
/// use hyve_algorithms::{run_in_memory, GraphMeta, PageRank};
/// use hyve_graph::Edge;
///
/// // A 2-cycle splits rank evenly.
/// let edges = [Edge::new(0, 1), Edge::new(1, 0)];
/// let meta = GraphMeta::from_edges(2, &edges);
/// let run = run_in_memory(&PageRank::new(20), &edges, &meta);
/// assert!((run.values[0] - 0.5).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PageRank {
    iterations: u32,
    damping: f32,
    tolerance: Option<f32>,
}

impl PageRank {
    /// Creates a PageRank program running a fixed number of iterations.
    pub fn new(iterations: u32) -> Self {
        PageRank {
            iterations,
            damping: 0.85,
            tolerance: None,
        }
    }

    /// Overrides the damping factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < damping < 1`.
    pub fn with_damping(mut self, damping: f32) -> Self {
        assert!(
            damping > 0.0 && damping < 1.0,
            "damping must lie strictly between 0 and 1"
        );
        self.damping = damping;
        self
    }

    /// The damping factor.
    pub fn damping(&self) -> f32 {
        self.damping
    }

    /// Switches from the paper's fixed-iteration schedule to convergence
    /// detection: an iteration that moves no vertex's rank by more than
    /// `tolerance` is the last one, and the iteration count becomes a cap.
    /// A cap too tight for the requested tolerance surfaces as a
    /// `MaxIterationsExceeded` session error carrying the partial report
    /// (a `tolerance` of `0.0` demands an exact fixed point, which real
    /// graphs do not reach in a few iterations — the error path's natural
    /// test input).
    ///
    /// # Panics
    ///
    /// Panics when `tolerance` is negative or NaN.
    pub fn with_tolerance(mut self, tolerance: f32) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        self.tolerance = Some(tolerance);
        self
    }

    /// The convergence tolerance, when set.
    pub fn tolerance(&self) -> Option<f32> {
        self.tolerance
    }
}

impl Default for PageRank {
    /// The paper's configuration: 10 iterations, damping 0.85.
    fn default() -> Self {
        PageRank::new(10)
    }
}

impl EdgeProgram for PageRank {
    type Value = f32;

    fn name(&self) -> &'static str {
        "PR"
    }

    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Accumulate
    }

    fn bound(&self) -> IterationBound {
        match self.tolerance {
            Some(_) => IterationBound::Converge {
                max: self.iterations,
            },
            None => IterationBound::Fixed(self.iterations),
        }
    }

    /// A stored PR vertex carries its rank *and* its out-degree (the
    /// scatter divides by it), so the memory record is two 32-bit words —
    /// the "wider vertex" the paper credits for PR's larger data-sharing
    /// benefit (§7.3.1).
    fn value_bits(&self) -> u32 {
        64
    }

    fn init(&self, _v: VertexId, meta: &GraphMeta) -> f32 {
        1.0 / meta.num_vertices as f32
    }

    fn identity(&self) -> f32 {
        0.0
    }

    fn scatter(&self, src: f32, edge: &Edge, meta: &GraphMeta) -> f32 {
        let deg = meta.out_degrees[edge.src.index()];
        if deg == 0 {
            0.0
        } else {
            src / deg as f32
        }
    }

    fn merge(&self, current: f32, message: f32) -> f32 {
        current + message
    }

    fn apply(&self, _v: VertexId, acc: f32, prev: f32, meta: &GraphMeta) -> f32 {
        let next = (1.0 - self.damping) / meta.num_vertices as f32 + self.damping * acc;
        match self.tolerance {
            // Holding the previous rank when the step is within tolerance
            // makes "no vertex changed" exactly the convergence criterion
            // the engine's changed-flag already detects.
            Some(tol) if (next - prev).abs() <= tol => prev,
            _ => next,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_in_memory;

    #[test]
    fn star_graph_concentrates_rank() {
        // 1,2,3 all point at 0.
        let edges = [Edge::new(1, 0), Edge::new(2, 0), Edge::new(3, 0)];
        let meta = GraphMeta::from_edges(4, &edges);
        let run = run_in_memory(&PageRank::new(15), &edges, &meta);
        assert!(run.values[0] > run.values[1]);
        assert!((run.values[1] - run.values[2]).abs() < 1e-9);
    }

    #[test]
    fn chain_ranks_monotone() {
        let edges = [Edge::new(0, 1), Edge::new(1, 2)];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&PageRank::default(), &edges, &meta);
        assert_eq!(run.iterations, 10);
        // End of the chain receives the most accumulated rank... actually
        // the tail receives from a damped source, middle from the head:
        assert!(run.values[2] > run.values[0]);
    }

    #[test]
    fn ranks_stay_positive_and_bounded() {
        let edges = [Edge::new(0, 1), Edge::new(1, 0), Edge::new(1, 2)];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&PageRank::default(), &edges, &meta);
        for &r in &run.values {
            assert!(r > 0.0 && r < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_validated() {
        let _ = PageRank::new(1).with_damping(1.5);
    }

    #[test]
    fn default_is_paper_config() {
        let pr = PageRank::default();
        assert_eq!(pr.bound(), IterationBound::Fixed(10));
        assert_eq!(pr.damping(), 0.85);
        assert_eq!(pr.tolerance(), None);
        assert_eq!(pr.name(), "PR");
        assert_eq!(pr.value_bits(), 64);
        assert_eq!(pr.mode(), ExecutionMode::Accumulate);
    }

    #[test]
    fn tolerance_switches_to_convergence_bound() {
        let pr = PageRank::new(50).with_tolerance(1e-6);
        assert_eq!(pr.bound(), IterationBound::Converge { max: 50 });
        assert_eq!(pr.tolerance(), Some(1e-6));
    }

    #[test]
    fn loose_tolerance_converges_before_the_cap() {
        let edges = [Edge::new(0, 1), Edge::new(1, 0)];
        let meta = GraphMeta::from_edges(2, &edges);
        let run = run_in_memory(&PageRank::new(50).with_tolerance(1e-4), &edges, &meta);
        assert!(run.iterations < 50, "converged in {} iters", run.iterations);
        assert!((run.values[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn zero_tolerance_runs_to_the_cap() {
        // A cycle converges only geometrically, so an exact fixed point is
        // out of reach and the convergence bound degenerates to the cap.
        let edges = [Edge::new(0, 1), Edge::new(1, 0), Edge::new(1, 2)];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&PageRank::new(5).with_tolerance(0.0), &edges, &meta);
        assert_eq!(run.iterations, 5);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn tolerance_validated() {
        let _ = PageRank::new(1).with_tolerance(-1.0);
    }
}
