//! Degree centrality as a single accumulate pass — the simplest useful
//! edge-centric program, handy as an engine smoke-test and a building block
//! (weighted in-degree is SpMV with the all-ones vector; this program also
//! offers the unweighted count).

use crate::program::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_graph::{Edge, VertexId};

/// Which degree to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegreeKind {
    /// Count of incoming edges (the natural edge-centric direction).
    #[default]
    In,
    /// Sum of incoming edge weights.
    WeightedIn,
}

/// In-degree (or weighted in-degree) in one iteration.
///
/// ```
/// use hyve_algorithms::{run_in_memory, DegreeCentrality, GraphMeta};
/// use hyve_graph::Edge;
///
/// let edges = [Edge::new(0, 2), Edge::new(1, 2), Edge::new(2, 0)];
/// let meta = GraphMeta::from_edges(3, &edges);
/// let run = run_in_memory(&DegreeCentrality::new(), &edges, &meta);
/// assert_eq!(run.values, vec![1.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegreeCentrality {
    kind: DegreeKind,
}

impl DegreeCentrality {
    /// Unweighted in-degree.
    pub fn new() -> Self {
        DegreeCentrality {
            kind: DegreeKind::In,
        }
    }

    /// Weighted in-degree (sums edge weights).
    pub fn weighted() -> Self {
        DegreeCentrality {
            kind: DegreeKind::WeightedIn,
        }
    }

    /// The configured degree kind.
    pub fn kind(&self) -> DegreeKind {
        self.kind
    }
}

impl EdgeProgram for DegreeCentrality {
    type Value = f32;

    fn name(&self) -> &'static str {
        "Degree"
    }

    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Accumulate
    }

    fn bound(&self) -> IterationBound {
        IterationBound::Fixed(1)
    }

    fn value_bits(&self) -> u32 {
        32
    }

    fn init(&self, _: VertexId, _: &GraphMeta) -> f32 {
        0.0
    }

    fn identity(&self) -> f32 {
        0.0
    }

    fn scatter(&self, _src: f32, edge: &Edge, _: &GraphMeta) -> f32 {
        match self.kind {
            DegreeKind::In => 1.0,
            DegreeKind::WeightedIn => edge.weight,
        }
    }

    fn merge(&self, current: f32, message: f32) -> f32 {
        current + message
    }

    fn apply(&self, _: VertexId, acc: f32, _prev: f32, _: &GraphMeta) -> f32 {
        acc
    }

    fn arithmetic(&self) -> bool {
        false // pure counting is adder-only, no multiplier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_in_memory;

    #[test]
    fn counts_match_edge_list_in_degrees() {
        let edges = [
            Edge::new(0, 1),
            Edge::new(2, 1),
            Edge::new(3, 1),
            Edge::new(1, 0),
        ];
        let meta = GraphMeta::from_edges(4, &edges);
        let run = run_in_memory(&DegreeCentrality::new(), &edges, &meta);
        assert_eq!(run.values, vec![1.0, 3.0, 0.0, 0.0]);
        assert_eq!(run.iterations, 1);
    }

    #[test]
    fn weighted_sums_weights() {
        let edges = [Edge::with_weight(0, 1, 2.5), Edge::with_weight(2, 1, 0.5)];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&DegreeCentrality::weighted(), &edges, &meta);
        assert_eq!(run.values[1], 3.0);
    }

    #[test]
    fn kinds_and_metadata() {
        assert_eq!(DegreeCentrality::new().kind(), DegreeKind::In);
        assert_eq!(DegreeCentrality::weighted().kind(), DegreeKind::WeightedIn);
        assert!(!DegreeCentrality::new().arithmetic());
        assert_eq!(DegreeCentrality::default(), DegreeCentrality::new());
    }
}
