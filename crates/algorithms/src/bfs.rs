//! Breadth-first search as a monotone edge-centric program.
//!
//! Levels propagate as a min-merge: a destination's level is the minimum of
//! its current level and `src_level + 1`. The paper notes (§7.1) HyVE uses
//! the general read-based edge-centric formulation rather than a queue.

use crate::program::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_graph::{Edge, VertexId};

/// Level value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Edge-centric BFS from a source vertex.
///
/// ```
/// use hyve_algorithms::{run_in_memory, Bfs, GraphMeta};
/// use hyve_graph::{Edge, VertexId};
///
/// let edges = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)];
/// let meta = GraphMeta::from_edges(3, &edges);
/// let run = run_in_memory(&Bfs::new(VertexId::new(0)), &edges, &meta);
/// assert_eq!(run.values, vec![0, 1, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfs {
    source: VertexId,
    max_iterations: u32,
}

impl Bfs {
    /// Creates a BFS rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs {
            source,
            max_iterations: 10_000,
        }
    }

    /// Overrides the convergence safety cap.
    pub fn with_max_iterations(mut self, max: u32) -> Self {
        self.max_iterations = max;
        self
    }

    /// The BFS root.
    pub fn source(&self) -> VertexId {
        self.source
    }
}

impl EdgeProgram for Bfs {
    type Value = u32;

    fn name(&self) -> &'static str {
        "BFS"
    }

    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Monotone
    }

    fn bound(&self) -> IterationBound {
        IterationBound::Converge {
            max: self.max_iterations,
        }
    }

    /// Levels fit in a byte for any graph of sane diameter; the narrow
    /// value is why BFS benefits least from data sharing (Fig. 14).
    fn value_bits(&self) -> u32 {
        8
    }

    fn init(&self, v: VertexId, _: &GraphMeta) -> u32 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }

    fn identity(&self) -> u32 {
        UNREACHED
    }

    fn scatter(&self, src: u32, _: &Edge, _: &GraphMeta) -> u32 {
        src.saturating_add(1)
    }

    fn merge(&self, current: u32, message: u32) -> u32 {
        current.min(message)
    }

    /// `scatter(UNREACHED) saturates to UNREACHED`, the top of the min
    /// lattice, so unreached sources never lower any destination.
    fn scatter_absorbs_identity(&self) -> bool {
        true
    }

    fn arithmetic(&self) -> bool {
        false
    }

    fn apply(&self, _: VertexId, acc: u32, prev: u32, _: &GraphMeta) -> u32 {
        acc.min(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_in_memory;

    #[test]
    fn unreachable_stays_unreached() {
        let edges = [Edge::new(0, 1)];
        let meta = GraphMeta::from_edges(3, &edges);
        let run = run_in_memory(&Bfs::new(VertexId::new(0)), &edges, &meta);
        assert_eq!(run.values, vec![0, 1, UNREACHED]);
    }

    #[test]
    fn converges_without_hitting_cap() {
        let edges: Vec<Edge> = (0..50).map(|i| Edge::new(i, i + 1)).collect();
        let meta = GraphMeta::from_edges(51, &edges);
        let run = run_in_memory(&Bfs::new(VertexId::new(0)), &edges, &meta);
        assert_eq!(run.values[50], 50);
        assert!(run.iterations < 100);
    }

    #[test]
    fn takes_shortest_path() {
        // 0->1->2->3 and direct 0->3.
        let edges = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(0, 3),
        ];
        let meta = GraphMeta::from_edges(4, &edges);
        let run = run_in_memory(&Bfs::new(VertexId::new(0)), &edges, &meta);
        assert_eq!(run.values[3], 1);
    }

    #[test]
    fn saturating_add_avoids_overflow() {
        let bfs = Bfs::new(VertexId::new(0));
        assert_eq!(
            bfs.scatter(UNREACHED, &Edge::new(0, 1), &GraphMeta::from_edges(2, &[])),
            UNREACHED
        );
    }

    #[test]
    fn accessors() {
        let bfs = Bfs::new(VertexId::new(3)).with_max_iterations(5);
        assert_eq!(bfs.source(), VertexId::new(3));
        assert_eq!(bfs.bound(), IterationBound::Converge { max: 5 });
        assert_eq!(bfs.name(), "BFS");
    }

    /// The law behind `scatter_absorbs_identity`: an unreached source's
    /// message must leave every possible destination value untouched.
    #[test]
    fn identity_messages_are_absorbed() {
        let bfs = Bfs::new(VertexId::new(0));
        assert!(bfs.scatter_absorbs_identity());
        let meta = GraphMeta::from_edges(2, &[]);
        let msg = bfs.scatter(bfs.identity(), &Edge::new(0, 1), &meta);
        for x in [0, 1, 17, UNREACHED - 1, UNREACHED] {
            assert_eq!(bfs.merge(x, msg), x);
        }
    }
}
