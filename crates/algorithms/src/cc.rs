//! Connected components (weakly connected, label propagation).
//!
//! Every vertex starts with its own id as label; the minimum label floods
//! each component. Edges are treated as undirected (label moves both ways),
//! matching what "Connected Components" means on the paper's directed
//! datasets.

use crate::program::{EdgeProgram, ExecutionMode, GraphMeta, IterationBound};
use hyve_graph::{Edge, VertexId};

/// Min-label connected components.
///
/// ```
/// use hyve_algorithms::{run_in_memory, ConnectedComponents, GraphMeta};
/// use hyve_graph::Edge;
///
/// let edges = [Edge::new(0, 1), Edge::new(2, 3)];
/// let meta = GraphMeta::from_edges(4, &edges);
/// let run = run_in_memory(&ConnectedComponents::new(), &edges, &meta);
/// assert_eq!(run.values, vec![0, 0, 2, 2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnectedComponents {
    max_iterations: u32,
}

impl ConnectedComponents {
    /// Creates a CC program with a generous convergence cap.
    pub fn new() -> Self {
        ConnectedComponents {
            max_iterations: 10_000,
        }
    }

    /// Overrides the convergence safety cap.
    pub fn with_max_iterations(mut self, max: u32) -> Self {
        self.max_iterations = max;
        self
    }
}

impl EdgeProgram for ConnectedComponents {
    type Value = u32;

    fn name(&self) -> &'static str {
        "CC"
    }

    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Monotone
    }

    fn bound(&self) -> IterationBound {
        IterationBound::Converge {
            max: if self.max_iterations == 0 {
                10_000
            } else {
                self.max_iterations
            },
        }
    }

    fn value_bits(&self) -> u32 {
        32
    }

    fn init(&self, v: VertexId, _: &GraphMeta) -> u32 {
        v.raw()
    }

    fn identity(&self) -> u32 {
        u32::MAX
    }

    fn scatter(&self, src: u32, _: &Edge, _: &GraphMeta) -> u32 {
        src
    }

    fn merge(&self, current: u32, message: u32) -> u32 {
        current.min(message)
    }

    /// `scatter(u32::MAX) = u32::MAX`, the top of the min lattice. (Every
    /// vertex starts at its own label, so this buys CC nothing on the first
    /// sweep — it is declared for correctness-of-contract, not speed.)
    fn scatter_absorbs_identity(&self) -> bool {
        true
    }

    fn arithmetic(&self) -> bool {
        false
    }

    fn apply(&self, _: VertexId, acc: u32, prev: u32, _: &GraphMeta) -> u32 {
        acc.min(prev)
    }

    fn undirected(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_in_memory;

    #[test]
    fn direction_is_ignored() {
        // 1 -> 0: label 0 must still reach vertex 1.
        let edges = [Edge::new(1, 0)];
        let meta = GraphMeta::from_edges(2, &edges);
        let run = run_in_memory(&ConnectedComponents::new(), &edges, &meta);
        assert_eq!(run.values, vec![0, 0]);
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let edges = [Edge::new(0, 1)];
        let meta = GraphMeta::from_edges(4, &edges);
        let run = run_in_memory(&ConnectedComponents::new(), &edges, &meta);
        assert_eq!(run.values[2], 2);
        assert_eq!(run.values[3], 3);
    }

    #[test]
    fn long_chain_converges() {
        let edges: Vec<Edge> = (0..100).map(|i| Edge::new(i + 1, i)).collect();
        let meta = GraphMeta::from_edges(101, &edges);
        let run = run_in_memory(&ConnectedComponents::new(), &edges, &meta);
        assert!(run.values.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_components_stay_separate() {
        let edges = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(5, 4),
            Edge::new(4, 3),
        ];
        let meta = GraphMeta::from_edges(6, &edges);
        let run = run_in_memory(&ConnectedComponents::new(), &edges, &meta);
        assert_eq!(&run.values[0..3], &[0, 0, 0]);
        assert_eq!(&run.values[3..6], &[3, 3, 3]);
    }

    /// The law behind `scatter_absorbs_identity`: an identity-labelled
    /// source must never lower any destination label.
    #[test]
    fn identity_messages_are_absorbed() {
        let cc = ConnectedComponents::new();
        assert!(cc.scatter_absorbs_identity());
        let meta = GraphMeta::from_edges(2, &[]);
        let msg = cc.scatter(cc.identity(), &Edge::new(0, 1), &meta);
        for x in [0, 3, u32::MAX - 1, u32::MAX] {
            assert_eq!(cc.merge(x, msg), x);
        }
    }
}
