//! # hyve-algorithms — edge-centric graph programs
//!
//! The five algorithms the paper evaluates (PR, BFS, CC, SSSP, SpMV — §7.1,
//! §7.4.3) expressed against the [`EdgeProgram`] trait, which captures the
//! edge-centric GAS specialisation of §2.1: iterate over edges, update each
//! destination from its source, with either *accumulating* (PR/SpMV) or
//! *monotone* (BFS/CC/SSSP) merge semantics.
//!
//! [`mod@reference`] holds straightforward sequential implementations used to
//! validate whatever an engine (HyVE, GraphR, CPU) computes.
//!
//! ```
//! use hyve_algorithms::{EdgeProgram, GraphMeta, PageRank};
//! use hyve_graph::DatasetProfile;
//!
//! let graph = DatasetProfile::youtube_scaled().generate(1);
//! let meta = GraphMeta::from_edge_list(&graph);
//! let pr = PageRank::new(10);
//! let ranks = hyve_algorithms::run_in_memory(&pr, graph.edges(), &meta).values;
//! assert_eq!(ranks.len(), graph.num_vertices() as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod degree;
pub mod pagerank;
pub mod program;
pub mod reference;
pub mod spmv;
pub mod sssp;

pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use degree::{DegreeCentrality, DegreeKind};
pub use pagerank::PageRank;
pub use program::{
    run_in_memory, EdgeProgram, ExecutionMode, GraphMeta, InMemoryRun, IterationBound,
};
pub use spmv::SpMv;
pub use sssp::Sssp;
