//! Property-based tests of the edge-centric programs against their
//! sequential references, plus algorithm-specific invariants.

use hyve_algorithms::{
    reference, run_in_memory, Bfs, ConnectedComponents, GraphMeta, PageRank, SpMv, Sssp,
};
use hyve_graph::{Csr, Edge, EdgeList, VertexId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u32..60).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv, 0.1f32..5.0), 0..250).prop_map(move |triples| {
            let mut g = EdgeList::new(nv);
            g.extend(
                triples
                    .into_iter()
                    .map(|(s, d, w)| Edge::with_weight(s, d, w)),
            );
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Edge-centric BFS equals queue BFS on arbitrary graphs, and levels
    /// along any edge differ by at most one in the forward direction.
    #[test]
    fn bfs_matches_queue_reference(g in arb_graph()) {
        let meta = GraphMeta::from_edge_list(&g);
        let src = VertexId::new(0);
        let run = run_in_memory(&Bfs::new(src), g.edges(), &meta);
        let csr = Csr::from_edge_list(&g);
        prop_assert_eq!(&run.values, &reference::bfs_levels(&csr, src));
        for e in g.iter() {
            let (ls, ld) = (run.values[e.src.index()], run.values[e.dst.index()]);
            if ls != u32::MAX {
                prop_assert!(ld <= ls + 1, "edge {e} violates BFS triangle rule");
            }
        }
    }

    /// Edge-centric CC equals union-find, and endpoints of every edge share
    /// a label.
    #[test]
    fn cc_matches_union_find(g in arb_graph()) {
        let meta = GraphMeta::from_edge_list(&g);
        let run = run_in_memory(&ConnectedComponents::new(), g.edges(), &meta);
        prop_assert_eq!(&run.values, &reference::connected_components(&g));
        for e in g.iter() {
            prop_assert_eq!(run.values[e.src.index()], run.values[e.dst.index()]);
        }
        // Labels are canonical: each equals the min vertex id of its class.
        for (v, &label) in run.values.iter().enumerate() {
            prop_assert!(label <= v as u32);
        }
    }

    /// Edge-centric SSSP lower-bounds hold: dist(dst) ≤ dist(src) + w for
    /// every edge, and results match Dijkstra.
    #[test]
    fn sssp_matches_dijkstra(g in arb_graph()) {
        let meta = GraphMeta::from_edge_list(&g);
        let src = VertexId::new(0);
        let run = run_in_memory(&Sssp::new(src), g.edges(), &meta);
        let csr = Csr::from_edge_list(&g);
        let expect = reference::sssp_distances(&csr, src);
        for (a, b) in run.values.iter().zip(expect.iter()) {
            if b.is_finite() {
                prop_assert!((a - b).abs() <= 1e-3 * b.max(1.0), "{a} vs {b}");
            } else {
                prop_assert!(a.is_infinite());
            }
        }
        for e in g.iter() {
            let (ds, dd) = (run.values[e.src.index()], run.values[e.dst.index()]);
            if ds.is_finite() {
                prop_assert!(dd <= ds + e.weight + 1e-3);
            }
        }
    }

    /// One SpMV pass equals the direct per-edge product.
    #[test]
    fn spmv_matches_direct(g in arb_graph()) {
        let meta = GraphMeta::from_edge_list(&g);
        let spmv = SpMv::new();
        let run = run_in_memory(&spmv, g.edges(), &meta);
        let x: Vec<f32> = (0..g.num_vertices())
            .map(|v| spmv.input(VertexId::new(v)))
            .collect();
        let expect = reference::spmv(&g, &x);
        for (a, b) in run.values.iter().zip(expect.iter()) {
            prop_assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// PageRank stays positive, bounded, and close to the CSR power
    /// iteration.
    #[test]
    fn pagerank_matches_power_iteration(g in arb_graph(), iters in 1u32..8) {
        let meta = GraphMeta::from_edge_list(&g);
        let pr = PageRank::new(iters);
        let run = run_in_memory(&pr, g.edges(), &meta);
        let csr = Csr::from_edge_list(&g);
        let expect = reference::pagerank(&csr, iters, 0.85);
        let mut total = 0.0f32;
        for (a, b) in run.values.iter().zip(expect.iter()) {
            prop_assert!(*a > 0.0 && *a <= 1.0 + 1e-6);
            prop_assert!((a - b).abs() <= 1e-4 * b.max(1e-6), "{a} vs {b}");
            total += a;
        }
        prop_assert!(total <= 1.0 + 1e-4);
    }

    /// Monotone programs are idempotent at their fixpoint: re-running from
    /// the converged state changes nothing.
    #[test]
    fn monotone_fixpoint_is_stable(g in arb_graph()) {
        let meta = GraphMeta::from_edge_list(&g);
        let bfs = Bfs::new(VertexId::new(0));
        let first = run_in_memory(&bfs, g.edges(), &meta);
        // Re-scatter from the fixpoint: no merge can improve any value.
        use hyve_algorithms::EdgeProgram;
        for e in g.iter() {
            let msg = bfs.scatter(first.values[e.src.index()], e, &meta);
            let merged = bfs.merge(first.values[e.dst.index()], msg);
            prop_assert_eq!(merged, first.values[e.dst.index()]);
        }
    }
}
