//! Smoke tests for the cheap experiment modules: every regenerator that
//! doesn't sweep the full simulator grid runs in small mode and produces
//! rows with the paper's qualitative shape.

use hyve_bench::experiments as e;

fn small_mode() {
    std::env::set_var("HYVE_BENCH_SMALL", "1");
}

#[test]
fn table1_rows_in_sparse_regime() {
    small_mode();
    let rows = e::table1::run();
    assert_eq!(rows.len(), 3);
    for r in rows {
        assert!(r.navg > 1.0 && r.navg < 4.0, "{}: {}", r.dataset, r.navg);
        assert!(r.non_empty_blocks > 0);
        assert!(!r.paper_navg.is_nan());
    }
}

#[test]
fn table3_has_eight_rows_and_correct_choice() {
    let rows = e::table3::run();
    assert_eq!(rows.len(), 8);
    let chosen = e::table3::chosen();
    assert_eq!(chosen.output_bits, 512);
    assert!(chosen.power_per_bit_mw < 0.11);
}

#[test]
fn fig09_grid_covers_patterns_and_densities() {
    let rows = e::fig09::run();
    assert_eq!(rows.len(), 9);
    for r in &rows {
        assert!(r.delay > 0.0 && r.energy > 0.0 && r.edp > 0.0);
    }
    // Sequential read rows must favour ReRAM on EDP.
    assert!(rows[..3].iter().all(|r| r.edp > 1.0));
    // Sequential write rows must favour DRAM.
    assert!(rows[3..6].iter().all(|r| r.edp < 1.0));
}

#[test]
fn fig10_policy_gap() {
    small_mode();
    for r in e::fig10::run() {
        assert!(
            r.graphr_ratio > r.hyve_ratio,
            "{}@{}Gb: GraphR {} must lean more ReRAM than HyVE {}",
            r.dataset,
            r.density_gbit,
            r.graphr_ratio,
            r.hyve_ratio
        );
    }
}

#[test]
fn fig10_interval_planner_at_original_scale() {
    // 2 MB SRAM, 32-bit records: 1.16 M vertices ⇒ P = ceil(74.2/2)… = 40.
    let p = e::fig10::original_scale_intervals(1_160_000);
    assert_eq!(p % 8, 0);
    assert!((32..=48).contains(&p), "got {p}");
    assert_eq!(e::fig10::original_scale_intervals(1), 8);
}

#[test]
fn fig11_hyve_wins_on_all_small_datasets() {
    small_mode();
    for r in e::fig11::run() {
        assert!(
            r.delay_ratio > 1.0,
            "{}: delay {}",
            r.dataset,
            r.delay_ratio
        );
        assert!(
            r.energy_ratio > 1.0,
            "{}: energy {}",
            r.dataset,
            r.energy_ratio
        );
        assert!(r.edp_ratio > 1.0, "{}: EDP {}", r.dataset, r.edp_ratio);
        assert!((r.write_count_ratio - 1.0).abs() < 1e-9);
    }
}

#[test]
fn fig13_slc_wins_everywhere() {
    small_mode();
    for r in e::fig13::run() {
        assert!(r.slc_wins(), "{}: {:?}", r.dataset, r.mteps_per_watt);
    }
}

#[test]
fn fig20_request_mix_has_paper_proportions() {
    small_mode();
    let graph = &hyve_bench::workloads::datasets()[0].1;
    let mix = e::fig20::request_mix(graph, 20_000, 7);
    assert_eq!(mix.len(), 20_000);
    let adds = mix
        .iter()
        .filter(|m| matches!(m, hyve_graph::Mutation::AddEdge(_)))
        .count() as f64
        / 20_000.0;
    let vertex_ops = mix
        .iter()
        .filter(|m| {
            matches!(
                m,
                hyve_graph::Mutation::AddVertex | hyve_graph::Mutation::RemoveVertex(_)
            )
        })
        .count() as f64
        / 20_000.0;
    assert!((adds - 0.45).abs() < 0.02, "adds {adds}");
    assert!((vertex_ops - 0.10).abs() < 0.02, "vertex ops {vertex_ops}");
}

#[test]
fn formatting_helpers() {
    assert_eq!(hyve_bench::fmt_f(0.0), "0");
    assert_eq!(hyve_bench::fmt_f(1234.0), "1234");
    assert_eq!(hyve_bench::fmt_f(1.23456), "1.23");
    assert_eq!(hyve_bench::fmt_f(0.0123), "0.012");
}
