//! Regenerates the paper's fig12 experiment. See `hyve_bench::experiments::fig12`.

fn main() {
    hyve_bench::experiments::fig12::print();
}
