//! Regenerates the paper's fig14 experiment. See `hyve_bench::experiments::fig14`.

fn main() {
    hyve_bench::experiments::fig14::print();
}
