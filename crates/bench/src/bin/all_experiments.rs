//! Regenerates every table and figure of the paper in sequence.
//!
//! Set `HYVE_BENCH_SMALL=1` to restrict to the three smaller datasets.

use hyve_bench::experiments as e;

fn main() {
    let t = std::time::Instant::now();
    e::table1::print();
    e::table3::print();
    e::fig09::print();
    e::fig10::print();
    e::fig11::print();
    e::fig12::print();
    e::fig13::print();
    e::fig14::print();
    e::fig15::print();
    e::fig16::print();
    e::fig17::print();
    e::fig18::print();
    e::fig19::print();
    e::fig20::print();
    e::fig21::print();
    e::table4::print();
    e::ablation::print();
    println!(
        "\nall experiments regenerated in {:.1}s",
        t.elapsed().as_secs_f64()
    );
}
