//! Regenerates the paper's table4 experiment. See `hyve_bench::experiments::table4`.

fn main() {
    hyve_bench::experiments::table4::print();
}
