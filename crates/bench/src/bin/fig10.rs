//! Regenerates the paper's fig10 experiment. See `hyve_bench::experiments::fig10`.

fn main() {
    hyve_bench::experiments::fig10::print();
}
