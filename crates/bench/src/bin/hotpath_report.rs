//! Hot-path speedup report: times the pre-optimisation engine loop (AoS
//! `block_at` walk, per-PU snapshot clone, per-iteration accumulator
//! allocation, per-run out-degree rescan — kept here verbatim as the
//! baseline) against the current engine (flat SoA stream, reused scratch,
//! dirty-interval skipping) on the monotone algorithms, and appends one
//! JSON line per invocation to `BENCH_hotpath.json` so the performance
//! trajectory accumulates across commits.
//!
//! Run through `scripts/bench_report.sh`, which builds in release mode and
//! stamps the git revision. `HYVE_BENCH_SMALL=1` switches from the largest
//! dataset (TW) to YT for quick CI runs.

use hyve_algorithms::{
    Bfs, ConnectedComponents, EdgeProgram, ExecutionMode, GraphMeta, IterationBound, Sssp,
};
use hyve_bench::workloads;
use hyve_core::{SimulationSession, SystemConfig};
use hyve_graph::{DatasetProfile, GridGraph, VertexId};
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

/// The engine hot path as it stood before the flat-SoA/scratch/skip work —
/// the measured baseline. Functionally identical to the current engine
/// (asserted below), just slower.
fn legacy_run<P: EdgeProgram>(program: &P, grid: &GridGraph, n: u32) -> (Vec<P::Value>, u32) {
    let meta = GraphMeta {
        num_vertices: grid.num_vertices(),
        num_edges: grid.num_edges(),
        out_degrees: {
            let mut deg = vec![0u32; grid.num_vertices() as usize];
            for e in grid.iter_edges() {
                deg[e.src.index()] += 1;
            }
            deg
        },
    };
    let nv = meta.num_vertices as usize;
    let p = grid.num_intervals();
    let s = p / n;
    // Algorithm 2's closed-form schedule: at (sy, sx, step) PU `pu` owns
    // block (sx·N + (pu+step) mod N, sy·N + pu).
    let pu_blocks: Vec<Vec<(u32, u32)>> = (0..n)
        .map(|pu| {
            let mut blocks = Vec::new();
            for sy in 0..s {
                for sx in 0..s {
                    for step in 0..n {
                        blocks.push((sx * n + (pu + step) % n, sy * n + pu));
                    }
                }
            }
            blocks
        })
        .collect();

    let mut values: Vec<P::Value> = (0..meta.num_vertices)
        .map(|v| program.init(VertexId::new(v), &meta))
        .collect();
    let bound = program.bound();
    let mut iterations = 0;
    for _ in 0..bound.max_iterations() {
        iterations += 1;
        let snapshot = &values;
        let per_pu: Vec<Vec<P::Value>> = pu_blocks
            .iter()
            .map(|blocks| match program.mode() {
                ExecutionMode::Accumulate => {
                    let mut acc = vec![program.identity(); nv];
                    for &(src, dst) in blocks {
                        for e in grid.block_at(src, dst).edges() {
                            let msg = program.scatter(snapshot[e.src.index()], e, &meta);
                            acc[e.dst.index()] = program.merge(acc[e.dst.index()], msg);
                            if program.undirected() {
                                let msg =
                                    program.scatter(snapshot[e.dst.index()], &e.reversed(), &meta);
                                acc[e.src.index()] = program.merge(acc[e.src.index()], msg);
                            }
                        }
                    }
                    acc
                }
                ExecutionMode::Monotone => {
                    let mut local = snapshot.clone();
                    for &(src, dst) in blocks {
                        for e in grid.block_at(src, dst).edges() {
                            let msg = program.scatter(local[e.src.index()], e, &meta);
                            local[e.dst.index()] = program.merge(local[e.dst.index()], msg);
                            if program.undirected() {
                                let msg =
                                    program.scatter(local[e.dst.index()], &e.reversed(), &meta);
                                local[e.src.index()] = program.merge(local[e.src.index()], msg);
                            }
                        }
                    }
                    local
                }
            })
            .collect();

        let mut changed = false;
        match program.mode() {
            ExecutionMode::Accumulate => {
                let mut outcomes = per_pu.into_iter();
                let mut total = outcomes
                    .next()
                    .unwrap_or_else(|| vec![program.identity(); nv]);
                for acc in outcomes {
                    for (t, a) in total.iter_mut().zip(acc) {
                        *t = program.merge(*t, a);
                    }
                }
                for v in 0..nv {
                    let new = program.apply(VertexId::new(v as u32), total[v], values[v], &meta);
                    if new != values[v] {
                        changed = true;
                    }
                    values[v] = new;
                }
            }
            ExecutionMode::Monotone => {
                for local in per_pu {
                    for (v, l) in values.iter_mut().zip(local) {
                        let merged = program.merge(*v, l);
                        if merged != *v {
                            *v = merged;
                            changed = true;
                        }
                    }
                }
            }
        }
        if matches!(bound, IterationBound::Converge { .. }) && !changed {
            break;
        }
    }
    (values, iterations)
}

/// Best-of-`reps` wall-clock time of `f`, in nanoseconds.
fn time_ns<R>(reps: u32, mut f: impl FnMut() -> R) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos());
    }
    best
}

struct Measurement {
    tag: &'static str,
    legacy_ns: u128,
    new_ns: u128,
}

fn measure<P: EdgeProgram>(
    tag: &'static str,
    program: &P,
    session: &SimulationSession,
    grid: &GridGraph,
    reps: u32,
) -> Measurement {
    // Equivalence first: the baseline must agree with the engine exactly,
    // otherwise the timing comparison is meaningless.
    let (new_values, new_iters) = {
        let (report, values) = session.run_with_values(program, grid).expect("engine run");
        (values, report.iterations)
    };
    let (legacy_values, legacy_iters) = legacy_run(program, grid, session.config().num_pus);
    assert_eq!(legacy_iters, new_iters, "{tag}: iteration count drifted");
    assert_eq!(
        format!("{legacy_values:?}"),
        format!("{new_values:?}"),
        "{tag}: values drifted"
    );

    let legacy_ns = time_ns(reps, || {
        legacy_run(program, grid, session.config().num_pus).1
    });
    // The new path is timed through the public session API, so it also
    // carries flattening, plan construction and the accounting pass the
    // legacy loop omits — the comparison is conservative.
    let new_ns = time_ns(reps, || {
        session
            .run_with_values(program, grid)
            .expect("engine run")
            .0
            .iterations
    });
    eprintln!(
        "  {tag:<5} legacy {:>12} ns   new {:>12} ns   speedup {:.2}x",
        legacy_ns,
        new_ns,
        legacy_ns as f64 / new_ns as f64
    );
    Measurement {
        tag,
        legacy_ns,
        new_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".into());
    let small = std::env::var_os("HYVE_BENCH_SMALL").is_some();
    let profile = if small {
        DatasetProfile::youtube_scaled()
    } else {
        DatasetProfile::twitter_scaled()
    };
    let reps = 3;

    eprintln!(
        "hotpath report: dataset {} (seed {})",
        profile.tag,
        workloads::SEED
    );
    let graph = profile.generate(workloads::SEED);
    let cfg = workloads::configure(SystemConfig::hyve_opt(), &profile);
    let session = SimulationSession::builder(cfg)
        .build()
        .expect("preset configuration is valid");
    let bfs = Bfs::new(VertexId::new(0));
    let p = session.plan_intervals(&bfs, graph.num_vertices());
    let grid = GridGraph::partition(&graph, p).expect("benchmark grid partitions");
    eprintln!(
        "  P = {p}, N = {}, |V| = {}, |E| = {}",
        session.config().num_pus,
        graph.num_vertices(),
        graph.len()
    );

    let results = [
        measure("bfs", &bfs, &session, &grid, reps),
        measure("sssp", &Sssp::new(VertexId::new(0)), &session, &grid, reps),
        measure("cc", &ConnectedComponents::new(), &session, &grid, reps),
    ];

    // Hand-rolled JSON line (no serde in the offline dependency set).
    let mut line = String::new();
    write!(
        line,
        "{{\"schema\":\"hyve-hotpath/v1\",\"rev\":\"{}\",\"utc\":\"{}\",\"dataset\":\"{}\",\"p\":{},\"pus\":{},\"reps\":{},\"entries\":{{",
        std::env::var("HOTPATH_REV").unwrap_or_else(|_| "unknown".into()),
        std::env::var("HOTPATH_UTC").unwrap_or_else(|_| "unknown".into()),
        profile.tag,
        p,
        session.config().num_pus,
        reps,
    )
    .expect("write to String cannot fail");
    let mut log_speedup_sum = 0.0f64;
    for (i, m) in results.iter().enumerate() {
        let speedup = m.legacy_ns as f64 / m.new_ns as f64;
        log_speedup_sum += speedup.ln();
        write!(
            line,
            "{}\"{}\":{{\"legacy_ns\":{},\"new_ns\":{},\"speedup\":{:.4}}}",
            if i > 0 { "," } else { "" },
            m.tag,
            m.legacy_ns,
            m.new_ns,
            speedup,
        )
        .expect("write to String cannot fail");
    }
    let geomean = (log_speedup_sum / results.len() as f64).exp();
    write!(line, "}},\"geomean_speedup\":{geomean:.4}}}").expect("write to String cannot fail");

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open trajectory file");
    writeln!(file, "{line}").expect("append trajectory line");
    eprintln!("  geomean speedup {geomean:.2}x -> appended to {out_path}");

    // With HYVE_TRACE_DIR set, also emit a per-iteration trace artifact of
    // the measured workload so `scripts/bench_report.sh` can attach it next
    // to the trajectory (tracing is observation-only, so this re-run's
    // report is bit-identical to the timed ones).
    if let Some(dir) = std::env::var_os("HYVE_TRACE_DIR") {
        let (traced, recorder) =
            workloads::traced_session(workloads::configure(SystemConfig::hyve_opt(), &profile));
        traced.run(&bfs, &grid).expect("engine run");
        let path = std::path::Path::new(&dir).join(hyve_bench::report::artifact_name(
            traced.config().name,
            "BFS",
            profile.tag,
        ));
        std::fs::write(&path, recorder.artifact().to_jsonl()).expect("write trace artifact");
        eprintln!("  trace artifact -> {}", path.display());
    }
}
