//! Regenerates the paper's fig17 experiment. See `hyve_bench::experiments::fig17`.

fn main() {
    hyve_bench::experiments::fig17::print();
}
