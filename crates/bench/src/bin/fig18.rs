//! Regenerates the paper's fig18 experiment. See `hyve_bench::experiments::fig18`.

fn main() {
    hyve_bench::experiments::fig18::print();
}
