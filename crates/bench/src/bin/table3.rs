//! Regenerates the paper's table3 experiment. See `hyve_bench::experiments::table3`.

fn main() {
    hyve_bench::experiments::table3::print();
}
