//! Regenerates the paper's fig09 experiment. See `hyve_bench::experiments::fig09`.

fn main() {
    hyve_bench::experiments::fig09::print();
}
