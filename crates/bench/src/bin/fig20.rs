//! Regenerates the paper's fig20 experiment. See `hyve_bench::experiments::fig20`.

fn main() {
    hyve_bench::experiments::fig20::print();
}
