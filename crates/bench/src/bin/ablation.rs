//! Ablation study beyond the paper's figures: every design choice removed
//! one at a time from `acc+HyVE-opt`. See `hyve_bench::experiments::ablation`.

fn main() {
    hyve_bench::experiments::ablation::print();
}
