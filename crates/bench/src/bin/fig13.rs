//! Regenerates the paper's fig13 experiment. See `hyve_bench::experiments::fig13`.

fn main() {
    hyve_bench::experiments::fig13::print();
}
