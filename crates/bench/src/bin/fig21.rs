//! Regenerates the paper's fig21 experiment. See `hyve_bench::experiments::fig21`.

fn main() {
    hyve_bench::experiments::fig21::print();
}
