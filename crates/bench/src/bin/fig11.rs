//! Regenerates the paper's fig11 experiment. See `hyve_bench::experiments::fig11`.

fn main() {
    hyve_bench::experiments::fig11::print();
}
