//! Regenerates the paper's fig15 experiment. See `hyve_bench::experiments::fig15`.

fn main() {
    hyve_bench::experiments::fig15::print();
}
