//! Regenerates the paper's fig16 experiment. See `hyve_bench::experiments::fig16`.

fn main() {
    hyve_bench::experiments::fig16::print();
}
