//! Regenerates the paper's fig19 experiment. See `hyve_bench::experiments::fig19`.

fn main() {
    hyve_bench::experiments::fig19::print();
}
