//! Regenerates the paper's table1 experiment. See `hyve_bench::experiments::table1`.

fn main() {
    hyve_bench::experiments::table1::print();
}
