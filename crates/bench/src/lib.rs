//! # hyve-bench — experiment harness for the HyVE reproduction
//!
//! One module (and one binary) per table and figure of the paper's
//! evaluation. Each experiment returns structured rows so the binaries, the
//! `all_experiments` driver and the tests share one implementation.
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Table 1 (Navg) | [`experiments::table1`] | `table1` |
//! | Table 3 (bank configs) | [`experiments::table3`] | `table3` |
//! | Table 4 (SRAM sweep) | [`experiments::table4`] | `table4` |
//! | Fig. 9 (edge storage) | [`experiments::fig09`] | `fig09` |
//! | Fig. 10 (global vertex EDP) | [`experiments::fig10`] | `fig10` |
//! | Fig. 11 (vertex storage) | [`experiments::fig11`] | `fig11` |
//! | Fig. 12 (preprocessing vs P) | [`experiments::fig12`] | `fig12` |
//! | Fig. 13 (cell bits) | [`experiments::fig13`] | `fig13` |
//! | Fig. 14 (data sharing) | [`experiments::fig14`] | `fig14` |
//! | Fig. 15 (power gating) | [`experiments::fig15`] | `fig15` |
//! | Fig. 16 (config comparison) | [`experiments::fig16`] | `fig16` |
//! | Fig. 17 (energy breakdown) | [`experiments::fig17`] | `fig17` |
//! | Fig. 18 (absolute performance) | [`experiments::fig18`] | `fig18` |
//! | Fig. 19 (preprocessing time) | [`experiments::fig19`] | `fig19` |
//! | Fig. 20 (dynamic throughput) | [`experiments::fig20`] | `fig20` |
//! | Fig. 21 (GraphR comparison) | [`experiments::fig21`] | `fig21` |
//!
//! `cargo run -p hyve-bench --release --bin all_experiments` regenerates
//! everything in sequence.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod workloads;

pub use report::{fmt_f, print_table};
