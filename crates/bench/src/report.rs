//! Shared reporting scaffolding for the experiment regenerators.
//!
//! Every `figNN`/`tableN` module repeated the same four pieces before this
//! module existed: the fixed-width table printer, compact float formatting,
//! geometric means, and the (algorithm × dataset) measurement grid built on
//! the benchmark session plumbing (dataset scaling + `HYVE_BENCH_THREADS`).
//! They live here once; each experiment module keeps only its workload and
//! the paper's expected values.

use crate::workloads::{configure, session, Algorithm};
use hyve_core::{RunReport, SystemConfig};
use hyve_graph::{DatasetProfile, EdgeList};
use std::fmt::Display;

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table<H: Display, R: Display>(title: &str, headers: &[H], rows: &[Vec<R>]) {
    println!("\n== {title} ==");
    let header_line: Vec<String> = headers.iter().map(|h| format!("{h:>12}")).collect();
    println!("{}", header_line.join(" "));
    for row in rows {
        let line: Vec<String> = row.iter().map(|c| format!("{c:>12}")).collect();
        println!("{}", line.join(" "));
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Geometric mean of the values (`NaN` on an empty iterator, like the
/// per-figure implementations it replaces).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (sum, n) = values
        .into_iter()
        .fold((0.0f64, 0u32), |(s, n), v| (s + v.ln(), n + 1));
    (sum / f64::from(n)).exp()
}

/// Prints a measured-vs-paper ratio headline: `label: 1.62x (paper: 1.53x)`.
pub fn vs_paper_ratio(label: &str, measured: f64, paper: f64) {
    println!("{label}: {measured:.2}x (paper: {paper}x)");
}

/// Prints a measured-vs-paper percentage headline:
/// `label: 54.0% (paper: 52.91%)`.
pub fn vs_paper_pct(label: &str, measured: f64, paper: f64) {
    println!("{label}: {measured:.1}% (paper: {paper}%)");
}

/// One (algorithm, dataset) measurement of the main evaluation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// Algorithm tag.
    pub algorithm: &'static str,
    /// Dataset tag.
    pub dataset: &'static str,
    /// The figure's measured quantity (a ratio or MTEPS/W value).
    pub value: f64,
}

/// Sweeps `measure` over every (dataset, algorithm) pair of the main
/// evaluation grid — Table 2's datasets × {BFS, CC, PR} — in the row order
/// all per-dataset figures share.
pub fn core_grid(
    mut measure: impl FnMut(Algorithm, &DatasetProfile, &EdgeList) -> f64,
) -> Vec<GridRow> {
    let mut rows = Vec::new();
    for (profile, graph) in crate::workloads::datasets() {
        for alg in Algorithm::core_three() {
            rows.push(GridRow {
                algorithm: alg.tag(),
                dataset: profile.tag,
                value: measure(alg, profile, graph),
            });
        }
    }
    rows
}

/// Runs one algorithm under one configuration: applies the profile's
/// dataset scale and builds the session under the benchmark execution
/// strategy (`HYVE_BENCH_THREADS`). The single funnel every
/// configuration-grid experiment measures through.
pub fn measure(
    cfg: SystemConfig,
    alg: Algorithm,
    profile: &DatasetProfile,
    graph: &EdgeList,
) -> RunReport {
    let cfg_name = cfg.name;
    let configured = configure(cfg, profile);
    match std::env::var_os("HYVE_TRACE_DIR") {
        None => alg.run_hyve(&session(configured), profile, graph),
        Some(dir) => {
            let (traced, recorder) = crate::workloads::traced_session(configured);
            let report = alg.run_hyve(&traced, profile, graph);
            let path =
                std::path::Path::new(&dir).join(artifact_name(cfg_name, alg.tag(), profile.tag));
            if let Err(e) = std::fs::write(&path, recorder.artifact().to_jsonl()) {
                eprintln!(
                    "warning: trace artifact {} not written: {e}",
                    path.display()
                );
            }
            report
        }
    }
}

/// Filesystem-safe artifact filename for one measurement:
/// `<config>_<alg>_<dataset>.jsonl`, lowercased with non-alphanumerics
/// folded to `-` (config names contain `+`).
pub fn artifact_name(cfg: &str, alg: &str, dataset: &str) -> String {
    let clean = |s: &str| -> String {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect()
    };
    format!("{}_{}_{}.jsonl", clean(cfg), clean(alg), clean(dataset))
}

/// Prints a [`GridRow`] table with the shared alg/dataset columns.
pub fn print_grid(title: &str, value_header: &str, rows: &[GridRow]) {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.dataset.to_string(),
                fmt_f(r.value),
            ]
        })
        .collect();
    print_table(title, &["alg", "dataset", value_header], &cells);
}

/// Geometric mean of the rows carrying the given algorithm tag.
pub fn geomean_by_algorithm(rows: &[GridRow], tag: &str) -> f64 {
    geomean(rows.iter().filter(|r| r.algorithm == tag).map(|r| r.value))
}

/// Geometric mean across all rows.
pub fn overall_geomean(rows: &[GridRow]) -> f64 {
    geomean(rows.iter().map(|r| r.value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12, "got {g}");
        assert!(geomean([]).is_nan());
    }

    #[test]
    fn grid_helpers_filter_by_algorithm() {
        let rows = vec![
            GridRow {
                algorithm: "PR",
                dataset: "YT",
                value: 2.0,
            },
            GridRow {
                algorithm: "PR",
                dataset: "WK",
                value: 8.0,
            },
            GridRow {
                algorithm: "BFS",
                dataset: "YT",
                value: 100.0,
            },
        ];
        assert!((geomean_by_algorithm(&rows, "PR") - 4.0).abs() < 1e-12);
        assert!((overall_geomean(&rows) - (2.0f64 * 8.0 * 100.0).cbrt()).abs() < 1e-9);
    }

    #[test]
    fn artifact_names_are_filesystem_safe() {
        assert_eq!(
            artifact_name("acc+HyVE-opt", "PR", "YT"),
            "acc-hyve-opt_pr_yt.jsonl"
        );
    }

    #[test]
    fn measure_emits_artifact_when_trace_dir_set() {
        std::env::set_var("HYVE_BENCH_SMALL", "1");
        let dir = std::env::temp_dir().join("hyve-bench-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("HYVE_TRACE_DIR", &dir);
        let (profile, graph) = &crate::workloads::datasets()[0];
        let report = measure(SystemConfig::hyve_opt(), Algorithm::Bfs, profile, graph);
        std::env::remove_var("HYVE_TRACE_DIR");
        let path = dir.join(artifact_name("acc+HyVE-opt", "BFS", profile.tag));
        let text = std::fs::read_to_string(&path).expect("artifact written");
        let artifact = hyve_core::TraceArtifact::from_jsonl(&text).expect("artifact parses");
        assert_eq!(artifact.iterations_total, report.iterations);
        assert_eq!(artifact.edges_processed, report.edges_processed);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(123.4), "123");
        assert_eq!(fmt_f(1.234), "1.23");
        assert_eq!(fmt_f(0.1234), "0.123");
    }
}
