//! Fig. 11: whole-vertex-storage comparison GraphR/HyVE — global
//! read/write counts, delay, energy, EDP (4 Gb chips, 2 MB SRAM), evaluated
//! at original dataset scale like Fig. 10.

use super::fig10::original_scale_intervals;
use crate::workloads::datasets;
use hyve_graph::block_sparsity;
use hyve_model::vertex_storage::VertexWorkload;
use hyve_model::vertex_storage_comparison;

/// One dataset's GraphR/HyVE ratios (the quantities the paper plots).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dataset tag.
    pub dataset: &'static str,
    /// Global sequential read count ratio.
    pub read_count_ratio: f64,
    /// Global sequential write count ratio.
    pub write_count_ratio: f64,
    /// Total vertex-storage delay ratio.
    pub delay_ratio: f64,
    /// Total vertex-storage energy ratio.
    pub energy_ratio: f64,
    /// Total vertex-storage EDP ratio.
    pub edp_ratio: f64,
}

/// Runs the comparison for every dataset, at original scale (like Fig. 10,
/// this is an analytic model over Eq. 7–9 traffic counts).
pub fn run() -> Vec<Row> {
    datasets()
        .iter()
        .map(|(profile, graph)| {
            let navg = block_sparsity(graph, 8).avg_edges_per_block.max(1.0);
            let nv = profile.original_vertices;
            let ne = profile.original_edges;
            let neb = (ne as f64 / navg) as u64;
            let p = original_scale_intervals(nv);
            let (hyve, graphr) = vertex_storage_comparison(VertexWorkload {
                num_vertices: nv,
                num_edges: ne,
                non_empty_blocks: neb,
                hyve_intervals: p,
                pus: 8,
            });
            Row {
                dataset: profile.tag,
                read_count_ratio: graphr.global_reads as f64 / hyve.global_reads as f64,
                write_count_ratio: graphr.global_writes as f64 / hyve.global_writes as f64,
                delay_ratio: graphr.total.time / hyve.total.time,
                energy_ratio: graphr.total.energy / hyve.total.energy,
                edp_ratio: (graphr.total.time.as_ns() * graphr.total.energy.as_pj())
                    / (hyve.total.time.as_ns() * hyve.total.energy.as_pj()),
            }
        })
        .collect()
}

/// Prints the figure's series.
pub fn print() {
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                crate::report::fmt_f(r.read_count_ratio),
                crate::report::fmt_f(r.write_count_ratio),
                crate::report::fmt_f(r.delay_ratio),
                crate::report::fmt_f(r.energy_ratio),
                crate::report::fmt_f(r.edp_ratio),
            ]
        })
        .collect();
    crate::report::print_table(
        "Fig. 11: vertex storage GraphR/HyVE ratios (>1 favours HyVE)",
        &["dataset", "reads", "writes", "delay", "energy", "EDP"],
        &rows,
    );
}
