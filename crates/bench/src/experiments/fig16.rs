//! Fig. 16: energy efficiency (MTEPS/W) across the seven system
//! configurations (two CPU baselines, five accelerator hierarchies) for
//! BFS, CC and PR on every dataset.

use crate::report;
use crate::workloads::{datasets, Algorithm};
use hyve_baselines::CpuSystem;
use hyve_core::SystemConfig;

/// Configuration labels in the paper's legend order.
pub const CONFIGS: [&str; 7] = [
    "CPU+DRAM",
    "CPU+DRAM-opt",
    "acc+DRAM",
    "acc+ReRAM",
    "acc+SRAM+DRAM",
    "acc+HyVE",
    "acc+HyVE-opt",
];

/// One (algorithm, dataset) line across all configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Algorithm tag.
    pub algorithm: &'static str,
    /// Dataset tag.
    pub dataset: &'static str,
    /// MTEPS/W per entry of [`CONFIGS`].
    pub mteps_per_watt: [f64; 7],
}

impl Row {
    /// HyVE-opt's improvement over a named configuration.
    pub fn improvement_over(&self, config: &str) -> f64 {
        let idx = CONFIGS
            .iter()
            .position(|c| *c == config)
            .expect("unknown configuration");
        self.mteps_per_watt[6] / self.mteps_per_watt[idx]
    }
}

/// Runs the grid. CPU baselines charge the same edge-iteration workload the
/// accelerator processes (iterations × edges).
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for (profile, graph) in datasets() {
        for alg in Algorithm::core_three() {
            let mut eff = [0.0f64; 7];
            let acc_configs = [
                SystemConfig::acc_dram(),
                SystemConfig::acc_reram(),
                SystemConfig::acc_sram_dram(),
                SystemConfig::hyve(),
                SystemConfig::hyve_opt(),
            ];
            let mut edges_processed = 0;
            for (i, cfg) in acc_configs.into_iter().enumerate() {
                let report = report::measure(cfg, alg, profile, graph);
                edges_processed = report.edges_processed;
                eff[2 + i] = report.mteps_per_watt();
            }
            eff[0] = CpuSystem::nxgraph_like().mteps_per_watt(edges_processed);
            eff[1] = CpuSystem::galois_like().mteps_per_watt(edges_processed);
            rows.push(Row {
                algorithm: alg.tag(),
                dataset: profile.tag,
                mteps_per_watt: eff,
            });
        }
    }
    rows
}

/// Geometric mean of HyVE-opt's improvement over a configuration.
pub fn mean_improvement(rows: &[Row], config: &str) -> f64 {
    report::geomean(rows.iter().map(|r| r.improvement_over(config)))
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut c = vec![r.algorithm.to_string(), r.dataset.to_string()];
            c.extend(r.mteps_per_watt.iter().map(|&v| report::fmt_f(v)));
            c
        })
        .collect();
    let mut headers = vec!["alg", "dataset"];
    headers.extend(CONFIGS);
    report::print_table("Fig. 16: MTEPS/W by configuration", &headers, &cells);
    for (cfg, paper) in [
        ("CPU+DRAM", 145.71),
        ("acc+DRAM", 5.90),
        ("acc+ReRAM", 4.54),
        ("acc+SRAM+DRAM", 2.00),
    ] {
        report::vs_paper_ratio(
            &format!("HyVE-opt vs {cfg}"),
            mean_improvement(&rows, cfg),
            paper,
        );
    }
}
