//! Fig. 19: preprocessing-time ratio GraphR/HyVE (paper: 6.73× on average).
//!
//! Both preprocessors are real code paths measured by wall clock: HyVE's
//! dense counting-sort into its planned P×P grid versus GraphR's
//! associative build of `⌈V/8⌉²` logical 8×8 blocks.

use crate::report;
use crate::workloads::{configure, datasets, session};
use hyve_algorithms::PageRank;
use hyve_core::SystemConfig;
use hyve_graph::GridGraph;
use std::time::Instant;

/// One dataset's preprocessing-time ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dataset tag.
    pub dataset: &'static str,
    /// HyVE preprocessing time (seconds).
    pub hyve_s: f64,
    /// GraphR preprocessing time (seconds).
    pub graphr_s: f64,
    /// GraphR / HyVE ratio.
    pub ratio: f64,
}

fn best_of<F: FnMut()>(mut f: F) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures both preprocessors for every dataset.
pub fn run() -> Vec<Row> {
    datasets()
        .iter()
        .map(|(profile, graph)| {
            let engine = session(configure(SystemConfig::hyve(), profile));
            let p = engine.plan_intervals(&PageRank::new(10), graph.num_vertices());
            let hyve_s = best_of(|| {
                let grid = GridGraph::partition(graph, p).expect("partition");
                assert_eq!(grid.num_edges(), graph.len() as u64);
            });
            let graphr_s = best_of(|| {
                let layout = hyve_graphr::preprocess(graph);
                assert_eq!(layout.num_edges(), graph.len() as u64);
            });
            Row {
                dataset: profile.tag,
                hyve_s,
                graphr_s,
                ratio: graphr_s / hyve_s,
            }
        })
        .collect()
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{:.4}s", r.hyve_s),
                format!("{:.4}s", r.graphr_s),
                report::fmt_f(r.ratio),
            ]
        })
        .collect();
    report::print_table(
        "Fig. 19: preprocessing time GraphR/HyVE",
        &["dataset", "HyVE", "GraphR", "ratio"],
        &cells,
    );
    report::vs_paper_ratio(
        "mean ratio",
        report::geomean(rows.iter().map(|r| r.ratio)),
        6.73,
    );
}
