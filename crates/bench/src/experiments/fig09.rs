//! Fig. 9: normalized DRAM/ReRAM performance (delay, energy, EDP) for
//! sequential-read, sequential-write and 50/50 access mixes at 4/8/16 Gb.

use hyve_model::{compare_edge_storage, AccessPattern};

/// Densities of the paper's sweep.
pub const DENSITIES: [u32; 3] = [4, 8, 16];

/// One (pattern, density) point.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Access mix.
    pub pattern: AccessPattern,
    /// Chip density (Gbit).
    pub density_gbit: u32,
    /// DRAM/ReRAM delay ratio.
    pub delay: f64,
    /// DRAM/ReRAM energy ratio.
    pub energy: f64,
    /// DRAM/ReRAM EDP ratio.
    pub edp: f64,
}

/// Runs the full pattern × density grid.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for pattern in AccessPattern::all() {
        for density in DENSITIES {
            let c = compare_edge_storage(density, pattern);
            rows.push(Row {
                pattern,
                density_gbit: density,
                delay: c.delay_ratio,
                energy: c.energy_ratio,
                edp: c.edp_ratio,
            });
        }
    }
    rows
}

fn pattern_name(p: AccessPattern) -> &'static str {
    match p {
        AccessPattern::SequentialRead => "SeqRead100",
        AccessPattern::SequentialWrite => "SeqWrite100",
        AccessPattern::Mixed => "Seq50/50",
    }
}

/// Prints the figure's series.
pub fn print() {
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                pattern_name(r.pattern).to_string(),
                format!("{}Gb", r.density_gbit),
                crate::report::fmt_f(r.delay),
                crate::report::fmt_f(r.energy),
                crate::report::fmt_f(r.edp),
            ]
        })
        .collect();
    crate::report::print_table(
        "Fig. 9: normalized DRAM/ReRAM (ratio > 1 favours ReRAM)",
        &["pattern", "density", "delay", "energy", "EDP"],
        &rows,
    );
}
