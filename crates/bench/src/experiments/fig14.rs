//! Fig. 14: energy-efficiency improvement from data sharing, per algorithm
//! and dataset. Baseline: sharing disabled — every step reloads source
//! intervals from the global vertex memory.
//!
//! Paper averages: BFS 1.15×, CC 1.47×, PR 2.19× (1.60× overall) — PR's
//! wider vertices move the most data, so it benefits the most.

use crate::workloads::{configure, datasets, session, Algorithm};
use hyve_core::SystemConfig;

/// One (algorithm, dataset) improvement factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Algorithm tag.
    pub algorithm: &'static str,
    /// Dataset tag.
    pub dataset: &'static str,
    /// MTEPS/W with sharing over MTEPS/W without.
    pub improvement: f64,
}

/// Runs the comparison grid.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for (profile, graph) in &datasets() {
        for alg in Algorithm::core_three() {
            let base_cfg = configure(SystemConfig::hyve().with_data_sharing(false), profile);
            let shared_cfg = configure(SystemConfig::hyve(), profile);
            let base = alg.run_hyve(&session(base_cfg), graph).mteps_per_watt();
            let shared = alg.run_hyve(&session(shared_cfg), graph).mteps_per_watt();
            rows.push(Row {
                algorithm: alg.tag(),
                dataset: profile.tag,
                improvement: shared / base,
            });
        }
    }
    rows
}

/// Geometric-mean improvement per algorithm, in BFS/CC/PR order.
pub fn mean_by_algorithm(rows: &[Row]) -> Vec<(&'static str, f64)> {
    ["BFS", "CC", "PR"]
        .iter()
        .map(|tag| {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.algorithm == *tag)
                .map(|r| r.improvement)
                .collect();
            let gm = vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64;
            (*tag, gm.exp())
        })
        .collect()
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.dataset.to_string(),
                crate::fmt_f(r.improvement),
            ]
        })
        .collect();
    crate::print_table(
        "Fig. 14: data-sharing improvement (MTEPS/W ratio)",
        &["alg", "dataset", "improvement"],
        &cells,
    );
    for (alg, mean) in mean_by_algorithm(&rows) {
        println!("{alg} mean: {:.2}x", mean);
    }
}
