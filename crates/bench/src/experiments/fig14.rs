//! Fig. 14: energy-efficiency improvement from data sharing, per algorithm
//! and dataset. Baseline: sharing disabled — every step reloads source
//! intervals from the global vertex memory.
//!
//! Paper averages: BFS 1.15×, CC 1.47×, PR 2.19× (1.60× overall) — PR's
//! wider vertices move the most data, so it benefits the most.

use crate::report::{self, GridRow};
use hyve_core::SystemConfig;

/// One (algorithm, dataset) improvement factor: MTEPS/W with sharing over
/// MTEPS/W without (in `value`).
pub type Row = GridRow;

/// Runs the comparison grid.
pub fn run() -> Vec<Row> {
    report::core_grid(|alg, profile, graph| {
        let base = report::measure(
            SystemConfig::hyve().with_data_sharing(false),
            alg,
            profile,
            graph,
        )
        .mteps_per_watt();
        let shared = report::measure(SystemConfig::hyve(), alg, profile, graph).mteps_per_watt();
        shared / base
    })
}

/// Geometric-mean improvement per algorithm, in BFS/CC/PR order.
pub fn mean_by_algorithm(rows: &[Row]) -> Vec<(&'static str, f64)> {
    ["BFS", "CC", "PR"]
        .iter()
        .map(|tag| (*tag, report::geomean_by_algorithm(rows, tag)))
        .collect()
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    report::print_grid(
        "Fig. 14: data-sharing improvement (MTEPS/W ratio)",
        "improvement",
        &rows,
    );
    let paper = [("BFS", 1.15), ("CC", 1.47), ("PR", 2.19)];
    for ((alg, mean), (_, expected)) in mean_by_algorithm(&rows).into_iter().zip(paper) {
        report::vs_paper_ratio(&format!("{alg} mean"), mean, expected);
    }
}
