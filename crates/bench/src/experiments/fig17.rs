//! Fig. 17: energy-consumption breakdown (logic / edge memory / vertex
//! memory) for acc+SRAM+DRAM (SD), acc+HyVE and acc+HyVE-opt.
//!
//! The paper's takeaways: memory is 88.62% of SD's energy, 75.68% of
//! HyVE's, 52.91% of opt's; the edge-memory bar is what collapses.

use crate::report;
use crate::workloads::{datasets, Algorithm};
use hyve_core::SystemConfig;

/// One (config, algorithm, dataset) breakdown, in percent.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Configuration label ("SD", "HyVE", "opt").
    pub config: &'static str,
    /// Algorithm tag.
    pub algorithm: &'static str,
    /// Dataset tag.
    pub dataset: &'static str,
    /// Percent of energy in logic.
    pub logic_pct: f64,
    /// Percent of energy in edge memory.
    pub edge_pct: f64,
    /// Percent of energy in vertex memory (on-chip + off-chip).
    pub vertex_pct: f64,
}

impl Row {
    /// Memory (edge + vertex) share of total energy.
    pub fn memory_pct(&self) -> f64 {
        self.edge_pct + self.vertex_pct
    }
}

/// Runs the three-configuration breakdown grid.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    let configs: [(&'static str, SystemConfig); 3] = [
        ("SD", SystemConfig::acc_sram_dram()),
        ("HyVE", SystemConfig::hyve()),
        ("opt", SystemConfig::hyve_opt()),
    ];
    for (label, cfg) in configs {
        for (profile, graph) in datasets() {
            for alg in Algorithm::core_three() {
                let report = report::measure(cfg.clone(), alg, profile, graph);
                let total = report.energy().as_pj();
                let b = &report.breakdown;
                rows.push(Row {
                    config: label,
                    algorithm: alg.tag(),
                    dataset: profile.tag,
                    logic_pct: 100.0 * b.logic.total_energy().as_pj() / total,
                    edge_pct: 100.0 * b.edge_memory.total_energy().as_pj() / total,
                    vertex_pct: 100.0 * b.vertex_memory().as_pj() / total,
                });
            }
        }
    }
    rows
}

/// Mean memory share for a configuration label.
pub fn mean_memory_pct(rows: &[Row], config: &str) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| r.config == config)
        .map(Row::memory_pct)
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                r.algorithm.to_string(),
                r.dataset.to_string(),
                report::fmt_f(r.logic_pct),
                report::fmt_f(r.edge_pct),
                report::fmt_f(r.vertex_pct),
            ]
        })
        .collect();
    report::print_table(
        "Fig. 17: energy breakdown (%)",
        &["config", "alg", "dataset", "logic", "edge", "vertex"],
        &cells,
    );
    for (label, paper) in [("SD", 88.62), ("HyVE", 75.68), ("opt", 52.91)] {
        report::vs_paper_pct(
            &format!("{label} memory share"),
            mean_memory_pct(&rows, label),
            paper,
        );
    }
}
