//! Fig. 18: absolute system performance — execution-time ratio SD/HyVE.
//!
//! The paper's point: swapping DRAM edge memory for ReRAM costs almost
//! nothing in raw performance (geometric-mean slowdowns of 1.9%, 2.5% and
//! 15.1% for BFS, CC, PR).

use crate::report::{self, GridRow};
use hyve_core::SystemConfig;

/// One (algorithm, dataset) performance ratio: `time(SD) / time(HyVE)` in
/// `value` — ≤ 1 means HyVE is (slightly) slower.
pub type Row = GridRow;

/// Runs the comparison grid.
pub fn run() -> Vec<Row> {
    report::core_grid(|alg, profile, graph| {
        let sd = report::measure(SystemConfig::acc_sram_dram(), alg, profile, graph).elapsed();
        let hyve = report::measure(SystemConfig::hyve(), alg, profile, graph).elapsed();
        sd / hyve
    })
}

/// Geometric-mean slowdown (1 − ratio) per algorithm tag.
pub fn mean_slowdown(rows: &[Row], alg: &str) -> f64 {
    1.0 - report::geomean_by_algorithm(rows, alg)
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    report::print_grid(
        "Fig. 18: execution time ratio SD/HyVE (1.0 = parity)",
        "SD/HyVE",
        &rows,
    );
    for (alg, paper) in [("BFS", 1.9), ("CC", 2.5), ("PR", 15.1)] {
        report::vs_paper_pct(
            &format!("{alg} slowdown"),
            100.0 * mean_slowdown(&rows, alg),
            paper,
        );
    }
}
