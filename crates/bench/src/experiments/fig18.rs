//! Fig. 18: absolute system performance — execution-time ratio SD/HyVE.
//!
//! The paper's point: swapping DRAM edge memory for ReRAM costs almost
//! nothing in raw performance (geometric-mean slowdowns of 1.9%, 2.5% and
//! 15.1% for BFS, CC, PR).

use crate::workloads::{configure, datasets, session, Algorithm};
use hyve_core::SystemConfig;

/// One (algorithm, dataset) performance ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Algorithm tag.
    pub algorithm: &'static str,
    /// Dataset tag.
    pub dataset: &'static str,
    /// `time(SD) / time(HyVE)` — ≤ 1 means HyVE is (slightly) slower.
    pub sd_over_hyve: f64,
}

/// Runs the comparison grid.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for (profile, graph) in &datasets() {
        for alg in Algorithm::core_three() {
            let sd = alg
                .run_hyve(
                    &session(configure(SystemConfig::acc_sram_dram(), profile)),
                    graph,
                )
                .elapsed();
            let hyve = alg
                .run_hyve(&session(configure(SystemConfig::hyve(), profile)), graph)
                .elapsed();
            rows.push(Row {
                algorithm: alg.tag(),
                dataset: profile.tag,
                sd_over_hyve: sd / hyve,
            });
        }
    }
    rows
}

/// Geometric-mean slowdown (1 − ratio) per algorithm tag.
pub fn mean_slowdown(rows: &[Row], alg: &str) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| r.algorithm == alg)
        .map(|r| r.sd_over_hyve.ln())
        .collect();
    1.0 - (vals.iter().sum::<f64>() / vals.len() as f64).exp()
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.dataset.to_string(),
                crate::fmt_f(r.sd_over_hyve),
            ]
        })
        .collect();
    crate::print_table(
        "Fig. 18: execution time ratio SD/HyVE (1.0 = parity)",
        &["alg", "dataset", "SD/HyVE"],
        &cells,
    );
    for (alg, paper) in [("BFS", 1.9), ("CC", 2.5), ("PR", 15.1)] {
        println!(
            "{alg} slowdown: {:.1}% (paper: {paper}%)",
            100.0 * mean_slowdown(&rows, alg)
        );
    }
}
