//! Table 3: ReRAM bank power under different configurations — the design
//! decision that picks the 512-bit energy-optimized bank.

use hyve_memsim::reram::TABLE3_PROFILES;
use hyve_memsim::{OptimizationTarget, ReramBankProfile};

/// One bank configuration's figures.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Optimization target.
    pub target: OptimizationTarget,
    /// Output width in bits.
    pub output_bits: u32,
    /// Energy per read access (pJ).
    pub energy_pj: f64,
    /// Working period (ps).
    pub period_ps: f64,
    /// Power per bit (mW/bit) — the ranking metric.
    pub power_per_bit_mw: f64,
}

/// All eight Table 3 rows.
pub fn run() -> Vec<Row> {
    TABLE3_PROFILES
        .iter()
        .map(|(target, p): &(OptimizationTarget, ReramBankProfile)| Row {
            target: *target,
            output_bits: p.output_bits,
            energy_pj: p.read_energy.as_pj(),
            period_ps: p.period.as_ps(),
            power_per_bit_mw: p.power_per_bit().as_mw(),
        })
        .collect()
}

/// The configuration every later experiment adopts (lowest power/bit).
pub fn chosen() -> Row {
    run()
        .into_iter()
        .min_by(|a, b| a.power_per_bit_mw.total_cmp(&b.power_per_bit_mw))
        .expect("table is non-empty")
}

/// Prints the table.
pub fn print() {
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                r.target.to_string(),
                format!("{}bits", r.output_bits),
                crate::report::fmt_f(r.energy_pj),
                crate::report::fmt_f(r.period_ps),
                crate::report::fmt_f(r.power_per_bit_mw),
            ]
        })
        .collect();
    crate::report::print_table(
        "Table 3: bank configurations (energy pJ / period ps / mW per bit)",
        &["target", "width", "energy", "period", "mW/bit"],
        &rows,
    );
    let c = chosen();
    println!(
        "chosen: {} {} bits ({} mW/bit)",
        c.target,
        c.output_bits,
        crate::report::fmt_f(c.power_per_bit_mw)
    );
}
