//! Fig. 15: energy-efficiency improvement from bank-level power gating,
//! per algorithm and dataset (paper average: 1.53× over acc+HyVE).

use crate::report::{self, GridRow};
use hyve_core::SystemConfig;

/// One (algorithm, dataset) improvement factor: MTEPS/W with gating over
/// MTEPS/W without (in `value`).
pub type Row = GridRow;

/// Runs the comparison grid.
pub fn run() -> Vec<Row> {
    report::core_grid(|alg, profile, graph| {
        let base = report::measure(SystemConfig::hyve(), alg, profile, graph).mteps_per_watt();
        let gated = report::measure(SystemConfig::hyve_opt(), alg, profile, graph).mteps_per_watt();
        gated / base
    })
}

/// Geometric-mean improvement across all rows.
pub fn overall_mean(rows: &[Row]) -> f64 {
    report::overall_geomean(rows)
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    report::print_grid(
        "Fig. 15: power-gating improvement (MTEPS/W ratio)",
        "improvement",
        &rows,
    );
    report::vs_paper_ratio("overall mean", overall_mean(&rows), 1.53);
}
