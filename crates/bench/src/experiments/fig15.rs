//! Fig. 15: energy-efficiency improvement from bank-level power gating,
//! per algorithm and dataset (paper average: 1.53× over acc+HyVE).

use crate::workloads::{configure, datasets, session, Algorithm};
use hyve_core::SystemConfig;

/// One (algorithm, dataset) improvement factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Algorithm tag.
    pub algorithm: &'static str,
    /// Dataset tag.
    pub dataset: &'static str,
    /// MTEPS/W with gating over MTEPS/W without.
    pub improvement: f64,
}

/// Runs the comparison grid.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for (profile, graph) in &datasets() {
        for alg in Algorithm::core_three() {
            let base = alg
                .run_hyve(&session(configure(SystemConfig::hyve(), profile)), graph)
                .mteps_per_watt();
            let gated = alg
                .run_hyve(
                    &session(configure(SystemConfig::hyve_opt(), profile)),
                    graph,
                )
                .mteps_per_watt();
            rows.push(Row {
                algorithm: alg.tag(),
                dataset: profile.tag,
                improvement: gated / base,
            });
        }
    }
    rows
}

/// Geometric-mean improvement across all rows.
pub fn overall_mean(rows: &[Row]) -> f64 {
    let gm = rows.iter().map(|r| r.improvement.ln()).sum::<f64>() / rows.len() as f64;
    gm.exp()
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.dataset.to_string(),
                crate::fmt_f(r.improvement),
            ]
        })
        .collect();
    crate::print_table(
        "Fig. 15: power-gating improvement (MTEPS/W ratio)",
        &["alg", "dataset", "improvement"],
        &cells,
    );
    println!("overall mean: {:.2}x (paper: 1.53x)", overall_mean(&rows));
}
