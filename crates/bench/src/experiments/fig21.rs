//! Fig. 21: overall GraphR/HyVE comparison — delay, energy and EDP for all
//! five algorithms (paper: HyVE 5.12× faster, 2.83× less energy, 17.63×
//! lower EDP on average).

use crate::report;
use crate::workloads::{configure, datasets, session, Algorithm};
use hyve_core::SystemConfig;
use hyve_graphr::GraphrEngine;

/// One (algorithm, dataset) ratio triple (GraphR / HyVE; > 1 favours HyVE).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Algorithm tag.
    pub algorithm: &'static str,
    /// Dataset tag.
    pub dataset: &'static str,
    /// Delay ratio.
    pub delay: f64,
    /// Energy ratio.
    pub energy: f64,
    /// EDP ratio.
    pub edp: f64,
}

/// Runs the five-algorithm grid.
pub fn run() -> Vec<Row> {
    let graphr = GraphrEngine::new();
    let mut rows = Vec::new();
    for (profile, graph) in datasets() {
        let hyve = session(configure(SystemConfig::hyve(), profile));
        for alg in Algorithm::all_five() {
            let h = alg.run_hyve(&hyve, profile, graph);
            let g = alg.run_graphr(&graphr, graph);
            rows.push(Row {
                algorithm: alg.tag(),
                dataset: profile.tag,
                delay: g.elapsed() / h.elapsed(),
                energy: g.energy() / h.energy(),
                edp: g.edp().as_pj_ns() / h.edp().as_pj_ns(),
            });
        }
    }
    rows
}

/// Geometric means across all rows: (delay, energy, edp).
pub fn means(rows: &[Row]) -> (f64, f64, f64) {
    let gm = |f: fn(&Row) -> f64| report::geomean(rows.iter().map(f));
    (gm(|r| r.delay), gm(|r| r.energy), gm(|r| r.edp))
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.dataset.to_string(),
                report::fmt_f(r.delay),
                report::fmt_f(r.energy),
                report::fmt_f(r.edp),
            ]
        })
        .collect();
    report::print_table(
        "Fig. 21: GraphR/HyVE ratios (>1 favours HyVE)",
        &["alg", "dataset", "delay", "energy", "EDP"],
        &cells,
    );
    let (d, e, x) = means(&rows);
    report::vs_paper_ratio("mean delay", d, 5.12);
    report::vs_paper_ratio("mean energy", e, 2.83);
    report::vs_paper_ratio("mean EDP", x, 17.63);
}
