//! Fig. 10: normalized EDP (DRAM/ReRAM) of the *global vertex memory* under
//! the HyVE and GraphR partitioning policies, per dataset, at 4/8/16 Gb.
//!
//! This experiment is purely analytic (Eq. 7–9 traffic counts through the
//! device models), so it uses the **original** dataset sizes: vertex counts
//! from Table 2 and non-empty-block counts extrapolated from the measured
//! Navg. The paper's observation to reproduce: HyVE's modest read:write mix
//! leans DRAM, GraphR's read-dominated mix leans ReRAM.

use crate::workloads::datasets;
use hyve_graph::block_sparsity;
use hyve_model::{global_vertex_edp_ratio, PartitionPolicy};

/// Plans HyVE's interval count at original scale: 2·N intervals of 32-bit
/// vertex records resident in the paper's 2 MB SRAM.
pub fn original_scale_intervals(num_vertices: u64) -> u32 {
    const SRAM_BYTES: u64 = 2 * 1024 * 1024;
    const BYTES_PER_VERTEX: u64 = 4;
    let needed = 2 * 8 * num_vertices * BYTES_PER_VERTEX;
    let p = needed.div_ceil(SRAM_BYTES).max(1) as u32;
    p.div_ceil(8) * 8
}

/// One (dataset, density) point: the DRAM/ReRAM EDP ratio for each policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dataset tag.
    pub dataset: &'static str,
    /// Chip density (Gbit).
    pub density_gbit: u32,
    /// DRAM/ReRAM EDP ratio under GraphR partitioning.
    pub graphr_ratio: f64,
    /// DRAM/ReRAM EDP ratio under HyVE partitioning.
    pub hyve_ratio: f64,
}

/// Runs the sweep at original dataset scale. Navg (which fixes GraphR's
/// non-empty-block count per edge) comes from the scaled graph — it is a
/// degree-distribution property preserved by the R-MAT profiles.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for (profile, graph) in datasets() {
        let navg = block_sparsity(graph, 8).avg_edges_per_block.max(1.0);
        let nv = profile.original_vertices;
        let neb = (profile.original_edges as f64 / navg) as u64;
        let p = original_scale_intervals(nv);
        for density in super::fig09::DENSITIES {
            rows.push(Row {
                dataset: profile.tag,
                density_gbit: density,
                graphr_ratio: global_vertex_edp_ratio(
                    PartitionPolicy::GraphR {
                        non_empty_blocks: neb,
                    },
                    nv,
                    density,
                ),
                hyve_ratio: global_vertex_edp_ratio(
                    PartitionPolicy::Hyve {
                        intervals: p,
                        pus: 8,
                    },
                    nv,
                    density,
                ),
            });
        }
    }
    rows
}

/// Prints the figure's series.
pub fn print() {
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{}Gb", r.density_gbit),
                crate::report::fmt_f(r.graphr_ratio),
                crate::report::fmt_f(r.hyve_ratio),
            ]
        })
        .collect();
    crate::report::print_table(
        "Fig. 10: global vertex memory EDP ratio DRAM/ReRAM (>1 favours ReRAM)",
        &["dataset", "density", "GraphR", "HyVE"],
        &rows,
    );
}
