//! Table 4: energy efficiency (MTEPS/W) sweeping SRAM capacity
//! {2, 4, 8, 16 MB} × {± power gating} × {± data sharing} for BFS/CC/PR on
//! every dataset — the design-space exploration behind the paper's SRAM
//! sweet-spot conclusion.

use crate::report;
use crate::workloads::{datasets, Algorithm};
use hyve_core::SystemConfig;

/// SRAM capacities of the paper's sweep.
pub const SRAM_MB: [u64; 4] = [2, 4, 8, 16];

/// One (algorithm, dataset) line across the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Algorithm tag.
    pub algorithm: &'static str,
    /// Dataset tag.
    pub dataset: &'static str,
    /// Power gating enabled.
    pub power_gating: bool,
    /// Data sharing enabled.
    pub data_sharing: bool,
    /// MTEPS/W at each capacity in [`SRAM_MB`] order.
    pub mteps_per_watt: [f64; 4],
}

impl Row {
    /// The capacity (MB) with the best efficiency.
    pub fn sweet_spot_mb(&self) -> u64 {
        let (i, _) = self
            .mteps_per_watt
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        SRAM_MB[i]
    }
}

/// Runs the full sweep.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for (profile, graph) in datasets() {
        for alg in Algorithm::core_three() {
            for gating in [false, true] {
                for sharing in [false, true] {
                    let mut eff = [0.0f64; 4];
                    for (i, mb) in SRAM_MB.iter().enumerate() {
                        let cfg = SystemConfig::hyve()
                            .with_sram_mb(*mb)
                            .with_data_sharing(sharing)
                            .with_power_gating(gating);
                        eff[i] = report::measure(cfg, alg, profile, graph).mteps_per_watt();
                    }
                    rows.push(Row {
                        algorithm: alg.tag(),
                        dataset: profile.tag,
                        power_gating: gating,
                        data_sharing: sharing,
                        mteps_per_watt: eff,
                    });
                }
            }
        }
    }
    rows
}

/// Prints the table grouped like the paper's four column blocks.
pub fn print() {
    let rows = run();
    for (gating, sharing, label) in [
        (false, false, "w/o power-gating, w/o sharing"),
        (false, true, "w/o power-gating, w/ sharing"),
        (true, false, "w/ power-gating, w/o sharing"),
        (true, true, "w/ power-gating, w/ sharing"),
    ] {
        let block: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| r.power_gating == gating && r.data_sharing == sharing)
            .map(|r| {
                let mut cells = vec![r.algorithm.to_string(), r.dataset.to_string()];
                cells.extend(r.mteps_per_watt.iter().map(|&v| report::fmt_f(v)));
                cells.push(format!("{}MB", r.sweet_spot_mb()));
                cells
            })
            .collect();
        report::print_table(
            &format!("Table 4 ({label}): MTEPS/W vs SRAM size"),
            &["alg", "dataset", "2MB", "4MB", "8MB", "16MB", "best"],
            &block,
        );
    }
}
