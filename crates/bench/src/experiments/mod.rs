//! One module per paper table/figure; each exposes `run()` returning
//! structured rows and `print()` for the CLI binaries.

pub mod ablation;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod table1;
pub mod table3;
pub mod table4;
