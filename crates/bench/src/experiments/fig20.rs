//! Fig. 20: dynamic-graph update throughput (million edges changed per
//! second, single thread) — HyVE's reserved-slack O(1) updates versus
//! GraphR's associative fine-grained layout (paper: 8.04× in HyVE's
//! favour, up to ~47 M edges/s).
//!
//! The request mix follows §7.4.2: 45% add-edge, 45% delete-edge,
//! 5% add-vertex, 5% delete-vertex.

use crate::workloads::{datasets, SEED};
use hyve_graph::{DynamicGrid, Edge, EdgeList, GridGraph, Mutation, VertexId};
use hyve_graphr::GraphrDynamic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Number of requests issued per dataset ("tens of thousands", §7.4.2).
pub const REQUESTS: usize = 50_000;

/// One dataset's throughput pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dataset tag.
    pub dataset: &'static str,
    /// HyVE throughput (million edges changed per second).
    pub hyve_meps: f64,
    /// GraphR throughput (million edges changed per second).
    pub graphr_meps: f64,
    /// HyVE / GraphR ratio.
    pub ratio: f64,
}

/// Generates the §7.4.2 request mix. Deletions target edges known to exist
/// (previously added), so both systems process identical successful
/// operations.
pub fn request_mix(graph: &EdgeList, requests: usize, seed: u64) -> Vec<Mutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nv = graph.num_vertices();
    let mut added: Vec<(u32, u32)> = Vec::new();
    let mut out = Vec::with_capacity(requests);
    for _ in 0..requests {
        let roll: f64 = rng.gen();
        if roll < 0.45 || (roll < 0.90 && added.is_empty()) {
            let src = rng.gen_range(0..nv);
            let dst = rng.gen_range(0..nv);
            added.push((src, dst));
            out.push(Mutation::AddEdge(Edge::new(src, dst)));
        } else if roll < 0.90 {
            let idx = rng.gen_range(0..added.len());
            let (src, dst) = added.swap_remove(idx);
            out.push(Mutation::RemoveEdge { src, dst });
        } else if roll < 0.95 {
            out.push(Mutation::AddVertex);
        } else {
            out.push(Mutation::RemoveVertex(VertexId::new(rng.gen_range(0..nv))));
        }
    }
    out
}

/// Measures both systems on every dataset.
pub fn run() -> Vec<Row> {
    datasets()
        .iter()
        .map(|(profile, graph)| {
            let requests = request_mix(graph, REQUESTS, SEED ^ 0x20);

            // A fine grid keeps vertex-removal stripes narrow — the same
            // address-management structure the engine would plan for large
            // graphs.
            let p = 256.min(graph.num_vertices().max(1));
            let grid = GridGraph::partition(graph, p).expect("partition");
            let mut hyve = DynamicGrid::new(grid, 0.30);
            let t = Instant::now();
            for m in &requests {
                // Removals of already-removed edges (vertex-removal side
                // effects) are allowed to fail.
                let _ = hyve.apply(*m);
            }
            let hyve_s = t.elapsed().as_secs_f64();
            let hyve_changed = hyve.edges_changed();

            let mut graphr = GraphrDynamic::new(graph);
            let t = Instant::now();
            for m in &requests {
                let _ = graphr.apply(*m);
            }
            let graphr_s = t.elapsed().as_secs_f64();
            let graphr_changed = graphr.edges_changed();

            let hyve_meps = hyve_changed as f64 / hyve_s / 1e6;
            let graphr_meps = graphr_changed as f64 / graphr_s / 1e6;
            Row {
                dataset: profile.tag,
                hyve_meps,
                graphr_meps,
                ratio: hyve_meps / graphr_meps,
            }
        })
        .collect()
}

/// Prints the figure's series.
pub fn print() {
    let rows = run();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                crate::report::fmt_f(r.hyve_meps),
                crate::report::fmt_f(r.graphr_meps),
                crate::report::fmt_f(r.ratio),
            ]
        })
        .collect();
    crate::report::print_table(
        "Fig. 20: dynamic update throughput (M edges changed/s, 1 thread)",
        &["dataset", "HyVE", "GraphR", "ratio"],
        &cells,
    );
}
