//! Fig. 12: normalized preprocessing speed as the number of blocks grows.
//!
//! The paper's observation: speed is flat up to ~32×32 blocks, then drops
//! sharply — addressing a large number of blocks dominates. Wall-clock
//! times are measured on the real partitioner.

use crate::workloads::datasets;
use hyve_graph::GridGraph;
use std::time::Instant;

/// Partition side lengths of the sweep (blocks = P²).
pub const PARTITIONS: [u32; 8] = [4, 8, 16, 32, 64, 128, 256, 512];

/// One dataset's speed curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dataset tag.
    pub dataset: &'static str,
    /// Speedup relative to the P=4 run, per entry of [`PARTITIONS`].
    pub normalized_speed: [f64; 8],
}

fn time_partition(graph: &hyve_graph::EdgeList, p: u32) -> f64 {
    // Best of three to damp scheduler noise.
    (0..3)
        .map(|_| {
            let t = Instant::now();
            let grid = GridGraph::partition(graph, p).expect("partition");
            let elapsed = t.elapsed().as_secs_f64();
            assert_eq!(grid.num_edges(), graph.len() as u64);
            elapsed
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures the sweep for every dataset.
pub fn run() -> Vec<Row> {
    datasets()
        .iter()
        .map(|(profile, graph)| {
            let times: Vec<f64> = PARTITIONS
                .iter()
                .map(|&p| time_partition(graph, p.min(graph.num_vertices())))
                .collect();
            let base = times[0];
            let mut normalized_speed = [0.0f64; 8];
            for (i, t) in times.iter().enumerate() {
                normalized_speed[i] = base / t;
            }
            Row {
                dataset: profile.tag,
                normalized_speed,
            }
        })
        .collect()
}

/// Prints the figure's series.
pub fn print() {
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            let mut cells = vec![r.dataset.to_string()];
            cells.extend(r.normalized_speed.iter().map(|&v| crate::report::fmt_f(v)));
            cells
        })
        .collect();
    crate::report::print_table(
        "Fig. 12: normalized preprocessing speed vs #blocks (P x P)",
        &[
            "dataset", "4x4", "8x8", "16x16", "32x32", "64x64", "128x128", "256x256", "512x512",
        ],
        &rows,
    );
}
