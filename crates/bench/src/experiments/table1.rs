//! Table 1: average edges in non-empty 8×8 blocks (`Navg`).
//!
//! Paper values: YT 1.44, WK 1.23, AS 2.38, LJ 1.49, TW 1.73 — the
//! sparsity that caps GraphR's intra-crossbar parallelism.

use crate::workloads::datasets;
use hyve_graph::block_sparsity;

/// One dataset's occupancy statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dataset tag.
    pub dataset: &'static str,
    /// Average edges per non-empty 8×8 block.
    pub navg: f64,
    /// Non-empty block count.
    pub non_empty_blocks: u64,
    /// The paper's measured Navg for the original dataset.
    pub paper_navg: f64,
}

/// Paper Navg per dataset tag.
pub fn paper_navg(tag: &str) -> f64 {
    match tag {
        "YT" => 1.44,
        "WK" => 1.23,
        "AS" => 2.38,
        "LJ" => 1.49,
        "TW" => 1.73,
        _ => f64::NAN,
    }
}

/// Computes Navg for every dataset profile.
pub fn run() -> Vec<Row> {
    datasets()
        .iter()
        .map(|(profile, graph)| {
            let stats = block_sparsity(graph, 8);
            Row {
                dataset: profile.tag,
                navg: stats.avg_edges_per_block,
                non_empty_blocks: stats.non_empty_blocks,
                paper_navg: paper_navg(profile.tag),
            }
        })
        .collect()
}

/// Prints the table.
pub fn print() {
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                crate::report::fmt_f(r.navg),
                r.non_empty_blocks.to_string(),
                crate::report::fmt_f(r.paper_navg),
            ]
        })
        .collect();
    crate::report::print_table(
        "Table 1: avg edges in non-empty 8x8 blocks",
        &["dataset", "Navg", "blocks", "paper Navg"],
        &rows,
    );
}
