//! Fig. 13: energy efficiency with 1/2/3-bit ReRAM cells running PR —
//! the MLC sense-amplifier overhead outweighs the density win, so SLC wins.

use crate::report;
use crate::workloads::{datasets, Algorithm};
use hyve_core::SystemConfig;
use hyve_memsim::CellBits;

/// One dataset's efficiency per cell type.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dataset tag.
    pub dataset: &'static str,
    /// MTEPS/W for [SLC, 2-bit MLC, 3-bit MLC].
    pub mteps_per_watt: [f64; 3],
}

impl Row {
    /// True if the single-level cell is the best choice (the paper's
    /// conclusion).
    pub fn slc_wins(&self) -> bool {
        self.mteps_per_watt[0] >= self.mteps_per_watt[1]
            && self.mteps_per_watt[0] >= self.mteps_per_watt[2]
    }
}

/// Runs PR under each cell configuration.
pub fn run() -> Vec<Row> {
    datasets()
        .iter()
        .map(|(profile, graph)| {
            let mut eff = [0.0f64; 3];
            for (i, bits) in CellBits::all().into_iter().enumerate() {
                let cfg = SystemConfig::hyve().with_cell_bits(bits);
                eff[i] = report::measure(cfg, Algorithm::Pr, profile, graph).mteps_per_watt();
            }
            Row {
                dataset: profile.tag,
                mteps_per_watt: eff,
            }
        })
        .collect()
}

/// Prints the figure's series.
pub fn print() {
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                report::fmt_f(r.mteps_per_watt[0]),
                report::fmt_f(r.mteps_per_watt[1]),
                report::fmt_f(r.mteps_per_watt[2]),
                if r.slc_wins() { "SLC" } else { "MLC" }.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "Fig. 13: MTEPS/W by ReRAM cell bits (PR)",
        &["dataset", "1bit", "2bits", "3bits", "winner"],
        &rows,
    );
}
