//! Ablation study: each of HyVE's design choices toggled one at a time
//! against the full `acc+HyVE-opt` baseline, quantifying what every
//! decision contributes (the DESIGN.md extension beyond the paper's own
//! figures, which only ablate sharing and gating).

use crate::report;
use crate::workloads::{datasets, Algorithm};
use hyve_core::SystemConfig;
use hyve_memsim::CellBits;

/// One ablation: a named change from the baseline and its relative effect.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// What was changed.
    pub variant: &'static str,
    /// Dataset tag.
    pub dataset: &'static str,
    /// MTEPS/W of the variant divided by the baseline's — < 1 means the
    /// ablated feature was contributing.
    pub relative_efficiency: f64,
    /// Elapsed time of the variant over the baseline's.
    pub relative_time: f64,
}

/// A named configuration transformer.
type Variant = (&'static str, fn(SystemConfig) -> SystemConfig);

/// The ablation variants: (name, configuration transformer).
fn variants() -> Vec<Variant> {
    vec![
        ("- data sharing", |c| c.with_data_sharing(false)),
        ("- power gating", |c| c.with_power_gating(false)),
        ("- ReRAM edges (DRAM)", |c| SystemConfig {
            edge_memory: hyve_core::EdgeMemoryKind::Dram,
            power_gating: false, // gating needs nonvolatile edges
            ..c
        }),
        ("- DRAM vertices (ReRAM)", |c| SystemConfig {
            offchip_vertex: hyve_core::VertexMemoryKind::Reram,
            ..c
        }),
        ("- SLC cells (3-bit MLC)", |c| {
            c.with_cell_bits(CellBits::Mlc3)
        }),
        ("- SRAM headroom (16 MB)", |c| c.with_sram_mb(16)),
        ("- PU parallelism (2 PUs)", |c| c.with_num_pus(2)),
    ]
}

/// Runs the ablation grid with PageRank.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for (profile, graph) in datasets() {
        let baseline = report::measure(SystemConfig::hyve_opt(), Algorithm::Pr, profile, graph);
        for (name, transform) in variants() {
            let cfg = transform(SystemConfig::hyve_opt());
            let report = report::measure(cfg, Algorithm::Pr, profile, graph);
            rows.push(Row {
                variant: name,
                dataset: profile.tag,
                relative_efficiency: report.mteps_per_watt() / baseline.mteps_per_watt(),
                relative_time: report.elapsed() / baseline.elapsed(),
            });
        }
    }
    rows
}

/// Geometric-mean relative efficiency per variant.
pub fn mean_by_variant(rows: &[Row]) -> Vec<(&'static str, f64)> {
    variants()
        .iter()
        .map(|(name, _)| {
            let gm = report::geomean(
                rows.iter()
                    .filter(|r| r.variant == *name)
                    .map(|r| r.relative_efficiency),
            );
            (*name, gm)
        })
        .collect()
}

/// Prints the ablation table.
pub fn print() {
    let rows = run();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.to_string(),
                r.dataset.to_string(),
                report::fmt_f(r.relative_efficiency),
                report::fmt_f(r.relative_time),
            ]
        })
        .collect();
    report::print_table(
        "Ablation: each design choice removed from acc+HyVE-opt (PR)",
        &["variant", "dataset", "rel MTEPS/W", "rel time"],
        &cells,
    );
    println!("\nper-variant mean efficiency (1.0 = no contribution):");
    for (name, mean) in mean_by_variant(&rows) {
        println!("{name:<26} {mean:.3}");
    }
    println!(
        "\nnote: 'DRAM vertices -> ReRAM' can exceed 1.0 at large partition\n         counts — exactly the §6.3/Fig. 10 crossover (read-dominated global\n         vertex traffic favours ReRAM); HyVE's DRAM choice targets the\n         few-partition regime and write bandwidth."
    );
}
