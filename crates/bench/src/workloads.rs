//! Shared workload construction: datasets, algorithms and run helpers.

use hyve_algorithms::{Bfs, ConnectedComponents, EdgeProgram, PageRank, SpMv, Sssp};
use hyve_core::{ExecutionStrategy, RunReport, SharedRecorder, SimulationSession, SystemConfig};
use hyve_graph::{DatasetProfile, EdgeList, GridGraph, VertexId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Seed used for every generated dataset so all experiments see the same
/// graphs.
pub const SEED: u64 = 2018;

static FULL_DATASETS: OnceLock<Vec<(DatasetProfile, EdgeList)>> = OnceLock::new();
static SMALL_DATASETS: OnceLock<Vec<(DatasetProfile, EdgeList)>> = OnceLock::new();

/// The five evaluation graphs in Table 2's order. Set `HYVE_BENCH_SMALL=1`
/// to restrict to the three smaller graphs for quick iterations.
///
/// Generated once per process and memoized: the 17 experiment modules (and
/// `all_experiments`, which runs them back to back) all see the same cached
/// slice instead of regenerating identical R-MAT graphs per call. The small
/// and full sets cache independently, so toggling `HYVE_BENCH_SMALL`
/// mid-process (as tests do) stays correct.
pub fn datasets() -> &'static [(DatasetProfile, EdgeList)] {
    let (cell, profiles) = if std::env::var_os("HYVE_BENCH_SMALL").is_some() {
        (&SMALL_DATASETS, DatasetProfile::all_small())
    } else {
        (&FULL_DATASETS, DatasetProfile::all())
    };
    cell.get_or_init(move || {
        profiles
            .into_iter()
            .map(|p| {
                let g = p.generate(SEED);
                (p, g)
            })
            .collect()
    })
}

/// Key of the grid-partition cache: (dataset tag, interval count `P`).
type GridKey = (&'static str, u32);

/// Grid-partition cache: dataset content per tag is fixed (every profile is
/// generated with [`SEED`]), so `(tag, P)` uniquely identifies a partition.
static GRIDS: OnceLock<Mutex<HashMap<GridKey, Arc<GridGraph>>>> = OnceLock::new();

/// The memoized `P`-interval partition of a benchmark dataset. Experiments
/// that run the same `(dataset, P)` pair — every algorithm × configuration
/// sweep does — share one grid instead of re-partitioning per run.
pub fn partitioned_grid(profile: &DatasetProfile, graph: &EdgeList, p: u32) -> Arc<GridGraph> {
    let cache = GRIDS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("grid cache poisoned");
    map.entry((profile.tag, p))
        .or_insert_with(|| {
            Arc::new(GridGraph::partition(graph, p).expect("benchmark grid partitions"))
        })
        .clone()
}

/// Dataset scale factor for a profile (TW is scaled harder, see DESIGN.md).
pub fn scale_for(profile: &DatasetProfile) -> u32 {
    match profile.tag {
        "TW" => 512,
        _ => 64,
    }
}

/// Applies the profile's scale factor to a configuration.
pub fn configure(cfg: SystemConfig, profile: &DatasetProfile) -> SystemConfig {
    cfg.with_dataset_scale(scale_for(profile))
}

/// The execution strategy all experiments run under. Set
/// `HYVE_BENCH_THREADS=<n>` to fan the per-PU work out over `n` OS threads;
/// results are bit-identical either way.
pub fn strategy() -> ExecutionStrategy {
    match std::env::var("HYVE_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(threads) if threads > 1 => ExecutionStrategy::Parallel { threads },
        _ => ExecutionStrategy::Sequential,
    }
}

/// Builds a validated session for `cfg` under the benchmark
/// [`strategy`]. All experiment configurations are statically valid, so
/// construction failure is a bug worth aborting on.
pub fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .strategy(strategy())
        .build()
        .expect("benchmark configuration is valid")
}

/// Like [`session`], additionally attaching a [`SharedRecorder`] so the
/// run's per-iteration metrics can be serialized as a trace artifact
/// afterwards. Tracing is observation-only: the returned reports are
/// bit-identical to an untraced session's.
pub fn traced_session(cfg: SystemConfig) -> (SimulationSession, SharedRecorder) {
    let recorder = SharedRecorder::default();
    let session = SimulationSession::builder(cfg)
        .strategy(strategy())
        .with_trace(recorder.clone())
        .build()
        .expect("benchmark configuration is valid");
    (session, recorder)
}

/// The three core algorithms of the main evaluation (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// PageRank, 10 iterations.
    Pr,
    /// Breadth-first search from vertex 0.
    Bfs,
    /// Connected components.
    Cc,
    /// Single-source shortest paths (GraphR comparison, §7.4.3).
    Sssp,
    /// Sparse matrix–vector multiplication (GraphR comparison, §7.4.3).
    SpMv,
}

impl Algorithm {
    /// The main-evaluation trio.
    pub fn core_three() -> [Algorithm; 3] {
        [Algorithm::Bfs, Algorithm::Cc, Algorithm::Pr]
    }

    /// The five algorithms of the GraphR comparison.
    pub fn all_five() -> [Algorithm; 5] {
        [
            Algorithm::Bfs,
            Algorithm::Cc,
            Algorithm::Pr,
            Algorithm::Sssp,
            Algorithm::SpMv,
        ]
    }

    /// Display tag matching the paper's figures.
    pub fn tag(self) -> &'static str {
        match self {
            Algorithm::Pr => "PR",
            Algorithm::Bfs => "BFS",
            Algorithm::Cc => "CC",
            Algorithm::Sssp => "SSSP",
            Algorithm::SpMv => "SpMV",
        }
    }

    /// Runs this algorithm on a HyVE simulation session, reusing the
    /// memoized [`partitioned_grid`] for this dataset instead of
    /// re-partitioning the edge list on every run.
    pub fn run_hyve(
        self,
        session: &SimulationSession,
        profile: &DatasetProfile,
        graph: &EdgeList,
    ) -> RunReport {
        fn cached<P: EdgeProgram>(
            session: &SimulationSession,
            profile: &DatasetProfile,
            graph: &EdgeList,
            program: &P,
        ) -> RunReport {
            let p = session.plan_intervals(program, graph.num_vertices());
            let grid = partitioned_grid(profile, graph, p);
            session.run(program, &grid).expect("engine run failed")
        }
        match self {
            Algorithm::Pr => cached(session, profile, graph, &PageRank::new(10)),
            Algorithm::Bfs => cached(session, profile, graph, &Bfs::new(VertexId::new(0))),
            Algorithm::Cc => cached(session, profile, graph, &ConnectedComponents::new()),
            Algorithm::Sssp => cached(session, profile, graph, &Sssp::new(VertexId::new(0))),
            Algorithm::SpMv => cached(session, profile, graph, &SpMv::new()),
        }
    }

    /// Runs this algorithm on the GraphR engine.
    pub fn run_graphr(self, engine: &hyve_graphr::GraphrEngine, graph: &EdgeList) -> RunReport {
        match self {
            Algorithm::Pr => engine.run(&PageRank::new(10), graph),
            Algorithm::Bfs => engine.run(&Bfs::new(VertexId::new(0)), graph),
            Algorithm::Cc => engine.run(&ConnectedComponents::new(), graph),
            Algorithm::Sssp => engine.run(&Sssp::new(VertexId::new(0)), graph),
            Algorithm::SpMv => engine.run(&SpMv::new(), graph),
        }
        .expect("GraphR run failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_deterministic_and_memoized() {
        std::env::set_var("HYVE_BENCH_SMALL", "1");
        let a = datasets();
        let b = datasets();
        // Repeated calls return the same cached slice, not a regeneration.
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.len(), b.len());
        for ((pa, ga), (pb, gb)) in a.iter().zip(b.iter()) {
            assert_eq!(pa.tag, pb.tag);
            assert_eq!(ga, gb);
        }
    }

    #[test]
    fn grids_are_partitioned_once_per_dataset_and_p() {
        std::env::set_var("HYVE_BENCH_SMALL", "1");
        let (profile, graph) = &datasets()[0];
        let a = partitioned_grid(profile, graph, 8);
        let b = partitioned_grid(profile, graph, 8);
        assert!(Arc::ptr_eq(&a, &b), "same (tag, P) must share one grid");
        let wider = partitioned_grid(profile, graph, 16);
        assert!(!Arc::ptr_eq(&a, &wider));
        assert_eq!(a.num_intervals(), 8);
        assert_eq!(wider.num_intervals(), 16);
        assert_eq!(a.num_edges(), graph.len() as u64);
    }

    #[test]
    fn scale_factors() {
        assert_eq!(scale_for(&DatasetProfile::twitter_scaled()), 512);
        assert_eq!(scale_for(&DatasetProfile::youtube_scaled()), 64);
    }

    #[test]
    fn algorithm_tags() {
        assert_eq!(
            Algorithm::core_three().map(|a| a.tag()),
            ["BFS", "CC", "PR"]
        );
        assert_eq!(Algorithm::all_five().len(), 5);
    }
}
