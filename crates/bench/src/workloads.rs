//! Shared workload construction: datasets, algorithms and run helpers.

use hyve_algorithms::{Bfs, ConnectedComponents, PageRank, SpMv, Sssp};
use hyve_core::{ExecutionStrategy, RunReport, SimulationSession, SystemConfig};
use hyve_graph::{DatasetProfile, EdgeList, VertexId};

/// Seed used for every generated dataset so all experiments see the same
/// graphs.
pub const SEED: u64 = 2018;

/// The five evaluation graphs in Table 2's order. Set `HYVE_BENCH_SMALL=1`
/// to restrict to the three smaller graphs for quick iterations.
pub fn datasets() -> Vec<(DatasetProfile, EdgeList)> {
    let profiles = if std::env::var_os("HYVE_BENCH_SMALL").is_some() {
        DatasetProfile::all_small()
    } else {
        DatasetProfile::all()
    };
    profiles
        .into_iter()
        .map(|p| {
            let g = p.generate(SEED);
            (p, g)
        })
        .collect()
}

/// Dataset scale factor for a profile (TW is scaled harder, see DESIGN.md).
pub fn scale_for(profile: &DatasetProfile) -> u32 {
    match profile.tag {
        "TW" => 512,
        _ => 64,
    }
}

/// Applies the profile's scale factor to a configuration.
pub fn configure(cfg: SystemConfig, profile: &DatasetProfile) -> SystemConfig {
    cfg.with_dataset_scale(scale_for(profile))
}

/// The execution strategy all experiments run under. Set
/// `HYVE_BENCH_THREADS=<n>` to fan the per-PU work out over `n` OS threads;
/// results are bit-identical either way.
pub fn strategy() -> ExecutionStrategy {
    match std::env::var("HYVE_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(threads) if threads > 1 => ExecutionStrategy::Parallel { threads },
        _ => ExecutionStrategy::Sequential,
    }
}

/// Builds a validated session for `cfg` under the benchmark
/// [`strategy`]. All experiment configurations are statically valid, so
/// construction failure is a bug worth aborting on.
pub fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .strategy(strategy())
        .build()
        .expect("benchmark configuration is valid")
}

/// The three core algorithms of the main evaluation (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// PageRank, 10 iterations.
    Pr,
    /// Breadth-first search from vertex 0.
    Bfs,
    /// Connected components.
    Cc,
    /// Single-source shortest paths (GraphR comparison, §7.4.3).
    Sssp,
    /// Sparse matrix–vector multiplication (GraphR comparison, §7.4.3).
    SpMv,
}

impl Algorithm {
    /// The main-evaluation trio.
    pub fn core_three() -> [Algorithm; 3] {
        [Algorithm::Bfs, Algorithm::Cc, Algorithm::Pr]
    }

    /// The five algorithms of the GraphR comparison.
    pub fn all_five() -> [Algorithm; 5] {
        [
            Algorithm::Bfs,
            Algorithm::Cc,
            Algorithm::Pr,
            Algorithm::Sssp,
            Algorithm::SpMv,
        ]
    }

    /// Display tag matching the paper's figures.
    pub fn tag(self) -> &'static str {
        match self {
            Algorithm::Pr => "PR",
            Algorithm::Bfs => "BFS",
            Algorithm::Cc => "CC",
            Algorithm::Sssp => "SSSP",
            Algorithm::SpMv => "SpMV",
        }
    }

    /// Runs this algorithm on a HyVE simulation session.
    pub fn run_hyve(self, session: &SimulationSession, graph: &EdgeList) -> RunReport {
        match self {
            Algorithm::Pr => session.run_on_edge_list(&PageRank::new(10), graph),
            Algorithm::Bfs => session.run_on_edge_list(&Bfs::new(VertexId::new(0)), graph),
            Algorithm::Cc => session.run_on_edge_list(&ConnectedComponents::new(), graph),
            Algorithm::Sssp => session.run_on_edge_list(&Sssp::new(VertexId::new(0)), graph),
            Algorithm::SpMv => session.run_on_edge_list(&SpMv::new(), graph),
        }
        .expect("engine run failed")
    }

    /// Runs this algorithm on the GraphR engine.
    pub fn run_graphr(self, engine: &hyve_graphr::GraphrEngine, graph: &EdgeList) -> RunReport {
        match self {
            Algorithm::Pr => engine.run(&PageRank::new(10), graph),
            Algorithm::Bfs => engine.run(&Bfs::new(VertexId::new(0)), graph),
            Algorithm::Cc => engine.run(&ConnectedComponents::new(), graph),
            Algorithm::Sssp => engine.run(&Sssp::new(VertexId::new(0)), graph),
            Algorithm::SpMv => engine.run(&SpMv::new(), graph),
        }
        .expect("GraphR run failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_deterministic() {
        std::env::set_var("HYVE_BENCH_SMALL", "1");
        let a = datasets();
        let b = datasets();
        assert_eq!(a.len(), b.len());
        for ((pa, ga), (pb, gb)) in a.iter().zip(b.iter()) {
            assert_eq!(pa.tag, pb.tag);
            assert_eq!(ga, gb);
        }
    }

    #[test]
    fn scale_factors() {
        assert_eq!(scale_for(&DatasetProfile::twitter_scaled()), 512);
        assert_eq!(scale_for(&DatasetProfile::youtube_scaled()), 64);
    }

    #[test]
    fn algorithm_tags() {
        assert_eq!(
            Algorithm::core_three().map(|a| a.tag()),
            ["BFS", "CC", "PR"]
        );
        assert_eq!(Algorithm::all_five().len(), 5);
    }
}
