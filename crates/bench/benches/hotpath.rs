//! Hot-path microbenchmarks for the flat-SoA / scratch-reuse / skip work:
//!
//! * `edge_walk` — streaming every block through the AoS `block_at` path
//!   vs the flat SoA offset-table path,
//! * `scratch` — a fresh per-iteration accumulator allocation vs refilling
//!   a reused buffer (the accumulate-mode change),
//! * `monotone_skip` — full BFS/SSSP/CC runs with dirty-interval skipping
//!   on vs off.
//!
//! `scripts/bench_report.sh` records the headline legacy-vs-new speedup on
//! the largest dataset into `BENCH_hotpath.json`; these benches are the
//! finer-grained view.

use criterion::{criterion_group, criterion_main, Criterion};
use hyve_algorithms::{Bfs, ConnectedComponents, EdgeProgram, Sssp};
use hyve_core::{SimulationSession, SystemConfig};
use hyve_graph::{DatasetProfile, GridGraph, VertexId};
use std::hint::black_box;

const P: u32 = 64;

fn bench_edge_walk(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let grid = GridGraph::partition(&graph, P).unwrap();
    let flat = grid.flatten();
    let mut group = c.benchmark_group("hotpath_edge_walk_yt_p64");
    group.sample_size(20);
    group.bench_function("aos_block_at", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for s in 0..P {
                for d in 0..P {
                    for e in grid.block_at(s, d).edges() {
                        acc += u64::from(e.src.raw()) + u64::from(e.dst.raw());
                    }
                }
            }
            black_box(acc)
        });
    });
    group.bench_function("flat_soa", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for s in 0..P {
                for d in 0..P {
                    for e in flat.block_edges(s, d) {
                        acc += u64::from(e.src.raw()) + u64::from(e.dst.raw());
                    }
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_scratch_reuse(c: &mut Criterion) {
    const NV: usize = 75_781; // LJ-sized vertex array
                              // SSSP's identity (∞) is non-zero, so the allocating arm cannot be
                              // served by an untouched calloc page — both arms really write NV lanes,
                              // isolating the allocator + page-fault cost the reused buffer avoids.
    let mut group = c.benchmark_group("hotpath_scratch_75k");
    group.sample_size(40);
    group.bench_function("alloc_per_iteration", |b| {
        b.iter(|| {
            let acc = vec![f32::INFINITY; NV];
            black_box(acc.len())
        });
    });
    let mut reused = vec![f32::INFINITY; NV];
    group.bench_function("fill_reused", |b| {
        b.iter(|| {
            reused.fill(f32::INFINITY);
            black_box(reused.len())
        });
    });
    group.finish();
}

fn run_skip_pair<P2: EdgeProgram>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    program: &P2,
    grid: &GridGraph,
) {
    for (label, skipping) in [("full_rescan", false), ("skip_clean", true)] {
        let session = SimulationSession::builder(SystemConfig::hyve_opt())
            .dirty_interval_skipping(skipping)
            .build()
            .expect("valid config");
        group.bench_function(format!("{name}/{label}"), |b| {
            b.iter(|| {
                let (report, values) = session
                    .run_with_values(program, black_box(grid))
                    .expect("run");
                black_box((report.iterations, values.len()))
            });
        });
    }
}

fn bench_monotone_skip(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let grid = GridGraph::partition(&graph, P).unwrap();
    let mut group = c.benchmark_group("hotpath_monotone_yt_p64");
    group.sample_size(10);
    run_skip_pair(&mut group, "bfs", &Bfs::new(VertexId::new(0)), &grid);
    run_skip_pair(&mut group, "sssp", &Sssp::new(VertexId::new(0)), &grid);
    run_skip_pair(&mut group, "cc", &ConnectedComponents::new(), &grid);
    group.finish();
}

criterion_group!(
    benches,
    bench_edge_walk,
    bench_scratch_reuse,
    bench_monotone_skip
);
criterion_main!(benches);
