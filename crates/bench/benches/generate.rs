//! Criterion benchmarks of the graph generators and reference algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use hyve_algorithms::reference;
use hyve_graph::{Csr, ErdosRenyi, Rmat, VertexId};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_100k_edges");
    group.sample_size(10);
    group.bench_function("rmat", |b| {
        b.iter(|| black_box(Rmat::new(20_000, 100_000).generate(black_box(7))))
    });
    group.bench_function("erdos_renyi", |b| {
        b.iter(|| black_box(ErdosRenyi::new(20_000, 100_000).generate(black_box(7))))
    });
    group.finish();
}

fn bench_references(c: &mut Criterion) {
    let graph = Rmat::new(20_000, 100_000).generate(11);
    let csr = Csr::from_edge_list(&graph);
    let mut group = c.benchmark_group("reference_algorithms_100k");
    group.sample_size(10);
    group.bench_function("bfs", |b| {
        b.iter(|| black_box(reference::bfs_levels(&csr, VertexId::new(0))))
    });
    group.bench_function("pagerank_10", |b| {
        b.iter(|| black_box(reference::pagerank(&csr, 10, 0.85)))
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| black_box(reference::connected_components(&graph)))
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_references);
criterion_main!(benches);
