//! Criterion benchmarks of dynamic-graph updates (Fig. 20 substrate):
//! per-mutation cost on HyVE's reserved-slack grid versus GraphR's
//! associative layout.

use criterion::{criterion_group, criterion_main, Criterion};
use hyve_bench::workloads::SEED;
use hyve_graph::{DatasetProfile, DynamicGrid, GridGraph};
use hyve_graphr::GraphrDynamic;
use std::hint::black_box;

fn bench_update_batch(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(SEED);
    let requests = hyve_bench::experiments::fig20::request_mix(&graph, 5_000, SEED ^ 0x20);
    let mut group = c.benchmark_group("dynamic_5k_requests_yt");
    group.sample_size(10);

    group.bench_function("hyve_grid", |b| {
        b.iter(|| {
            let grid = GridGraph::partition(&graph, 256).expect("partition");
            let mut dynamic = DynamicGrid::new(grid, 0.30);
            for m in &requests {
                let _ = dynamic.apply(black_box(*m));
            }
            black_box(dynamic.edges_changed())
        });
    });

    group.bench_function("graphr_layout", |b| {
        b.iter(|| {
            let mut dynamic = GraphrDynamic::new(&graph);
            for m in &requests {
                let _ = dynamic.apply(black_box(*m));
            }
            black_box(dynamic.edges_changed())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_update_batch);
criterion_main!(benches);
