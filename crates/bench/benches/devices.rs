//! Criterion benchmarks of the device models: per-access cost evaluation
//! and the event-driven power-gating tracker.

use criterion::{criterion_group, criterion_main, Criterion};
use hyve_memsim::{
    DramChip, DramChipConfig, GatingTracker, MemoryDevice, Power, PowerGatingConfig, ReramChip,
    ReramChipConfig, SramArray, SramConfig, Time,
};
use std::hint::black_box;

fn bench_device_costs(c: &mut Criterion) {
    let reram = ReramChip::new(ReramChipConfig::default());
    let dram = DramChip::new(DramChipConfig::default());
    let sram = SramArray::new(SramConfig::default());
    let mut group = c.benchmark_group("device_cost_eval");
    group.sample_size(20);
    group.bench_function("reram_read_512", |b| {
        b.iter(|| black_box(reram.read_energy(black_box(512))))
    });
    group.bench_function("dram_random_read_512", |b| {
        b.iter(|| black_box(dram.random_read_energy(black_box(512))))
    });
    group.bench_function("sram_word_ops", |b| {
        b.iter(|| black_box(sram.read_energy(black_box(32)) + sram.write_energy(black_box(32))))
    });
    group.finish();
}

fn bench_gating_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_gating_tracker");
    group.sample_size(20);
    group.bench_function("10k_accesses_8_banks", |b| {
        b.iter(|| {
            let mut t = GatingTracker::new(PowerGatingConfig::default(), 8, Power::from_mw(2.5));
            for i in 0..10_000u32 {
                t.access(i % 8, Time::from_ns(f64::from(i) * 100.0));
            }
            black_box(t.finish(Time::from_ms(1.1)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_device_costs, bench_gating_tracker);
criterion_main!(benches);
