//! Criterion micro-benchmarks for the two preprocessing paths
//! (Fig. 12 / Fig. 19 substrate): HyVE's dense interval-block counting sort
//! at several partition counts and GraphR's associative 8×8 build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyve_graph::{DatasetProfile, GridGraph};
use std::hint::black_box;

fn bench_hyve_partition(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let mut group = c.benchmark_group("hyve_partition_yt");
    group.sample_size(10);
    for p in [8u32, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let grid = GridGraph::partition(black_box(&graph), p).expect("partition");
                black_box(grid.num_blocks())
            });
        });
    }
    group.finish();
}

fn bench_graphr_preprocess(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let mut group = c.benchmark_group("graphr_preprocess_yt");
    group.sample_size(10);
    group.bench_function("8x8_blocks", |b| {
        b.iter(|| {
            let layout = hyve_graphr::preprocess(black_box(&graph));
            black_box(layout.non_empty_blocks())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hyve_partition, bench_graphr_preprocess);
criterion_main!(benches);
