//! Proves the observability layer is zero-cost when disabled: the same PR
//! run through an untraced session vs. one with a [`SharedRecorder`]
//! attached. The untraced path must show no measurable overhead relative to
//! the pre-trace engine (event emission is gated on a single `Option`
//! check; the per-block skip counters are two unconditional u64 writes).

use criterion::{criterion_group, criterion_main, Criterion};
use hyve_algorithms::PageRank;
use hyve_core::{SharedRecorder, SimulationSession, SystemConfig};
use hyve_graph::{DatasetProfile, GridGraph};
use std::hint::black_box;

fn bench_trace_overhead(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let untraced = SimulationSession::builder(SystemConfig::hyve_opt())
        .build()
        .expect("valid");
    let recorder = SharedRecorder::default();
    let traced = SimulationSession::builder(SystemConfig::hyve_opt())
        .with_trace(recorder.clone())
        .build()
        .expect("valid");
    let program = PageRank::new(2);
    let p = untraced.plan_intervals(&program, graph.num_vertices());
    let grid = GridGraph::partition(&graph, p).expect("partition");

    let mut group = c.benchmark_group("trace_overhead_pr2_yt");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let report = untraced.run(&program, black_box(&grid)).expect("run");
            black_box(report.edges_processed)
        });
    });
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let report = traced.run(&program, black_box(&grid)).expect("run");
            black_box(report.edges_processed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
