//! Measures the reliability layer's cost: the same PR run through a
//! faultless session, one with an inert `FaultPlan::none()` (must be
//! indistinguishable — the fault path is never entered), and one with an
//! active SECDED plan (pays the single-threaded reliability pass in
//! `Engine::account`, amortized over the whole run).

use criterion::{criterion_group, criterion_main, Criterion};
use hyve_algorithms::PageRank;
use hyve_core::{FaultPlan, SimulationSession, SystemConfig};
use hyve_graph::{DatasetProfile, GridGraph};
use std::hint::black_box;

fn bench_fault_overhead(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let build = |plan: FaultPlan| {
        SimulationSession::builder(SystemConfig::hyve_opt())
            .with_faults(plan)
            .build()
            .expect("valid")
    };
    let faultless = build(FaultPlan::none());
    let active =
        build(FaultPlan::parse("seed=7,reram-ber=1e-5,dram-ber=1e-9,ecc=secded").expect("spec"));
    let program = PageRank::new(2);
    let p = faultless.plan_intervals(&program, graph.num_vertices());
    let grid = GridGraph::partition(&graph, p).expect("partition");

    let mut group = c.benchmark_group("fault_overhead_pr2_yt");
    group.sample_size(10);
    group.bench_function("faultless", |b| {
        b.iter(|| {
            let report = faultless.run(&program, black_box(&grid)).expect("run");
            black_box(report.edges_processed)
        });
    });
    group.bench_function("secded_active", |b| {
        b.iter(|| {
            let report = active.run(&program, black_box(&grid)).expect("run");
            black_box(report.edges_processed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fault_overhead);
criterion_main!(benches);
