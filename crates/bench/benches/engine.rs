//! Criterion benchmarks of the simulators themselves: one full PR run on
//! the scaled YouTube graph per memory hierarchy, plus the GraphR engine.

use criterion::{criterion_group, criterion_main, Criterion};
use hyve_algorithms::PageRank;
use hyve_core::{Engine, SystemConfig};
use hyve_graph::DatasetProfile;
use hyve_graphr::GraphrEngine;
use std::hint::black_box;

fn bench_hyve_engine(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let mut group = c.benchmark_group("engine_pr2_yt");
    group.sample_size(10);
    for cfg in [
        SystemConfig::acc_dram(),
        SystemConfig::acc_sram_dram(),
        SystemConfig::hyve_opt(),
    ] {
        let name = cfg.name;
        let engine = Engine::new(cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = engine
                    .run_on_edge_list(&PageRank::new(2), black_box(&graph))
                    .expect("run");
                black_box(report.mteps_per_watt())
            });
        });
    }
    group.finish();
}

fn bench_graphr_engine(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let engine = GraphrEngine::new();
    let mut group = c.benchmark_group("engine_pr2_yt");
    group.sample_size(10);
    group.bench_function("GraphR", |b| {
        b.iter(|| {
            let report = engine
                .run(&PageRank::new(2), black_box(&graph))
                .expect("run");
            black_box(report.mteps_per_watt())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hyve_engine, bench_graphr_engine);
criterion_main!(benches);
