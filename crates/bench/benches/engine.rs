//! Criterion benchmarks of the simulators themselves: one full PR run on
//! the scaled YouTube graph per memory hierarchy, the GraphR engine, and a
//! sequential-vs-parallel session sweep over the Fig. 16 configuration set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyve_algorithms::PageRank;
use hyve_core::{ExecutionStrategy, SimulationSession, SystemConfig};
use hyve_graph::DatasetProfile;
use hyve_graphr::GraphrEngine;
use std::hint::black_box;

fn bench_hyve_engine(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let mut group = c.benchmark_group("engine_pr2_yt");
    group.sample_size(10);
    for cfg in [
        SystemConfig::acc_dram(),
        SystemConfig::acc_sram_dram(),
        SystemConfig::hyve_opt(),
    ] {
        let name = cfg.name;
        let session = SimulationSession::builder(cfg).build().expect("valid");
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = session
                    .run_on_edge_list(&PageRank::new(2), black_box(&graph))
                    .expect("run");
                black_box(report.mteps_per_watt())
            });
        });
    }
    group.finish();
}

fn bench_graphr_engine(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let engine = GraphrEngine::new();
    let mut group = c.benchmark_group("engine_pr2_yt");
    group.sample_size(10);
    group.bench_function("GraphR", |b| {
        b.iter(|| {
            let report = engine
                .run(&PageRank::new(2), black_box(&graph))
                .expect("run");
            black_box(report.mteps_per_watt())
        });
    });
    group.finish();
}

/// The Fig. 16 workload — one algorithm swept across the five memory
/// hierarchies — under a sequential session and parallel sessions with 2, 4
/// and 8 threads. The swept reports are bit-identical across all four
/// variants; only wall-clock should differ.
fn bench_parallel_sweep(c: &mut Criterion) {
    let graph = DatasetProfile::youtube_scaled().generate(2018);
    let configs = [
        SystemConfig::acc_dram(),
        SystemConfig::acc_reram(),
        SystemConfig::acc_sram_dram(),
        SystemConfig::hyve(),
        SystemConfig::hyve_opt(),
    ];
    let mut group = c.benchmark_group("fig16_sweep_pr2_yt");
    group.sample_size(10);
    for strategy in [
        ExecutionStrategy::Sequential,
        ExecutionStrategy::Parallel { threads: 2 },
        ExecutionStrategy::Parallel { threads: 4 },
        ExecutionStrategy::Parallel { threads: 8 },
    ] {
        let label = match strategy {
            ExecutionStrategy::Sequential => "sequential".to_string(),
            ExecutionStrategy::Parallel { threads } => format!("parallel-{threads}"),
        };
        let session = SimulationSession::builder(SystemConfig::hyve())
            .strategy(strategy)
            .build()
            .expect("valid");
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &session,
            |b, session| {
                b.iter(|| {
                    let reports = session
                        .sweep(&PageRank::new(2), black_box(&graph), &configs)
                        .expect("sweep");
                    black_box(reports.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hyve_engine,
    bench_graphr_engine,
    bench_parallel_sweep
);
criterion_main!(benches);
