//! Property-based tests for the graph substrate: partitioning is a
//! lossless, well-formed reshaping of the edge list, and dynamic mutation
//! sequences agree with a naive multiset model.

use hyve_graph::{
    block_sparsity, DynamicGrid, Edge, EdgeList, GridGraph, IntervalPartition, Mutation,
    PartitionScheme, VertexId,
};
use proptest::prelude::*;

/// Random (num_vertices, edges) pair with valid endpoints.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u32..200).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv), 0..400).prop_map(move |pairs| {
            let mut g = EdgeList::new(nv);
            g.extend(pairs.into_iter().map(|(s, d)| Edge::new(s, d)));
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partitioning then flattening returns exactly the original multiset
    /// of edges, for any legal interval count and either scheme.
    #[test]
    fn partition_round_trips(g in arb_graph(), p in 1u32..32,
                             round_robin in proptest::bool::ANY) {
        let p = p.min(g.num_vertices());
        let scheme = if round_robin {
            PartitionScheme::RoundRobin
        } else {
            PartitionScheme::Contiguous
        };
        let grid = GridGraph::partition_with_scheme(&g, p, scheme).unwrap();
        prop_assert_eq!(grid.num_edges(), g.len() as u64);
        prop_assert_eq!(grid.num_blocks(), (p as usize).pow(2));

        let mut back: Vec<(u32, u32)> = grid
            .iter_edges()
            .map(|e| (e.src.raw(), e.dst.raw()))
            .collect();
        let mut orig: Vec<(u32, u32)> = g
            .iter()
            .map(|e| (e.src.raw(), e.dst.raw()))
            .collect();
        back.sort_unstable();
        orig.sort_unstable();
        prop_assert_eq!(back, orig);
    }

    /// Every edge lands in the block its endpoints' intervals dictate.
    #[test]
    fn edges_land_in_correct_blocks(g in arb_graph(), p in 1u32..16) {
        let p = p.min(g.num_vertices());
        let grid = GridGraph::partition(&g, p).unwrap();
        for block in grid.blocks() {
            for e in block.edges() {
                prop_assert_eq!(grid.partition_info().block_of(e), block.id());
            }
        }
    }

    /// interval_of / local_index / global_index form a bijection.
    #[test]
    fn interval_mapping_is_bijective(nv in 1u32..5000, p in 1u32..64,
                                     round_robin in proptest::bool::ANY) {
        let p = p.min(nv);
        let scheme = if round_robin {
            PartitionScheme::RoundRobin
        } else {
            PartitionScheme::Contiguous
        };
        let part = IntervalPartition::new(nv, p, scheme).unwrap();
        let mut sizes = 0u32;
        for i in 0..p {
            sizes += part.interval_len(i);
        }
        prop_assert_eq!(sizes, nv, "interval sizes must cover all vertices");
        for v in (0..nv).step_by(1 + nv as usize / 257) {
            let v = VertexId::new(v);
            let i = part.interval_of(v);
            prop_assert!(i < p);
            prop_assert_eq!(part.global_index(i, part.local_index(v)), v);
        }
    }

    /// Block sparsity accounting is conserved: edge counts across non-empty
    /// blocks sum to the total, and Navg is consistent.
    #[test]
    fn sparsity_conservation(g in arb_graph(), dim in 1u32..16) {
        let stats = block_sparsity(&g, dim);
        prop_assert_eq!(stats.edges, g.len() as u64);
        if g.is_empty() {
            prop_assert_eq!(stats.non_empty_blocks, 0);
        } else {
            prop_assert!(stats.non_empty_blocks >= 1);
            prop_assert!(stats.max_edges_per_block as f64 >= stats.avg_edges_per_block);
            let reconstructed = stats.avg_edges_per_block * stats.non_empty_blocks as f64;
            prop_assert!((reconstructed - stats.edges as f64).abs() < 1e-6);
        }
    }

    /// A random mutation sequence applied to the grid matches a naive
    /// multiset model of the live edge set.
    #[test]
    fn dynamic_grid_matches_multiset_model(
        g in arb_graph(),
        ops in proptest::collection::vec((0u8..4, 0u32..200, 0u32..200), 0..100),
    ) {
        let p = 4u32.min(g.num_vertices());
        let grid = GridGraph::partition(&g, p).unwrap();
        let mut dynamic = DynamicGrid::new(grid, 0.3);
        // Model: multiset of edges + tombstone set.
        let mut model: Vec<(u32, u32)> =
            g.iter().map(|e| (e.src.raw(), e.dst.raw())).collect();
        let mut model_nv = g.num_vertices();
        let mut dead = std::collections::HashSet::new();

        for (kind, a, b) in ops {
            match kind {
                0 => {
                    let (src, dst) = (a % model_nv, b % model_nv);
                    let got = dynamic.apply(Mutation::AddEdge(Edge::new(src, dst)));
                    if dead.contains(&src) || dead.contains(&dst) {
                        // Deleted endpoints reject the add, leaving the
                        // stored edge set untouched.
                        prop_assert!(got.is_err());
                    } else {
                        prop_assert!(got.is_ok());
                        model.push((src, dst));
                    }
                }
                1 => {
                    let (src, dst) = (a % model_nv, b % model_nv);
                    let expect = model.iter().position(|&e| e == (src, dst));
                    let got = dynamic.apply(Mutation::RemoveEdge { src, dst });
                    match expect {
                        Some(i) => {
                            prop_assert!(got.is_ok());
                            model.swap_remove(i);
                        }
                        None => prop_assert!(got.is_err()),
                    }
                }
                2 => {
                    prop_assert!(dynamic.apply(Mutation::AddVertex).is_ok());
                    model_nv += 1;
                }
                _ => {
                    let v = a % model_nv;
                    // Tombstoning only marks; edges stay in the multiset.
                    if v < dynamic.grid().num_vertices() {
                        prop_assert!(dynamic
                            .apply(Mutation::RemoveVertex(VertexId::new(v)))
                            .is_ok());
                        dead.insert(v);
                    }
                }
            }
            prop_assert_eq!(dynamic.grid().num_edges(), model.len() as u64);
        }
    }

    /// Degrees stay consistent with the live structure under mutations.
    #[test]
    fn dynamic_degrees_consistent(g in arb_graph(),
                                  adds in proptest::collection::vec((0u32..100, 0u32..100), 0..50)) {
        let p = 4u32.min(g.num_vertices());
        let grid = GridGraph::partition(&g, p).unwrap();
        let mut dynamic = DynamicGrid::new(grid, 0.3);
        for (a, b) in adds {
            let (src, dst) = (a % g.num_vertices(), b % g.num_vertices());
            dynamic.apply(Mutation::AddEdge(Edge::new(src, dst))).unwrap();
        }
        // Recompute degrees from the grid and compare.
        let mut expect = vec![0u32; dynamic.grid().num_vertices() as usize];
        for e in dynamic.grid().iter_edges() {
            expect[e.src.index()] += 1;
            expect[e.dst.index()] += 1;
        }
        for (v, &d) in expect.iter().enumerate() {
            prop_assert_eq!(dynamic.degree(VertexId::new(v as u32)), d);
        }
    }
}
