//! Property-based tests of [`DynamicGrid`] bookkeeping and the
//! [`GridGraph::flat`] memo: across arbitrary mutation sequences the
//! maintained `degrees`/`tombstones`/`logical_vertices` stay mutually
//! consistent ([`DynamicGrid::validate`]) and the memoized flat image never
//! goes stale — it always equals a from-scratch [`GridGraph::flatten`].

use hyve_graph::{DynamicGrid, Edge, EdgeList, GridGraph, Mutation, MutationOutcome, VertexId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (8u32..48).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv), 1..120).prop_map(move |pairs| {
            let mut g = EdgeList::new(nv);
            g.extend(pairs.into_iter().map(|(s, d)| Edge::new(s, d)));
            g
        })
    })
}

/// One mutation request: kind selector plus two vertex operands.
type OpSpec = (u8, u32, u32);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four mutation kinds, applied in arbitrary order against a
    /// populated flat cache: the bookkeeping invariants hold and the memo
    /// matches a fresh flatten after every single step.
    #[test]
    fn invariants_hold_and_flat_cache_never_goes_stale(
        g in arb_graph(),
        ops in proptest::collection::vec(any::<OpSpec>(), 0..50),
    ) {
        let grid = GridGraph::partition(&g, 4).unwrap();
        // Small reserve so long AddVertex runs exhaust it and exercise the
        // Repartitioned path too.
        let mut d = DynamicGrid::new(grid, 0.05);
        for (kind, a, b) in ops {
            let nv = d.num_vertices();
            // Populate the memo BEFORE mutating — the stale-cache hazard
            // under test is a mutator that forgets to invalidate it.
            let _ = d.grid().flat();
            let _ = match kind % 4 {
                0 => d.apply(Mutation::AddEdge(Edge::new(a % nv, b % nv))),
                1 => d.apply(Mutation::RemoveEdge { src: a % nv, dst: b % nv }),
                2 => d.apply(Mutation::AddVertex),
                _ => d.apply(Mutation::RemoveVertex(VertexId::new(a % nv))),
            };
            let check = d.validate();
            prop_assert!(check.is_ok(), "invariants broken: {check:?}");
            prop_assert_eq!(d.grid().flat(), &d.grid().flatten());
        }
    }

    /// With a zero vertex reserve every append exhausts the (empty) reserve
    /// immediately: each AddVertex takes the full re-preprocessing path, and
    /// the rebuilt grid keeps the invariants and a coherent flat image.
    #[test]
    fn vertex_growth_forces_repartition_and_stays_consistent(
        g in arb_graph(),
        extra in 1u32..12,
    ) {
        let grid = GridGraph::partition(&g, 4).unwrap();
        let mut d = DynamicGrid::new(grid, 0.0);
        for _ in 0..extra {
            let _ = d.grid().flat();
            let out = d.apply(Mutation::AddVertex).unwrap();
            prop_assert_eq!(out, MutationOutcome::Repartitioned);
            let check = d.validate();
            prop_assert!(check.is_ok(), "invariants broken: {check:?}");
            prop_assert_eq!(d.grid().flat(), &d.grid().flatten());
        }
        prop_assert_eq!(d.repartitions(), u64::from(extra));
        prop_assert_eq!(d.grid().num_vertices(), g.num_vertices() + extra);
    }
}
