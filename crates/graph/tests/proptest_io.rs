//! Property-based tests of the SNAP parser: it never panics on arbitrary
//! input, and writing any graph then parsing it back is the identity (up to
//! trailing isolated vertices, which the format cannot express).

use hyve_graph::{io, Edge, EdgeList};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes: parse returns Ok or a line-numbered error, never
    /// panics.
    #[test]
    fn parser_total_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        match io::parse(data.as_slice()) {
            Ok(g) => {
                // Every parsed edge is within the inferred vertex range.
                for e in g.iter() {
                    prop_assert!(e.src.raw() < g.num_vertices());
                    prop_assert!(e.dst.raw() < g.num_vertices());
                }
            }
            Err(hyve_graph::GraphError::Parse { line, .. }) => {
                prop_assert!(line >= 1);
            }
            Err(other) => prop_assert!(false, "unexpected error kind {other:?}"),
        }
    }

    /// Arbitrary ASCII text lines: same totality guarantee on the textual
    /// subset the format actually meets in the wild.
    #[test]
    fn parser_total_on_text(lines in proptest::collection::vec("[ -~]{0,40}", 0..50)) {
        let text = lines.join("\n");
        let _ = io::parse(text.as_bytes());
    }

    /// Write → parse round-trips the edge multiset and weights.
    #[test]
    fn write_parse_round_trip(
        nv in 1u32..200,
        pairs in proptest::collection::vec((0u32..200, 0u32..200, 0u16..400), 0..200),
    ) {
        let mut g = EdgeList::new(nv);
        g.extend(pairs.iter().map(|&(s, d, w)| {
            // Quantised weights survive the text round trip exactly.
            Edge::with_weight(s % nv, d % nv, f32::from(w) / 4.0)
        }));
        let mut buf = Vec::new();
        io::write(&g, &mut buf).expect("write to Vec cannot fail");
        let parsed = io::parse(buf.as_slice()).expect("own output must parse");
        prop_assert_eq!(parsed.len(), g.len());
        for (a, b) in parsed.iter().zip(g.iter()) {
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.weight, b.weight);
        }
        // Vertex count may shrink to max-referenced + 1, never grow.
        prop_assert!(parsed.num_vertices() <= g.num_vertices().max(1));
    }

    /// Comments and blank lines are transparent wherever they appear.
    #[test]
    fn comments_are_transparent(seed_lines in proptest::collection::vec(0u8..3, 1..30)) {
        let mut with_noise = String::new();
        let mut clean = String::new();
        let mut edge = 0u32;
        for kind in seed_lines {
            match kind {
                0 => {
                    let line = format!("{} {}\n", edge, edge + 1);
                    with_noise.push_str(&line);
                    clean.push_str(&line);
                    edge += 1;
                }
                1 => with_noise.push_str("# a comment line\n"),
                _ => with_noise.push('\n'),
            }
        }
        let a = io::parse(with_noise.as_bytes()).expect("noisy parse");
        let b = io::parse(clean.as_bytes()).expect("clean parse");
        prop_assert_eq!(a.len(), b.len());
    }
}
