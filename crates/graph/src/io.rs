//! SNAP-style text edge-list I/O.
//!
//! The paper's datasets ship in the SNAP format: `#`-prefixed comment lines
//! followed by whitespace-separated `src dst [weight]` rows. [`parse`]
//! accepts any `BufRead`; pass `&mut reader` if you need the reader back
//! afterwards.

use crate::edgelist::EdgeList;
use crate::error::GraphError;
use crate::types::Edge;
use std::io::{BufRead, Write};

/// Counts declared by a `# hyve-graph edge list: N vertices, M edges`
/// header comment, when present.
struct DeclaredCounts {
    line: usize,
    vertices: u32,
    edges: u64,
}

/// Recognizes the header comment [`write()`] emits. Any other `#` comment
/// returns `None` (plain SNAP files stay un-validated).
fn parse_header(trimmed: &str, line: usize) -> Option<Result<DeclaredCounts, GraphError>> {
    let rest = trimmed.strip_prefix("# hyve-graph edge list:")?;
    let bad = |message: String| Some(Err(GraphError::Parse { line, message }));
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    if tokens.len() != 4 || tokens[1] != "vertices," || tokens[3] != "edges" {
        return bad("malformed hyve-graph header".into());
    }
    let Ok(vertices) = tokens[0].parse::<u32>() else {
        return bad(format!("invalid vertex count {:?} in header", tokens[0]));
    };
    let Ok(edges) = tokens[2].parse::<u64>() else {
        return bad(format!("invalid edge count {:?} in header", tokens[2]));
    };
    Some(Ok(DeclaredCounts {
        line,
        vertices,
        edges,
    }))
}

/// Parses a SNAP-style edge list. The vertex count is one past the largest
/// index seen (SNAP files carry no explicit count), unless the file opens
/// with the self-describing header [`write()`] emits — then the declared
/// vertex count is authoritative and the file is validated against it.
///
/// ```
/// use hyve_graph::io::parse;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "# demo graph\n0\t1\n1 2 0.5\n";
/// let g = parse(text.as_bytes())?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.len(), 2);
/// assert_eq!(g.edges()[1].weight, 0.5);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`GraphError::Parse`] with the 1-based line number on malformed rows,
/// non-finite weights, I/O failure, a malformed header, or an edge count
/// that contradicts a header (truncated file);
/// [`GraphError::VertexOutOfRange`] when an edge references a vertex at or
/// beyond a header's declared count.
pub fn parse<R: BufRead>(reader: R) -> Result<EdgeList, GraphError> {
    let mut edges = Vec::new();
    let mut max_vertex = 0u32;
    let mut declared: Option<DeclaredCounts> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Parse {
            line: idx + 1,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            // Only a leading header is authoritative; a hyve-graph banner
            // buried mid-file is treated as an ordinary comment.
            if edges.is_empty() && declared.is_none() {
                if let Some(header) = parse_header(trimmed, idx + 1) {
                    declared = Some(header?);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("invalid {what}"),
            })
        };
        let src = parse_u32(parts.next(), "source vertex")?;
        let dst = parse_u32(parts.next(), "destination vertex")?;
        let weight: f32 = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: "invalid weight".into(),
            })?,
            None => 1.0,
        };
        if !weight.is_finite() {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: format!("non-finite weight {weight}"),
            });
        }
        if let Some(d) = &declared {
            let oob = |vertex: u32| GraphError::VertexOutOfRange {
                vertex,
                num_vertices: d.vertices,
            };
            if src >= d.vertices {
                return Err(oob(src));
            }
            if dst >= d.vertices {
                return Err(oob(dst));
            }
            if edges.len() as u64 >= d.edges {
                return Err(GraphError::Parse {
                    line: idx + 1,
                    message: format!("more edges than the {} the header declares", d.edges),
                });
            }
        }
        max_vertex = max_vertex.max(src).max(dst);
        edges.push(Edge::with_weight(src, dst, weight));
    }
    let num_vertices = match &declared {
        Some(d) => {
            if (edges.len() as u64) < d.edges {
                return Err(GraphError::Parse {
                    line: d.line,
                    message: format!(
                        "truncated edge list: header declares {} edges, found {}",
                        d.edges,
                        edges.len()
                    ),
                });
            }
            d.vertices
        }
        None if edges.is_empty() => 0,
        None => max_vertex + 1,
    };
    let mut list = EdgeList::new(num_vertices);
    list.extend(edges);
    Ok(list)
}

/// Writes an edge list in SNAP format. Weights are emitted only when ≠ 1.0.
/// A `&mut` writer may be passed if the writer is needed afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write<W: Write>(g: &EdgeList, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# hyve-graph edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.len()
    )?;
    for e in g.iter() {
        if e.weight == 1.0 {
            writeln!(writer, "{}\t{}", e.src.raw(), e.dst.raw())?;
        } else {
            writeln!(writer, "{}\t{}\t{}", e.src.raw(), e.dst.raw(), e.weight)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n# another\n2 3\n";
        let g = parse(text.as_bytes()).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn parses_weights() {
        let g = parse("0 1 2.5\n".as_bytes()).unwrap();
        assert_eq!(g.edges()[0].weight, 2.5);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("0 1\nbogus\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_destination_is_an_error() {
        let err = parse("7\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("destination"));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse("# nothing\n".as_bytes()).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn non_finite_weights_are_rejected() {
        for bad in ["0 1 NaN", "0 1 inf", "0 1 -inf"] {
            let err = parse(format!("{bad}\n").as_bytes()).unwrap_err();
            match err {
                GraphError::Parse { line, message } => {
                    assert_eq!(line, 1, "{bad}");
                    assert!(message.contains("non-finite"), "{bad}: {message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn header_vertex_count_is_authoritative() {
        // Isolated vertex 5 exists only through the declared count.
        let text = "# hyve-graph edge list: 6 vertices, 1 edges\n0 1\n";
        let g = parse(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn header_rejects_out_of_range_vertex() {
        let text = "# hyve-graph edge list: 2 vertices, 1 edges\n0 2\n";
        let err = parse(text.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 2,
                num_vertices: 2,
            }
        );
    }

    #[test]
    fn zero_vertex_header_with_edges_is_an_error() {
        let text = "# hyve-graph edge list: 0 vertices, 1 edges\n0 0\n";
        assert!(matches!(
            parse(text.as_bytes()),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn truncated_file_contradicts_header() {
        let text = "# hyve-graph edge list: 4 vertices, 3 edges\n0 1\n1 2\n";
        let err = parse(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 1, "blame lands on the header line");
                assert!(message.contains("truncated"), "{message}");
                assert!(message.contains("3 edges, found 2"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn excess_edges_contradict_header() {
        let text = "# hyve-graph edge list: 4 vertices, 1 edges\n0 1\n1 2\n";
        let err = parse(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("more edges"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn malformed_header_is_an_error() {
        let err = parse("# hyve-graph edge list: lots of stuff\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        let err =
            parse("# hyve-graph edge list: -3 vertices, 1 edges\n0 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("vertex count"), "{err}");
    }

    #[test]
    fn mid_file_banner_is_just_a_comment() {
        let text = "0 1\n# hyve-graph edge list: 1 vertices, 0 edges\n1 2\n";
        let g = parse(text.as_bytes()).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn round_trip() {
        let mut orig = EdgeList::new(5);
        orig.extend([
            Edge::new(0, 1),
            Edge::with_weight(1, 4, 0.25),
            Edge::new(3, 2),
        ]);
        let mut buf = Vec::new();
        write(&orig, &mut buf).unwrap();
        let back = parse(buf.as_slice()).unwrap();
        assert_eq!(back.len(), orig.len());
        for (a, b) in back.iter().zip(orig.iter()) {
            assert_eq!(a, b);
        }
    }
}
