//! SNAP-style text edge-list I/O.
//!
//! The paper's datasets ship in the SNAP format: `#`-prefixed comment lines
//! followed by whitespace-separated `src dst [weight]` rows. [`parse`]
//! accepts any `BufRead`; pass `&mut reader` if you need the reader back
//! afterwards.

use crate::edgelist::EdgeList;
use crate::error::GraphError;
use crate::types::Edge;
use std::io::{BufRead, Write};

/// Parses a SNAP-style edge list. The vertex count is one past the largest
/// index seen (SNAP files carry no explicit count).
///
/// ```
/// use hyve_graph::io::parse;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "# demo graph\n0\t1\n1 2 0.5\n";
/// let g = parse(text.as_bytes())?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.len(), 2);
/// assert_eq!(g.edges()[1].weight, 0.5);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`GraphError::Parse`] with the 1-based line number on malformed rows or
/// I/O failure.
pub fn parse<R: BufRead>(reader: R) -> Result<EdgeList, GraphError> {
    let mut edges = Vec::new();
    let mut max_vertex = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Parse {
            line: idx + 1,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("invalid {what}"),
            })
        };
        let src = parse_u32(parts.next(), "source vertex")?;
        let dst = parse_u32(parts.next(), "destination vertex")?;
        let weight = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: "invalid weight".into(),
            })?,
            None => 1.0,
        };
        max_vertex = max_vertex.max(src).max(dst);
        edges.push(Edge::with_weight(src, dst, weight));
    }
    let num_vertices = if edges.is_empty() { 0 } else { max_vertex + 1 };
    let mut list = EdgeList::new(num_vertices);
    list.extend(edges);
    Ok(list)
}

/// Writes an edge list in SNAP format. Weights are emitted only when ≠ 1.0.
/// A `&mut` writer may be passed if the writer is needed afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write<W: Write>(g: &EdgeList, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# hyve-graph edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.len()
    )?;
    for e in g.iter() {
        if e.weight == 1.0 {
            writeln!(writer, "{}\t{}", e.src.raw(), e.dst.raw())?;
        } else {
            writeln!(writer, "{}\t{}\t{}", e.src.raw(), e.dst.raw(), e.weight)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n# another\n2 3\n";
        let g = parse(text.as_bytes()).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn parses_weights() {
        let g = parse("0 1 2.5\n".as_bytes()).unwrap();
        assert_eq!(g.edges()[0].weight, 2.5);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("0 1\nbogus\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_destination_is_an_error() {
        let err = parse("7\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("destination"));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse("# nothing\n".as_bytes()).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn round_trip() {
        let mut orig = EdgeList::new(5);
        orig.extend([
            Edge::new(0, 1),
            Edge::with_weight(1, 4, 0.25),
            Edge::new(3, 2),
        ]);
        let mut buf = Vec::new();
        write(&orig, &mut buf).unwrap();
        let back = parse(buf.as_slice()).unwrap();
        assert_eq!(back.len(), orig.len());
        for (a, b) in back.iter().zip(orig.iter()) {
            assert_eq!(a, b);
        }
    }
}
