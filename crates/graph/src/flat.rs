//! [`FlatGrid`]: a flat structure-of-arrays image of a [`GridGraph`].
//!
//! The mutable grid stores each block as its own `Vec<Edge>` (AoS, with §5
//! slack and overflow segments for dynamic updates). That is the right shape
//! for O(1) insertion but the wrong shape for the simulator's hot loop,
//! which streams every edge of every block once per iteration. `FlatGrid`
//! re-materialises the grid the way the paper's §3.4 layout actually sits in
//! edge memory — one contiguous edge stream with a per-block offset table —
//! split into parallel `src`/`dst`/`weight` columns so a block walk is a
//! pure sequential scan with no per-block pointer chase.
//!
//! Blocks appear in row-major order (matching
//! [`BlockId::linear`](crate::partition::BlockId::linear)) and edges within
//! a block keep the source grid's order, so iterating a `FlatGrid` visits
//! edges in exactly the same order as [`GridGraph::iter_edges`].

use crate::grid::GridGraph;
use crate::types::Edge;
use std::ops::Range;

/// A read-only structure-of-arrays snapshot of a [`GridGraph`].
///
/// Built with [`GridGraph::flatten`] (owned snapshot) or served from the
/// grid's memoized [`GridGraph::flat`] cache; the grid remains the mutable
/// representation (dynamic §5 updates go there) and invalidates the cache
/// on mutation.
///
/// ```
/// use hyve_graph::{Edge, EdgeList, GridGraph};
///
/// # fn main() -> Result<(), hyve_graph::GraphError> {
/// let g = EdgeList::from_edges(8, [Edge::new(2, 4), Edge::new(0, 7)])?;
/// let flat = GridGraph::partition(&g, 4)?.flatten();
/// assert_eq!(flat.block_len(1, 2), 1); // e2.4 in B1.2, as in Fig. 1
/// assert_eq!(flat.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlatGrid {
    p: u32,
    num_vertices: u32,
    /// Row-major block boundaries into the edge columns; length `P² + 1`.
    offsets: Vec<usize>,
    src: Vec<u32>,
    dst: Vec<u32>,
    weight: Vec<f32>,
    /// Per-vertex out-degree, computed once at flatten time so runs don't
    /// rescan the edge stream for it.
    out_degrees: Vec<u32>,
}

impl FlatGrid {
    /// Flattens a grid into contiguous SoA edge columns.
    pub fn from_grid(grid: &GridGraph) -> Self {
        let p = grid.num_intervals();
        let ne = grid.num_edges() as usize;
        let mut offsets = Vec::with_capacity(p as usize * p as usize + 1);
        let mut src = Vec::with_capacity(ne);
        let mut dst = Vec::with_capacity(ne);
        let mut weight = Vec::with_capacity(ne);
        offsets.push(0);
        let mut out_degrees = vec![0u32; grid.num_vertices() as usize];
        for block in grid.blocks() {
            for e in block.edges() {
                src.push(e.src.raw());
                dst.push(e.dst.raw());
                weight.push(e.weight);
                // Dynamic updates may append edges whose endpoints live in
                // reserved padding slots beyond the materialised vertex
                // count; grow rather than panic on those.
                if e.src.index() >= out_degrees.len() {
                    out_degrees.resize(e.src.index() + 1, 0);
                }
                out_degrees[e.src.index()] += 1;
            }
            offsets.push(src.len());
        }
        FlatGrid {
            p,
            num_vertices: grid.num_vertices(),
            offsets,
            src,
            dst,
            weight,
            out_degrees,
        }
    }

    /// Number of intervals `P`.
    pub fn num_intervals(&self) -> u32 {
        self.p
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.src.len() as u64
    }

    /// The edge-column range of the block at (src interval, dst interval) —
    /// an O(1) offset-table lookup.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is ≥ P.
    pub fn block_range(&self, src: u32, dst: u32) -> Range<usize> {
        let p = self.p;
        assert!(
            src < p && dst < p,
            "block ({src},{dst}) out of a {p}x{p} grid"
        );
        let i = src as usize * p as usize + dst as usize;
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Number of edges in the block at (src interval, dst interval).
    pub fn block_len(&self, src: u32, dst: u32) -> usize {
        self.block_range(src, dst).len()
    }

    /// Iterates the block's edges, materialised by value from the columns.
    pub fn block_edges(&self, src: u32, dst: u32) -> impl Iterator<Item = Edge> + '_ {
        self.edges_in(self.block_range(src, dst))
    }

    /// Iterates the edges in an arbitrary column `range` (as produced by
    /// [`block_range`](Self::block_range)).
    pub fn edges_in(&self, range: Range<usize>) -> impl Iterator<Item = Edge> + '_ {
        self.src[range.clone()]
            .iter()
            .zip(&self.dst[range.clone()])
            .zip(&self.weight[range])
            .map(|((&s, &d), &w)| Edge::with_weight(s, d, w))
    }

    /// Iterates every edge in block row-major order — the same order as
    /// [`GridGraph::iter_edges`] on the source grid.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges_in(0..self.src.len())
    }

    /// Out-degree of every vertex, tallied once at flatten time.
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// The contiguous source-vertex column.
    pub fn srcs(&self) -> &[u32] {
        &self.src
    }

    /// The contiguous destination-vertex column.
    pub fn dsts(&self) -> &[u32] {
        &self.dst
    }

    /// The contiguous weight column.
    pub fn weights(&self) -> &[f32] {
        &self.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    /// The paper's Fig. 1 graph (same fixture as the grid tests).
    fn fig1() -> EdgeList {
        EdgeList::from_edges(
            8,
            [
                (1, 0),
                (0, 7),
                (2, 3),
                (2, 4),
                (3, 4),
                (3, 7),
                (4, 1),
                (4, 5),
                (6, 2),
                (6, 0),
                (7, 1),
            ]
            .into_iter()
            .map(|(s, d)| Edge::new(s, d)),
        )
        .unwrap()
    }

    #[test]
    fn flatten_matches_block_assignment() {
        let grid = GridGraph::partition(&fig1(), 4).unwrap();
        let flat = grid.flatten();
        assert_eq!(flat.num_intervals(), 4);
        assert_eq!(flat.num_vertices(), 8);
        assert_eq!(flat.num_edges(), 11);
        for s in 0..4 {
            for d in 0..4 {
                assert_eq!(flat.block_len(s, d), grid.block_at(s, d).len());
                let from_flat: Vec<Edge> = flat.block_edges(s, d).collect();
                assert_eq!(from_flat, grid.block_at(s, d).edges());
            }
        }
    }

    #[test]
    fn iteration_order_matches_grid() {
        let grid = GridGraph::partition(&fig1(), 4).unwrap();
        let flat = grid.flatten();
        let from_flat: Vec<Edge> = flat.iter_edges().collect();
        let from_grid: Vec<Edge> = grid.iter_edges().copied().collect();
        assert_eq!(from_flat, from_grid);
    }

    #[test]
    fn out_degrees_match_source_list() {
        let g = fig1();
        let flat = GridGraph::partition(&g, 4).unwrap().flatten();
        assert_eq!(flat.out_degrees(), g.out_degrees());
    }

    #[test]
    fn columns_are_contiguous_and_aligned() {
        let flat = GridGraph::partition(&fig1(), 4).unwrap().flatten();
        assert_eq!(flat.srcs().len(), 11);
        assert_eq!(flat.dsts().len(), 11);
        assert_eq!(flat.weights().len(), 11);
        // Offsets are monotone and cover the columns exactly.
        let r = flat.block_range(3, 3);
        assert!(r.end <= flat.srcs().len());
        assert_eq!(flat.block_range(0, 0).start, 0);
    }

    #[test]
    fn empty_grid_flattens() {
        let flat = GridGraph::partition(&EdgeList::new(8), 4)
            .unwrap()
            .flatten();
        assert_eq!(flat.num_edges(), 0);
        for s in 0..4 {
            for d in 0..4 {
                assert!(flat.block_range(s, d).is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of a")]
    fn block_range_out_of_bounds_panics() {
        let flat = GridGraph::partition(&fig1(), 2).unwrap().flatten();
        let _ = flat.block_range(2, 0);
    }
}
