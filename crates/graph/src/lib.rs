//! # hyve-graph — graph substrate for the HyVE reproduction
//!
//! Everything the HyVE simulator needs to hold and shape graphs:
//!
//! * [`EdgeList`] / [`Csr`] — basic containers,
//! * [`GridGraph`] — the interval-block (P×P) partitioning of §2.1/Fig. 1,
//!   with per-block reserved slack for dynamic updates (§5),
//! * [`FlatGrid`] — a read-only structure-of-arrays snapshot of a grid
//!   (§3.4's contiguous edge stream + offset table) for fast streaming,
//! * [`DynamicGrid`] — the O(1) add/delete working flow for evolving graphs,
//! * [`generate`] — R-MAT and Erdős–Rényi generators,
//! * [`DatasetProfile`] — scaled-down stand-ins for the paper's five SNAP
//!   datasets (YT, WK, AS, LJ, TW) preserving |E|/|V| ratio and skew,
//! * [`io`] — SNAP-style text edge-list parsing.
//!
//! ## Example
//!
//! ```
//! use hyve_graph::{DatasetProfile, GridGraph};
//!
//! # fn main() -> Result<(), hyve_graph::GraphError> {
//! let edges = DatasetProfile::youtube_scaled().generate(7);
//! let grid = GridGraph::partition(&edges, 8)?;
//! assert_eq!(grid.num_blocks(), 64);
//! assert_eq!(grid.num_edges(), edges.len() as u64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod datasets;
pub mod dynamic;
pub mod edgelist;
pub mod error;
pub mod flat;
pub mod generate;
pub mod grid;
pub mod io;
pub mod partition;
pub mod stats;
pub mod types;

pub use csr::Csr;
pub use datasets::DatasetProfile;
pub use dynamic::{DynamicGrid, Mutation, MutationOutcome};
pub use edgelist::EdgeList;
pub use error::GraphError;
pub use flat::FlatGrid;
pub use generate::{ErdosRenyi, Rmat};
pub use grid::{Block, GridGraph};
pub use partition::{block_sparsity, BlockId, IntervalPartition, PartitionScheme, SparsityStats};
pub use stats::DegreeStats;
pub use types::{Edge, VertexId};
