//! Synthetic graph generators.
//!
//! The paper evaluates on five SNAP graphs we cannot redistribute; the
//! [`Rmat`] generator (Chakrabarti et al.) reproduces their power-law degree
//! skew — the property that determines block sparsity (Table 1's `Navg`),
//! read/write mixes and partition balance — and [`ErdosRenyi`] provides a
//! uniform control. Both are fully deterministic given a seed.

use crate::edgelist::EdgeList;
use crate::types::Edge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT recursive-matrix generator.
///
/// ```
/// use hyve_graph::Rmat;
/// let g = Rmat::new(1_000, 5_000).generate(42);
/// assert_eq!(g.num_vertices(), 1_000);
/// assert_eq!(g.len(), 5_000);
/// // Deterministic:
/// assert_eq!(g, Rmat::new(1_000, 5_000).generate(42));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rmat {
    num_vertices: u32,
    num_edges: usize,
    /// Quadrant probabilities (a, b, c); d = 1 − a − b − c.
    a: f64,
    b: f64,
    c: f64,
    allow_self_loops: bool,
}

impl Rmat {
    /// Creates a generator with the canonical skewed parameters
    /// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) used for social-style graphs.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` is zero.
    pub fn new(num_vertices: u32, num_edges: usize) -> Self {
        assert!(num_vertices > 0, "graph needs at least one vertex");
        Rmat {
            num_vertices,
            num_edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            allow_self_loops: false,
        }
    }

    /// Overrides the quadrant probabilities.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < a, b, c` and `a + b + c < 1`.
    pub fn with_probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(
            a > 0.0 && b > 0.0 && c > 0.0,
            "probabilities must be positive"
        );
        assert!(a + b + c < 1.0, "a + b + c must leave room for d");
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Allows self-loop edges (default: rejected and resampled).
    pub fn with_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Generates the edge list deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> EdgeList {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (32 - (self.num_vertices - 1).leading_zeros()).max(1);
        let side = 1u64 << scale;
        let mut list = EdgeList::new(self.num_vertices);
        let mut edges = Vec::with_capacity(self.num_edges);
        while edges.len() < self.num_edges {
            let (mut x, mut y) = (0u64, 0u64);
            let mut step = side / 2;
            while step >= 1 {
                let r: f64 = rng.gen();
                if r < self.a {
                    // top-left: nothing to add
                } else if r < self.a + self.b {
                    y += step;
                } else if r < self.a + self.b + self.c {
                    x += step;
                } else {
                    x += step;
                    y += step;
                }
                step /= 2;
            }
            // Fold the 2^scale square down onto the requested vertex count.
            let src = (x % u64::from(self.num_vertices)) as u32;
            let dst = (y % u64::from(self.num_vertices)) as u32;
            if !self.allow_self_loops && src == dst {
                continue;
            }
            edges.push(Edge::new(src, dst));
        }
        list.extend(edges);
        list
    }
}

/// Uniform Erdős–Rényi G(n, m) generator.
///
/// ```
/// use hyve_graph::ErdosRenyi;
/// let g = ErdosRenyi::new(100, 500).generate(1);
/// assert_eq!(g.len(), 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErdosRenyi {
    num_vertices: u32,
    num_edges: usize,
}

impl ErdosRenyi {
    /// Creates a G(n, m) generator.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` < 2 (no non-loop edges exist).
    pub fn new(num_vertices: u32, num_edges: usize) -> Self {
        assert!(num_vertices >= 2, "need at least two vertices");
        ErdosRenyi {
            num_vertices,
            num_edges,
        }
    }

    /// Generates the edge list deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> EdgeList {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut list = EdgeList::new(self.num_vertices);
        let mut edges = Vec::with_capacity(self.num_edges);
        while edges.len() < self.num_edges {
            let src = rng.gen_range(0..self.num_vertices);
            let dst = rng.gen_range(0..self.num_vertices);
            if src == dst {
                continue;
            }
            edges.push(Edge::new(src, dst));
        }
        list.extend(edges);
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic_and_sized() {
        let g1 = Rmat::new(512, 2048).generate(7);
        let g2 = Rmat::new(512, 2048).generate(7);
        assert_eq!(g1, g2);
        assert_eq!(g1.len(), 2048);
        assert_eq!(g1.num_vertices(), 512);
        let g3 = Rmat::new(512, 2048).generate(8);
        assert_ne!(g1, g3, "different seeds must differ");
    }

    #[test]
    fn rmat_no_self_loops_by_default() {
        let g = Rmat::new(100, 1000).generate(3);
        assert!(g.iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn rmat_edges_in_range() {
        let g = Rmat::new(300, 3000).generate(11); // non-power-of-two count
        for e in g.iter() {
            assert!(e.src.raw() < 300);
            assert!(e.dst.raw() < 300);
        }
    }

    #[test]
    fn rmat_is_skewed_vs_uniform() {
        // R-MAT's defining property: max degree far above the mean.
        let n = 2048u32;
        let m = 16 * n as usize;
        let rmat = Rmat::new(n, m).generate(5);
        let er = ErdosRenyi::new(n, m).generate(5);
        let max_rmat = *rmat.out_degrees().iter().max().unwrap();
        let max_er = *er.out_degrees().iter().max().unwrap();
        assert!(
            max_rmat > 2 * max_er,
            "R-MAT max degree {max_rmat} should dwarf ER {max_er}"
        );
    }

    #[test]
    fn rmat_custom_probabilities() {
        // Symmetric probabilities flatten the skew.
        let g = Rmat::new(256, 4096)
            .with_probabilities(0.25, 0.25, 0.25)
            .generate(9);
        let skewed = Rmat::new(256, 4096).generate(9);
        let max_flat = *g.out_degrees().iter().max().unwrap();
        let max_skew = *skewed.out_degrees().iter().max().unwrap();
        assert!(max_skew > max_flat);
    }

    #[test]
    #[should_panic(expected = "leave room for d")]
    fn rmat_rejects_degenerate_probabilities() {
        let _ = Rmat::new(8, 8).with_probabilities(0.5, 0.3, 0.3);
    }

    #[test]
    fn rmat_self_loops_opt_in() {
        let g = Rmat::new(4, 4000).with_self_loops(true).generate(2);
        assert!(g.iter().any(|e| e.is_self_loop()));
    }

    #[test]
    fn erdos_renyi_uniformish() {
        let g = ErdosRenyi::new(100, 10_000).generate(4);
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap() as f64;
        let mean = 10_000.0 / 100.0;
        assert!(
            max < 2.0 * mean,
            "uniform degrees should stay near the mean"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn erdos_renyi_needs_two_vertices() {
        let _ = ErdosRenyi::new(1, 1);
    }
}
