//! Compressed sparse row adjacency — used by the CPU baselines and the
//! sequential reference algorithms.

use crate::edgelist::EdgeList;
use crate::types::VertexId;

/// A CSR (compressed sparse row) adjacency structure over out-edges.
///
/// ```
/// use hyve_graph::{Csr, Edge, EdgeList};
///
/// # fn main() -> Result<(), hyve_graph::GraphError> {
/// let g = EdgeList::from_edges(3, [Edge::new(0, 1), Edge::new(0, 2), Edge::new(2, 1)])?;
/// let csr = Csr::from_edge_list(&g);
/// assert_eq!(csr.out_degree(hyve_graph::VertexId::new(0)), 2);
/// let targets: Vec<u32> = csr.neighbors(hyve_graph::VertexId::new(0))
///     .map(|(v, _)| v.raw()).collect();
/// assert_eq!(targets, vec![1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<f32>,
}

impl Csr {
    /// Builds the CSR from an edge list (counting sort; O(V + E)).
    pub fn from_edge_list(g: &EdgeList) -> Self {
        let nv = g.num_vertices() as usize;
        let mut counts = vec![0usize; nv + 1];
        for e in g.iter() {
            counts[e.src.index() + 1] += 1;
        }
        for i in 1..=nv {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![VertexId::default(); g.len()];
        let mut weights = vec![0.0f32; g.len()];
        for e in g.iter() {
            let slot = cursor[e.src.index()];
            targets[slot] = e.dst;
            weights[slot] = e.weight;
            cursor[e.src.index()] += 1;
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: VertexId) -> u32 {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as u32
    }

    /// Iterates over `(target, weight)` pairs of a vertex's out-edges.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        let range = self.offsets[v.index()]..self.offsets[v.index() + 1];
        range
            .clone()
            .map(move |i| (self.targets[i], self.weights[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn csr() -> Csr {
        let g = EdgeList::from_edges(
            4,
            [
                Edge::new(2, 0),
                Edge::new(0, 1),
                Edge::new(0, 3),
                Edge::new(2, 3),
                Edge::with_weight(3, 0, 2.0),
            ],
        )
        .unwrap();
        Csr::from_edge_list(&g)
    }

    #[test]
    fn shape_preserved() {
        let c = csr();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 5);
    }

    #[test]
    fn degrees_and_neighbors() {
        let c = csr();
        assert_eq!(c.out_degree(VertexId::new(0)), 2);
        assert_eq!(c.out_degree(VertexId::new(1)), 0);
        assert_eq!(c.out_degree(VertexId::new(2)), 2);
        let n: Vec<u32> = c
            .neighbors(VertexId::new(2))
            .map(|(v, _)| v.raw())
            .collect();
        assert_eq!(n, vec![0, 3]);
        let w: Vec<f32> = c.neighbors(VertexId::new(3)).map(|(_, w)| w).collect();
        assert_eq!(w, vec![2.0]);
    }

    #[test]
    fn empty_vertex_iterates_nothing() {
        let c = csr();
        assert_eq!(c.neighbors(VertexId::new(1)).count(), 0);
    }

    #[test]
    fn total_degree_equals_edges() {
        let c = csr();
        let sum: u32 = (0..c.num_vertices())
            .map(|v| c.out_degree(VertexId::new(v)))
            .sum();
        assert_eq!(sum as usize, c.num_edges());
    }
}
