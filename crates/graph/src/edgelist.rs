//! The [`EdgeList`] container — the on-disk / pre-partitioning form of a
//! graph, matching the edge-centric model's view of "a big array of edges".

use crate::error::GraphError;
use crate::types::{Edge, VertexId};

/// An edge list with a declared vertex count.
///
/// ```
/// use hyve_graph::{Edge, EdgeList};
///
/// # fn main() -> Result<(), hyve_graph::GraphError> {
/// let mut g = EdgeList::new(4);
/// g.try_push(Edge::new(0, 1))?;
/// g.try_push(Edge::new(1, 2))?;
/// assert_eq!(g.len(), 2);
/// assert_eq!(g.out_degrees()[0], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EdgeList {
    num_vertices: u32,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Builds an edge list from an iterator, validating vertex ranges.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if any endpoint is ≥ `num_vertices`.
    pub fn from_edges<I>(num_vertices: u32, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut list = EdgeList::new(num_vertices);
        for e in edges {
            list.try_push(e)?;
        }
        Ok(list)
    }

    /// Appends an edge, validating its endpoints.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if an endpoint is ≥ the vertex count.
    pub fn try_push(&mut self, e: Edge) -> Result<(), GraphError> {
        for v in [e.src, e.dst] {
            if v.raw() >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v.raw(),
                    num_vertices: self.num_vertices,
                });
            }
        }
        self.edges.push(e);
        Ok(())
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges as a slice.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates over the edges.
    pub fn iter(&self) -> std::slice::Iter<'_, Edge> {
        self.edges.iter()
    }

    /// Average edges per vertex.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / f64::from(self.num_vertices)
        }
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.src.index()] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.dst.index()] += 1;
        }
        deg
    }

    /// Sorts edges by (destination, source) — the layout edge-centric
    /// frameworks use to improve destination locality.
    pub fn sort_by_dst(&mut self) {
        self.edges
            .sort_unstable_by_key(|e| (e.dst.raw(), e.src.raw()));
    }

    /// Sorts edges by (source, destination).
    pub fn sort_by_src(&mut self) {
        self.edges
            .sort_unstable_by_key(|e| (e.src.raw(), e.dst.raw()));
    }

    /// Removes duplicate (src, dst) pairs, keeping the first weight seen.
    /// Sorts by source as a side effect.
    pub fn dedup(&mut self) {
        self.sort_by_src();
        self.edges.dedup_by_key(|e| (e.src, e.dst));
    }

    /// Removes self-loops.
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|e| !e.is_self_loop());
    }

    /// Consumes the list and returns the raw edge vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Highest vertex id actually referenced, if any edge exists.
    pub fn max_vertex(&self) -> Option<VertexId> {
        self.edges.iter().map(|e| e.src.max(e.dst)).max()
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;
    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

impl Extend<Edge> for EdgeList {
    /// Extends without validation — callers who need range checking should
    /// use [`EdgeList::try_push`].
    fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        // The paper's Fig. 1 example graph: 8 vertices, 11 edges.
        EdgeList::from_edges(
            8,
            [
                (1, 0),
                (0, 7),
                (2, 3),
                (2, 4),
                (3, 4),
                (3, 7),
                (4, 1),
                (4, 5),
                (6, 2),
                (6, 0),
                (7, 1),
            ]
            .into_iter()
            .map(|(s, d)| Edge::new(s, d)),
        )
        .unwrap()
    }

    #[test]
    fn fig1_graph_counts() {
        let g = sample();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.len(), 11);
        assert!(!g.is_empty());
        assert!((g.avg_degree() - 11.0 / 8.0).abs() < 1e-12);
        assert_eq!(g.max_vertex(), Some(VertexId::new(7)));
    }

    #[test]
    fn degrees_match_fig1() {
        let g = sample();
        let out = g.out_degrees();
        assert_eq!(out, vec![1, 1, 2, 2, 2, 0, 2, 1]);
        let inn = g.in_degrees();
        assert_eq!(inn.iter().sum::<u32>(), 11);
        assert_eq!(inn[1], 2); // 4->1 and 7->1
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = EdgeList::new(3);
        assert_eq!(
            g.try_push(Edge::new(0, 3)),
            Err(GraphError::VertexOutOfRange {
                vertex: 3,
                num_vertices: 3
            })
        );
        assert!(g.try_push(Edge::new(2, 0)).is_ok());
    }

    #[test]
    fn sorting_orders() {
        let mut g = sample();
        g.sort_by_dst();
        let dsts: Vec<u32> = g.iter().map(|e| e.dst.raw()).collect();
        let mut sorted = dsts.clone();
        sorted.sort_unstable();
        assert_eq!(dsts, sorted);

        g.sort_by_src();
        let srcs: Vec<u32> = g.iter().map(|e| e.src.raw()).collect();
        let mut sorted = srcs.clone();
        sorted.sort_unstable();
        assert_eq!(srcs, sorted);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut g =
            EdgeList::from_edges(3, [Edge::new(0, 1), Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        g.dedup();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn self_loop_removal() {
        let mut g = EdgeList::from_edges(3, [Edge::new(0, 0), Edge::new(0, 1)]).unwrap();
        g.remove_self_loops();
        assert_eq!(g.len(), 1);
        assert_eq!(g.edges()[0], Edge::new(0, 1));
    }

    #[test]
    fn iteration_and_into_edges() {
        let g = sample();
        assert_eq!((&g).into_iter().count(), 11);
        let v = g.clone().into_edges();
        assert_eq!(v.len(), 11);
    }

    #[test]
    fn degenerate_empty() {
        let g = EdgeList::new(0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_vertex(), None);
        assert!(g.is_empty());
    }
}
