//! Core graph value types: [`VertexId`] and [`Edge`].

use std::fmt;

/// Index of a vertex in a graph.
///
/// A thin newtype over `u32` — the paper's edge format is two 32-bit vertex
/// indices (§6.2), so `u32` is the faithful width.
///
/// ```
/// use hyve_graph::VertexId;
/// let v = VertexId::new(7);
/// assert_eq!(v.index(), 7usize);
/// assert_eq!(u32::from(v), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id.
    pub const fn new(id: u32) -> Self {
        VertexId(id)
    }

    /// The raw index value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The index as a `usize`, for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A directed edge with an optional constant weight.
///
/// The paper stores an edge as source + destination index (64 bits) "and
/// possibly a constant edge weight" (§3.1); we carry the weight for
/// SSSP/SpMV and let unweighted algorithms ignore it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Constant weight (1.0 for unweighted graphs).
    pub weight: f32,
}

impl Edge {
    /// Size of the paper's on-memory edge record: two 32-bit indices.
    pub const BITS: u64 = 64;

    /// Creates an unweighted edge (weight 1.0).
    ///
    /// ```
    /// use hyve_graph::Edge;
    /// let e = Edge::new(2, 4);
    /// assert_eq!(e.src.raw(), 2);
    /// assert_eq!(e.weight, 1.0);
    /// ```
    pub fn new(src: u32, dst: u32) -> Self {
        Edge {
            src: VertexId::new(src),
            dst: VertexId::new(dst),
            weight: 1.0,
        }
    }

    /// Creates a weighted edge.
    pub fn with_weight(src: u32, dst: u32, weight: f32) -> Self {
        Edge {
            src: VertexId::new(src),
            dst: VertexId::new(dst),
            weight,
        }
    }

    /// True if the edge is a self-loop.
    pub fn is_self_loop(&self) -> bool {
        self.src == self.dst
    }

    /// The edge with source and destination swapped.
    pub fn reversed(self) -> Edge {
        Edge {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_round_trips() {
        let v = VertexId::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(u32::from(v), 42);
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn vertex_ids_order_by_index() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert_eq!(VertexId::default(), VertexId::new(0));
    }

    #[test]
    fn edge_basics() {
        let e = Edge::new(1, 0);
        assert_eq!(e.weight, 1.0);
        assert!(!e.is_self_loop());
        assert!(Edge::new(3, 3).is_self_loop());
        assert_eq!(e.to_string(), "v1->v0");
        assert_eq!(Edge::BITS, 64);
    }

    #[test]
    fn edge_reversal() {
        let e = Edge::with_weight(1, 2, 2.5);
        let r = e.reversed();
        assert_eq!(r.src.raw(), 2);
        assert_eq!(r.dst.raw(), 1);
        assert_eq!(r.weight, 2.5);
        assert_eq!(r.reversed(), e);
    }
}
