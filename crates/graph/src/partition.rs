//! Interval-block partitioning (paper §2.1, Fig. 1).
//!
//! Vertices are divided into `P` *intervals*; edges into `P²` *blocks*:
//! edge `(s, d)` lands in block `(interval(s), interval(d))`. HyVE adopts the
//! hash-based (round-robin) assignment of ForeGraph/GraphH to balance
//! workloads across processing units (§4.3); contiguous ranges are also
//! provided for comparison and for GraphR-style index partitioning.

use crate::edgelist::EdgeList;
use crate::error::GraphError;
use crate::types::{Edge, VertexId};
use std::collections::HashMap;

/// Coordinates of one block in the P×P grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Source interval index.
    pub src: u32,
    /// Destination interval index.
    pub dst: u32,
}

impl BlockId {
    /// Creates a block id.
    pub fn new(src: u32, dst: u32) -> Self {
        BlockId { src, dst }
    }

    /// Row-major linear index within a P×P grid.
    pub fn linear(self, p: u32) -> usize {
        self.src as usize * p as usize + self.dst as usize
    }
}

/// How vertices map to intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionScheme {
    /// Contiguous index ranges (GridGraph/NXgraph style, paper Fig. 1).
    #[default]
    Contiguous,
    /// Round-robin by index — the hash-based balancing of ForeGraph/GraphH
    /// that HyVE uses to equalise per-PU work (§4.3).
    RoundRobin,
}

/// A partition of `num_vertices` vertices into `num_intervals` intervals.
///
/// ```
/// use hyve_graph::{IntervalPartition, PartitionScheme, VertexId};
///
/// # fn main() -> Result<(), hyve_graph::GraphError> {
/// let p = IntervalPartition::new(8, 4, PartitionScheme::Contiguous)?;
/// assert_eq!(p.interval_of(VertexId::new(5)), 2);
/// assert_eq!(p.interval_len(3), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalPartition {
    num_vertices: u32,
    num_intervals: u32,
    scheme: PartitionScheme,
    /// Ceiling of vertices per interval (contiguous scheme).
    stride: u32,
}

impl IntervalPartition {
    /// Creates a partition.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] for zero vertices;
    /// [`GraphError::InvalidPartition`] when `num_intervals` is zero or
    /// exceeds the vertex count.
    pub fn new(
        num_vertices: u32,
        num_intervals: u32,
        scheme: PartitionScheme,
    ) -> Result<Self, GraphError> {
        if num_vertices == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if num_intervals == 0 {
            return Err(GraphError::InvalidPartition {
                intervals: num_intervals,
                reason: "must be at least 1",
            });
        }
        if num_intervals > num_vertices {
            return Err(GraphError::InvalidPartition {
                intervals: num_intervals,
                reason: "more intervals than vertices",
            });
        }
        Ok(IntervalPartition {
            num_vertices,
            num_intervals,
            scheme,
            stride: num_vertices.div_ceil(num_intervals),
        })
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of intervals `P`.
    pub fn num_intervals(&self) -> u32 {
        self.num_intervals
    }

    /// The assignment scheme.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Interval that owns vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn interval_of(&self, v: VertexId) -> u32 {
        assert!(
            v.raw() < self.num_vertices,
            "vertex {v} out of range ({} vertices)",
            self.num_vertices
        );
        match self.scheme {
            PartitionScheme::Contiguous => v.raw() / self.stride,
            PartitionScheme::RoundRobin => v.raw() % self.num_intervals,
        }
    }

    /// Position of vertex `v` within its interval's local storage.
    pub fn local_index(&self, v: VertexId) -> u32 {
        match self.scheme {
            PartitionScheme::Contiguous => v.raw() % self.stride,
            PartitionScheme::RoundRobin => v.raw() / self.num_intervals,
        }
    }

    /// Reconstructs the global vertex id from (interval, local index).
    pub fn global_index(&self, interval: u32, local: u32) -> VertexId {
        match self.scheme {
            PartitionScheme::Contiguous => VertexId::new(interval * self.stride + local),
            PartitionScheme::RoundRobin => VertexId::new(local * self.num_intervals + interval),
        }
    }

    /// Number of vertices in interval `i`.
    pub fn interval_len(&self, i: u32) -> u32 {
        debug_assert!(i < self.num_intervals);
        match self.scheme {
            PartitionScheme::Contiguous => {
                let start = i * self.stride;
                let end = (start + self.stride).min(self.num_vertices);
                end.saturating_sub(start)
            }
            PartitionScheme::RoundRobin => {
                let base = self.num_vertices / self.num_intervals;
                let extra = u32::from(i < self.num_vertices % self.num_intervals);
                base + extra
            }
        }
    }

    /// Largest interval size (the on-chip memory must hold this many).
    pub fn max_interval_len(&self) -> u32 {
        (0..self.num_intervals)
            .map(|i| self.interval_len(i))
            .max()
            .unwrap_or(0)
    }

    /// Block of an edge.
    pub fn block_of(&self, e: &Edge) -> BlockId {
        BlockId::new(self.interval_of(e.src), self.interval_of(e.dst))
    }

    /// Iterates over the vertices of interval `i` in local-index order.
    pub fn interval_vertices(&self, i: u32) -> impl Iterator<Item = VertexId> + '_ {
        let len = self.interval_len(i);
        (0..len).map(move |local| self.global_index(i, local))
    }
}

/// Block-occupancy statistics for a fixed block edge-capacity grid
/// (paper Table 1: 8×8-vertex blocks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityStats {
    /// Number of blocks containing at least one edge.
    pub non_empty_blocks: u64,
    /// Total edges counted.
    pub edges: u64,
    /// Average edges per non-empty block (the paper's `Navg`).
    pub avg_edges_per_block: f64,
    /// Largest edge count in any block.
    pub max_edges_per_block: u64,
}

/// Computes GraphR-style block sparsity: vertices are grouped in runs of
/// `block_dim` (GraphR: 8), and the grid of `(⌈V/8⌉)²` logical blocks is
/// scanned for occupancy. Only non-empty blocks are materialised, so this
/// scales to the paper's Twitter-sized grids.
///
/// ```
/// use hyve_graph::{block_sparsity, Edge, EdgeList};
///
/// # fn main() -> Result<(), hyve_graph::GraphError> {
/// let g = EdgeList::from_edges(16, [Edge::new(0, 1), Edge::new(1, 0), Edge::new(9, 9)])?;
/// let s = block_sparsity(&g, 8);
/// assert_eq!(s.non_empty_blocks, 2);
/// assert_eq!(s.avg_edges_per_block, 1.5);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `block_dim` is zero.
pub fn block_sparsity(g: &EdgeList, block_dim: u32) -> SparsityStats {
    assert!(block_dim > 0, "block dimension must be positive");
    let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
    for e in g.iter() {
        let key = (e.src.raw() / block_dim, e.dst.raw() / block_dim);
        *counts.entry(key).or_insert(0) += 1;
    }
    let non_empty = counts.len() as u64;
    let edges = g.len() as u64;
    let max = counts.values().copied().max().unwrap_or(0);
    SparsityStats {
        non_empty_blocks: non_empty,
        edges,
        avg_edges_per_block: if non_empty == 0 {
            0.0
        } else {
            edges as f64 / non_empty as f64
        },
        max_edges_per_block: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contiguous(nv: u32, p: u32) -> IntervalPartition {
        IntervalPartition::new(nv, p, PartitionScheme::Contiguous).unwrap()
    }

    fn round_robin(nv: u32, p: u32) -> IntervalPartition {
        IntervalPartition::new(nv, p, PartitionScheme::RoundRobin).unwrap()
    }

    #[test]
    fn fig1_partitioning() {
        // 8 vertices into 4 intervals: I0={0,1} ... I3={6,7}.
        let p = contiguous(8, 4);
        assert_eq!(p.interval_of(VertexId::new(0)), 0);
        assert_eq!(p.interval_of(VertexId::new(1)), 0);
        assert_eq!(p.interval_of(VertexId::new(2)), 1);
        assert_eq!(p.interval_of(VertexId::new(7)), 3);
        // Edge e2.4 goes to B1.2, exactly as in the paper's example.
        let e = Edge::new(2, 4);
        assert_eq!(p.block_of(&e), BlockId::new(1, 2));
    }

    #[test]
    fn local_global_round_trip_contiguous() {
        let p = contiguous(10, 3); // stride 4: [0..4), [4..8), [8..10)
        for v in 0..10 {
            let v = VertexId::new(v);
            let i = p.interval_of(v);
            let l = p.local_index(v);
            assert_eq!(p.global_index(i, l), v);
        }
        assert_eq!(p.interval_len(0), 4);
        assert_eq!(p.interval_len(2), 2);
        assert_eq!(p.max_interval_len(), 4);
    }

    #[test]
    fn local_global_round_trip_round_robin() {
        let p = round_robin(10, 3);
        for v in 0..10 {
            let v = VertexId::new(v);
            let i = p.interval_of(v);
            let l = p.local_index(v);
            assert_eq!(p.global_index(i, l), v);
        }
        // 10 = 3*3 + 1: interval 0 gets the extra vertex.
        assert_eq!(p.interval_len(0), 4);
        assert_eq!(p.interval_len(1), 3);
        assert_eq!(p.interval_len(2), 3);
    }

    #[test]
    fn round_robin_is_balanced() {
        let p = round_robin(1000, 7);
        let sizes: Vec<u32> = (0..7).map(|i| p.interval_len(i)).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "round robin must balance within 1");
        assert_eq!(sizes.iter().sum::<u32>(), 1000);
    }

    #[test]
    fn interval_vertices_cover_everything_once() {
        for scheme in [PartitionScheme::Contiguous, PartitionScheme::RoundRobin] {
            let p = IntervalPartition::new(23, 5, scheme).unwrap();
            let mut seen = [false; 23];
            for i in 0..5 {
                for v in p.interval_vertices(i) {
                    assert!(!seen[v.index()], "vertex {v} seen twice");
                    seen[v.index()] = true;
                    assert_eq!(p.interval_of(v), i);
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn invalid_partitions_rejected() {
        assert!(matches!(
            IntervalPartition::new(0, 1, PartitionScheme::Contiguous),
            Err(GraphError::EmptyGraph)
        ));
        assert!(IntervalPartition::new(4, 0, PartitionScheme::Contiguous).is_err());
        assert!(IntervalPartition::new(4, 5, PartitionScheme::Contiguous).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn interval_of_out_of_range_panics() {
        let p = contiguous(4, 2);
        let _ = p.interval_of(VertexId::new(4));
    }

    #[test]
    fn block_linear_index() {
        let b = BlockId::new(2, 3);
        assert_eq!(b.linear(4), 11);
    }

    #[test]
    fn sparsity_empty_graph() {
        let g = EdgeList::new(8);
        let s = block_sparsity(&g, 8);
        assert_eq!(s.non_empty_blocks, 0);
        assert_eq!(s.avg_edges_per_block, 0.0);
        assert_eq!(s.max_edges_per_block, 0);
    }

    #[test]
    fn sparsity_counts_blocks() {
        let g = EdgeList::from_edges(
            32,
            [
                Edge::new(0, 0),
                Edge::new(1, 2),
                Edge::new(7, 7),   // all three in block (0,0)
                Edge::new(8, 0),   // block (1,0)
                Edge::new(31, 31), // block (3,3)
            ],
        )
        .unwrap();
        let s = block_sparsity(&g, 8);
        assert_eq!(s.non_empty_blocks, 3);
        assert_eq!(s.edges, 5);
        assert!((s.avg_edges_per_block - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_edges_per_block, 3);
    }
}
