//! Error type for graph construction and manipulation.

use std::error::Error;
use std::fmt;

/// Errors produced by graph containers, partitioning and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no vertices.
    EmptyGraph,
    /// An edge references a vertex outside the declared range.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: u32,
        /// The declared number of vertices.
        num_vertices: u32,
    },
    /// The requested number of intervals is unusable.
    InvalidPartition {
        /// Requested interval count.
        intervals: u32,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A text edge list failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A dynamic mutation could not be applied.
    MutationFailed {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => f.write_str("graph has no vertices"),
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::InvalidPartition { intervals, reason } => {
                write!(f, "invalid partition into {intervals} intervals: {reason}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::MutationFailed { message } => {
                write!(f, "mutation failed: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex 9"));
        assert!(e.to_string().contains("4 vertices"));
        assert!(GraphError::EmptyGraph.to_string().contains("no vertices"));
        let p = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(GraphError::EmptyGraph);
    }
}
