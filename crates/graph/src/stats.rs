//! Degree statistics and skew measures.
//!
//! The paper's workloads are natural graphs whose power-law skew drives
//! everything from block sparsity (Table 1) to PU load balance (§4.3).
//! [`DegreeStats`] summarises a graph's shape; the `hyve info` CLI command
//! and the dataset-profile tests consume it.

use crate::edgelist::EdgeList;

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: u32,
    /// Median degree.
    pub median: u32,
    /// 99th-percentile degree.
    pub p99: u32,
    /// Fraction of vertices with zero degree.
    pub isolated_fraction: f64,
    /// Coefficient of variation (σ/µ) — ~1 for Poisson-like (ER) degrees,
    /// ≫1 for power-law graphs.
    pub coefficient_of_variation: f64,
    /// Fraction of all edges incident to the top 1% highest-degree vertices
    /// — the skew measure that predicts hot intervals.
    pub top1pct_edge_share: f64,
}

impl DegreeStats {
    /// Computes statistics over a degree sequence.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence.
    pub fn from_degrees(degrees: &[u32]) -> Self {
        assert!(!degrees.is_empty(), "need at least one vertex");
        let n = degrees.len();
        let total: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
        let mean = total as f64 / n as f64;
        let variance = degrees
            .iter()
            .map(|&d| {
                let diff = f64::from(d) - mean;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        let mut sorted: Vec<u32> = degrees.to_vec();
        sorted.sort_unstable();
        let median = sorted[n / 2];
        let p99 = sorted[((n as f64 * 0.99) as usize).min(n - 1)];
        let isolated = sorted.iter().take_while(|&&d| d == 0).count();
        // Edge share of the top 1% (at least one vertex).
        let top = (n / 100).max(1);
        let top_sum: u64 = sorted.iter().rev().take(top).map(|&d| u64::from(d)).sum();
        DegreeStats {
            mean,
            max: *sorted.last().expect("non-empty"),
            median,
            p99,
            isolated_fraction: isolated as f64 / n as f64,
            coefficient_of_variation: if mean > 0.0 {
                variance.sqrt() / mean
            } else {
                0.0
            },
            top1pct_edge_share: if total > 0 {
                top_sum as f64 / total as f64
            } else {
                0.0
            },
        }
    }

    /// Out-degree statistics of a graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no vertices.
    pub fn out_degrees(graph: &EdgeList) -> Self {
        Self::from_degrees(&graph.out_degrees())
    }

    /// In-degree statistics of a graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no vertices.
    pub fn in_degrees(graph: &EdgeList) -> Self {
        Self::from_degrees(&graph.in_degrees())
    }

    /// True if the sequence looks heavy-tailed (CoV well above the ~1 of a
    /// Poisson/ER degree distribution).
    pub fn is_skewed(&self) -> bool {
        self.coefficient_of_variation > 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetProfile;
    use crate::generate::{ErdosRenyi, Rmat};

    #[test]
    fn hand_computed_sequence() {
        let s = DegreeStats::from_degrees(&[0, 0, 1, 1, 2, 4]);
        assert!((s.mean - 8.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.max, 4);
        assert_eq!(s.median, 1);
        assert!((s.isolated_fraction - 2.0 / 6.0).abs() < 1e-12);
        // Top 1% = 1 vertex (degree 4) of 8 total edges.
        assert!((s.top1pct_edge_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rmat_is_skewed_er_is_not() {
        let rmat = Rmat::new(4096, 32_768).generate(3);
        let er = ErdosRenyi::new(4096, 32_768).generate(3);
        let s_rmat = DegreeStats::out_degrees(&rmat);
        let s_er = DegreeStats::out_degrees(&er);
        assert!(
            s_rmat.is_skewed(),
            "R-MAT CoV {}",
            s_rmat.coefficient_of_variation
        );
        assert!(
            !s_er.is_skewed(),
            "ER CoV {}",
            s_er.coefficient_of_variation
        );
        assert!(s_rmat.top1pct_edge_share > 2.0 * s_er.top1pct_edge_share);
    }

    #[test]
    fn dataset_profiles_are_heavy_tailed() {
        for p in DatasetProfile::all_small() {
            let g = p.generate(1);
            let s = DegreeStats::out_degrees(&g);
            assert!(
                s.is_skewed(),
                "{} CoV {}",
                p.tag,
                s.coefficient_of_variation
            );
            assert!(s.max > 50, "{} max degree {}", p.tag, s.max);
        }
    }

    #[test]
    fn zero_degree_graph() {
        let s = DegreeStats::from_degrees(&[0, 0, 0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.coefficient_of_variation, 0.0);
        assert_eq!(s.top1pct_edge_share, 0.0);
        assert_eq!(s.isolated_fraction, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_sequence_panics() {
        let _ = DegreeStats::from_degrees(&[]);
    }
}
