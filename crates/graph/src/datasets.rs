//! Scaled stand-ins for the paper's five evaluation datasets (Table 2).
//!
//! The originals are SNAP graphs up to 1.47 B edges; the profiles here keep
//! each dataset's |E|/|V| ratio (which drives the read/write mix and block
//! occupancy) and R-MAT skew (which drives `Navg` and partition balance)
//! while scaling the size down to laptop-sim scale. Every figure in the
//! paper reports *ratios*, which are preserved under this scaling; the
//! substitution is documented in `DESIGN.md`.

use crate::edgelist::EdgeList;
use crate::generate::Rmat;
use std::fmt;

/// A named synthetic dataset profile.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Full dataset name (e.g. "com-youtube").
    pub name: &'static str,
    /// The paper's two-letter tag (YT, WK, AS, LJ, TW).
    pub tag: &'static str,
    /// Vertices in the scaled profile.
    pub vertices: u32,
    /// Edges in the scaled profile.
    pub edges: usize,
    /// Vertices in the original SNAP dataset.
    pub original_vertices: u64,
    /// Edges in the original SNAP dataset.
    pub original_edges: u64,
    /// R-MAT skew parameter `a` (larger ⇒ more skew).
    pub rmat_a: f64,
}

impl DatasetProfile {
    /// com-youtube: 1.16 M vertices / 2.99 M edges, scaled ÷64.
    pub fn youtube_scaled() -> Self {
        DatasetProfile {
            name: "com-youtube",
            tag: "YT",
            vertices: 18_125,
            edges: 46_719,
            original_vertices: 1_160_000,
            original_edges: 2_990_000,
            rmat_a: 0.57,
        }
    }

    /// wiki-talk: 2.39 M vertices / 5.02 M edges, scaled ÷64.
    /// Wiki-talk is extremely skewed (a few talk pages dominate).
    pub fn wiki_talk_scaled() -> Self {
        DatasetProfile {
            name: "wiki-talk",
            tag: "WK",
            vertices: 37_344,
            edges: 78_438,
            original_vertices: 2_390_000,
            original_edges: 5_020_000,
            rmat_a: 0.62,
        }
    }

    /// as-skitter: 1.69 M vertices / 11.1 M edges, scaled ÷64.
    /// Denser and less skewed than the social graphs (Navg = 2.38 in Table 1).
    pub fn as_skitter_scaled() -> Self {
        DatasetProfile {
            name: "as-skitter",
            tag: "AS",
            vertices: 26_406,
            edges: 173_437,
            original_vertices: 1_690_000,
            original_edges: 11_100_000,
            rmat_a: 0.52,
        }
    }

    /// live-journal: 4.85 M vertices / 69.0 M edges, scaled ÷64.
    pub fn live_journal_scaled() -> Self {
        DatasetProfile {
            name: "live-journal",
            tag: "LJ",
            vertices: 75_781,
            edges: 1_078_125,
            original_vertices: 4_850_000,
            original_edges: 69_000_000,
            rmat_a: 0.57,
        }
    }

    /// twitter-2010: 41.7 M vertices / 1.47 B edges, scaled ÷512.
    pub fn twitter_scaled() -> Self {
        DatasetProfile {
            name: "twitter-2010",
            tag: "TW",
            vertices: 81_445,
            edges: 2_871_094,
            original_vertices: 41_700_000,
            original_edges: 1_470_000_000,
            rmat_a: 0.59,
        }
    }

    /// All five profiles in the paper's (Table 2) order.
    pub fn all() -> Vec<DatasetProfile> {
        vec![
            Self::youtube_scaled(),
            Self::wiki_talk_scaled(),
            Self::as_skitter_scaled(),
            Self::live_journal_scaled(),
            Self::twitter_scaled(),
        ]
    }

    /// The four smaller profiles — convenient for fast test/bench sweeps.
    pub fn all_small() -> Vec<DatasetProfile> {
        vec![
            Self::youtube_scaled(),
            Self::wiki_talk_scaled(),
            Self::as_skitter_scaled(),
        ]
    }

    /// |E| / |V| of the scaled profile.
    pub fn density(&self) -> f64 {
        self.edges as f64 / f64::from(self.vertices)
    }

    /// |E| / |V| of the original dataset.
    pub fn original_density(&self) -> f64 {
        self.original_edges as f64 / self.original_vertices as f64
    }

    /// Generates the scaled graph deterministically.
    pub fn generate(&self, seed: u64) -> EdgeList {
        // Split the remaining probability mass between b and c, keeping a
        // nonzero d quadrant so the matrix stays properly recursive.
        let bc = (1.0 - self.rmat_a) / 2.2;
        Rmat::new(self.vertices, self.edges)
            .with_probabilities(self.rmat_a, bc, bc)
            .generate(seed ^ self.tag.len() as u64 ^ u64::from(self.vertices))
    }
}

impl fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {} vertices, {} edges",
            self.tag, self.name, self.vertices, self.edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_profiles_in_paper_order() {
        let all = DatasetProfile::all();
        let tags: Vec<&str> = all.iter().map(|p| p.tag).collect();
        assert_eq!(tags, vec!["YT", "WK", "AS", "LJ", "TW"]);
    }

    #[test]
    fn density_ratio_preserved() {
        for p in DatasetProfile::all() {
            let scaled = p.density();
            let original = p.original_density();
            let rel = (scaled - original).abs() / original;
            assert!(
                rel < 0.05,
                "{}: scaled density {scaled:.2} vs original {original:.2}",
                p.tag
            );
        }
    }

    #[test]
    fn generated_graphs_match_profile() {
        let p = DatasetProfile::youtube_scaled();
        let g = p.generate(1);
        assert_eq!(g.num_vertices(), p.vertices);
        assert_eq!(g.len(), p.edges);
    }

    #[test]
    fn generation_is_deterministic_per_profile() {
        let p = DatasetProfile::as_skitter_scaled();
        assert_eq!(p.generate(3), p.generate(3));
        assert_ne!(p.generate(3), p.generate(4));
    }

    #[test]
    fn profiles_generate_distinct_graphs_with_same_seed() {
        let yt = DatasetProfile::youtube_scaled().generate(1);
        let wk = DatasetProfile::wiki_talk_scaled().generate(1);
        assert_ne!(yt.num_vertices(), wk.num_vertices());
    }

    #[test]
    fn display_mentions_tag() {
        assert!(DatasetProfile::twitter_scaled().to_string().contains("TW"));
    }
}
