//! The [`GridGraph`]: edges materialised into the P×P interval-block grid
//! (paper Fig. 1 right, §3.4 data organisation).
//!
//! Each block is stored as a header (source interval index, destination
//! interval index, edge count) followed by an edge array — exactly the
//! paper's §3.4 layout — plus *reserved slack space* (default 30%) so that
//! dynamic edge insertions are O(1) until the slack runs out, after which
//! extra segments are chained from the block end (§5).

use crate::edgelist::EdgeList;
use crate::error::GraphError;
use crate::partition::{BlockId, IntervalPartition, PartitionScheme};
use crate::types::Edge;

/// Default fraction of extra capacity reserved per block for future
/// insertions (§5: "e.g., 30% of a block size").
pub const DEFAULT_RESERVE_FRACTION: f64 = 0.30;

/// One edge block of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    id: BlockId,
    edges: Vec<Edge>,
    /// Capacity the block was laid out with (initial edges + slack).
    reserved_capacity: usize,
    /// Number of extra segments chained past the reserved space.
    overflow_segments: u32,
}

impl Block {
    fn new(id: BlockId, edges: Vec<Edge>, reserve_fraction: f64) -> Self {
        let slack = (edges.len() as f64 * reserve_fraction).ceil() as usize;
        // Even empty blocks get a minimal slot so additions stay O(1).
        let reserved_capacity = (edges.len() + slack).max(4);
        Block {
            id,
            edges,
            reserved_capacity,
            overflow_segments: 0,
        }
    }

    /// The block's grid coordinates.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The edges currently in the block.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges in the block.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the block holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Capacity laid out for the block (initial edges + slack).
    pub fn reserved_capacity(&self) -> usize {
        self.reserved_capacity
    }

    /// Number of overflow segments chained onto this block.
    pub fn overflow_segments(&self) -> u32 {
        self.overflow_segments
    }

    /// Appends an edge. Returns `true` if the append fit in reserved space,
    /// `false` if a new overflow segment had to be linked (§5 "when the
    /// reserved memory space is out").
    pub(crate) fn push_edge(&mut self, e: Edge) -> bool {
        self.edges.push(e);
        if self.edges.len() <= self.reserved_capacity {
            true
        } else {
            // Chain a new segment sized like the slack region.
            self.overflow_segments += 1;
            self.reserved_capacity = self.edges.len()
                + ((self.edges.len() as f64 * DEFAULT_RESERVE_FRACTION).ceil() as usize).max(4);
            false
        }
    }

    /// Removes the first edge matching (src, dst) by swapping in the last
    /// edge of the block (§5 deletion). Returns the removed edge.
    pub(crate) fn remove_edge(&mut self, src: u32, dst: u32) -> Option<Edge> {
        let pos = self
            .edges
            .iter()
            .position(|e| e.src.raw() == src && e.dst.raw() == dst)?;
        Some(self.edges.swap_remove(pos))
    }

    /// Bits occupied in edge memory: 3 × 32-bit header + 64 bits per edge
    /// slot actually written (paper §3.4).
    pub fn storage_bits(&self) -> u64 {
        96 + Edge::BITS * self.edges.len() as u64
    }
}

/// A graph partitioned into a P×P grid of edge blocks.
///
/// ```
/// use hyve_graph::{Edge, EdgeList, GridGraph};
///
/// # fn main() -> Result<(), hyve_graph::GraphError> {
/// let g = EdgeList::from_edges(8, [Edge::new(2, 4), Edge::new(0, 7)])?;
/// let grid = GridGraph::partition(&g, 4)?;
/// // e2.4 lands in B1.2 exactly as the paper's Fig. 1 shows.
/// assert_eq!(grid.block_at(1, 2).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridGraph {
    partition: IntervalPartition,
    blocks: Vec<Block>,
    num_edges: u64,
    /// Lazily-built SoA image served by [`GridGraph::flat`]; reset by the
    /// dynamic-update mutators so it can never go stale.
    flat: std::sync::OnceLock<crate::flat::FlatGrid>,
}

/// The cache is derived state: equality is over the grid contents only.
impl PartialEq for GridGraph {
    fn eq(&self, other: &Self) -> bool {
        self.partition == other.partition
            && self.blocks == other.blocks
            && self.num_edges == other.num_edges
    }
}

impl GridGraph {
    /// Partitions an edge list into a P×P grid using contiguous intervals.
    ///
    /// # Errors
    ///
    /// Propagates [`IntervalPartition::new`] errors.
    pub fn partition(g: &EdgeList, p: u32) -> Result<Self, GraphError> {
        Self::partition_with_scheme(g, p, PartitionScheme::Contiguous)
    }

    /// Partitions with an explicit interval scheme.
    ///
    /// # Errors
    ///
    /// Propagates [`IntervalPartition::new`] errors.
    pub fn partition_with_scheme(
        g: &EdgeList,
        p: u32,
        scheme: PartitionScheme,
    ) -> Result<Self, GraphError> {
        let partition = IntervalPartition::new(g.num_vertices(), p, scheme)?;
        // Counting sort into P² buckets: one pass to size, one to fill.
        let p_usize = p as usize;
        let mut counts = vec![0usize; p_usize * p_usize];
        for e in g.iter() {
            counts[partition.block_of(e).linear(p)] += 1;
        }
        let mut buckets: Vec<Vec<Edge>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for e in g.iter() {
            buckets[partition.block_of(e).linear(p)].push(*e);
        }
        let blocks = buckets
            .into_iter()
            .enumerate()
            .map(|(i, edges)| {
                let id = BlockId::new((i / p_usize) as u32, (i % p_usize) as u32);
                Block::new(id, edges, DEFAULT_RESERVE_FRACTION)
            })
            .collect();
        Ok(GridGraph {
            partition,
            blocks,
            num_edges: g.len() as u64,
            flat: std::sync::OnceLock::new(),
        })
    }

    /// The vertex partition underlying the grid.
    pub fn partition_info(&self) -> &IntervalPartition {
        &self.partition
    }

    /// Number of intervals `P`.
    pub fn num_intervals(&self) -> u32 {
        self.partition.num_intervals()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.partition.num_vertices()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Total number of blocks (P²).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of blocks holding at least one edge.
    pub fn non_empty_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| !b.is_empty()).count()
    }

    /// The block at grid coordinates (src interval, dst interval).
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is ≥ P.
    pub fn block_at(&self, src: u32, dst: u32) -> &Block {
        let p = self.num_intervals();
        assert!(
            src < p && dst < p,
            "block ({src},{dst}) out of a {p}x{p} grid"
        );
        &self.blocks[BlockId::new(src, dst).linear(p)]
    }

    pub(crate) fn block_at_mut(&mut self, src: u32, dst: u32) -> &mut Block {
        self.flat.take(); // block contents may change under the caller
        let p = self.num_intervals();
        assert!(
            src < p && dst < p,
            "block ({src},{dst}) out of a {p}x{p} grid"
        );
        &mut self.blocks[BlockId::new(src, dst).linear(p)]
    }

    pub(crate) fn add_edge_count(&mut self, delta: i64) {
        self.flat.take();
        self.num_edges = self.num_edges.wrapping_add_signed(delta);
    }

    /// Iterates over all blocks in row-major order.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Iterates over every edge of the grid (block by block).
    pub fn iter_edges(&self) -> impl Iterator<Item = &Edge> {
        self.blocks.iter().flat_map(|b| b.edges().iter())
    }

    /// Total edge-memory footprint in bits (§3.4 layout).
    pub fn edge_storage_bits(&self) -> u64 {
        self.blocks.iter().map(Block::storage_bits).sum()
    }

    /// Vertex-memory footprint in bits for `value_bits`-wide vertex values:
    /// per interval, a 2 × 32-bit header plus one value per vertex (§3.4).
    pub fn vertex_storage_bits(&self, value_bits: u64) -> u64 {
        u64::from(self.num_intervals()) * 64 + u64::from(self.num_vertices()) * value_bits
    }

    /// Snapshots the grid into an owned contiguous structure-of-arrays
    /// [`FlatGrid`](crate::FlatGrid). O(E) every call; prefer
    /// [`GridGraph::flat`] on hot paths.
    pub fn flatten(&self) -> crate::flat::FlatGrid {
        crate::flat::FlatGrid::from_grid(self)
    }

    /// The memoized structure-of-arrays image of this grid — the layout the
    /// simulator's hot loop walks. Built on first use (O(E)) and cached for
    /// the life of the grid; the dynamic-update mutators drop the cache, so
    /// the next call re-flattens the current contents.
    pub fn flat(&self) -> &crate::flat::FlatGrid {
        self.flat
            .get_or_init(|| crate::flat::FlatGrid::from_grid(self))
    }

    /// Flattens the grid back into an edge list (inverse of partitioning,
    /// up to edge order).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut list = EdgeList::new(self.num_vertices());
        list.extend(self.iter_edges().copied());
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 graph.
    fn fig1() -> EdgeList {
        EdgeList::from_edges(
            8,
            [
                (1, 0),
                (0, 7),
                (2, 3),
                (2, 4),
                (3, 4),
                (3, 7),
                (4, 1),
                (4, 5),
                (6, 2),
                (6, 0),
                (7, 1),
            ]
            .into_iter()
            .map(|(s, d)| Edge::new(s, d)),
        )
        .unwrap()
    }

    #[test]
    fn fig1_block_assignment() {
        let grid = GridGraph::partition(&fig1(), 4).unwrap();
        assert_eq!(grid.num_blocks(), 16);
        assert_eq!(grid.num_edges(), 11);
        // Paper Fig. 1: B0.0 = {1->0}, B0.3 = {0->7}, B1.1 = {2->3},
        // B1.2 = {2->4, 3->4}, B1.3 = {3->7}, B2.0 = {4->1}, B2.2 = {4->5},
        // B3.0 = {6->2 is B3.1! 6 in I3, 2 in I1}, ...
        assert_eq!(grid.block_at(0, 0).len(), 1);
        assert_eq!(grid.block_at(0, 3).len(), 1);
        assert_eq!(grid.block_at(1, 1).len(), 1);
        assert_eq!(grid.block_at(1, 2).len(), 2);
        assert_eq!(grid.block_at(1, 3).len(), 1);
        assert_eq!(grid.block_at(2, 0).len(), 1);
        assert_eq!(grid.block_at(2, 2).len(), 1);
        assert_eq!(grid.block_at(3, 1).len(), 1);
        assert_eq!(grid.block_at(3, 0).len(), 2); // 6->0 and 7->1
        let total: usize = grid.blocks().map(Block::len).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn every_edge_lands_in_its_block() {
        let grid = GridGraph::partition(&fig1(), 4).unwrap();
        for block in grid.blocks() {
            for e in block.edges() {
                assert_eq!(grid.partition_info().block_of(e), block.id());
            }
        }
    }

    #[test]
    fn round_trip_to_edge_list() {
        let g = fig1();
        let grid = GridGraph::partition(&g, 4).unwrap();
        let mut back = grid.to_edge_list();
        let mut orig = g.clone();
        back.sort_by_src();
        orig.sort_by_src();
        assert_eq!(back, orig);
    }

    #[test]
    fn reserved_slack_present() {
        let grid = GridGraph::partition(&fig1(), 4).unwrap();
        for b in grid.blocks() {
            assert!(b.reserved_capacity() >= b.len());
            assert_eq!(b.overflow_segments(), 0);
        }
    }

    #[test]
    fn block_push_overflow_chains_segments() {
        let mut b = Block::new(BlockId::new(0, 0), vec![Edge::new(0, 1)], 0.3);
        let cap = b.reserved_capacity();
        let mut overflowed = 0;
        for i in 0..20 {
            if !b.push_edge(Edge::new(0, i)) {
                overflowed += 1;
            }
        }
        assert!(overflowed >= 1, "must overflow past capacity {cap}");
        assert_eq!(b.overflow_segments(), overflowed);
        assert_eq!(b.len(), 21);
    }

    #[test]
    fn block_remove_swaps_last() {
        let mut b = Block::new(
            BlockId::new(0, 0),
            vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(0, 3)],
            0.3,
        );
        let removed = b.remove_edge(0, 1).unwrap();
        assert_eq!(removed, Edge::new(0, 1));
        assert_eq!(b.len(), 2);
        // Last edge (0,3) moved into slot 0.
        assert_eq!(b.edges()[0], Edge::new(0, 3));
        assert!(b.remove_edge(9, 9).is_none());
    }

    #[test]
    fn storage_accounting() {
        let grid = GridGraph::partition(&fig1(), 4).unwrap();
        // 16 block headers of 96 bits + 11 edges of 64 bits.
        assert_eq!(grid.edge_storage_bits(), 16 * 96 + 11 * 64);
        assert_eq!(grid.vertex_storage_bits(32), 4 * 64 + 8 * 32);
    }

    #[test]
    fn single_interval_grid() {
        let grid = GridGraph::partition(&fig1(), 1).unwrap();
        assert_eq!(grid.num_blocks(), 1);
        assert_eq!(grid.block_at(0, 0).len(), 11);
    }

    #[test]
    #[should_panic(expected = "out of a")]
    fn block_at_out_of_range_panics() {
        let grid = GridGraph::partition(&fig1(), 2).unwrap();
        let _ = grid.block_at(2, 0);
    }

    #[test]
    fn empty_edge_list_still_partitions() {
        let g = EdgeList::new(8);
        let grid = GridGraph::partition(&g, 4).unwrap();
        assert_eq!(grid.num_edges(), 0);
        assert_eq!(grid.non_empty_blocks(), 0);
    }

    #[test]
    fn flat_is_memoized_until_the_grid_mutates() {
        let mut grid = GridGraph::partition(&fig1(), 4).unwrap();
        let first = grid.flat() as *const _;
        assert!(
            std::ptr::eq(first, grid.flat()),
            "repeat calls hit the cache"
        );
        assert_eq!(grid.flat().num_edges(), 11);

        // A mutable block access drops the cache, so the next flat image
        // sees the inserted edge.
        let _fit = grid.block_at_mut(0, 0).push_edge(Edge::new(0, 1));
        grid.add_edge_count(1);
        assert_eq!(grid.flat().num_edges(), 12);
        assert_eq!(grid.flat().block_len(0, 0), grid.block_at(0, 0).len());
    }

    #[test]
    fn clones_and_equality_ignore_the_flat_cache() {
        let grid = GridGraph::partition(&fig1(), 4).unwrap();
        let warmed = grid.clone();
        let _ = warmed.flat();
        assert_eq!(grid, warmed, "cache state must not affect equality");
    }
}
