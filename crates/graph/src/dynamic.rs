//! Dynamic-graph working flow (paper §5).
//!
//! HyVE supports evolving graphs through *incremental preprocessing*: rather
//! than re-partitioning on every change, mutations are applied in place:
//!
//! * **Add edge** — appended at the end of its block's memory space; reserved
//!   slack (30%) makes this O(1), overflowing into linked segments.
//! * **Delete edge** — replaced by the last edge of its block, O(1).
//! * **Add vertex** — consumes a reserved vertex slot; when the reserve is
//!   exhausted a full re-preprocessing is flagged (vertex access must stay
//!   sequential, so linking is not an option for vertices).
//! * **Delete vertex** — O(1): the value is marked invalid (tombstoned, §5:
//!   "set to invalid, e.g. −1 for PageRank"); incident edges become inert
//!   and are counted as changed via the maintained degree.

use crate::error::GraphError;
use crate::grid::GridGraph;
use crate::types::{Edge, VertexId};

/// A single dynamic-graph request (§5's four situations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mutation {
    /// Insert an edge.
    AddEdge(Edge),
    /// Remove the edge (src, dst).
    RemoveEdge {
        /// Source vertex index.
        src: u32,
        /// Destination vertex index.
        dst: u32,
    },
    /// Append a new vertex (takes a reserved slot).
    AddVertex,
    /// Tombstone a vertex and drop its incident edges.
    RemoveVertex(VertexId),
}

/// What applying a mutation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOutcome {
    /// The mutation fit in reserved space (pure O(1) path).
    InPlace,
    /// An edge append had to link a new overflow segment.
    LinkedOverflow,
    /// A vertex append exhausted the reserve; the grid was re-preprocessed.
    Repartitioned,
    /// Edges changed as a side effect of a vertex removal (count of removed
    /// edges is tracked separately).
    VertexTombstoned,
}

/// A [`GridGraph`] plus the bookkeeping needed for O(1) dynamic updates.
///
/// ```
/// use hyve_graph::{DynamicGrid, Edge, EdgeList, GridGraph, Mutation};
///
/// # fn main() -> Result<(), hyve_graph::GraphError> {
/// let g = EdgeList::from_edges(8, [Edge::new(0, 1), Edge::new(2, 3)])?;
/// let grid = GridGraph::partition(&g, 4)?;
/// let mut dynamic = DynamicGrid::new(grid, 0.25);
/// dynamic.apply(Mutation::AddEdge(Edge::new(5, 6)))?;
/// assert_eq!(dynamic.grid().num_edges(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGrid {
    grid: GridGraph,
    /// Vertices logically present: the grid's materialised count plus
    /// vertices occupying reserved padding slots.
    logical_vertices: u32,
    /// Reserved vertex slots remaining before a repartition is required.
    vertex_slots_remaining: u32,
    /// Fraction of vertices reserved on (re)build.
    vertex_reserve_fraction: f64,
    /// Tombstoned vertices (deleted; value treated as invalid, e.g. −1 in PR).
    tombstones: Vec<bool>,
    /// Combined in+out degree per vertex, maintained incrementally so that
    /// vertex deletion can count its incident edges in O(1).
    degrees: Vec<u32>,
    /// Number of full repartitions triggered by vertex-space exhaustion.
    repartitions: u64,
    /// Total edges added/removed through mutations.
    edges_changed: u64,
}

impl DynamicGrid {
    /// Wraps a grid, reserving `vertex_reserve_fraction` extra vertex slots.
    ///
    /// # Panics
    ///
    /// Panics if `vertex_reserve_fraction` is negative or not finite.
    pub fn new(grid: GridGraph, vertex_reserve_fraction: f64) -> Self {
        assert!(
            vertex_reserve_fraction.is_finite() && vertex_reserve_fraction >= 0.0,
            "reserve fraction must be finite and non-negative"
        );
        let slots = (f64::from(grid.num_vertices()) * vertex_reserve_fraction).ceil() as u32;
        let tombstones = vec![false; grid.num_vertices() as usize];
        let mut degrees = vec![0u32; grid.num_vertices() as usize];
        for e in grid.iter_edges() {
            degrees[e.src.index()] += 1;
            degrees[e.dst.index()] += 1;
        }
        DynamicGrid {
            logical_vertices: grid.num_vertices(),
            grid,
            vertex_slots_remaining: slots,
            vertex_reserve_fraction,
            tombstones,
            degrees,
            repartitions: 0,
            edges_changed: 0,
        }
    }

    /// Combined in+out degree of a vertex (0 after tombstoning).
    pub fn degree(&self, v: VertexId) -> u32 {
        self.degrees.get(v.index()).copied().unwrap_or(0)
    }

    /// Flattens the grid to an edge list, excluding edges incident to
    /// tombstoned vertices.
    pub fn live_edge_list(&self) -> crate::edgelist::EdgeList {
        let mut list = crate::edgelist::EdgeList::new(self.logical_vertices);
        list.extend(
            self.grid
                .iter_edges()
                .filter(|e| !self.tombstones[e.src.index()] && !self.tombstones[e.dst.index()])
                .copied(),
        );
        list
    }

    /// The current grid.
    pub fn grid(&self) -> &GridGraph {
        &self.grid
    }

    /// Vertices logically present (materialised + padding slots in use).
    pub fn num_vertices(&self) -> u32 {
        self.logical_vertices
    }

    /// Interval owning a vertex; vertices living in reserved padding are
    /// assigned round-robin across intervals (the paper reserves extra
    /// space inside each interval, §5).
    fn interval_of(&self, v: u32) -> u32 {
        if v < self.grid.num_vertices() {
            self.grid.partition_info().interval_of(VertexId::new(v))
        } else {
            (v - self.grid.num_vertices()) % self.grid.num_intervals()
        }
    }

    /// Reserved vertex slots still available.
    pub fn vertex_slots_remaining(&self) -> u32 {
        self.vertex_slots_remaining
    }

    /// How many full repartitions vertex growth has forced.
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }

    /// Total edges changed by mutations so far (adds + removes, including
    /// edges dropped by vertex removals) — the unit of Fig. 20's throughput.
    pub fn edges_changed(&self) -> u64 {
        self.edges_changed
    }

    /// True if the vertex is currently tombstoned.
    pub fn is_tombstoned(&self, v: VertexId) -> bool {
        self.tombstones.get(v.index()).copied().unwrap_or(false)
    }

    /// Applies one mutation.
    ///
    /// # Errors
    ///
    /// [`GraphError::MutationFailed`] when removing a nonexistent edge or
    /// referencing an out-of-range vertex.
    pub fn apply(&mut self, m: Mutation) -> Result<MutationOutcome, GraphError> {
        match m {
            Mutation::AddEdge(e) => self.add_edge(e),
            Mutation::RemoveEdge { src, dst } => self.remove_edge(src, dst),
            Mutation::AddVertex => self.add_vertex(),
            Mutation::RemoveVertex(v) => self.remove_vertex(v),
        }
    }

    fn check_vertex(&self, v: u32) -> Result<(), GraphError> {
        if v >= self.logical_vertices {
            return Err(GraphError::MutationFailed {
                message: format!(
                    "vertex {v} out of range ({} vertices)",
                    self.logical_vertices
                ),
            });
        }
        Ok(())
    }

    fn add_edge(&mut self, e: Edge) -> Result<MutationOutcome, GraphError> {
        self.check_vertex(e.src.raw())?;
        self.check_vertex(e.dst.raw())?;
        // A tombstoned endpoint would silently resurrect: the edge lands in a
        // block and the degree counter ticks up, but the vertex's value stays
        // invalid — breaking the "tombstoned ⇒ degree 0" bookkeeping that
        // vertex deletion relies on. Reject instead.
        for v in [e.src, e.dst] {
            if self.is_tombstoned(v) {
                return Err(GraphError::MutationFailed {
                    message: format!("vertex {} is deleted", v.raw()),
                });
            }
        }
        let (bs, bd) = (self.interval_of(e.src.raw()), self.interval_of(e.dst.raw()));
        let fit = self.grid.block_at_mut(bs, bd).push_edge(e);
        self.grid.add_edge_count(1);
        self.degrees[e.src.index()] += 1;
        self.degrees[e.dst.index()] += 1;
        self.edges_changed += 1;
        Ok(if fit {
            MutationOutcome::InPlace
        } else {
            MutationOutcome::LinkedOverflow
        })
    }

    fn remove_edge(&mut self, src: u32, dst: u32) -> Result<MutationOutcome, GraphError> {
        self.check_vertex(src)?;
        self.check_vertex(dst)?;
        let (bs, bd) = (self.interval_of(src), self.interval_of(dst));
        let removed = self.grid.block_at_mut(bs, bd).remove_edge(src, dst);
        match removed {
            Some(_) => {
                self.grid.add_edge_count(-1);
                self.degrees[src as usize] = self.degrees[src as usize].saturating_sub(1);
                self.degrees[dst as usize] = self.degrees[dst as usize].saturating_sub(1);
                self.edges_changed += 1;
                Ok(MutationOutcome::InPlace)
            }
            None => Err(GraphError::MutationFailed {
                message: format!("edge {src}->{dst} not present"),
            }),
        }
    }

    fn add_vertex(&mut self) -> Result<MutationOutcome, GraphError> {
        self.logical_vertices += 1;
        self.tombstones.push(false);
        self.degrees.push(0);
        if self.vertex_slots_remaining > 0 {
            self.vertex_slots_remaining -= 1;
            // The new vertex occupies a reserved padding slot inside an
            // interval; no edges move.
            Ok(MutationOutcome::InPlace)
        } else {
            // §5: out of reserved space ⇒ full re-preprocessing, now with
            // every logical vertex materialised.
            let edges = self.grid.to_edge_list();
            let mut list = crate::edgelist::EdgeList::new(self.logical_vertices);
            list.extend(edges.iter().copied());
            let p = self.grid.num_intervals();
            let scheme = self.grid.partition_info().scheme();
            self.grid = GridGraph::partition_with_scheme(&list, p, scheme)?;
            self.vertex_slots_remaining =
                (f64::from(self.grid.num_vertices()) * self.vertex_reserve_fraction).ceil() as u32;
            let mut tombstones = vec![false; self.grid.num_vertices() as usize];
            for (v, &dead) in self.tombstones.iter().enumerate() {
                if dead && v < tombstones.len() {
                    tombstones[v] = true;
                }
            }
            self.tombstones = tombstones;
            self.degrees = {
                let mut d = vec![0u32; self.grid.num_vertices() as usize];
                for e in self.grid.iter_edges() {
                    d[e.src.index()] += 1;
                    d[e.dst.index()] += 1;
                }
                for (v, &dead) in self.tombstones.iter().enumerate() {
                    if dead {
                        d[v] = 0;
                    }
                }
                d
            };
            self.repartitions += 1;
            Ok(MutationOutcome::Repartitioned)
        }
    }

    /// Checks the structure's internal bookkeeping invariants:
    ///
    /// * `tombstones` and `degrees` cover exactly the logical vertex range;
    /// * the grid never materialises more vertices than are logically present;
    /// * per-block edge counts sum to the grid's edge count;
    /// * every tombstoned vertex has degree 0;
    /// * every live vertex's maintained degree equals its endpoint count over
    ///   the grid's stored edges (inert edges to tombstoned neighbours
    ///   included — they stay in their blocks, §5).
    ///
    /// # Errors
    ///
    /// [`GraphError::MutationFailed`] describing the first violation found.
    pub fn validate(&self) -> Result<(), GraphError> {
        let fail = |message: String| Err(GraphError::MutationFailed { message });
        let n = self.logical_vertices as usize;
        if self.tombstones.len() != n || self.degrees.len() != n {
            return fail(format!(
                "bookkeeping length mismatch: {} tombstones / {} degrees for {n} vertices",
                self.tombstones.len(),
                self.degrees.len()
            ));
        }
        if self.grid.num_vertices() > self.logical_vertices {
            return fail(format!(
                "grid materialises {} vertices but only {} are logical",
                self.grid.num_vertices(),
                self.logical_vertices
            ));
        }
        let stored: u64 = self.grid.blocks().map(|b| b.len() as u64).sum();
        if stored != self.grid.num_edges() {
            return fail(format!(
                "blocks hold {stored} edges but the grid counts {}",
                self.grid.num_edges()
            ));
        }
        let mut hits = vec![0u32; n];
        for e in self.grid.iter_edges() {
            hits[e.src.index()] += 1;
            hits[e.dst.index()] += 1;
        }
        for (v, &hit) in hits.iter().enumerate() {
            if self.tombstones[v] {
                if self.degrees[v] != 0 {
                    return fail(format!(
                        "tombstoned vertex {v} has nonzero degree {}",
                        self.degrees[v]
                    ));
                }
            } else if self.degrees[v] != hit {
                return fail(format!(
                    "vertex {v} degree {} disagrees with {hit} stored endpoints",
                    self.degrees[v]
                ));
            }
        }
        Ok(())
    }

    fn remove_vertex(&mut self, v: VertexId) -> Result<MutationOutcome, GraphError> {
        self.check_vertex(v.raw())?;
        self.tombstones[v.index()] = true;
        // §5: O(1) — the stored value becomes invalid; incident edges stay
        // in their blocks but are inert, and count as changed edges.
        self.edges_changed += u64::from(self.degrees[v.index()]);
        self.degrees[v.index()] = 0;
        Ok(MutationOutcome::VertexTombstoned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn make(p: u32) -> DynamicGrid {
        let g = EdgeList::from_edges(
            8,
            [
                Edge::new(1, 0),
                Edge::new(0, 7),
                Edge::new(2, 3),
                Edge::new(2, 4),
                Edge::new(3, 4),
                Edge::new(4, 1),
            ],
        )
        .unwrap();
        DynamicGrid::new(GridGraph::partition(&g, p).unwrap(), 0.25)
    }

    #[test]
    fn add_edge_goes_to_right_block() {
        let mut d = make(4);
        let out = d.apply(Mutation::AddEdge(Edge::new(6, 1))).unwrap();
        assert_eq!(out, MutationOutcome::InPlace);
        assert_eq!(d.grid().num_edges(), 7);
        assert_eq!(d.grid().block_at(3, 0).len(), 1);
        assert_eq!(d.edges_changed(), 1);
    }

    #[test]
    fn remove_edge_present_and_absent() {
        let mut d = make(4);
        assert_eq!(
            d.apply(Mutation::RemoveEdge { src: 2, dst: 3 }).unwrap(),
            MutationOutcome::InPlace
        );
        assert_eq!(d.grid().num_edges(), 5);
        assert!(d.apply(Mutation::RemoveEdge { src: 2, dst: 3 }).is_err());
    }

    #[test]
    fn add_vertex_consumes_reserve_then_repartitions() {
        let mut d = make(4);
        let initial_slots = d.vertex_slots_remaining();
        assert_eq!(initial_slots, 2); // ceil(8 * 0.25)
        for _ in 0..initial_slots {
            assert_eq!(
                d.apply(Mutation::AddVertex).unwrap(),
                MutationOutcome::InPlace
            );
        }
        assert_eq!(d.vertex_slots_remaining(), 0);
        let out = d.apply(Mutation::AddVertex).unwrap();
        assert_eq!(out, MutationOutcome::Repartitioned);
        assert_eq!(d.repartitions(), 1);
        assert!(d.vertex_slots_remaining() > 0);
        // All edges survived the repartition.
        assert_eq!(d.grid().num_edges(), 6);
    }

    #[test]
    fn remove_vertex_tombstones_in_constant_time() {
        let mut d = make(4);
        assert_eq!(d.degree(VertexId::new(4)), 3); // 2->4, 3->4, 4->1
        let out = d.apply(Mutation::RemoveVertex(VertexId::new(4))).unwrap();
        assert_eq!(out, MutationOutcome::VertexTombstoned);
        assert!(d.is_tombstoned(VertexId::new(4)));
        // §5: edges stay in place (inert) but count as changed.
        assert_eq!(d.edges_changed(), 3);
        assert_eq!(d.degree(VertexId::new(4)), 0);
        // The live view excludes them.
        let live = d.live_edge_list();
        assert_eq!(live.len(), 3);
        for e in live.iter() {
            assert_ne!(e.src.raw(), 4);
            assert_ne!(e.dst.raw(), 4);
        }
    }

    #[test]
    fn add_edge_to_tombstoned_vertex_is_rejected() {
        let mut d = make(4);
        d.apply(Mutation::RemoveVertex(VertexId::new(4))).unwrap();
        let before = d.grid().num_edges();
        // Either endpoint being dead must reject the add…
        assert!(d.apply(Mutation::AddEdge(Edge::new(4, 0))).is_err());
        assert!(d.apply(Mutation::AddEdge(Edge::new(0, 4))).is_err());
        // …without touching the grid or the degree bookkeeping.
        assert_eq!(d.grid().num_edges(), before);
        assert_eq!(d.degree(VertexId::new(4)), 0);
        d.validate().unwrap();
    }

    #[test]
    fn validate_accepts_every_mutation_outcome() {
        let mut d = make(4);
        d.validate().unwrap();
        d.apply(Mutation::AddEdge(Edge::new(6, 1))).unwrap();
        d.apply(Mutation::RemoveVertex(VertexId::new(2))).unwrap();
        d.apply(Mutation::RemoveEdge { src: 3, dst: 4 }).unwrap();
        for _ in 0..3 {
            d.apply(Mutation::AddVertex).unwrap();
        }
        assert_eq!(d.repartitions(), 1);
        d.validate().unwrap();
    }

    #[test]
    fn out_of_range_mutations_fail() {
        let mut d = make(4);
        assert!(d.apply(Mutation::AddEdge(Edge::new(0, 99))).is_err());
        assert!(d.apply(Mutation::RemoveVertex(VertexId::new(99))).is_err());
    }

    #[test]
    fn overflow_after_many_adds() {
        let mut d = make(2);
        let mut overflows = 0;
        for i in 0..100 {
            let out = d
                .apply(Mutation::AddEdge(Edge::new(i % 8, (i + 1) % 8)))
                .unwrap();
            if out == MutationOutcome::LinkedOverflow {
                overflows += 1;
            }
        }
        assert!(overflows > 0, "100 adds into small blocks must overflow");
        assert_eq!(d.grid().num_edges(), 106);
    }

    #[test]
    fn mixed_workload_conserves_counts() {
        let mut d = make(4);
        let before = d.grid().num_edges();
        d.apply(Mutation::AddEdge(Edge::new(0, 1))).unwrap();
        d.apply(Mutation::AddEdge(Edge::new(5, 5))).unwrap();
        d.apply(Mutation::RemoveEdge { src: 0, dst: 1 }).unwrap();
        assert_eq!(d.grid().num_edges(), before + 1);
        let actual: u64 = d.grid().blocks().map(|b| b.len() as u64).sum();
        assert_eq!(actual, d.grid().num_edges());
    }
}
