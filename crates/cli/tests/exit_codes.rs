//! Exit-code contract for the `hyve-cli` binary: usage errors exit `2`,
//! runtime failures exit `1`, success exits `0`.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hyve-cli"))
        .args(args)
        .output()
        .expect("spawn hyve-cli")
}

#[test]
fn help_exits_zero() {
    let out = run(&["help"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn usage_errors_exit_two() {
    // Unknown subcommand.
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Missing required flag.
    let out = run(&["run", "--dataset", "yt"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Usage errors echo the usage text to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn runtime_failures_exit_one() {
    // The arguments parse fine; the input file simply does not exist.
    let out = run(&["run", "--alg", "pr", "--input", "/nonexistent/graph.txt"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("USAGE"),
        "runtime failures should not dump usage: {stderr}"
    );
}

#[test]
fn report_on_unparsable_artifact_exits_one() {
    let dir = std::env::temp_dir().join("hyve-cli-exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.jsonl");
    std::fs::write(&path, "this is not a trace artifact\n").unwrap();
    let out = run(&["report", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    std::fs::remove_file(path).ok();
}
