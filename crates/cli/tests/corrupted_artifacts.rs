//! `hyve report` must degrade gracefully on damaged trace artifacts: a
//! clear parse error naming the offending line, exit code 1, and never a
//! panic — whatever the corruption.

use std::path::{Path, PathBuf};
use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hyve-cli"))
        .args(args)
        .output()
        .expect("spawn hyve-cli")
}

/// Generates a genuine artifact to corrupt, once per test.
fn fresh_artifact(name: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join("hyve-cli-corrupted-artifacts");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let out = run(&[
        "run",
        "--alg",
        "bfs",
        "--dataset",
        "yt",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&path).unwrap();
    (path, text)
}

/// Asserts `report <path>` exits 1 (not a panic's 101, not usage's 2) with
/// a line-numbered parse error on stderr.
fn assert_clean_failure(path: &Path, expect_line: &str) {
    let out = run(&["report", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line"), "no line number in: {stderr}");
    assert!(stderr.contains(expect_line), "wrong line in: {stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(!stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn truncated_mid_line_fails_with_line_number() {
    let (path, text) = fresh_artifact("truncated.jsonl");
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 2;
    let mut cut: String = lines[..keep].join("\n");
    // Chop the next line mid-object so the JSON is structurally broken.
    cut.push('\n');
    cut.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&path, &cut).unwrap();
    assert_clean_failure(&path, &format!("line {}", keep + 1));
    std::fs::remove_file(path).ok();
}

#[test]
fn unknown_event_fails_with_line_number() {
    let (path, mut text) = fresh_artifact("unknown-event.jsonl");
    let line_count = text.lines().count();
    text.push_str("{\"event\":\"gamma-ray\"}\n");
    std::fs::write(&path, &text).unwrap();
    let out = run(&["report", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("gamma-ray"), "{stderr}");
    assert!(
        stderr.contains(&format!("line {}", line_count + 1)),
        "{stderr}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn mangled_numeric_field_fails_cleanly() {
    let (path, text) = fresh_artifact("mangled-number.jsonl");
    // Break the header's vertex count; blame lands on line 1.
    let mangled = text.replacen("\"vertices\":", "\"vertices\":oops", 1);
    assert_ne!(mangled, text, "replacement must hit");
    std::fs::write(&path, &mangled).unwrap();
    assert_clean_failure(&path, "line 1");
    std::fs::remove_file(path).ok();
}

#[test]
fn wrong_schema_tag_fails_cleanly() {
    let (path, text) = fresh_artifact("wrong-schema.jsonl");
    let mangled = text.replacen("hyve-trace/1", "hyve-trace/999", 1);
    std::fs::write(&path, &mangled).unwrap();
    assert_clean_failure(&path, "line 1");
    std::fs::remove_file(path).ok();
}

#[test]
fn empty_artifact_fails_cleanly() {
    let dir = std::env::temp_dir().join("hyve-cli-corrupted-artifacts");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("empty.jsonl");
    std::fs::write(&path, "").unwrap();
    let out = run(&["report", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
    std::fs::remove_file(path).ok();
}
