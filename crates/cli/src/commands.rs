//! Command implementations for the `hyve` CLI.

use crate::args::{
    Command, CompareArgs, GenArgs, GraphSource, RecommendArgs, ReportArgs, RunArgs, SourceArgs,
    SweepArgs,
};
use crate::CliError;
use hyve_algorithms::{Bfs, ConnectedComponents, DegreeCentrality, PageRank, SpMv, Sssp};
use hyve_baselines::CpuSystem;
use hyve_core::{
    FaultPlan, RunReport, SharedRecorder, SimulationSession, SystemConfig, TraceArtifact,
};
use hyve_graph::{block_sparsity, io, DatasetProfile, EdgeList, Rmat, VertexId};
use hyve_graphr::GraphrEngine;
use hyve_memsim::CellBits;
use hyve_model::{recommend, Objective, WorkloadShape};
use std::io::Write;

/// Executes a parsed command.
///
/// # Errors
///
/// [`CliError::Usage`] for semantic argument problems (unknown dataset or
/// algorithm names), [`CliError::Failed`] for engine/I/O failures.
pub fn execute<W: Write>(cmd: Command, out: &mut W) -> Result<(), CliError> {
    match cmd {
        Command::Help => writeln!(out, "{}", crate::USAGE).map_err(io_err),
        Command::Run(args) => run(args, out),
        Command::Report(args) => report(args, out),
        Command::Compare(args) => compare(args, out),
        Command::Sweep(args) => sweep(args, out),
        Command::Recommend(args) => recommend_cmd(args, out),
        Command::Info(args) => info(args, out),
        Command::Gen(args) => gen(args, out),
    }
}

fn io_err(e: std::io::Error) -> CliError {
    CliError::Failed(e.to_string())
}

fn profile_by_tag(tag: &str) -> Result<DatasetProfile, CliError> {
    DatasetProfile::all()
        .into_iter()
        .find(|p| p.tag.eq_ignore_ascii_case(tag))
        .ok_or_else(|| CliError::Usage(format!("unknown dataset '{tag}' (use yt/wk/as/lj/tw)")))
}

/// Loads the graph and (for dataset profiles) the matching scale factor.
fn load(source: &SourceArgs) -> Result<(EdgeList, u32, String), CliError> {
    match &source.source {
        GraphSource::Dataset(tag) => {
            let profile = profile_by_tag(tag)?;
            let scale = if profile.tag == "TW" { 512 } else { 64 };
            let name = profile.to_string();
            Ok((profile.generate(source.seed), scale, name))
        }
        GraphSource::File(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::Failed(format!("open {path}: {e}")))?;
            let graph = io::parse(std::io::BufReader::new(file))
                .map_err(|e| CliError::Failed(e.to_string()))?;
            let name = format!(
                "{path}: {} vertices, {} edges",
                graph.num_vertices(),
                graph.len()
            );
            Ok((graph, 1, name))
        }
    }
}

fn config_by_name(name: &str) -> Result<SystemConfig, CliError> {
    Ok(match name {
        "acc-dram" => SystemConfig::acc_dram(),
        "acc-reram" => SystemConfig::acc_reram(),
        "acc-sram-dram" | "sd" => SystemConfig::acc_sram_dram(),
        "hyve" => SystemConfig::hyve(),
        "hyve-opt" => SystemConfig::hyve_opt(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown config '{other}' (use acc-dram/acc-reram/acc-sram-dram/hyve/hyve-opt)"
            )))
        }
    })
}

/// Builds a session with `threads` workers, surfacing configuration and
/// thread-count problems as usage errors.
fn session_for(cfg: SystemConfig, threads: usize) -> Result<SimulationSession, CliError> {
    session_with_trace(cfg, threads, None, None)
}

/// Like [`session_for`], but optionally attaches a metrics recorder so the
/// run emits a trace artifact, and/or a fault-injection plan.
fn session_with_trace(
    cfg: SystemConfig,
    threads: usize,
    recorder: Option<SharedRecorder>,
    faults: Option<FaultPlan>,
) -> Result<SimulationSession, CliError> {
    let mut builder = SimulationSession::builder(cfg);
    builder = match threads {
        1 => builder.sequential(),
        n => builder.parallel(n),
    };
    if let Some(r) = recorder {
        builder = builder.with_trace(r);
    }
    if let Some(plan) = faults {
        builder = builder.with_faults(plan);
    }
    builder.build().map_err(|e| CliError::Usage(e.to_string()))
}

fn run_algorithm(
    name: &str,
    session: &SimulationSession,
    graph: &EdgeList,
    iterations: u32,
) -> Result<RunReport, CliError> {
    let result = match name {
        "pr" => session.run_on_edge_list(&PageRank::new(iterations), graph),
        "bfs" => session.run_on_edge_list(&Bfs::new(VertexId::new(0)), graph),
        "cc" => session.run_on_edge_list(&ConnectedComponents::new(), graph),
        "sssp" => session.run_on_edge_list(&Sssp::new(VertexId::new(0)), graph),
        "spmv" => session.run_on_edge_list(&SpMv::new(), graph),
        "degree" => session.run_on_edge_list(&DegreeCentrality::new(), graph),
        other => {
            return Err(CliError::Usage(format!(
                "unknown algorithm '{other}' (use pr/bfs/cc/sssp/spmv/degree)"
            )))
        }
    };
    result.map_err(|e| CliError::Failed(e.to_string()))
}

fn run<W: Write>(args: RunArgs, out: &mut W) -> Result<(), CliError> {
    let (graph, scale, name) = load(&args.source)?;
    let mut cfg = config_by_name(&args.config)?.with_dataset_scale(scale);
    if let Some(mb) = args.sram_mb {
        cfg = cfg.with_sram_mb(mb);
    }
    if args.no_sharing {
        cfg = cfg.with_data_sharing(false);
    }
    if args.no_gating {
        cfg = cfg.with_power_gating(false);
    }
    let faults = args
        .faults
        .as_deref()
        .map(|spec| FaultPlan::parse(spec).map_err(|e| CliError::Usage(format!("--faults: {e}"))))
        .transpose()?;
    let recorder = args.trace.as_ref().map(|_| SharedRecorder::default());
    let session = session_with_trace(cfg, args.threads, recorder.clone(), faults)?;
    let report = run_algorithm(&args.algorithm, &session, &graph, args.iterations)?;
    writeln!(out, "graph : {name}").map_err(io_err)?;
    writeln!(out, "{report}").map_err(io_err)?;
    writeln!(
        out,
        "summary: {:.1} MTEPS/W | {} | {} | EDP {:.3e} J*s",
        report.mteps_per_watt(),
        report.energy(),
        report.elapsed(),
        report.edp().as_j_s(),
    )
    .map_err(io_err)?;
    if let (Some(path), Some(recorder)) = (&args.trace, &recorder) {
        std::fs::write(path, recorder.artifact().to_jsonl())
            .map_err(|e| CliError::Failed(format!("write {path}: {e}")))?;
        writeln!(out, "trace : wrote {path}").map_err(io_err)?;
    }
    Ok(())
}

/// Reads and parses a trace artifact from disk.
fn read_artifact(path: &str) -> Result<TraceArtifact, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Failed(format!("read {path}: {e}")))?;
    TraceArtifact::from_jsonl(&text).map_err(|e| CliError::Failed(format!("{path}: {e}")))
}

/// Pretty-prints one artifact's breakdown.
fn print_artifact<W: Write>(a: &TraceArtifact, out: &mut W) -> Result<(), CliError> {
    writeln!(out, "algorithm : {} on {}", a.algorithm, a.config).map_err(io_err)?;
    writeln!(
        out,
        "graph     : {} vertices, {} edges ({} intervals, {} PUs)",
        a.num_vertices, a.num_edges, a.intervals, a.num_pus
    )
    .map_err(io_err)?;
    let processed: u64 = a.iterations.iter().map(|s| s.blocks_processed).sum();
    let skipped: u64 = a.iterations.iter().map(|s| s.blocks_skipped).sum();
    writeln!(
        out,
        "iterations: {} ({} edge traversals; blocks {} processed / {} skipped)",
        a.iterations_total, a.edges_processed, processed, skipped
    )
    .map_err(io_err)?;
    writeln!(out, "phases:").map_err(io_err)?;
    for (label, t) in a.phases.named() {
        writeln!(out, "  {label:<12} {t}").map_err(io_err)?;
    }
    writeln!(out, "channels:").map_err(io_err)?;
    for c in &a.channels {
        writeln!(
            out,
            "  {:<16} {:>10} reads {:>10} writes  dynamic {:>14}  background {:>14}  busy {}",
            c.channel.name(),
            c.stats.reads,
            c.stats.writes,
            format!("{}", c.stats.dynamic_energy),
            format!("{}", c.stats.background_energy),
            c.stats.busy_time,
        )
        .map_err(io_err)?;
    }
    if let Some(transitions) = a.gating_transitions {
        writeln!(out, "gating    : {transitions} sleep/wake transitions").map_err(io_err)?;
    }
    if let Some(router) = &a.router {
        writeln!(
            out,
            "router    : {} words moved, {} reroute decisions",
            router.words, router.reroutes
        )
        .map_err(io_err)?;
    }
    if let Some(rel) = &a.reliability {
        writeln!(
            out,
            "reliability: {} corrected, {} uncorrectable ({} retries)",
            rel.corrected, rel.uncorrectable, rel.retries
        )
        .map_err(io_err)?;
        for r in &rel.remaps {
            writeln!(
                out,
                "  remap    : bank {}:{} -> spare {}:{}",
                r.chip, r.bank, r.spare_chip, r.spare_bank
            )
            .map_err(io_err)?;
        }
    }
    writeln!(out, "total     : {} | {}", a.total_energy(), a.elapsed()).map_err(io_err)
}

fn report<W: Write>(args: ReportArgs, out: &mut W) -> Result<(), CliError> {
    let artifact = read_artifact(&args.artifact)?;
    print_artifact(&artifact, out)?;
    if let Some(base_path) = &args.baseline {
        let baseline = read_artifact(base_path)?;
        let diff = artifact.diff(&baseline);
        writeln!(out, "\ndiff vs {base_path}:").map_err(io_err)?;
        writeln!(out, "{diff}").map_err(io_err)?;
        writeln!(
            out,
            "identical: {}",
            if diff.is_zero() { "yes" } else { "no" }
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn compare<W: Write>(args: CompareArgs, out: &mut W) -> Result<(), CliError> {
    let (graph, scale, name) = load(&args.source)?;
    writeln!(out, "graph : {name}").map_err(io_err)?;
    let mut edges_processed = 0;
    for cfg in [
        SystemConfig::acc_dram(),
        SystemConfig::acc_reram(),
        SystemConfig::acc_sram_dram(),
        SystemConfig::hyve(),
        SystemConfig::hyve_opt(),
    ] {
        let cfg = cfg.with_dataset_scale(scale);
        let label = cfg.name;
        let session = session_for(cfg, args.threads)?;
        let report = run_algorithm(&args.algorithm, &session, &graph, 10)?;
        edges_processed = report.edges_processed;
        writeln!(
            out,
            "{label:<16} {:>9.1} MTEPS/W  {:>12}  {:>12}",
            report.mteps_per_watt(),
            format!("{}", report.energy()),
            format!("{}", report.elapsed()),
        )
        .map_err(io_err)?;
    }
    // GraphR and the CPU baselines for context.
    let graphr_report = match args.algorithm.as_str() {
        "pr" => GraphrEngine::new().run(&PageRank::new(10), &graph),
        "bfs" => GraphrEngine::new().run(&Bfs::new(VertexId::new(0)), &graph),
        "cc" => GraphrEngine::new().run(&ConnectedComponents::new(), &graph),
        "sssp" => GraphrEngine::new().run(&Sssp::new(VertexId::new(0)), &graph),
        "spmv" => GraphrEngine::new().run(&SpMv::new(), &graph),
        other => return Err(CliError::Usage(format!("unknown algorithm '{other}'"))),
    }
    .map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(
        out,
        "{:<16} {:>9.1} MTEPS/W  {:>12}  {:>12}",
        "GraphR",
        graphr_report.mteps_per_watt(),
        format!("{}", graphr_report.energy()),
        format!("{}", graphr_report.elapsed()),
    )
    .map_err(io_err)?;
    for cpu in [CpuSystem::nxgraph_like(), CpuSystem::galois_like()] {
        writeln!(
            out,
            "{:<16} {:>9.1} MTEPS/W",
            cpu.name,
            cpu.mteps_per_watt(edges_processed)
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn sweep<W: Write>(args: SweepArgs, out: &mut W) -> Result<(), CliError> {
    let (graph, scale, name) = load(&args.source)?;
    writeln!(out, "graph : {name}").map_err(io_err)?;
    let base = SystemConfig::hyve_opt().with_dataset_scale(scale);
    match args.what.as_str() {
        "sram" => {
            for mb in [2u64, 4, 8, 16] {
                let report = run_algorithm(
                    "pr",
                    &session_for(base.clone().with_sram_mb(mb), args.threads)?,
                    &graph,
                    10,
                )?;
                writeln!(
                    out,
                    "{mb:>2} MB : {:>8.1} MTEPS/W (P = {})",
                    report.mteps_per_watt(),
                    report.intervals
                )
                .map_err(io_err)?;
            }
        }
        "cells" => {
            for bits in CellBits::all() {
                let report = run_algorithm(
                    "pr",
                    &session_for(base.clone().with_cell_bits(bits), args.threads)?,
                    &graph,
                    10,
                )?;
                writeln!(out, "{bits} : {:>8.1} MTEPS/W", report.mteps_per_watt())
                    .map_err(io_err)?;
            }
        }
        "density" => {
            for gbit in [4u32, 8, 16] {
                let report = run_algorithm(
                    "pr",
                    &session_for(base.clone().with_density(gbit), args.threads)?,
                    &graph,
                    10,
                )?;
                writeln!(
                    out,
                    "{gbit:>2} Gb : {:>8.1} MTEPS/W",
                    report.mteps_per_watt()
                )
                .map_err(io_err)?;
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown sweep axis '{other}' (use sram/cells/density)"
            )))
        }
    }
    Ok(())
}

fn recommend_cmd<W: Write>(args: RecommendArgs, out: &mut W) -> Result<(), CliError> {
    let objective = match args.objective.as_str() {
        "latency" => Objective::Latency,
        "energy" => Objective::Energy,
        "edp" => Objective::EnergyDelay,
        other => {
            return Err(CliError::Usage(format!(
                "unknown objective '{other}' (use latency/energy/edp)"
            )))
        }
    };
    // Default partitions: what the planner would pick for PR at 2 MB.
    let partitions = match args.partitions {
        Some(p) => p,
        None => session_for(SystemConfig::hyve_opt().with_dataset_scale(1), 1)?.plan_intervals(
            &PageRank::new(10),
            args.vertices.min(u64::from(u32::MAX)) as u32,
        ),
    };
    let shape = WorkloadShape {
        num_vertices: args.vertices,
        num_edges: args.edges,
        partitions,
        pus: 8,
        navg: args.navg,
        density_gbit: 4,
    };
    let r = recommend(&shape, objective);
    writeln!(out, "recommended hierarchy (objective: {:?}):", objective).map_err(io_err)?;
    writeln!(out, "  edge storage  : {}", r.edge_storage).map_err(io_err)?;
    writeln!(out, "  global vertex : {}", r.global_vertex).map_err(io_err)?;
    writeln!(out, "  local vertex  : {}", r.local_vertex).map_err(io_err)?;
    writeln!(out, "  processing    : {}", r.processing).map_err(io_err)?;
    for line in &r.rationale {
        writeln!(out, "  - {line}").map_err(io_err)?;
    }
    Ok(())
}

fn info<W: Write>(args: SourceArgs, out: &mut W) -> Result<(), CliError> {
    let (graph, _, name) = load(&args)?;
    writeln!(out, "graph : {name}").map_err(io_err)?;
    let deg = hyve_graph::DegreeStats::out_degrees(&graph);
    let stats = block_sparsity(&graph, 8);
    writeln!(out, "vertices          : {}", graph.num_vertices()).map_err(io_err)?;
    writeln!(out, "edges             : {}", graph.len()).map_err(io_err)?;
    writeln!(out, "avg degree        : {:.2}", graph.avg_degree()).map_err(io_err)?;
    writeln!(out, "max out-degree    : {}", deg.max).map_err(io_err)?;
    writeln!(out, "degree p99        : {}", deg.p99).map_err(io_err)?;
    writeln!(
        out,
        "degree skew (CoV) : {:.2}{}",
        deg.coefficient_of_variation,
        if deg.is_skewed() {
            " (heavy-tailed)"
        } else {
            ""
        }
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "top-1% edge share : {:.1}%",
        100.0 * deg.top1pct_edge_share
    )
    .map_err(io_err)?;
    writeln!(out, "8x8 blocks (used) : {}", stats.non_empty_blocks).map_err(io_err)?;
    writeln!(out, "Navg              : {:.2}", stats.avg_edges_per_block).map_err(io_err)?;
    let session = session_for(SystemConfig::hyve_opt(), 1)?;
    let p = session.plan_intervals(&PageRank::new(10), graph.num_vertices());
    writeln!(out, "planned intervals : {p} (PR, 2 MB SRAM, scaled)").map_err(io_err)?;
    writeln!(out, "{}", session.hierarchy().spec()).map_err(io_err)
}

fn gen<W: Write>(args: GenArgs, out: &mut W) -> Result<(), CliError> {
    let graph = Rmat::new(args.vertices, args.edges).generate(args.seed);
    let file = std::fs::File::create(&args.out)
        .map_err(|e| CliError::Failed(format!("create {}: {e}", args.out)))?;
    io::write(&graph, std::io::BufWriter::new(file)).map_err(io_err)?;
    writeln!(
        out,
        "wrote {} edges over {} vertices to {}",
        graph.len(),
        graph.num_vertices(),
        args.out
    )
    .map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn exec(line: &str) -> Result<String, CliError> {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        let cmd = parse(&argv)?;
        let mut out = Vec::new();
        execute(cmd, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn help_prints_usage() {
        let s = exec("help").unwrap();
        assert!(s.contains("USAGE"));
    }

    #[test]
    fn run_on_dataset() {
        let s = exec("run --alg bfs --dataset yt --config hyve").unwrap();
        assert!(s.contains("MTEPS/W"), "{s}");
        assert!(s.contains("acc+HyVE"), "{s}");
    }

    #[test]
    fn run_rejects_unknowns() {
        assert!(exec("run --alg nope --dataset yt").is_err());
        assert!(exec("run --alg pr --dataset nope").is_err());
        assert!(exec("run --alg pr --dataset yt --config nope").is_err());
    }

    #[test]
    fn run_with_threads_matches_sequential() {
        let seq = exec("run --alg pr --dataset yt --iters 2").unwrap();
        let par = exec("run --alg pr --dataset yt --iters 2 --threads 4").unwrap();
        assert_eq!(seq, par, "parallel output must be bit-identical");
    }

    #[test]
    fn run_rejects_zero_threads() {
        assert!(exec("run --alg pr --dataset yt --threads 0").is_err());
    }

    #[test]
    fn invalid_toggle_combination_rejected() {
        // Power gating on a DRAM edge memory is invalid and must surface.
        let err = exec("run --alg pr --dataset yt --config acc-dram").is_ok();
        assert!(err, "acc-dram without gating is fine");
        // acc-dram never has gating on, so force the inverse check via sweep.
    }

    #[test]
    fn compare_lists_all_systems() {
        let s = exec("compare --alg spmv --dataset yt").unwrap();
        for label in ["acc+DRAM", "acc+HyVE-opt", "GraphR", "CPU+DRAM"] {
            assert!(s.contains(label), "missing {label} in {s}");
        }
    }

    #[test]
    fn sweep_axes() {
        let s = exec("sweep --what cells --dataset yt").unwrap();
        assert!(s.contains("1bit") && s.contains("3bit"));
        assert!(exec("sweep --what nope --dataset yt").is_err());
    }

    #[test]
    fn recommend_prints_hierarchy() {
        let s = exec("recommend --vertices 1000000 --edges 30000000").unwrap();
        assert!(s.contains("edge storage  : ReRAM"), "{s}");
        assert!(s.contains("processing    : CMOS"), "{s}");
    }

    #[test]
    fn info_reports_navg() {
        let s = exec("info --dataset wk").unwrap();
        assert!(s.contains("Navg"));
        assert!(s.contains("planned intervals"));
    }

    #[test]
    fn info_prints_lowered_hierarchy_spec() {
        let s = exec("info --dataset yt").unwrap();
        assert!(s.contains("hierarchy acc+HyVE-opt"), "{s}");
        assert!(s.contains("edge stream:   ReRAM"), "{s}");
        assert!(s.contains("global vertex: DRAM"), "{s}");
        assert!(s.contains("local vertex:  SRAM"), "{s}");
    }

    #[test]
    fn trace_and_report_round_trip() {
        let dir = std::env::temp_dir().join("hyve-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let p = path.to_str().unwrap().to_string();
        let s = exec(&format!("run --alg bfs --dataset yt --trace {p}")).unwrap();
        assert!(s.contains("trace : wrote"), "{s}");
        let s = exec(&format!("report {p}")).unwrap();
        assert!(s.contains("algorithm : BFS"), "{s}");
        assert!(s.contains("edge_memory"), "{s}");
        assert!(s.contains("total     :"), "{s}");
        let s = exec(&format!("report {p} {p}")).unwrap();
        assert!(s.contains("identical: yes"), "{s}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fault_run_reports_reliability_and_is_deterministic() {
        let line = "run --alg pr --dataset yt --iters 3 \
                    --faults seed=7,reram-ber=1e-5,ecc=secded";
        let a = exec(line).unwrap();
        assert!(a.contains("reliability"), "{a}");
        assert!(a.contains("corrected"), "{a}");
        let b = exec(line).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same output");
    }

    #[test]
    fn bad_fault_spec_is_a_usage_error() {
        let err = exec("run --alg pr --dataset yt --faults seed=banana").unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
        let err = exec("run --alg pr --dataset yt --faults reram-ber=2.0").unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn stuck_bank_trace_surfaces_remap_in_report() {
        let dir = std::env::temp_dir().join("hyve-cli-fault-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faulty.jsonl");
        let p = path.to_str().unwrap().to_string();
        let s = exec(&format!(
            "run --alg bfs --dataset yt --trace {p} --faults seed=1,stuck-bank=0:3"
        ))
        .unwrap();
        assert!(s.contains("bank remap"), "{s}");
        let s = exec(&format!("report {p}")).unwrap();
        assert!(s.contains("reliability:"), "{s}");
        assert!(s.contains("remap    : bank 0:3 -> spare"), "{s}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn report_failures_are_runtime_not_usage() {
        let err = exec("report /nonexistent/trace.jsonl").unwrap_err();
        assert!(matches!(err, CliError::Failed(_)), "{err}");
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn gen_and_reload_round_trip() {
        let dir = std::env::temp_dir().join("hyve-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let path_str = path.to_str().unwrap().to_string();
        let s = exec(&format!("gen --vertices 100 --edges 500 --out {path_str}")).unwrap();
        assert!(s.contains("wrote 500 edges"));
        let s = exec(&format!("run --alg cc --input {path_str}")).unwrap();
        assert!(s.contains("MTEPS/W"));
        std::fs::remove_file(path).ok();
    }
}
