//! Hand-rolled argument parsing for the `hyve` CLI.

use crate::CliError;
use std::collections::HashMap;

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `hyve run ...`
    Run(RunArgs),
    /// `hyve compare ...`
    Compare(CompareArgs),
    /// `hyve sweep ...`
    Sweep(SweepArgs),
    /// `hyve recommend ...`
    Recommend(RecommendArgs),
    /// `hyve info ...`
    Info(SourceArgs),
    /// `hyve gen ...`
    Gen(GenArgs),
    /// `hyve report ...`
    Report(ReportArgs),
    /// `hyve help` / `--help`
    Help,
}

/// Where the graph comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// A named scaled dataset profile (yt/wk/as/lj/tw).
    Dataset(String),
    /// A SNAP-format edge-list file.
    File(String),
}

/// Shared graph-source arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceArgs {
    /// The graph source.
    pub source: GraphSource,
    /// Generator seed for dataset profiles.
    pub seed: u64,
}

/// `hyve run` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Algorithm name (pr/bfs/cc/sssp/spmv).
    pub algorithm: String,
    /// System configuration name.
    pub config: String,
    /// Graph source.
    pub source: SourceArgs,
    /// PR iteration count.
    pub iterations: u32,
    /// SRAM capacity override (MB).
    pub sram_mb: Option<u64>,
    /// Disable data sharing.
    pub no_sharing: bool,
    /// Disable power gating.
    pub no_gating: bool,
    /// Worker threads for the simulation (1 = sequential).
    pub threads: usize,
    /// Write a JSONL trace artifact to this path.
    pub trace: Option<String>,
    /// Fault-injection spec (`seed=...,reram-ber=...,ecc=...`).
    pub faults: Option<String>,
}

/// `hyve compare` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareArgs {
    /// Algorithm name.
    pub algorithm: String,
    /// Graph source.
    pub source: SourceArgs,
    /// Worker threads for the simulation (1 = sequential).
    pub threads: usize,
}

/// `hyve sweep` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Sweep axis: sram / cells / density.
    pub what: String,
    /// Graph source.
    pub source: SourceArgs,
    /// Worker threads for the simulation (1 = sequential).
    pub threads: usize,
}

/// `hyve recommend` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendArgs {
    /// Vertex count.
    pub vertices: u64,
    /// Edge count.
    pub edges: u64,
    /// Partition count (default: planned from 2 MB SRAM).
    pub partitions: Option<u32>,
    /// Average 8×8 block occupancy (default 1.5).
    pub navg: f64,
    /// Objective: latency / energy / edp.
    pub objective: String,
}

/// `hyve report` arguments: pretty-print one trace artifact, or diff two.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArgs {
    /// The artifact to display (JSONL written by `hyve run --trace`).
    pub artifact: String,
    /// Optional baseline artifact to diff against.
    pub baseline: Option<String>,
}

/// `hyve gen` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct GenArgs {
    /// Vertex count.
    pub vertices: u32,
    /// Edge count.
    pub edges: usize,
    /// Output path.
    pub out: String,
    /// Generator seed.
    pub seed: u64,
}

/// Splits `argv` into flag→value pairs (flags start with `--`; bare flags
/// get the value "true").
fn flags(argv: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < argv.len() {
        let token = &argv[i];
        let Some(name) = token.strip_prefix("--") else {
            return Err(CliError::Usage(format!("unexpected argument '{token}'")));
        };
        let boolean = matches!(name, "no-sharing" | "no-gating" | "help");
        if boolean {
            map.insert(name.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = argv
                .get(i + 1)
                .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
            map.insert(name.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(map)
}

fn get_num<T: std::str::FromStr>(
    map: &HashMap<String, String>,
    key: &str,
    default: Option<T>,
) -> Result<T, CliError> {
    match map.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("--{key} got invalid value '{v}'"))),
        None => default.ok_or_else(|| CliError::Usage(format!("--{key} is required"))),
    }
}

fn get_source(map: &HashMap<String, String>) -> Result<SourceArgs, CliError> {
    let source = match (map.get("dataset"), map.get("input")) {
        (Some(d), None) => GraphSource::Dataset(d.to_lowercase()),
        (None, Some(f)) => GraphSource::File(f.clone()),
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--dataset and --input are mutually exclusive".into(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage(
                "one of --dataset or --input is required".into(),
            ))
        }
    };
    Ok(SourceArgs {
        source,
        seed: get_num(map, "seed", Some(2018u64))?,
    })
}

/// Parses `argv` (without the program name).
///
/// # Errors
///
/// [`CliError::Usage`] on unknown commands, missing flags or bad values.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Ok(Command::Help);
    };
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        return Ok(Command::Help);
    }
    if cmd == "report" {
        // `report` takes positionals (artifact paths), unlike the
        // flag-only commands.
        if rest.iter().any(|t| t == "--help") {
            return Ok(Command::Help);
        }
        if let Some(flag) = rest.iter().find(|t| t.starts_with("--")) {
            return Err(CliError::Usage(format!("unexpected flag '{flag}'")));
        }
        return match rest {
            [artifact] => Ok(Command::Report(ReportArgs {
                artifact: artifact.clone(),
                baseline: None,
            })),
            [artifact, baseline] => Ok(Command::Report(ReportArgs {
                artifact: artifact.clone(),
                baseline: Some(baseline.clone()),
            })),
            [] => Err(CliError::Usage(
                "report needs an artifact path (and optionally a baseline to diff)".into(),
            )),
            _ => Err(CliError::Usage(
                "report takes at most two artifact paths".into(),
            )),
        };
    }
    let map = flags(rest)?;
    if map.contains_key("help") {
        return Ok(Command::Help);
    }
    match cmd.as_str() {
        "run" => Ok(Command::Run(RunArgs {
            algorithm: map
                .get("alg")
                .ok_or_else(|| CliError::Usage("--alg is required".into()))?
                .to_lowercase(),
            config: map
                .get("config")
                .map(|s| s.to_lowercase())
                .unwrap_or_else(|| "hyve-opt".into()),
            source: get_source(&map)?,
            iterations: get_num(&map, "iters", Some(10u32))?,
            sram_mb: map
                .get("sram-mb")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| CliError::Usage(format!("--sram-mb got invalid value '{v}'")))
                })
                .transpose()?,
            no_sharing: map.contains_key("no-sharing"),
            no_gating: map.contains_key("no-gating"),
            threads: get_num(&map, "threads", Some(1usize))?,
            trace: map.get("trace").cloned(),
            faults: map.get("faults").cloned(),
        })),
        "compare" => Ok(Command::Compare(CompareArgs {
            algorithm: map
                .get("alg")
                .ok_or_else(|| CliError::Usage("--alg is required".into()))?
                .to_lowercase(),
            source: get_source(&map)?,
            threads: get_num(&map, "threads", Some(1usize))?,
        })),
        "sweep" => Ok(Command::Sweep(SweepArgs {
            what: map
                .get("what")
                .ok_or_else(|| CliError::Usage("--what is required".into()))?
                .to_lowercase(),
            source: get_source(&map)?,
            threads: get_num(&map, "threads", Some(1usize))?,
        })),
        "recommend" => Ok(Command::Recommend(RecommendArgs {
            vertices: get_num(&map, "vertices", None)?,
            edges: get_num(&map, "edges", None)?,
            partitions: map
                .get("partitions")
                .map(|v| {
                    v.parse::<u32>().map_err(|_| {
                        CliError::Usage(format!("--partitions got invalid value '{v}'"))
                    })
                })
                .transpose()?,
            navg: get_num(&map, "navg", Some(1.5f64))?,
            objective: map
                .get("objective")
                .map(|s| s.to_lowercase())
                .unwrap_or_else(|| "energy".into()),
        })),
        "info" => Ok(Command::Info(get_source(&map)?)),
        "gen" => Ok(Command::Gen(GenArgs {
            vertices: get_num(&map, "vertices", None)?,
            edges: get_num(&map, "edges", None)?,
            out: map
                .get("out")
                .ok_or_else(|| CliError::Usage("--out is required".into()))?
                .clone(),
            seed: get_num(&map, "seed", Some(2018u64))?,
        })),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_run_with_defaults() {
        let cmd = parse(&argv("run --alg pr --dataset yt")).unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.algorithm, "pr");
                assert_eq!(r.config, "hyve-opt");
                assert_eq!(r.iterations, 10);
                assert_eq!(r.source.seed, 2018);
                assert_eq!(r.source.source, GraphSource::Dataset("yt".into()));
                assert!(!r.no_sharing && !r.no_gating);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_run_with_overrides() {
        let cmd = parse(&argv(
            "run --alg bfs --config acc-dram --dataset as --iters 3 --seed 7 \
             --sram-mb 8 --no-sharing --no-gating",
        ))
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.config, "acc-dram");
                assert_eq!(r.iterations, 3);
                assert_eq!(r.source.seed, 7);
                assert_eq!(r.sram_mb, Some(8));
                assert!(r.no_sharing && r.no_gating);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_threads_flag() {
        match parse(&argv("run --alg pr --dataset yt --threads 4")).unwrap() {
            Command::Run(r) => assert_eq!(r.threads, 4),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("compare --alg pr --dataset yt")).unwrap() {
            Command::Compare(c) => assert_eq!(c.threads, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("sweep --what sram --dataset yt --threads x")).is_err());
    }

    #[test]
    fn dataset_and_input_conflict() {
        let err = parse(&argv("run --alg pr --dataset yt --input g.txt")).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
    }

    #[test]
    fn missing_required_flag() {
        assert!(parse(&argv("run --dataset yt")).is_err());
        assert!(parse(&argv("recommend --vertices 10")).is_err());
        assert!(parse(&argv("gen --vertices 10 --edges 20")).is_err());
    }

    #[test]
    fn invalid_numbers_reported() {
        let err = parse(&argv("run --alg pr --dataset yt --iters lots")).unwrap_err();
        assert!(err.to_string().contains("--iters"));
    }

    #[test]
    fn help_forms() {
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("run --help")).unwrap(), Command::Help);
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(parse(&argv("frobnicate --x 1")).is_err());
    }

    #[test]
    fn recommend_defaults() {
        let cmd = parse(&argv("recommend --vertices 1000 --edges 5000")).unwrap();
        match cmd {
            Command::Recommend(r) => {
                assert_eq!(r.navg, 1.5);
                assert_eq!(r.objective, "energy");
                assert_eq!(r.partitions, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn flag_without_value() {
        let err = parse(&argv("run --alg")).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn bare_positional_rejected() {
        let err = parse(&argv("run pr")).unwrap_err();
        assert!(err.to_string().contains("unexpected argument"));
    }

    #[test]
    fn parses_trace_flag() {
        match parse(&argv("run --alg pr --dataset yt --trace out.jsonl")).unwrap() {
            Command::Run(r) => assert_eq!(r.trace.as_deref(), Some("out.jsonl")),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("run --alg pr --dataset yt")).unwrap() {
            Command::Run(r) => assert_eq!(r.trace, None),
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&argv("run --alg pr --dataset yt --trace")).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn parses_faults_flag() {
        match parse(&argv(
            "run --alg pr --dataset yt --faults seed=7,reram-ber=1e-5,ecc=secded",
        ))
        .unwrap()
        {
            Command::Run(r) => assert_eq!(
                r.faults.as_deref(),
                Some("seed=7,reram-ber=1e-5,ecc=secded")
            ),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("run --alg pr --dataset yt")).unwrap() {
            Command::Run(r) => assert_eq!(r.faults, None),
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&argv("run --alg pr --dataset yt --faults")).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn parses_report_positionals() {
        match parse(&argv("report a.jsonl")).unwrap() {
            Command::Report(r) => {
                assert_eq!(r.artifact, "a.jsonl");
                assert_eq!(r.baseline, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("report a.jsonl b.jsonl")).unwrap() {
            Command::Report(r) => {
                assert_eq!(r.artifact, "a.jsonl");
                assert_eq!(r.baseline.as_deref(), Some("b.jsonl"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse(&argv("report --help")).unwrap(), Command::Help);
        assert!(parse(&argv("report")).is_err());
        assert!(parse(&argv("report a b c")).is_err());
        assert!(parse(&argv("report --weird a")).is_err());
    }
}
