//! `hyve` binary entry point — a thin shim over [`hyve_cli::run_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match hyve_cli::run_cli(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            if matches!(e, hyve_cli::CliError::Usage(_)) {
                eprintln!("\n{}", hyve_cli::USAGE);
            }
            ExitCode::from(e.exit_code())
        }
    }
}
