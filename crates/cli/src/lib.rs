//! # hyve-cli — command-line interface for the HyVE simulator
//!
//! ```text
//! hyve run --alg pr --config hyve-opt --dataset yt      run one workload
//! hyve compare --alg bfs --dataset as                   all hierarchies + GraphR + CPU
//! hyve sweep --what sram --dataset lj                   design-space sweeps
//! hyve recommend --vertices 1000000 --edges 30000000    §6.6 design advisor
//! hyve info --dataset tw                                dataset statistics
//! hyve gen --vertices 1000 --edges 8000 --out g.txt     write a SNAP file
//! ```
//!
//! The argument parser is hand-rolled (no external dependencies) and fully
//! unit-tested; `main.rs` is a thin shim over [`run_cli`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

/// CLI-level error: bad usage or a failure bubbling up from the library.
#[derive(Debug)]
pub enum CliError {
    /// The arguments did not parse; the message includes usage help.
    Usage(String),
    /// The underlying operation failed.
    Failed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Failed(m) => write!(f, "error: {m}"),
        }
    }
}

impl CliError {
    /// Process exit code for this error: `2` for usage errors (matching the
    /// common Unix convention, e.g. `grep`/`bash`), `1` for runtime failures.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Failed(_) => 1,
        }
    }
}

impl std::error::Error for CliError {}

/// Parses `argv` (without the program name) and executes the command,
/// writing human-readable output to `out`.
///
/// # Errors
///
/// [`CliError::Usage`] on malformed arguments; [`CliError::Failed`] when an
/// engine or I/O operation fails.
pub fn run_cli<W: std::io::Write>(argv: &[String], out: &mut W) -> Result<(), CliError> {
    let cmd = args::parse(argv)?;
    commands::execute(cmd, out)
}

/// Top-level usage text.
pub const USAGE: &str = "\
hyve — Hybrid Vertex-Edge memory hierarchy simulator

USAGE:
  hyve run       --alg <pr|bfs|cc|sssp|spmv> [--config <name>] (--dataset <tag> | --input <file>)
                 [--iters N] [--seed N] [--sram-mb N] [--no-sharing] [--no-gating] [--threads N]
                 [--trace <file.jsonl>] [--faults <spec>]
  hyve report    <artifact.jsonl> [<baseline.jsonl>]
  hyve compare   --alg <name> (--dataset <tag> | --input <file>) [--seed N] [--threads N]
  hyve sweep     --what <sram|cells|density> (--dataset <tag> | --input <file>) [--threads N]
  hyve recommend --vertices N --edges M [--partitions P] [--navg X] [--objective <latency|energy|edp>]
  hyve info      (--dataset <tag> | --input <file>)
  hyve gen       --vertices N --edges M --out <file> [--seed N]

datasets: yt, wk, as, lj, tw (scaled stand-ins for the paper's Table 2)
configs : acc-dram, acc-reram, acc-sram-dram, hyve, hyve-opt (default)

`run --trace` records a per-iteration metrics artifact (JSONL); `report`
pretty-prints one artifact, or diffs two (energy/latency deltas per channel).

`run --faults` injects a deterministic fault model, e.g.
  --faults seed=7,reram-ber=1e-5,dram-ber=1e-9,ecc=secded,retries=3
keys: seed, reram-ber, dram-ber, sram-ber, ecc=<none|secded|bch>, retries,
wear-limit, stuck-bank=CHIP:BANK (repeatable). Same seed, same counts —
corrections, retries and bank remaps land in the report and trace artifact.
";
