//! The GraphR execution engine: §6's cost equations over 8×8 blocks.
//!
//! Per iteration, every non-empty 8×8 block is processed by (i) writing its
//! edges into a crossbar (the dominant cost — Eq. 14), (ii) reading the
//! matrix-vector result (4 ganged crossbars for 16-bit MV algorithms, 8
//! row-select passes plus a CMOS output operator for non-MV ones —
//! Eq. 11/12), while (iii) register files shuttle 8 source + 8 destination
//! vertex values per block from the ReRAM global memory (Eq. 9).

use hyve_algorithms::{run_in_memory, EdgeProgram, ExecutionMode, GraphMeta};
use hyve_core::{CoreError, EnergyBreakdown, PhaseTimes, RunReport};
use hyve_graph::{block_sparsity, EdgeList, SparsityStats};
use hyve_memsim::{MemoryDevice, RegisterFile, ReramChip, ReramChipConfig, Time};
use hyve_model::CrossbarCosts;

/// Chips provisioned on GraphR's (all-ReRAM) memory system, mirroring the
/// HyVE engine's edge-channel provisioning for a fair background comparison.
const MEMORY_CHIPS: u32 = 8;

/// GraphR's block dimension: 8×8 vertices per crossbar.
pub const BLOCK_DIM: u32 = 8;

/// The GraphR simulator.
///
/// ```
/// use hyve_graphr::GraphrEngine;
/// use hyve_algorithms::PageRank;
/// use hyve_graph::DatasetProfile;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DatasetProfile::youtube_scaled().generate(1);
/// let report = GraphrEngine::new().run(&PageRank::new(5), &g)?;
/// assert!(report.energy().as_pj() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphrEngine {
    costs: CrossbarCosts,
    /// Parallel graph engines (crossbar clusters) processing blocks.
    graph_engines: u32,
}

impl GraphrEngine {
    /// Creates an engine with the paper's GraphR parameters and 8 parallel
    /// graph engines (matching HyVE's 8 PUs).
    pub fn new() -> Self {
        GraphrEngine {
            costs: CrossbarCosts::default(),
            graph_engines: 8,
        }
    }

    /// Overrides the crossbar cost parameters.
    pub fn with_costs(mut self, costs: CrossbarCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Overrides the number of parallel graph engines.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_graph_engines(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one graph engine");
        self.graph_engines = n;
        self
    }

    /// The crossbar cost parameters in use.
    pub fn costs(&self) -> &CrossbarCosts {
        &self.costs
    }

    /// Runs a program, returning the cost report.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unschedulable`] for empty graphs.
    pub fn run<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<RunReport, CoreError> {
        self.run_with_values(program, graph).map(|(r, _)| r)
    }

    /// Runs a program, returning the report and final vertex values.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unschedulable`] for empty graphs.
    pub fn run_with_values<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
    ) -> Result<(RunReport, Vec<P::Value>), CoreError> {
        if graph.num_vertices() == 0 {
            return Err(CoreError::Unschedulable {
                message: "graph has no vertices".into(),
            });
        }
        let meta = GraphMeta::from_edge_list(graph);
        let functional = run_in_memory(program, graph.edges(), &meta);
        let sparsity = block_sparsity(graph, BLOCK_DIM);
        let report = self.account(program, graph, &sparsity, functional.iterations);
        Ok((report, functional.values))
    }

    fn account<P: EdgeProgram>(
        &self,
        program: &P,
        graph: &EdgeList,
        sparsity: &SparsityStats,
        iterations: u32,
    ) -> RunReport {
        let c = &self.costs;
        let nv = u64::from(graph.num_vertices());
        let ne = graph.len() as u64;
        let neb = sparsity.non_empty_blocks;
        let traversal_factor: u64 = if program.undirected() { 2 } else { 1 };
        let traversals = ne * traversal_factor;
        let iters = f64::from(iterations);
        let value_bits = u64::from(program.value_bits().min(32)); // 16-bit ops, ≤1 word

        let reram = ReramChip::new(ReramChipConfig::default());
        let regfile = RegisterFile::default();
        let mut breakdown = EnergyBreakdown::default();

        // ---- crossbar processing (Eq. 11–16), per iteration -------------
        // Every edge is written into a crossbar; reads amortise per block.
        let is_mv = program.mode() == ExecutionMode::Accumulate;
        let write_energy = c.write_energy * traversals as f64;
        let read_passes = if is_mv {
            f64::from(c.crossbars_per_value)
        } else {
            f64::from(c.row_selects)
        };
        let read_energy = c.read_energy * (neb as f64 * read_passes);
        let op_energy = if is_mv {
            hyve_memsim::Energy::ZERO
        } else {
            c.cmos_op_energy * traversals as f64
        };
        breakdown.logic.record_write(
            traversals * 64,
            write_energy + read_energy + op_energy,
            Time::ZERO,
        );

        // Processing time: writes serialise per engine; one read per block.
        let proc_time = (c.write_latency * traversals as f64 + c.read_latency * neb as f64)
            / f64::from(self.graph_engines);

        // ---- vertex storage (Eq. 9) --------------------------------------
        // Global ReRAM: 16 sequential vertex reads per non-empty block,
        // Nv writes per iteration.
        let global_read_bits = 16 * neb * value_bits;
        let global_write_bits = nv * value_bits;
        breakdown.offchip_vertex.record_read(
            global_read_bits,
            reram.read_energy(global_read_bits),
            Time::ZERO,
        );
        breakdown.offchip_vertex.record_write(
            global_write_bits,
            reram.write_energy(global_write_bits),
            Time::ZERO,
        );
        let vertex_time = reram.sequential_read_time(global_read_bits)
            + reram.write_latency()
                * (global_write_bits.div_ceil(u64::from(reram.output_bits()))) as f64;

        // Register files: fills per block plus 2 reads + 1 write per edge.
        let rf_fill = regfile.write_energy(value_bits) * (16 * neb) as f64;
        let rf_edge = (regfile.read_energy(value_bits) * 2.0 + regfile.write_energy(value_bits))
            * traversals as f64;
        breakdown
            .onchip_vertex
            .record_write(16 * neb * value_bits, rf_fill + rf_edge, Time::ZERO);

        // ---- edge storage -------------------------------------------------
        // The edge list itself streams out of ReRAM once per iteration to
        // feed the crossbar writes.
        let edge_bits = ne * hyve_graph::Edge::BITS;
        breakdown
            .edge_memory
            .record_read(edge_bits, reram.read_energy(edge_bits), Time::ZERO);

        // ---- iteration time ----------------------------------------------
        // Vertex traffic overlaps crossbar processing; writes dominate.
        let iteration_time = proc_time.max(vertex_time);

        // Scale by iterations.
        for stats in [
            &mut breakdown.edge_memory,
            &mut breakdown.offchip_vertex,
            &mut breakdown.onchip_vertex,
            &mut breakdown.logic,
        ] {
            stats.reads = (stats.reads as f64 * iters) as u64;
            stats.writes = (stats.writes as f64 * iters) as u64;
            stats.bits_read = (stats.bits_read as f64 * iters) as u64;
            stats.bits_written = (stats.bits_written as f64 * iters) as u64;
            stats.dynamic_energy *= iters;
        }
        let total_time = iteration_time * iters;

        // ---- background ----------------------------------------------------
        // GraphR cannot power-gate: crossbars hold live computation state
        // and the access pattern hops across blocks.
        breakdown
            .edge_memory
            .record_background(reram.background_power() * f64::from(MEMORY_CHIPS) * total_time);

        RunReport {
            algorithm: program.name(),
            config: "GraphR",
            iterations,
            edges_processed: traversals * u64::from(iterations),
            intervals: (graph.num_vertices().div_ceil(BLOCK_DIM)).max(1),
            phases: PhaseTimes {
                loading: Time::ZERO,
                processing: total_time,
                updating: Time::ZERO,
                overhead: Time::ZERO,
            },
            breakdown,
            reliability: None,
        }
    }
}

impl Default for GraphrEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_algorithms::{reference, Bfs, ConnectedComponents, PageRank, SpMv, Sssp};
    use hyve_core::{SimulationSession, SystemConfig};
    use hyve_graph::{Csr, DatasetProfile, VertexId};

    fn graph() -> EdgeList {
        DatasetProfile::youtube_scaled().generate(3)
    }

    #[test]
    fn functional_results_match_references() {
        let g = graph();
        let engine = GraphrEngine::new();
        let (_, bfs) = engine
            .run_with_values(&Bfs::new(VertexId::new(0)), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        assert_eq!(bfs, reference::bfs_levels(&csr, VertexId::new(0)));
        let (_, cc) = engine
            .run_with_values(&ConnectedComponents::new(), &g)
            .unwrap();
        assert_eq!(cc, reference::connected_components(&g));
    }

    #[test]
    fn hyve_beats_graphr_on_energy_and_delay() {
        // The Fig. 21 headline: HyVE ≈5× faster, ≈2.8× less energy.
        let g = graph();
        let hyve = SimulationSession::builder(SystemConfig::hyve_opt())
            .build()
            .unwrap()
            .run_on_edge_list(&PageRank::new(5), &g)
            .unwrap();
        let graphr = GraphrEngine::new().run(&PageRank::new(5), &g).unwrap();
        assert!(graphr.elapsed() > hyve.elapsed(), "HyVE must be faster");
        assert!(graphr.energy() > hyve.energy(), "HyVE must use less energy");
        let energy_ratio = graphr.energy() / hyve.energy();
        let delay_ratio = graphr.elapsed() / hyve.elapsed();
        assert!(
            energy_ratio > 1.5 && energy_ratio < 20.0,
            "energy ratio {energy_ratio}"
        );
        assert!(
            delay_ratio > 1.5 && delay_ratio < 30.0,
            "delay ratio {delay_ratio}"
        );
    }

    #[test]
    fn crossbar_writes_dominate_graphr_energy() {
        let g = graph();
        let report = GraphrEngine::new().run(&PageRank::new(5), &g).unwrap();
        // Logic (crossbar write/read) is the dominant component — the §6.4
        // conclusion about write-heavy crossbar processing.
        let logic = report.breakdown.logic.total_energy();
        assert!(logic / report.energy() > 0.5, "{}", report.breakdown);
    }

    #[test]
    fn all_five_algorithms_run() {
        let g = graph();
        let engine = GraphrEngine::new();
        assert!(engine.run(&PageRank::new(2), &g).is_ok());
        assert!(engine.run(&Bfs::new(VertexId::new(0)), &g).is_ok());
        assert!(engine.run(&ConnectedComponents::new(), &g).is_ok());
        assert!(engine.run(&Sssp::new(VertexId::new(0)), &g).is_ok());
        assert!(engine.run(&SpMv::new(), &g).is_ok());
    }

    #[test]
    fn more_graph_engines_cut_delay_not_energy() {
        let g = graph();
        let slow = GraphrEngine::new().with_graph_engines(1);
        let fast = GraphrEngine::new().with_graph_engines(16);
        let rs = slow.run(&SpMv::new(), &g).unwrap();
        let rf = fast.run(&SpMv::new(), &g).unwrap();
        assert!(rf.elapsed() < rs.elapsed());
        // Dynamic energy identical; only background-over-time shrinks.
        assert!(rf.energy() <= rs.energy());
    }

    #[test]
    fn empty_graph_rejected() {
        let g = EdgeList::new(0);
        assert!(GraphrEngine::new().run(&SpMv::new(), &g).is_err());
    }

    #[test]
    fn non_mv_costs_more_per_block_than_mv() {
        // BFS (row-select path) vs SpMV (MV path) on the same graph, one
        // iteration each: compare per-traversal logic energy.
        let g = graph();
        let spmv = GraphrEngine::new().run(&SpMv::new(), &g).unwrap();
        let bfs = GraphrEngine::new()
            .run(&Bfs::new(VertexId::new(0)).with_max_iterations(1), &g)
            .unwrap();
        let per_edge =
            |r: &RunReport| r.breakdown.logic.dynamic_energy.as_pj() / r.edges_processed as f64;
        assert!(per_edge(&bfs) > per_edge(&spmv));
    }
}
