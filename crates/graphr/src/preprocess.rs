//! GraphR's fine-grained preprocessing: cutting a graph into 8×8 blocks.
//!
//! HyVE partitions into at most a few hundred intervals (dense bucket
//! array, counting sort); GraphR needs `⌈V/8⌉²` logical blocks — billions
//! for the paper's graphs — so only non-empty blocks can be materialised,
//! through a sorted associative index with per-edge lookup cost and sorted
//! intra-block inserts (crossbar row order). That addressing overhead is
//! exactly what Fig. 12 shows exploding past 32×32 blocks and what makes
//! GraphR's preprocessing 6.73× slower (Fig. 19).

use crate::engine::BLOCK_DIM;
use hyve_graph::{Edge, EdgeList};
use std::collections::BTreeMap;

/// GraphR's sparse block layout: only non-empty 8×8 blocks exist, kept in
/// a sorted associative index (the crossbar scheduler consumes blocks in
/// order, and every access pays the addressing cost §6.5 describes).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphrLayout {
    blocks: BTreeMap<(u32, u32), Vec<Edge>>,
    num_vertices: u32,
    num_edges: u64,
}

impl GraphrLayout {
    /// Number of non-empty blocks.
    pub fn non_empty_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges across all blocks.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Average edges per non-empty block (Table 1's `Navg`).
    pub fn navg(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.num_edges as f64 / self.blocks.len() as f64
        }
    }

    /// The edges of one block, if it is non-empty.
    pub fn block(&self, bx: u32, by: u32) -> Option<&[Edge]> {
        self.blocks.get(&(bx, by)).map(Vec::as_slice)
    }

    /// Iterates over `(coords, edges)` of non-empty blocks.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &Vec<Edge>)> {
        self.blocks.iter()
    }

    pub(crate) fn blocks_mut(&mut self) -> &mut BTreeMap<(u32, u32), Vec<Edge>> {
        &mut self.blocks
    }

    pub(crate) fn adjust_edge_count(&mut self, delta: i64) {
        self.num_edges = self.num_edges.wrapping_add_signed(delta);
    }

    pub(crate) fn set_num_vertices(&mut self, nv: u32) {
        self.num_vertices = nv;
    }
}

/// Builds the GraphR 8×8 block layout from an edge list.
///
/// ```
/// use hyve_graph::{Edge, EdgeList};
/// # fn main() -> Result<(), hyve_graph::GraphError> {
/// let g = EdgeList::from_edges(16, [Edge::new(0, 9), Edge::new(1, 9)])?;
/// let layout = hyve_graphr::preprocess(&g);
/// assert_eq!(layout.non_empty_blocks(), 1); // both edges in block (0,1)
/// assert_eq!(layout.navg(), 2.0);
/// # Ok(())
/// # }
/// ```
pub fn preprocess(g: &EdgeList) -> GraphrLayout {
    let mut blocks: BTreeMap<(u32, u32), Vec<Edge>> = BTreeMap::new();
    for e in g.iter() {
        let block = blocks
            .entry((e.src.raw() / BLOCK_DIM, e.dst.raw() / BLOCK_DIM))
            .or_default();
        insert_sorted(block, *e);
    }
    GraphrLayout {
        blocks,
        num_vertices: g.num_vertices(),
        num_edges: g.len() as u64,
    }
}

/// Keeps a block's edges sorted by (src, dst) — the order the 8×8 crossbar
/// rows are programmed in.
pub(crate) fn insert_sorted(block: &mut Vec<Edge>, e: Edge) {
    let key = (e.src.raw(), e.dst.raw());
    let pos = block.partition_point(|x| (x.src.raw(), x.dst.raw()) <= key);
    block.insert(pos, e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_graph::DatasetProfile;

    #[test]
    fn layout_preserves_edges() {
        let g = DatasetProfile::youtube_scaled().generate(5);
        let layout = preprocess(&g);
        assert_eq!(layout.num_edges(), g.len() as u64);
        let total: usize = layout.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total as u64, layout.num_edges());
        assert_eq!(layout.num_vertices(), g.num_vertices());
    }

    #[test]
    fn navg_matches_block_sparsity() {
        let g = DatasetProfile::as_skitter_scaled().generate(5);
        let layout = preprocess(&g);
        let stats = hyve_graph::block_sparsity(&g, BLOCK_DIM);
        assert!((layout.navg() - stats.avg_edges_per_block).abs() < 1e-12);
        assert_eq!(layout.non_empty_blocks() as u64, stats.non_empty_blocks);
    }

    #[test]
    fn navg_in_table1_range_for_skewed_graphs() {
        // Table 1: 1.23–2.38 average edges per non-empty block.
        for p in DatasetProfile::all_small() {
            let layout = preprocess(&p.generate(1));
            let navg = layout.navg();
            assert!(
                navg > 1.0 && navg < 4.0,
                "{}: navg {navg} outside the sparse regime",
                p.tag
            );
        }
    }

    #[test]
    fn block_lookup() {
        let g = EdgeList::from_edges(16, [Edge::new(0, 9)]).unwrap();
        let layout = preprocess(&g);
        assert!(layout.block(0, 1).is_some());
        assert!(layout.block(1, 1).is_none());
    }

    #[test]
    fn empty_graph_layout() {
        let layout = preprocess(&EdgeList::new(8));
        assert_eq!(layout.non_empty_blocks(), 0);
        assert_eq!(layout.navg(), 0.0);
    }
}
