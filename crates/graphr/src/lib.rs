//! # hyve-graphr — the GraphR crossbar-PIM baseline
//!
//! GraphR (Song et al., HPCA'18) is the prior ReRAM graph accelerator the
//! paper compares against (§6, §7.4): graphs are cut into 8×8 blocks, each
//! block's adjacency sub-matrix is written into a ReRAM crossbar, and a
//! matrix-vector read computes the updates, with register files holding the
//! 8 source / 8 destination vertex values.
//!
//! The crate provides:
//!
//! * [`GraphrEngine`] — functional execution + §6-equation cost accounting,
//!   producing the same [`RunReport`](hyve_core::RunReport) type as the HyVE
//!   engine so Fig. 21's delay/energy/EDP ratios fall out directly,
//! * [`preprocess()`](fn@preprocess) — GraphR's fine-grained 8×8 partitioning (the Fig. 19
//!   preprocessing-time comparison measures this against HyVE's coarse
//!   grid),
//! * [`GraphrDynamic`] — dynamic-graph support over the fine-grained layout
//!   (Fig. 20).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod engine;
pub mod preprocess;

pub use dynamic::GraphrDynamic;
pub use engine::GraphrEngine;
pub use preprocess::{preprocess, GraphrLayout};
