//! Dynamic-graph support over GraphR's fine-grained layout (§7.4.2).
//!
//! The same four mutations HyVE supports (§5), applied to the sparse 8×8
//! block map. Each edge mutation must locate its block in the associative
//! structure (hash + possible allocation) and vertex removals touch a whole
//! row/column stripe of tiny blocks — the addressing overhead behind
//! GraphR's ~8× lower update throughput in Fig. 20.

use crate::engine::BLOCK_DIM;
use crate::preprocess::{preprocess, GraphrLayout};
use hyve_graph::{EdgeList, GraphError, Mutation, MutationOutcome, VertexId};

/// A GraphR layout with dynamic-update support.
#[derive(Debug, Clone)]
pub struct GraphrDynamic {
    layout: GraphrLayout,
    tombstones: Vec<bool>,
    degrees: Vec<u32>,
    edges_changed: u64,
}

impl GraphrDynamic {
    /// Builds the dynamic structure from an edge list (runs GraphR
    /// preprocessing).
    pub fn new(graph: &EdgeList) -> Self {
        let layout = preprocess(graph);
        let tombstones = vec![false; layout.num_vertices() as usize];
        let mut degrees = vec![0u32; layout.num_vertices() as usize];
        for e in graph.iter() {
            degrees[e.src.index()] += 1;
            degrees[e.dst.index()] += 1;
        }
        GraphrDynamic {
            layout,
            tombstones,
            degrees,
            edges_changed: 0,
        }
    }

    /// The current layout.
    pub fn layout(&self) -> &GraphrLayout {
        &self.layout
    }

    /// Total edges changed by mutations (Fig. 20's throughput unit).
    pub fn edges_changed(&self) -> u64 {
        self.edges_changed
    }

    /// True if a vertex has been deleted.
    pub fn is_tombstoned(&self, v: VertexId) -> bool {
        self.tombstones.get(v.index()).copied().unwrap_or(false)
    }

    /// Applies one mutation.
    ///
    /// # Errors
    ///
    /// [`GraphError::MutationFailed`] for out-of-range vertices or removing
    /// a nonexistent edge.
    pub fn apply(&mut self, m: Mutation) -> Result<MutationOutcome, GraphError> {
        match m {
            Mutation::AddEdge(e) => {
                self.check(e.src.raw())?;
                self.check(e.dst.raw())?;
                let block = self
                    .layout
                    .blocks_mut()
                    .entry((e.src.raw() / BLOCK_DIM, e.dst.raw() / BLOCK_DIM))
                    .or_default();
                crate::preprocess::insert_sorted(block, e);
                self.layout.adjust_edge_count(1);
                self.degrees[e.src.index()] += 1;
                self.degrees[e.dst.index()] += 1;
                self.edges_changed += 1;
                Ok(MutationOutcome::InPlace)
            }
            Mutation::RemoveEdge { src, dst } => {
                self.check(src)?;
                self.check(dst)?;
                let key = (src / BLOCK_DIM, dst / BLOCK_DIM);
                let removed = match self.layout.blocks_mut().get_mut(&key) {
                    Some(block) => {
                        match block
                            .iter()
                            .position(|e| e.src.raw() == src && e.dst.raw() == dst)
                        {
                            Some(pos) => {
                                // Sorted blocks shift on removal.
                                block.remove(pos);
                                if block.is_empty() {
                                    self.layout.blocks_mut().remove(&key);
                                }
                                true
                            }
                            None => false,
                        }
                    }
                    None => false,
                };
                if removed {
                    self.layout.adjust_edge_count(-1);
                    self.degrees[src as usize] = self.degrees[src as usize].saturating_sub(1);
                    self.degrees[dst as usize] = self.degrees[dst as usize].saturating_sub(1);
                    self.edges_changed += 1;
                    Ok(MutationOutcome::InPlace)
                } else {
                    Err(GraphError::MutationFailed {
                        message: format!("edge {src}->{dst} not present"),
                    })
                }
            }
            Mutation::AddVertex => {
                // The fine-grained grid gains a row/column stripe of logical
                // blocks — nothing materialises until edges arrive.
                let nv = self.layout.num_vertices() + 1;
                self.layout.set_num_vertices(nv);
                self.tombstones.push(false);
                self.degrees.push(0);
                Ok(MutationOutcome::InPlace)
            }
            Mutation::RemoveVertex(v) => {
                self.check(v.raw())?;
                self.tombstones[v.index()] = true;
                // Same §5 strategy applied to GraphR: tombstone the value,
                // count the incident edges as changed.
                self.edges_changed += u64::from(self.degrees[v.index()]);
                self.degrees[v.index()] = 0;
                Ok(MutationOutcome::VertexTombstoned)
            }
        }
    }

    fn check(&self, v: u32) -> Result<(), GraphError> {
        if v >= self.layout.num_vertices() {
            return Err(GraphError::MutationFailed {
                message: format!(
                    "vertex {v} out of range ({} vertices)",
                    self.layout.num_vertices()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyve_graph::Edge;

    fn make() -> GraphrDynamic {
        let g = EdgeList::from_edges(32, [Edge::new(0, 9), Edge::new(1, 9), Edge::new(20, 30)])
            .unwrap();
        GraphrDynamic::new(&g)
    }

    #[test]
    fn add_and_remove_edges() {
        let mut d = make();
        d.apply(Mutation::AddEdge(Edge::new(5, 6))).unwrap();
        assert_eq!(d.layout().num_edges(), 4);
        d.apply(Mutation::RemoveEdge { src: 5, dst: 6 }).unwrap();
        assert_eq!(d.layout().num_edges(), 3);
        assert!(d.apply(Mutation::RemoveEdge { src: 5, dst: 6 }).is_err());
        assert_eq!(d.edges_changed(), 2);
    }

    #[test]
    fn empty_blocks_are_pruned() {
        let mut d = make();
        d.apply(Mutation::RemoveEdge { src: 20, dst: 30 }).unwrap();
        assert!(d.layout().block(2, 3).is_none());
    }

    #[test]
    fn vertex_lifecycle() {
        let mut d = make();
        d.apply(Mutation::AddVertex).unwrap();
        assert_eq!(d.layout().num_vertices(), 33);
        d.apply(Mutation::RemoveVertex(VertexId::new(9))).unwrap();
        assert!(d.is_tombstoned(VertexId::new(9)));
        // Tombstoning counts 0->9 and 1->9 as changed edges.
        assert_eq!(d.edges_changed(), 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = make();
        assert!(d.apply(Mutation::AddEdge(Edge::new(0, 99))).is_err());
        assert!(d.apply(Mutation::RemoveVertex(VertexId::new(99))).is_err());
    }
}
