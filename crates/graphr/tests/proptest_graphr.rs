//! Property-based tests for the GraphR baseline: functional equivalence
//! with the references on arbitrary graphs, cost monotonicity, and layout
//! invariants under mutation.

use hyve_algorithms::{reference, Bfs, ConnectedComponents, SpMv};
use hyve_graph::{Csr, Edge, EdgeList, Mutation, VertexId};
use hyve_graphr::{preprocess, GraphrDynamic, GraphrEngine};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u32..80).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv), 1..300).prop_map(move |pairs| {
            let mut g = EdgeList::new(nv);
            g.extend(pairs.into_iter().map(|(s, d)| Edge::new(s, d)));
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GraphR computes the same answers as everything else.
    #[test]
    fn graphr_functional_equivalence(g in arb_graph()) {
        let engine = GraphrEngine::new();
        let (_, bfs) = engine
            .run_with_values(&Bfs::new(VertexId::new(0)), &g)
            .unwrap();
        let csr = Csr::from_edge_list(&g);
        prop_assert_eq!(bfs, reference::bfs_levels(&csr, VertexId::new(0)));
        let (_, cc) = engine
            .run_with_values(&ConnectedComponents::new(), &g)
            .unwrap();
        prop_assert_eq!(cc, reference::connected_components(&g));
    }

    /// Layout conservation: preprocessing never loses or duplicates edges,
    /// and Navg is bounded by the block capacity (64).
    #[test]
    fn layout_conserves_edges(g in arb_graph()) {
        let layout = preprocess(&g);
        prop_assert_eq!(layout.num_edges(), g.len() as u64);
        let total: usize = layout.iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(total as u64, layout.num_edges());
        if !g.is_empty() {
            prop_assert!(layout.navg() >= 1.0);
            // Multigraphs may exceed the 64 distinct positions of an 8x8
            // block, so the only universal cap is the edge count itself.
            prop_assert!(layout.navg() <= g.len() as f64);
        }
        // Blocks hold only their own edges.
        for (&(bx, by), edges) in layout.iter() {
            for e in edges {
                prop_assert_eq!(e.src.raw() / 8, bx);
                prop_assert_eq!(e.dst.raw() / 8, by);
            }
        }
    }

    /// Intra-block edges stay sorted (crossbar row order) under dynamic
    /// insertion.
    #[test]
    fn dynamic_blocks_stay_sorted(
        g in arb_graph(),
        adds in proptest::collection::vec((0u32..80, 0u32..80), 0..60),
    ) {
        let mut d = GraphrDynamic::new(&g);
        let nv = g.num_vertices();
        for (a, b) in adds {
            d.apply(Mutation::AddEdge(Edge::new(a % nv, b % nv))).unwrap();
        }
        for (_, edges) in d.layout().iter() {
            for pair in edges.windows(2) {
                let ka = (pair[0].src.raw(), pair[0].dst.raw());
                let kb = (pair[1].src.raw(), pair[1].dst.raw());
                prop_assert!(ka <= kb, "block not sorted: {ka:?} > {kb:?}");
            }
        }
    }

    /// GraphR's per-run energy grows with the edge count (crossbar writes
    /// dominate, Eq. 11).
    #[test]
    fn energy_monotone_in_edges(g in arb_graph()) {
        let engine = GraphrEngine::new();
        let full = engine.run(&SpMv::new(), &g).unwrap();
        // Halve the graph.
        let mut half = EdgeList::new(g.num_vertices());
        half.extend(g.iter().take(g.len() / 2).copied());
        if half.is_empty() {
            return Ok(());
        }
        let small = engine.run(&SpMv::new(), &half).unwrap();
        prop_assert!(small.energy() <= full.energy());
    }

    /// Mutation sequences keep counts consistent between HyVE's and
    /// GraphR's dynamic structures (they must agree on what "changed").
    #[test]
    fn dynamic_counters_agree_with_hyve(
        g in arb_graph(),
        ops in proptest::collection::vec((0u8..2, 0u32..80, 0u32..80), 0..60),
    ) {
        use hyve_graph::{DynamicGrid, GridGraph};
        let nv = g.num_vertices();
        let p = 4u32.min(nv);
        let mut hyve = DynamicGrid::new(GridGraph::partition(&g, p).unwrap(), 0.3);
        let mut graphr = GraphrDynamic::new(&g);
        for (kind, a, b) in ops {
            let (src, dst) = (a % nv, b % nv);
            let m = if kind == 0 {
                Mutation::AddEdge(Edge::new(src, dst))
            } else {
                Mutation::RemoveEdge { src, dst }
            };
            let r1 = hyve.apply(m);
            let r2 = graphr.apply(m);
            prop_assert_eq!(r1.is_ok(), r2.is_ok());
        }
        prop_assert_eq!(hyve.edges_changed(), graphr.edges_changed());
        prop_assert_eq!(hyve.grid().num_edges(), graphr.layout().num_edges());
    }
}
