//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` and
//! `Rng::gen_bool`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny deterministic PRNG under the same crate name
//! (see README "Offline builds"). The generator is SplitMix64 — fast,
//! well-distributed, and fully reproducible from a `u64` seed. It is NOT
//! the same stream as upstream `rand`'s `StdRng` (ChaCha12); all in-repo
//! users only require determinism for a fixed seed, not a particular
//! stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types a generator can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Integer-like values samplable uniformly from a half-open range.
pub trait SampleRange: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// The random-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample over the type's whole domain; for floats, `[0, 1)`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f64::sample_standard(rng) * (range.end - range.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). API-compatible with the
    /// subset of `rand::rngs::StdRng` the workspace uses.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&g));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
