//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! miniature property-testing core under the same crate name (see README
//! "Offline builds"). Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`Strategy`](strategy::Strategy) with `prop_map` / `prop_flat_map`,
//! * range strategies on integers and floats, tuple strategies up to
//!   arity 6, [`Just`](strategy::Just),
//! * [`collection::vec`], [`bool::ANY`], [`sample::select`],
//!   [`any`](arbitrary::any) for primitives and tuples,
//! * string-literal strategies for simple character-class regexes like
//!   `"[ -~]{0,40}"`.
//!
//! Unlike upstream proptest there is **no shrinking** and no failure
//! persistence: a failing case panics with the case number so it can be
//! re-run (generation is deterministic per test name).

#![forbid(unsafe_code)]

pub mod arbitrary;
#[allow(clippy::module_inception)]
pub mod bool;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a proptest suite conventionally imports.
pub mod prelude {
    /// Alias so `prop::sample::select(...)`-style paths resolve.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                // Returns Result so bodies may `return Ok(())` early, as in
                // upstream proptest.
                let mut run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                };
                let guard = $crate::test_runner::CaseGuard::new(stringify!($name), case);
                if let ::std::result::Result::Err(e) = run() {
                    panic!("property `{}` rejected case {}: {}", stringify!($name), case, e);
                }
                guard.disarm();
            }
        }
    )*};
}
