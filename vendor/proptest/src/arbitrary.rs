//! `any::<T>()` support for the primitive types this workspace uses.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the type's domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_sint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_sint!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                ($($t::arbitrary_value(rng),)+)
            }
        }
    )*};
}
impl_arbitrary_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
