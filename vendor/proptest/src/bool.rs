//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `true`/`false` with equal probability.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// The whole-domain boolean strategy.
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
