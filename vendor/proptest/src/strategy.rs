//! The [`Strategy`] trait and the core combinators/strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` draws one value directly from the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_sint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_range_strategy_sint!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String-literal strategies for patterns of the shape `[class]{m,n}` (a
/// single character class with an optional repetition count), which covers
/// every regex literal used in this workspace (e.g. `"[ -~]{0,40}"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("vendored proptest: unsupported string pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{m,n}` (or bare `[class]`, meaning one char) into the
/// expanded character set and length bounds.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            chars.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((chars, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parses_printable_ascii() {
        let (chars, min, max) = parse_class_pattern("[ -~]{0,40}").unwrap();
        assert_eq!(min, 0);
        assert_eq!(max, 40);
        assert_eq!(chars.len(), 95);
        assert_eq!(chars[0], ' ');
        assert_eq!(*chars.last().unwrap(), '~');
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = TestRng::for_test("string_strategy_respects_bounds");
        for _ in 0..200 {
            let s = "[a-c]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_and_tuples_stay_in_bounds");
        for _ in 0..500 {
            let (a, b) = (3u32..9, 0.5f64..2.0).generate(&mut rng);
            assert!((3..9).contains(&a));
            assert!((0.5..2.0).contains(&b));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = TestRng::for_test("flat_map_threads_dependent_values");
        let strat = (2usize..10).prop_flat_map(|n| (crate::strategy::Just(n), 0usize..n));
        for _ in 0..200 {
            let (n, i) = strat.generate(&mut rng);
            assert!(i < n);
        }
    }
}
