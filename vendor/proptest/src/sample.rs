//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding a uniformly chosen clone of one of the given values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Uniformly selects one of `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}
