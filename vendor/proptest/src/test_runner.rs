//! Configuration and deterministic RNG for the vendored proptest core.

/// Per-test configuration. Only `cases` is honoured by the stand-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator seeded from the test's full path, so
/// every run of a given property sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform u64 in `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Explicit failure a property body may return (`return Err(...)`); bodies
/// normally just `return Ok(())` for early exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Reports the failing case number when a property panics (there is no
/// shrinking in the stand-in, so the case number is the repro handle).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms the guard for `case` of property `name`.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// Marks the case as passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest (vendored): property `{}` failed at case {} \
                 (deterministic per test name; re-run to reproduce)",
                self.name, self.case
            );
        }
    }
}
