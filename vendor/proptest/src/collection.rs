//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s whose length is drawn from a half-open range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(
            self.size.start < self.size.end,
            "cannot sample empty length range"
        );
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec<element>` with length in `[size.start, size.end)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
