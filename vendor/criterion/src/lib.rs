//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal benchmark harness under the same crate name (see README "Offline
//! builds"). It measures each closure with `std::time::Instant` over a small
//! number of samples and prints mean wall-clock time per iteration — enough
//! to compare alternatives on one host, with none of upstream criterion's
//! statistics, plots, or baseline storage.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time per routine call, filled in by `iter`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, recording the mean over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "bench {}/{}: {:>12.3?} per iter ({} samples)",
            self.name, id, bencher.mean, self.sample_size
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Upstream parses CLI filters here; the stand-in runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.run_one(id.to_string(), f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {
        println!("bench: {} benchmark(s) completed", self.benchmarks_run);
    }
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_benchmarks() {
        let mut criterion = Criterion::default();
        {
            let mut group = criterion.benchmark_group("demo");
            group.sample_size(3);
            group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
                b.iter(|| n * 2)
            });
            group.finish();
        }
        assert_eq!(criterion.benchmarks_run, 2);
    }
}
