//! Golden-snapshot suite guarding the cost model across refactors.
//!
//! Runs a fixed-seed graph through all five memory-hierarchy presets ×
//! {PR, BFS, SSSP} and compares every field of the resulting [`RunReport`]s
//! — including the exact bit pattern of every energy/time float — against
//! baselines captured from the pre-hierarchy-refactor engine and committed
//! under `tests/golden/`.
//!
//! Any intentional cost-model change must re-bless the baselines:
//!
//! ```text
//! HYVE_GOLDEN_BLESS=1 cargo test --test golden_reports
//! ```

use hyve::prelude::*;
use hyve_algorithms::EdgeProgram;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Seed shared with the bench harness so the snapshot covers the same graph
/// the experiments run on.
const SEED: u64 = 2018;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("run_reports.golden")
}

fn configs() -> [SystemConfig; 5] {
    [
        SystemConfig::acc_dram(),
        SystemConfig::acc_reram(),
        SystemConfig::acc_sram_dram(),
        SystemConfig::hyve(),
        SystemConfig::hyve_opt(),
    ]
}

/// Exact serialization of a float: hex of the IEEE-754 bit pattern, plus a
/// human-readable echo so diffs in blessed files stay reviewable.
fn float_cell(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn stats_cells(line: &mut String, s: &hyve_memsim::AccessStats) {
    write!(
        line,
        "|{}|{}|{}|{}|{}|{}|{}",
        s.reads,
        s.writes,
        s.bits_read,
        s.bits_written,
        float_cell(s.dynamic_energy.as_pj()),
        float_cell(s.background_energy.as_pj()),
        float_cell(s.busy_time.as_ns()),
    )
    .expect("write to String cannot fail");
}

/// One report as a stable, exact, line-oriented record.
fn serialize(report: &RunReport) -> String {
    let mut line = format!(
        "{}|{}|{}|{}|{}",
        report.config,
        report.algorithm,
        report.iterations,
        report.edges_processed,
        report.intervals
    );
    for t in [
        report.phases.loading,
        report.phases.processing,
        report.phases.updating,
        report.phases.overhead,
    ] {
        write!(line, "|{}", float_cell(t.as_ns())).expect("write to String cannot fail");
    }
    for s in [
        &report.breakdown.edge_memory,
        &report.breakdown.offchip_vertex,
        &report.breakdown.onchip_vertex,
        &report.breakdown.logic,
    ] {
        stats_cells(&mut line, s);
    }
    line
}

fn capture(traced: bool) -> Vec<String> {
    let graph = DatasetProfile::youtube_scaled().generate(SEED);
    let mut lines = Vec::new();
    for cfg in configs() {
        for report in [
            run(&cfg, &PageRank::new(10), &graph, traced),
            run(&cfg, &Bfs::new(VertexId::new(0)), &graph, traced),
            run(&cfg, &Sssp::new(VertexId::new(0)), &graph, traced),
        ] {
            lines.push(serialize(&report));
        }
    }
    lines
}

fn run<P: EdgeProgram>(
    cfg: &SystemConfig,
    program: &P,
    graph: &EdgeList,
    traced: bool,
) -> RunReport {
    let mut builder = SimulationSession::builder(cfg.clone());
    if traced {
        builder = builder.with_trace(SharedRecorder::default());
    }
    builder
        .build()
        .expect("preset configuration is valid")
        .run_on_edge_list(program, graph)
        .expect("golden run failed")
}

#[test]
fn run_reports_match_pre_refactor_baselines() {
    let lines = capture(false);
    let path = golden_path();
    if std::env::var_os("HYVE_GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, lines.join("\n") + "\n").expect("write golden file");
        return;
    }
    check_against_golden(&lines);
}

/// Attaching a trace sink is observation only: the same runs with a
/// [`SharedRecorder`] listening must match the SAME baselines, bit for bit.
/// This test never blesses — it exists to catch tracing perturbing the
/// cost model.
#[test]
fn run_reports_with_tracing_enabled_match_same_baselines() {
    check_against_golden(&capture(true));
}

fn check_against_golden(lines: &[String]) {
    let path = golden_path();
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden baselines at {} ({e}); regenerate with \
             HYVE_GOLDEN_BLESS=1 cargo test --test golden_reports",
            path.display()
        )
    });
    let expected: Vec<&str> = expected.lines().collect();
    assert_eq!(
        expected.len(),
        lines.len(),
        "baseline row count changed — re-bless if intentional"
    );
    for (got, want) in lines.iter().zip(&expected) {
        assert_eq!(
            got.as_str(),
            *want,
            "RunReport drifted from the pre-refactor baseline (fields are \
             config|alg|iters|edges|P|4 phase times|4×7 channel stats, floats \
             as IEEE-754 bit patterns)"
        );
    }
}

/// The snapshot must exercise every distinct hierarchy shape: both paths of
/// the engine (with/without an on-chip tier), both edge technologies, and
/// both optimization toggles.
#[test]
fn golden_configs_cover_all_hierarchy_shapes() {
    let cfgs = configs();
    assert!(cfgs.iter().any(|c| c.sram_mb.is_none()));
    assert!(cfgs.iter().any(|c| c.sram_mb.is_some()));
    assert!(cfgs.iter().any(|c| c.power_gating));
    assert!(cfgs.iter().any(|c| c.data_sharing));
    assert!(cfgs.iter().any(|c| !c.data_sharing && !c.power_gating));
}
