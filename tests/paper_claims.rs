//! The paper's headline claims, asserted as integration tests. Each test
//! names the paper artifact it guards; thresholds are loose enough to
//! tolerate the reproduction's calibration but tight enough that a
//! regression inverting a conclusion fails.

use hyve::algorithms::{Bfs, ConnectedComponents, PageRank};
use hyve::core::{SimulationSession, SystemConfig};
use hyve::graph::{block_sparsity, DatasetProfile, VertexId};
use hyve::graphr::GraphrEngine;
use hyve::memsim::CellBits;
use hyve::model::{compare_edge_storage, AccessPattern};

/// Builds a sequential session; all configurations here are statically valid.
fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .build()
        .expect("valid config")
}

fn eff(cfg: SystemConfig, g: &hyve::graph::EdgeList) -> f64 {
    session(cfg)
        .run_on_edge_list(&PageRank::new(10), g)
        .unwrap()
        .mteps_per_watt()
}

/// Fig. 16: the configuration ladder — HyVE-opt > HyVE > SD > acc+ReRAM,
/// acc+DRAM worst among accelerators.
#[test]
fn fig16_configuration_ladder() {
    let g = DatasetProfile::youtube_scaled().generate(77);
    let dram = eff(SystemConfig::acc_dram(), &g);
    let reram = eff(SystemConfig::acc_reram(), &g);
    let sd = eff(SystemConfig::acc_sram_dram(), &g);
    let hyve = eff(SystemConfig::hyve(), &g);
    let opt = eff(SystemConfig::hyve_opt(), &g);
    assert!(opt > hyve, "gating must help: {opt} vs {hyve}");
    assert!(
        hyve > sd,
        "ReRAM edges must beat DRAM edges: {hyve} vs {sd}"
    );
    assert!(
        sd > reram,
        "SRAM buffering must beat raw ReRAM: {sd} vs {reram}"
    );
    assert!(reram > dram, "ReRAM must beat all-DRAM: {reram} vs {dram}");
    // §7.3.3: swapping DRAM→ReRAM naively buys far less than HyVE's
    // hierarchy (paper: 1.31× vs 4.03×).
    assert!((reram / dram) < (hyve / dram));
    // Roughly the paper's 5.90× HyVE-opt over acc+DRAM (allow 2×–20×).
    let ratio = opt / dram;
    assert!(ratio > 2.0 && ratio < 20.0, "opt/acc+DRAM = {ratio}");
}

/// Fig. 14: data-sharing benefit ordering BFS < CC < PR.
#[test]
fn fig14_sharing_ordering() {
    let g = DatasetProfile::as_skitter_scaled().generate(77);
    let gain = |run: &dyn Fn(&SimulationSession) -> f64| {
        let base = run(&session(SystemConfig::hyve().with_data_sharing(false)));
        let shared = run(&session(SystemConfig::hyve()));
        shared / base
    };
    let bfs = gain(&|e: &SimulationSession| {
        e.run_on_edge_list(&Bfs::new(VertexId::new(0)), &g)
            .unwrap()
            .mteps_per_watt()
    });
    let cc = gain(&|e: &SimulationSession| {
        e.run_on_edge_list(&ConnectedComponents::new(), &g)
            .unwrap()
            .mteps_per_watt()
    });
    let pr = gain(&|e: &SimulationSession| {
        e.run_on_edge_list(&PageRank::new(10), &g)
            .unwrap()
            .mteps_per_watt()
    });
    assert!(bfs >= 1.0, "sharing must never hurt BFS: {bfs}");
    assert!(cc > bfs, "CC must gain more than BFS: {cc} vs {bfs}");
    assert!(pr > cc, "PR must gain the most: {pr} vs {cc}");
}

/// Fig. 15: power gating buys roughly the paper's 1.53×.
#[test]
fn fig15_gating_factor() {
    let g = DatasetProfile::youtube_scaled().generate(77);
    let base = eff(SystemConfig::hyve(), &g);
    let gated = eff(SystemConfig::hyve_opt(), &g);
    let factor = gated / base;
    assert!(factor > 1.15 && factor < 2.5, "gating factor {factor}");
}

/// Fig. 13: SLC beats MLC cells.
#[test]
fn fig13_slc_wins() {
    let g = DatasetProfile::youtube_scaled().generate(77);
    let slc = eff(SystemConfig::hyve_opt().with_cell_bits(CellBits::Slc), &g);
    let mlc2 = eff(SystemConfig::hyve_opt().with_cell_bits(CellBits::Mlc2), &g);
    let mlc3 = eff(SystemConfig::hyve_opt().with_cell_bits(CellBits::Mlc3), &g);
    assert!(
        slc > mlc2 && mlc2 > mlc3,
        "SLC {slc} / MLC2 {mlc2} / MLC3 {mlc3}"
    );
}

/// Fig. 9: sequential reads favour ReRAM (energy, EDP), DRAM keeps delay;
/// sequential writes favour DRAM outright.
#[test]
fn fig09_edge_storage_directions() {
    for density in [4, 8, 16] {
        let read = compare_edge_storage(density, AccessPattern::SequentialRead);
        assert!(read.delay_ratio < 1.0);
        assert!(read.energy_ratio > 1.0);
        assert!(read.edp_ratio > 1.0);
        let write = compare_edge_storage(density, AccessPattern::SequentialWrite);
        assert!(write.edp_ratio < 1.0);
    }
}

/// Table 1: skewed graphs leave 8×8 blocks nearly empty (Navg in the
/// paper's 1.2–2.4 band).
#[test]
fn table1_sparse_blocks() {
    for profile in DatasetProfile::all_small() {
        let g = profile.generate(2018);
        let navg = block_sparsity(&g, 8).avg_edges_per_block;
        assert!(
            navg > 1.0 && navg < 4.0,
            "{}: Navg {navg} must stay in the sparse regime",
            profile.tag
        );
    }
}

/// Fig. 21: HyVE beats GraphR on delay, energy and EDP.
#[test]
fn fig21_hyve_beats_graphr() {
    let g = DatasetProfile::youtube_scaled().generate(77);
    let hyve = session(SystemConfig::hyve())
        .run_on_edge_list(&PageRank::new(10), &g)
        .unwrap();
    let graphr = GraphrEngine::new().run(&PageRank::new(10), &g).unwrap();
    assert!(graphr.elapsed() > hyve.elapsed());
    assert!(graphr.energy() > hyve.energy());
    let edp_ratio = graphr.edp().as_pj_ns() / hyve.edp().as_pj_ns();
    assert!(edp_ratio > 3.0, "EDP ratio {edp_ratio}");
}

/// Fig. 18: HyVE's performance penalty versus SD stays small (the paper's
/// worst geometric mean is 15.1%).
#[test]
fn fig18_small_performance_penalty() {
    let g = DatasetProfile::youtube_scaled().generate(77);
    for run in [
        |e: &SimulationSession, g: &hyve::graph::EdgeList| {
            e.run_on_edge_list(&Bfs::new(VertexId::new(0)), g)
                .unwrap()
                .elapsed()
        },
        |e: &SimulationSession, g: &hyve::graph::EdgeList| {
            e.run_on_edge_list(&PageRank::new(10), g).unwrap().elapsed()
        },
    ] {
        let sd = run(&session(SystemConfig::acc_sram_dram()), &g);
        let hyve = run(&session(SystemConfig::hyve()), &g);
        let slowdown = hyve / sd - 1.0;
        assert!(
            slowdown < 0.20,
            "HyVE may only be marginally slower, got {:.1}%",
            100.0 * slowdown
        );
    }
}

/// Table 4 directionality: with data sharing on, a small 2 MB SRAM is the
/// sweet spot for small graphs; huge SRAMs always lose to their leakage.
#[test]
fn table4_sram_sweet_spot() {
    let g = DatasetProfile::youtube_scaled().generate(77);
    let e2 = eff(SystemConfig::hyve_opt().with_sram_mb(2), &g);
    let e16 = eff(SystemConfig::hyve_opt().with_sram_mb(16), &g);
    assert!(e2 > e16, "2 MB {e2} must beat 16 MB {e16} on a small graph");
}
