//! The parallel engine's core guarantee, asserted exhaustively: for any
//! graph, program and configuration, `Parallel { threads }` produces a
//! `RunReport` and final vertex values **bit-identical** to `Sequential`,
//! for every thread count from 1 to 8. No tolerances anywhere — equality is
//! exact, including every float in the energy breakdown and phase times.

use hyve::algorithms::{Bfs, ConnectedComponents, EdgeProgram, PageRank, SpMv, Sssp};
use hyve::core::{SimulationSession, SystemConfig};
use hyve::graph::{Edge, EdgeList, VertexId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (8u32..64).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv), 1..250).prop_map(move |pairs| {
            let mut g = EdgeList::new(nv);
            g.extend(pairs.into_iter().map(|(s, d)| Edge::new(s, d)));
            g
        })
    })
}

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    (0usize..5, 1u32..4, proptest::bool::ANY).prop_map(|(preset, scale_exp, sharing)| {
        let base = match preset {
            0 => SystemConfig::acc_dram(),
            1 => SystemConfig::acc_reram(),
            2 => SystemConfig::acc_sram_dram(),
            3 => SystemConfig::hyve(),
            _ => SystemConfig::hyve_opt(),
        };
        base.with_dataset_scale(1 << scale_exp)
            .with_data_sharing(sharing)
    })
}

/// Runs `program` sequentially, then under every thread count 1..=8, and
/// demands exact equality of both the report and the vertex values.
fn assert_bit_identical<P: EdgeProgram>(program: &P, g: &EdgeList, cfg: &SystemConfig) {
    let sequential = SimulationSession::builder(cfg.clone())
        .build()
        .expect("generated configuration is valid");
    let (seq_report, seq_values) = sequential
        .run_on_edge_list_with_values(program, g)
        .expect("sequential run");
    for threads in 1..=8 {
        let parallel = SimulationSession::builder(cfg.clone())
            .parallel(threads)
            .build()
            .expect("generated configuration is valid");
        let (par_report, par_values) = parallel
            .run_on_edge_list_with_values(program, g)
            .expect("parallel run");
        assert_eq!(
            par_report,
            seq_report,
            "{}: report diverged at {threads} threads on {}",
            program.name(),
            cfg.name
        );
        assert_eq!(
            par_values,
            seq_values,
            "{}: values diverged at {threads} threads on {}",
            program.name(),
            cfg.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PageRank (floating-point accumulation) is bit-stable across threads.
    #[test]
    fn pagerank_is_bit_identical_across_thread_counts(
        g in arb_graph(),
        cfg in arb_config(),
    ) {
        assert_bit_identical(&PageRank::new(5), &g, &cfg);
    }

    /// BFS (monotone integer levels) is bit-stable across threads.
    #[test]
    fn bfs_is_bit_identical_across_thread_counts(
        g in arb_graph(),
        cfg in arb_config(),
    ) {
        assert_bit_identical(&Bfs::new(VertexId::new(0)), &g, &cfg);
    }

    /// Connected components (undirected label propagation) is bit-stable.
    #[test]
    fn cc_is_bit_identical_across_thread_counts(
        g in arb_graph(),
        cfg in arb_config(),
    ) {
        assert_bit_identical(&ConnectedComponents::new(), &g, &cfg);
    }

    /// SSSP (monotone distance relaxation) is bit-stable across threads.
    #[test]
    fn sssp_is_bit_identical_across_thread_counts(
        g in arb_graph(),
        cfg in arb_config(),
    ) {
        assert_bit_identical(&Sssp::new(VertexId::new(0)), &g, &cfg);
    }

    /// SpMV (one floating-point accumulation pass) is bit-stable.
    #[test]
    fn spmv_is_bit_identical_across_thread_counts(
        g in arb_graph(),
        cfg in arb_config(),
    ) {
        assert_bit_identical(&SpMv::new(), &g, &cfg);
    }
}

/// The convergence path (`IterationBound::Converge`) must also stop after
/// the same number of iterations regardless of strategy — the report's
/// iteration count is part of the bit-identical contract.
#[test]
fn convergent_runs_stop_identically() {
    let g = hyve::graph::DatasetProfile::youtube_scaled().generate(7);
    for cfg in [SystemConfig::hyve(), SystemConfig::hyve_opt()] {
        assert_bit_identical(&ConnectedComponents::new(), &g, &cfg);
        assert_bit_identical(&Bfs::new(VertexId::new(0)), &g, &cfg);
    }
}
