//! Cross-validation: the §6 analytic model and the phase-level simulator
//! must agree where their abstractions overlap.
//!
//! The model predicts totals from operation counts and per-operation device
//! costs; the simulator derives the same counts from a concrete grid. On a
//! single-super-block workload (P = N) the mapping is exact enough to bound
//! the gap tightly.

use hyve::algorithms::{EdgeProgram, SpMv};
use hyve::core::{SimulationSession, SystemConfig};
use hyve::graph::{DatasetProfile, GridGraph};
use hyve::memsim::{MemoryDevice, SramArray, SramConfig};
use hyve::model::general::{CostTerm, GraphWorkload, ModelCosts};

/// Builds a sequential session; all configurations here are statically valid.
fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .build()
        .expect("valid config")
}

#[test]
fn model_energy_tracks_simulator_on_chip_dynamic_energy() {
    // One SpMV pass (one iteration, no convergence ambiguity).
    let graph = DatasetProfile::youtube_scaled().generate(5);
    let engine = session(SystemConfig::hyve().with_dataset_scale(1)); // P = 8
    let program = SpMv::new();
    let report = engine.run_on_edge_list(&program, &graph).unwrap();
    assert_eq!(report.intervals, 8, "want a single super block");

    // Rebuild the model's counts from first principles.
    let ne = graph.len() as u64;
    let nv = u64::from(graph.num_vertices());
    let p = u64::from(report.intervals);
    let workload = GraphWorkload {
        seq_vertex_reads: nv * (p / 8) + nv, // src (Eq. 8) + dst loads
        seq_vertex_writes: nv,               // Eq. 7
        edge_reads: ne,
    };

    // Per-operation costs from the same devices the engine instantiated.
    let sram = SramArray::new(SramConfig::with_capacity_mb(2));
    let costs = ModelCosts {
        rand_vertex_read: CostTerm::new(sram.word_read_latency(), sram.word_read_energy()),
        rand_vertex_write: CostTerm::new(sram.word_write_latency(), sram.word_write_energy()),
        ..ModelCosts::default()
    };

    // The model's local-vertex term (2 reads + 1 write per edge) must equal
    // the simulator's per-edge on-chip dynamic energy.
    let model_local = costs.rand_vertex_read.energy * (2 * workload.random_vertex_reads()) as f64
        + costs.rand_vertex_write.energy * workload.random_vertex_writes() as f64;
    let sim_onchip = report.breakdown.onchip_vertex.dynamic_energy;
    // The simulator additionally charges interval fills and the accumulate
    // apply pass, so it must be strictly larger but within ~2.5×.
    assert!(
        sim_onchip >= model_local,
        "{sim_onchip:?} vs {model_local:?}"
    );
    assert!(
        sim_onchip.as_pj() < 2.5 * model_local.as_pj(),
        "simulator on-chip {} vs model {}",
        sim_onchip,
        model_local
    );
}

#[test]
fn model_edge_term_matches_simulator_edge_stream() {
    let graph = DatasetProfile::wiki_talk_scaled().generate(5);
    let engine = session(SystemConfig::hyve().with_dataset_scale(1));
    let program = SpMv::new();
    let report = engine.run_on_edge_list(&program, &graph).unwrap();

    let reram = hyve::memsim::ReramChip::new(hyve::memsim::ReramChipConfig::default());
    let grid = GridGraph::partition(&graph, report.intervals).unwrap();
    let predicted = reram.read_energy(grid.edge_storage_bits());
    let simulated = report.breakdown.edge_memory.dynamic_energy;
    let rel = (predicted.as_pj() - simulated.as_pj()).abs() / simulated.as_pj();
    assert!(
        rel < 1e-9,
        "edge stream energies must agree exactly, rel {rel}"
    );
}

#[test]
fn eq1_pipelining_bounds_simulator_processing_time() {
    // Eq. (1): per-edge pipelined time = max of the stage times. The
    // simulator's processing phase must be at least Ne × bottleneck / N
    // (N PUs in parallel) and at most a few × that (block imbalance).
    let graph = DatasetProfile::as_skitter_scaled().generate(5);
    let cfg = SystemConfig::hyve().with_dataset_scale(1);
    let n = f64::from(cfg.num_pus);
    let engine = session(cfg);
    let program = SpMv::new();
    let report = engine.run_on_edge_list(&program, &graph).unwrap();

    let sram = SramArray::new(SramConfig::with_capacity_mb(2));
    let words = f64::from(program.value_bits().div_ceil(32));
    let dst_stage = (sram.word_read_latency() + sram.word_write_latency()) * words;
    let bottleneck = dst_stage.max(hyve::memsim::Time::from_ns(1.5));
    let lower = bottleneck * (graph.len() as f64 / n);
    let processing = report.phases.processing;
    assert!(
        processing >= lower * 0.99,
        "processing {processing:?} below Eq. 1 bound {lower:?}"
    );
    assert!(
        processing < lower * 6.0,
        "processing {processing:?} implausibly above bound {lower:?} — imbalance blowup"
    );
}
