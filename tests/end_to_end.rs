//! End-to-end pipeline tests through the `hyve` facade: dataset generation →
//! partitioning → execution on every engine → validation against the
//! sequential references.

use hyve::algorithms::{reference, Bfs, ConnectedComponents, PageRank, SpMv, Sssp};
use hyve::baselines::CpuSystem;
use hyve::core::{SimulationSession, SystemConfig};
use hyve::graph::{Csr, DatasetProfile, GridGraph, VertexId};
use hyve::graphr::GraphrEngine;

/// Builds a sequential session; all configurations here are statically valid.
fn session(cfg: SystemConfig) -> SimulationSession {
    SimulationSession::builder(cfg)
        .build()
        .expect("valid config")
}

fn graph() -> hyve::graph::EdgeList {
    DatasetProfile::youtube_scaled().generate(1234)
}

#[test]
fn full_pipeline_pagerank() {
    let g = graph();
    let engine = session(SystemConfig::hyve_opt());
    let (report, ranks) = engine
        .run_on_edge_list_with_values(&PageRank::new(10), &g)
        .expect("run");
    assert_eq!(report.iterations, 10);
    assert_eq!(ranks.len(), g.num_vertices() as usize);

    let csr = Csr::from_edge_list(&g);
    let expect = reference::pagerank(&csr, 10, 0.85);
    for (a, b) in ranks.iter().zip(expect.iter()) {
        assert!((a - b).abs() <= 1e-5 * b.abs().max(1e-6));
    }
}

#[test]
fn every_engine_agrees_on_bfs() {
    let g = graph();
    let src = VertexId::new(3);
    let csr = Csr::from_edge_list(&g);
    let expect = reference::bfs_levels(&csr, src);

    for cfg in [
        SystemConfig::acc_dram(),
        SystemConfig::acc_reram(),
        SystemConfig::acc_sram_dram(),
        SystemConfig::hyve(),
        SystemConfig::hyve_opt(),
    ] {
        let (_, levels) = session(cfg)
            .run_on_edge_list_with_values(&Bfs::new(src), &g)
            .expect("run");
        assert_eq!(levels, expect);
    }
    let (_, levels) = GraphrEngine::new()
        .run_with_values(&Bfs::new(src), &g)
        .expect("graphr");
    assert_eq!(levels, expect);
}

#[test]
fn explicit_grid_and_planned_grid_agree() {
    let g = graph();
    let engine = session(SystemConfig::hyve());
    let planned = engine
        .run_on_edge_list(&ConnectedComponents::new(), &g)
        .expect("planned");
    let grid = GridGraph::partition(&g, planned.intervals).expect("partition");
    let explicit = engine
        .run(&ConnectedComponents::new(), &grid)
        .expect("explicit");
    assert_eq!(planned.energy(), explicit.energy());
    assert_eq!(planned.elapsed(), explicit.elapsed());
}

#[test]
fn deterministic_reports() {
    let g = graph();
    let engine = session(SystemConfig::hyve_opt());
    let a = engine
        .run_on_edge_list(&Sssp::new(VertexId::new(0)), &g)
        .unwrap();
    let b = engine
        .run_on_edge_list(&Sssp::new(VertexId::new(0)), &g)
        .unwrap();
    assert_eq!(a, b, "simulation must be fully deterministic");
}

#[test]
fn cpu_baseline_processes_same_workload() {
    let g = graph();
    let report = session(SystemConfig::hyve_opt())
        .run_on_edge_list(&SpMv::new(), &g)
        .unwrap();
    let cpu = CpuSystem::nxgraph_like();
    let t = cpu.execution_time(report.edges_processed);
    assert!(t.as_s() > 0.0);
    // Two orders of magnitude: the paper's headline CPU gap.
    let ratio = report.mteps_per_watt() / cpu.mteps_per_watt(report.edges_processed);
    assert!(ratio > 20.0, "accelerator must dwarf the CPU, got {ratio}");
}

#[test]
fn snap_io_round_trip_through_engine() {
    let g = graph();
    let mut buf = Vec::new();
    hyve::graph::io::write(&g, &mut buf).expect("write");
    let parsed = hyve::graph::io::parse(buf.as_slice()).expect("parse");
    assert_eq!(parsed.len(), g.len());

    // SNAP files carry no explicit vertex count, so the parsed graph may
    // drop trailing isolated vertices; costs agree to within a fraction of
    // a percent and functional values agree on the common range.
    let (a, ranks_a) = session(SystemConfig::hyve())
        .run_on_edge_list_with_values(&PageRank::new(2), &g)
        .unwrap();
    let (b, ranks_b) = session(SystemConfig::hyve())
        .run_on_edge_list_with_values(&PageRank::new(2), &parsed)
        .unwrap();
    let rel = (a.energy().as_pj() - b.energy().as_pj()).abs() / a.energy().as_pj();
    assert!(rel < 5e-3, "energy drift {rel}");
    let n = ranks_b.len().min(ranks_a.len());
    for (x, y) in ranks_a[..n].iter().zip(&ranks_b[..n]) {
        assert!((x - y).abs() <= 2e-6 + 1e-3 * x.abs());
    }
}
