//! Reliability-subsystem contract tests.
//!
//! Three guarantees, asserted exactly:
//!
//! 1. **Inert plans perturb nothing.** `FaultPlan::none()` and any
//!    zero-rate plan (even with a seed set) leave every `RunReport`
//!    bit-identical to a session built without faults — the same reports
//!    the golden suite pins, so faults-off runs reproduce the golden
//!    baselines bit-for-bit.
//! 2. **Fault outcomes are seed-deterministic and strategy-invariant.**
//!    A fixed seed produces identical correction/retry/remap counts and an
//!    identical report under `Sequential` and `Parallel { 1..=8 }`.
//! 3. **Persistent faults degrade, they don't abort.** A run with stuck
//!    banks completes via bank sparing, and the remap is visible in the
//!    trace artifact round trip.

use hyve::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (8u32..64).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv, 0..nv), 1..200).prop_map(move |pairs| {
            let mut g = EdgeList::new(nv);
            g.extend(pairs.into_iter().map(|(s, d)| Edge::new(s, d)));
            g
        })
    })
}

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    (0usize..5).prop_map(|preset| match preset {
        0 => SystemConfig::acc_dram(),
        1 => SystemConfig::acc_reram(),
        2 => SystemConfig::acc_sram_dram(),
        3 => SystemConfig::hyve(),
        _ => SystemConfig::hyve_opt(),
    })
}

/// An inert plan: zero rates everywhere, but a seed and retry budget set.
fn zero_rate_plan() -> FaultPlan {
    FaultPlan::none().with_seed(99)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inert_plans_reproduce_the_faultless_baseline(
        g in arb_graph(),
        cfg in arb_config(),
    ) {
        let baseline = SimulationSession::builder(cfg.clone())
            .build()
            .expect("valid config")
            .run_on_edge_list(&PageRank::new(3), &g)
            .expect("baseline run");
        prop_assert!(baseline.reliability.is_none());
        for plan in [FaultPlan::none(), zero_rate_plan()] {
            let report = SimulationSession::builder(cfg.clone())
                .with_faults(plan)
                .build()
                .expect("valid config")
                .run_on_edge_list(&PageRank::new(3), &g)
                .expect("inert fault run");
            // Bit-exact equality, including every float.
            prop_assert_eq!(&report, &baseline);
        }
    }

    #[test]
    fn fault_logs_are_identical_across_thread_counts(
        g in arb_graph(),
        seed in 0u64..1000,
    ) {
        let plan = FaultPlan::parse(
            &format!("seed={seed},reram-ber=1e-5,dram-ber=1e-9,sram-ber=1e-10,ecc=secded"),
        )
        .expect("spec parses");
        let sequential = SimulationSession::builder(SystemConfig::hyve_opt())
            .with_faults(plan.clone())
            .build()
            .expect("valid config")
            .run_on_edge_list(&PageRank::new(3), &g)
            .expect("sequential fault run");
        let rel = sequential.reliability.as_ref().expect("active plan reports");
        for threads in 1..=8 {
            let parallel = SimulationSession::builder(SystemConfig::hyve_opt())
                .with_faults(plan.clone())
                .parallel(threads)
                .build()
                .expect("valid config")
                .run_on_edge_list(&PageRank::new(3), &g)
                .expect("parallel fault run");
            let par_rel = parallel.reliability.as_ref().expect("active plan reports");
            prop_assert_eq!(par_rel, rel, "fault log diverged at {} threads", threads);
            prop_assert_eq!(&parallel, &sequential, "report diverged at {} threads", threads);
        }
    }
}

#[test]
fn same_seed_reproduces_same_counts_fresh_sessions() {
    let g = DatasetProfile::youtube_scaled().generate(5);
    let run = |seed: u64| {
        SimulationSession::builder(SystemConfig::hyve_opt())
            .with_faults(
                FaultPlan::parse(&format!("seed={seed},reram-ber=2e-5,ecc=bch,retries=4")).unwrap(),
            )
            .build()
            .unwrap()
            .run_on_edge_list(&Bfs::new(VertexId::new(0)), &g)
            .unwrap()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed, same everything");
    let rel = a.reliability.expect("active plan");
    assert!(rel.corrected > 0, "BER high enough to correct something");
}

#[test]
fn stuck_bank_run_completes_with_remap_in_trace_artifact() {
    let g = DatasetProfile::youtube_scaled().generate(5);
    let recorder = SharedRecorder::new();
    let report = SimulationSession::builder(SystemConfig::hyve())
        .with_faults(FaultPlan::parse("seed=11,stuck-bank=0:3,stuck-bank=2:1").unwrap())
        .with_trace(recorder.clone())
        .build()
        .unwrap()
        .run_on_edge_list(&PageRank::new(3), &g)
        .unwrap();

    // The run completed degraded, not aborted.
    let rel = report.reliability.as_ref().expect("active plan");
    assert_eq!(rel.remaps.len(), 2, "both stuck banks spared");
    assert!(rel.degraded_fraction > 0.0);
    assert!(report.mteps_per_watt() > 0.0);

    // The remap survives the JSONL round trip.
    let text = recorder.artifact().to_jsonl();
    assert!(text.contains("\"event\":\"remap\""), "{text}");
    let back = TraceArtifact::from_jsonl(&text).expect("artifact parses");
    let totals = back.reliability.expect("reliability in artifact");
    assert_eq!(totals.remaps.len(), 2);
    assert_eq!(totals.remaps, rel.remaps);
    assert_eq!(totals.remaps[0].chip, 0);
    assert_eq!(totals.remaps[0].bank, 3);
}

#[test]
fn non_converging_pagerank_surfaces_typed_error_with_partial_report() {
    let g = DatasetProfile::youtube_scaled().generate(5);
    let session = SimulationSession::builder(SystemConfig::hyve_opt())
        .build()
        .unwrap();
    // A zero tolerance demands an exact fixed point — unreachable in three
    // iterations, so the cap fires.
    let err = session
        .run_on_edge_list(&PageRank::new(3).with_tolerance(0.0), &g)
        .unwrap_err();
    match err {
        CoreError::MaxIterationsExceeded {
            algorithm,
            max_iterations,
            report,
        } => {
            assert_eq!(algorithm, "PR");
            assert_eq!(max_iterations, 3);
            assert_eq!(report.iterations, 3, "partial report covers the cap");
            assert!(report.energy().as_pj() > 0.0, "accounting still attached");
        }
        other => panic!("expected MaxIterationsExceeded, got {other:?}"),
    }
    // A loose tolerance converges and returns Ok well under the cap.
    let ok = session
        .run_on_edge_list(&PageRank::new(50).with_tolerance(1e-3), &g)
        .unwrap();
    assert!(ok.iterations < 50, "converged in {} iters", ok.iterations);
}
