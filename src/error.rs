//! The workspace-wide error type.
//!
//! Each layer keeps its own error ([`GraphError`](hyve_graph::GraphError),
//! [`CoreError`](hyve_core::CoreError),
//! [`DeviceError`](hyve_memsim::DeviceError)); [`HyveError`] unifies them so
//! applications can `?` across layers without `Box<dyn Error>`.

use std::error::Error;
use std::fmt;

/// Any error the HyVE workspace can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum HyveError {
    /// Graph construction or partitioning failed.
    Graph(hyve_graph::GraphError),
    /// Engine configuration or scheduling failed.
    Core(hyve_core::CoreError),
    /// A memory-device model rejected its configuration.
    Device(hyve_memsim::DeviceError),
}

impl fmt::Display for HyveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyveError::Graph(e) => write!(f, "graph error: {e}"),
            HyveError::Core(e) => write!(f, "core error: {e}"),
            HyveError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for HyveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HyveError::Graph(e) => Some(e),
            HyveError::Core(e) => Some(e),
            HyveError::Device(e) => Some(e),
        }
    }
}

impl From<hyve_graph::GraphError> for HyveError {
    fn from(e: hyve_graph::GraphError) -> Self {
        HyveError::Graph(e)
    }
}

impl From<hyve_core::CoreError> for HyveError {
    fn from(e: hyve_core::CoreError) -> Self {
        HyveError::Core(e)
    }
}

impl From<hyve_memsim::DeviceError> for HyveError {
    fn from(e: hyve_memsim::DeviceError) -> Self {
        HyveError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer_with_source() {
        let g = HyveError::from(hyve_graph::GraphError::EmptyGraph);
        let c = HyveError::from(hyve_core::CoreError::InvalidConfig {
            message: "zero PUs".into(),
        });
        let d = HyveError::from(hyve_memsim::DeviceError::invalid(
            "SRAM array",
            "capacity must be positive",
        ));
        for e in [&g, &c, &d] {
            assert!(Error::source(e).is_some());
            assert!(!e.to_string().is_empty());
        }
        assert!(c.to_string().contains("zero PUs"));
    }

    #[test]
    fn question_mark_across_layers() {
        fn run() -> Result<(), HyveError> {
            hyve_core::SystemConfig::hyve().validate()?;
            Err(hyve_graph::GraphError::EmptyGraph)?
        }
        assert!(matches!(run(), Err(HyveError::Graph(_))));
    }
}
