//! # HyVE — Hybrid Vertex-Edge Memory Hierarchy (reproduction)
//!
//! Facade crate re-exporting the whole HyVE reproduction workspace:
//!
//! * [`memsim`] — device models (ReRAM / DRAM / SRAM / register file,
//!   bank-level power gating),
//! * [`graph`] — graph substrate (edge lists, interval-block grids, R-MAT
//!   generators, dynamic updates),
//! * [`core`] — the HyVE architecture simulator (controller, processing
//!   units, super-block scheduler, energy accounting),
//! * [`algorithms`] — edge-centric graph programs (PageRank, BFS, CC, SSSP,
//!   SpMV) with sequential references,
//! * [`graphr`] — the GraphR crossbar-PIM baseline,
//! * [`baselines`] — CPU+DRAM analytic baselines,
//! * [`model`] — the paper's §6 analytic energy/delay model.
//!
//! ## Quickstart
//!
//! ```
//! use hyve::prelude::*;
//!
//! # fn main() -> Result<(), HyveError> {
//! let edges = DatasetProfile::youtube_scaled().generate(42);
//! let session = SimulationSession::builder(SystemConfig::hyve_opt()).build()?;
//! let report = session.run_on_edge_list(&PageRank::new(5), &edges)?;
//! println!("PR on scaled YT: {:.1} MTEPS/W", report.mteps_per_watt());
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod prelude;

pub use error::HyveError;

pub use hyve_algorithms as algorithms;
pub use hyve_baselines as baselines;
pub use hyve_core as core;
pub use hyve_graph as graph;
pub use hyve_graphr as graphr;
pub use hyve_memsim as memsim;
pub use hyve_model as model;
