//! One-stop imports for HyVE applications.
//!
//! ```
//! use hyve::prelude::*;
//!
//! # fn main() -> Result<(), HyveError> {
//! let graph = DatasetProfile::youtube_scaled().generate(42);
//! let session = SimulationSession::builder(SystemConfig::hyve_opt())
//!     .parallel(4)
//!     .build()?;
//! let report = session.run_on_edge_list(&PageRank::new(5), &graph)?;
//! assert!(report.mteps_per_watt() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use crate::error::HyveError;
pub use hyve_algorithms::{
    Bfs, ConnectedComponents, EdgeProgram, ExecutionMode, IterationBound, PageRank, SpMv, Sssp,
};
pub use hyve_core::{
    BankRemap, CoreError, EccProfile, EdgeMemoryKind, EnergyBreakdown, ExecutionStrategy,
    FaultPlan, HierarchyInstance, HierarchySpec, MetricsRecorder, PhaseTimes, ReliabilityReport,
    RunReport, RunTrace, SessionBuilder, SharedRecorder, SimulationSession, SystemConfig,
    TraceArtifact, TraceChannel, TraceDiff, TraceEvent, TraceSink, VertexMemoryKind,
};
pub use hyve_graph::{
    DatasetProfile, Edge, EdgeList, FlatGrid, GraphError, GridGraph, Rmat, VertexId,
};
pub use hyve_memsim::DeviceError;
